//! Property-based tests over random adversarial graphs and workloads.
//!
//! The central invariants, straight from the paper:
//!
//! * **Safety**: every index's answer contains the data-graph answer —
//!   in fact, with validation in the query algorithm, equals it.
//! * **Precision after refinement**: once an index has been refined for a
//!   FUP, re-running the FUP needs no validation and stays correct.
//! * **Structural invariants**: extents partition the data nodes, edges are
//!   induced (checked by `check_invariants`), and the M*(k) hierarchy keeps
//!   Properties 2–5 through arbitrary refinement sequences.
//! * **Ground-truth bisimilarity**: A(k) and D(k)-construct extents are
//!   `≈k`-homogeneous against an independently computed partition.

use mrx::datagen::{random_graph, RandomGraphConfig};
use mrx::graph::DataGraph;
use mrx::index::{
    k_bisim_all, AkIndex, DkIndex, EvalStrategy, MStarIndex, MkIndex, OneIndex,
};
use mrx::path::{eval_data, PathExpr};
use mrx::workload::{Workload, WorkloadConfig};
use proptest::prelude::*;

/// A random graph plus a workload of queries that exist in it.
fn graph_and_queries() -> impl Strategy<Value = (DataGraph, Vec<PathExpr>)> {
    (
        10usize..60,
        2usize..6,
        0.0f64..0.8,
        any::<bool>(),
        any::<u64>(),
        any::<u64>(),
        3usize..10,
    )
        .prop_map(
            |(nodes, labels, extra, cycles, gseed, wseed, nqueries)| {
                let g = random_graph(
                    &RandomGraphConfig {
                        nodes,
                        labels,
                        extra_edge_ratio: extra,
                        allow_cycles: cycles,
                    },
                    gseed,
                );
                let w = Workload::generate(
                    &g,
                    &WorkloadConfig {
                        max_path_len: 4,
                        num_queries: nqueries,
                        seed: wseed,
                        max_enumerated_paths: 20_000,
                    },
                );
                (g, w.queries)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ak_and_one_index_answers_match_ground_truth((g, queries) in graph_and_queries()) {
        let one = OneIndex::build(&g);
        for k in 0..4 {
            let ak = AkIndex::build(&g, k);
            ak.graph().check_invariants(&g);
            for q in &queries {
                let truth = eval_data(&g, &q.compile(&g));
                prop_assert_eq!(&ak.query(&g, q).nodes, &truth, "A({}) on {}", k, q);
                let oans = one.query(&g, q);
                prop_assert_eq!(&oans.nodes, &truth, "1-index on {}", q);
                prop_assert!(!oans.validated, "1-index never validates");
            }
        }
    }

    #[test]
    fn ak_extents_are_k_bisimilar((g, _) in graph_and_queries()) {
        let parts = k_bisim_all(&g, 3);
        for k in 0..=3u32 {
            let ak = AkIndex::build(&g, k);
            for v in ak.graph().iter() {
                let ext = ak.graph().extent(v);
                let class = parts[k as usize].block_of[ext[0].index()];
                for &o in ext {
                    prop_assert_eq!(
                        parts[k as usize].block_of[o.index()], class,
                        "A({}) extent mixes ≈{} classes", k, k
                    );
                }
            }
        }
    }

    #[test]
    fn mk_refinement_is_safe_and_fup_precise((g, queries) in graph_and_queries()) {
        let mut idx = MkIndex::new(&g);
        for q in &queries {
            idx.refine_for(&g, q);
            idx.graph().check_invariants(&g);
            // the refined FUP is answered exactly; the sound trust policy
            // validates wherever the claimed similarity cannot be proven
            let ans = idx.query(&g, q);
            let truth = eval_data(&g, &q.compile(&g));
            prop_assert_eq!(&ans.nodes, &truth, "M(k) wrong on its own FUP {}", q);
        }
        // all earlier FUPs remain correct (possibly with validation)
        for q in &queries {
            let truth = eval_data(&g, &q.compile(&g));
            prop_assert_eq!(&idx.query(&g, q).nodes, &truth, "M(k) unsafe on {}", q);
        }
    }

    #[test]
    fn dk_promote_is_safe_and_fup_precise((g, queries) in graph_and_queries()) {
        let mut idx = DkIndex::a0(&g);
        for q in &queries {
            idx.promote_for(&g, q);
            idx.graph().check_invariants(&g);
            let ans = idx.query(&g, q);
            let truth = eval_data(&g, &q.compile(&g));
            prop_assert_eq!(&ans.nodes, &truth, "D(k)-promote wrong on its own FUP {}", q);
        }
        for q in &queries {
            let truth = eval_data(&g, &q.compile(&g));
            prop_assert_eq!(&idx.query(&g, q).nodes, &truth, "D(k)-promote unsafe on {}", q);
        }
    }

    #[test]
    fn genuine_similarity_is_sound((g, _) in graph_and_queries()) {
        // Drive an M(k)-index hard, then verify every node's *proven*
        // similarity against ground-truth partitions: the extent must lie
        // inside one ≈(genuine) class.
        let w = Workload::generate(&g, &WorkloadConfig {
            max_path_len: 3, num_queries: 8, seed: 99, max_enumerated_paths: 10_000,
        });
        let mut idx = MkIndex::new(&g);
        for q in &w.queries {
            idx.refine_for(&g, q);
        }
        let parts = k_bisim_all(&g, 6);
        for v in idx.graph().iter() {
            let genuine = idx.graph().genuine(v).min(6);
            let ext = idx.graph().extent(v);
            let class = parts[genuine as usize].block_of[ext[0].index()];
            for &o in ext {
                prop_assert_eq!(
                    parts[genuine as usize].block_of[o.index()], class,
                    "extent of {:?} not genuinely ≈{}-homogeneous", v, genuine
                );
            }
        }
    }

    #[test]
    fn dk_construct_supports_all_fups((g, queries) in graph_and_queries()) {
        let idx = DkIndex::construct(&g, &queries);
        idx.graph().check_invariants(&g);
        for q in &queries {
            let truth = eval_data(&g, &q.compile(&g));
            let ans = idx.query(&g, q);
            prop_assert_eq!(&ans.nodes, &truth, "D(k)-construct wrong on {}", q);
            prop_assert!(!ans.validated, "D(k)-construct must support FUP {}", q);
        }
    }

    #[test]
    fn mstar_keeps_all_properties_and_answers((g, queries) in graph_and_queries()) {
        let mut idx = MStarIndex::new(&g);
        for q in &queries {
            idx.refine_for(&g, q);
            idx.check_invariants(&g);
            for strat in [EvalStrategy::Naive, EvalStrategy::TopDown] {
                let ans = idx.query(&g, q, strat);
                let truth = eval_data(&g, &q.compile(&g));
                prop_assert_eq!(&ans.nodes, &truth, "M*(k) {:?} wrong on its FUP {}", strat, q);
            }
        }
        // every strategy remains safe for the whole workload afterwards
        for q in &queries {
            let truth = eval_data(&g, &q.compile(&g));
            for strat in [EvalStrategy::Naive, EvalStrategy::TopDown, EvalStrategy::BottomUp] {
                prop_assert_eq!(&idx.query(&g, q, strat).nodes, &truth, "{:?} on {}", strat, q);
            }
            if q.length() >= 1 {
                for strat in [
                    EvalStrategy::Subpath { start: 0, end: q.length() },
                    EvalStrategy::Hybrid { split: q.length().div_ceil(2) },
                    EvalStrategy::Hybrid { split: q.length() },
                ] {
                    prop_assert_eq!(&idx.query(&g, q, strat).nodes, &truth, "{:?} on {}", strat, q);
                }
            }
        }
    }

    #[test]
    fn mstar_never_larger_than_logical((g, queries) in graph_and_queries()) {
        let mut idx = MStarIndex::new(&g);
        for q in &queries {
            idx.refine_for(&g, q);
        }
        prop_assert!(idx.node_count() <= idx.logical_node_count());
        // every component is at most as large as the next finer one
        for i in 1..=idx.max_k() {
            prop_assert!(
                idx.component(i - 1).node_count() <= idx.component(i).node_count(),
                "component {} larger than component {}", i - 1, i
            );
        }
    }

    #[test]
    fn ud_index_matches_ground_truth((g, queries) in graph_and_queries()) {
        use mrx::index::UdIndex;
        use mrx::path::{Cost, DownValidator};
        for (k, l) in [(0u32, 2u32), (2, 0), (2, 2)] {
            let ud = UdIndex::build(&g, k, l);
            ud.graph().check_invariants(&g);
            for q in &queries {
                let truth = eval_data(&g, &q.compile(&g));
                prop_assert_eq!(&ud.query(&g, q).nodes, &truth, "UD({},{}) on {}", k, l, q);
                // outgoing query ground truth via the forward validator
                let mut dv = DownValidator::new(&g, q.compile(&g));
                let mut c = Cost::ZERO;
                let down_truth = dv.filter(g.nodes(), &mut c);
                let ans = ud.query_outgoing(&g, q);
                prop_assert_eq!(&ans.nodes, &down_truth, "UD({},{}) outgoing {}", k, l, q);
            }
        }
    }

    #[test]
    fn validation_agrees_with_forward_evaluation((g, queries) in graph_and_queries()) {
        use mrx::path::{Cost, Validator};
        for q in &queries {
            let cp = q.compile(&g);
            let truth = eval_data(&g, &cp);
            let mut v = Validator::new(&g, cp);
            let mut cost = Cost::ZERO;
            let all: Vec<_> = g.nodes().collect();
            let accepted = v.filter(all, &mut cost);
            prop_assert_eq!(accepted, truth, "validator disagrees on {}", q);
        }
    }
}
