//! Property-based tests over random adversarial graphs and workloads,
//! driven by the in-repo seeded PRNG (deterministic, no external crates).
//!
//! The central invariants, straight from the paper:
//!
//! * **Safety**: every index's answer contains the data-graph answer —
//!   in fact, with validation in the query algorithm, equals it.
//! * **Precision after refinement**: once an index has been refined for a
//!   FUP, re-running the FUP needs no validation and stays correct.
//! * **Structural invariants**: extents partition the data nodes, edges are
//!   induced (checked by `check_invariants`), and the M*(k) hierarchy keeps
//!   Properties 2–5 through arbitrary refinement sequences.
//! * **Ground-truth bisimilarity**: A(k) and D(k)-construct extents are
//!   `≈k`-homogeneous against an independently computed partition.

use mrx::datagen::{random_graph, Prng, RandomGraphConfig};
use mrx::graph::DataGraph;
use mrx::index::{k_bisim_all, AkIndex, DkIndex, EvalStrategy, MStarIndex, MkIndex, OneIndex};
use mrx::path::{eval_data, PathExpr};
use mrx::workload::{Workload, WorkloadConfig};

/// One random graph plus a workload of queries that exist in it, drawn from
/// a seeded parameter stream (case `i` of a test is reproducible from `i`).
fn graph_and_queries(case: u64) -> (DataGraph, Vec<PathExpr>) {
    let mut rng = Prng::seed_from_u64(0xA11CE ^ case);
    let g = random_graph(
        &RandomGraphConfig {
            nodes: rng.gen_range(10..60usize),
            labels: rng.gen_range(2..6usize),
            extra_edge_ratio: rng.gen_range(0.0..0.8),
            allow_cycles: rng.gen_bool(0.5),
        },
        rng.next_u64(),
    );
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: rng.gen_range(3..10usize),
            seed: rng.next_u64(),
            max_enumerated_paths: 20_000,
        },
    );
    (g, w.queries)
}

/// Runs `body` over `cases` independently seeded graph/workload pairs.
fn for_cases(cases: u64, mut body: impl FnMut(&DataGraph, &[PathExpr])) {
    for case in 0..cases {
        let (g, queries) = graph_and_queries(case);
        body(&g, &queries);
    }
}

#[test]
fn ak_and_one_index_answers_match_ground_truth() {
    for_cases(24, |g, queries| {
        let one = OneIndex::build(g);
        for k in 0..4 {
            let ak = AkIndex::build(g, k);
            ak.graph().check_invariants(g);
            for q in queries {
                let truth = eval_data(g, &q.compile(g));
                assert_eq!(ak.query(g, q).nodes, truth, "A({k}) on {q}");
                let oans = one.query(g, q);
                assert_eq!(oans.nodes, truth, "1-index on {q}");
                assert!(!oans.validated, "1-index never validates");
            }
        }
    });
}

#[test]
fn ak_extents_are_k_bisimilar() {
    for_cases(24, |g, _| {
        let parts = k_bisim_all(g, 3);
        for k in 0..=3u32 {
            let ak = AkIndex::build(g, k);
            for v in ak.graph().iter() {
                let ext = ak.graph().extent(v);
                let class = parts[k as usize].block_of[ext[0].index()];
                for &o in ext {
                    assert_eq!(
                        parts[k as usize].block_of[o.index()],
                        class,
                        "A({k}) extent mixes ≈{k} classes"
                    );
                }
            }
        }
    });
}

#[test]
fn mk_refinement_is_safe_and_fup_precise() {
    for_cases(32, |g, queries| {
        let mut idx = MkIndex::new(g);
        for q in queries {
            idx.refine_for(g, q);
            idx.graph().check_invariants(g);
            // the refined FUP is answered exactly; the sound trust policy
            // validates wherever the claimed similarity cannot be proven
            let ans = idx.query(g, q);
            let truth = eval_data(g, &q.compile(g));
            assert_eq!(ans.nodes, truth, "M(k) wrong on its own FUP {q}");
        }
        // all earlier FUPs remain correct (possibly with validation)
        for q in queries {
            let truth = eval_data(g, &q.compile(g));
            assert_eq!(idx.query(g, q).nodes, truth, "M(k) unsafe on {q}");
        }
    });
}

#[test]
fn dk_promote_is_safe_and_fup_precise() {
    for_cases(32, |g, queries| {
        let mut idx = DkIndex::a0(g);
        for q in queries {
            idx.promote_for(g, q);
            idx.graph().check_invariants(g);
            let ans = idx.query(g, q);
            let truth = eval_data(g, &q.compile(g));
            assert_eq!(ans.nodes, truth, "D(k)-promote wrong on its own FUP {q}");
        }
        for q in queries {
            let truth = eval_data(g, &q.compile(g));
            assert_eq!(idx.query(g, q).nodes, truth, "D(k)-promote unsafe on {q}");
        }
    });
}

#[test]
fn genuine_similarity_is_sound() {
    for_cases(24, |g, _| {
        // Drive an M(k)-index hard, then verify every node's *proven*
        // similarity against ground-truth partitions: the extent must lie
        // inside one ≈(genuine) class.
        let w = Workload::generate(
            g,
            &WorkloadConfig {
                max_path_len: 3,
                num_queries: 8,
                seed: 99,
                max_enumerated_paths: 10_000,
            },
        );
        let mut idx = MkIndex::new(g);
        for q in &w.queries {
            idx.refine_for(g, q);
        }
        let parts = k_bisim_all(g, 6);
        for v in idx.graph().iter() {
            let genuine = idx.graph().genuine(v).min(6);
            let ext = idx.graph().extent(v);
            let class = parts[genuine as usize].block_of[ext[0].index()];
            for &o in ext {
                assert_eq!(
                    parts[genuine as usize].block_of[o.index()],
                    class,
                    "extent of {v:?} not genuinely ≈{genuine}-homogeneous"
                );
            }
        }
    });
}

#[test]
fn dk_construct_supports_all_fups() {
    for_cases(32, |g, queries| {
        let idx = DkIndex::construct(g, queries);
        idx.graph().check_invariants(g);
        for q in queries {
            let truth = eval_data(g, &q.compile(g));
            let ans = idx.query(g, q);
            assert_eq!(ans.nodes, truth, "D(k)-construct wrong on {q}");
            assert!(!ans.validated, "D(k)-construct must support FUP {q}");
        }
    });
}

#[test]
fn mstar_keeps_all_properties_and_answers() {
    for_cases(24, |g, queries| {
        let mut idx = MStarIndex::new(g);
        for q in queries {
            idx.refine_for(g, q);
            idx.check_invariants(g);
            for strat in [EvalStrategy::Naive, EvalStrategy::TopDown] {
                let ans = idx.query(g, q, strat);
                let truth = eval_data(g, &q.compile(g));
                assert_eq!(ans.nodes, truth, "M*(k) {strat:?} wrong on its FUP {q}");
            }
        }
        // every strategy remains safe for the whole workload afterwards
        for q in queries {
            let truth = eval_data(g, &q.compile(g));
            for strat in [
                EvalStrategy::Naive,
                EvalStrategy::TopDown,
                EvalStrategy::BottomUp,
            ] {
                assert_eq!(idx.query(g, q, strat).nodes, truth, "{strat:?} on {q}");
            }
            if q.length() >= 1 {
                for strat in [
                    EvalStrategy::Subpath {
                        start: 0,
                        end: q.length(),
                    },
                    EvalStrategy::Hybrid {
                        split: q.length().div_ceil(2),
                    },
                    EvalStrategy::Hybrid { split: q.length() },
                ] {
                    assert_eq!(idx.query(g, q, strat).nodes, truth, "{strat:?} on {q}");
                }
            }
        }
    });
}

#[test]
fn mstar_never_larger_than_logical() {
    for_cases(32, |g, queries| {
        let mut idx = MStarIndex::new(g);
        for q in queries {
            idx.refine_for(g, q);
        }
        assert!(idx.node_count() <= idx.logical_node_count());
        // every component is at most as large as the next finer one
        for i in 1..=idx.max_k() {
            assert!(
                idx.component(i - 1).node_count() <= idx.component(i).node_count(),
                "component {} larger than component {}",
                i - 1,
                i
            );
        }
    });
}

#[test]
fn ud_index_matches_ground_truth() {
    use mrx::index::UdIndex;
    use mrx::path::{Cost, DownValidator};
    for_cases(16, |g, queries| {
        for (k, l) in [(0u32, 2u32), (2, 0), (2, 2)] {
            let ud = UdIndex::build(g, k, l);
            ud.graph().check_invariants(g);
            for q in queries {
                let truth = eval_data(g, &q.compile(g));
                assert_eq!(ud.query(g, q).nodes, truth, "UD({k},{l}) on {q}");
                // outgoing query ground truth via the forward validator
                let mut dv = DownValidator::new(g, q.compile(g));
                let mut c = Cost::ZERO;
                let down_truth = dv.filter(g.nodes(), &mut c);
                let ans = ud.query_outgoing(g, q);
                assert_eq!(ans.nodes, down_truth, "UD({k},{l}) outgoing {q}");
            }
        }
    });
}

#[test]
fn validation_agrees_with_forward_evaluation() {
    use mrx::path::{Cost, Validator};
    for_cases(32, |g, queries| {
        for q in queries {
            let cp = q.compile(g);
            let truth = eval_data(g, &cp);
            let mut v = Validator::new(g, cp);
            let mut cost = Cost::ZERO;
            let all: Vec<_> = g.nodes().collect();
            let accepted = v.filter(all, &mut cost);
            assert_eq!(accepted, truth, "validator disagrees on {q}");
        }
    });
}
