//! Robustness properties of the XML substrate: the parser must never panic
//! on arbitrary input, and the writer/parser pair must round-trip every
//! serializable graph the generators can produce.

use mrx::datagen::{nasa_like, xmark_like, XmarkConfig};
use mrx::graph::xml::{parse, write_document};
use mrx::graph::GraphBuilder;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totally arbitrary bytes-as-string input: must return Ok or Err,
    /// never panic or hang.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,400}") {
        let _ = parse(&input);
    }

    /// Markup-shaped garbage: random concatenations of tag fragments.
    #[test]
    fn parser_never_panics_on_tag_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b x='1'>".to_string()),
                Just("<c/>".to_string()),
                Just("<!--".to_string()),
                Just("-->".to_string()),
                Just("<![CDATA[".to_string()),
                Just("]]>".to_string()),
                Just("<?pi".to_string()),
                Just("?>".to_string()),
                Just("text&amp;more".to_string()),
                Just("<!DOCTYPE r [".to_string()),
                Just("]>".to_string()),
                Just("id=\"x\"".to_string()),
                Just("<".to_string()),
                Just(">".to_string()),
                Just("\"".to_string()),
            ],
            0..24,
        )
    ) {
        let soup: String = parts.concat();
        let _ = parse(&soup);
    }

    /// Random trees with random reference edges round-trip exactly.
    #[test]
    fn writer_parser_roundtrip_random_trees(
        n in 1usize..50,
        labels in 1usize..5,
        refs in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..12),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let ls: Vec<_> = (0..labels).map(|i| format!("tag{i}")).collect();
        let root = b.add_node(&ls[0]);
        let mut nodes = vec![root];
        for _ in 1..n {
            let parent = nodes[rng.gen_range(0..nodes.len())];
            let l = &ls[rng.gen_range(0..ls.len())];
            nodes.push(b.add_child(parent, l));
        }
        for (x, y) in refs {
            let from = nodes[x as usize % nodes.len()];
            let to = nodes[y as usize % nodes.len()];
            if from != to {
                b.add_ref(from, to);
            }
        }
        let g = b.freeze();
        let xml = write_document(&g).unwrap();
        let g2 = parse(&xml).unwrap();
        // The parser assigns ids in document (pre-order) order while the
        // random builder uses creation order, so compare order-independent
        // invariants: counts, label histogram, degree sequences, and the
        // full-bisimulation block count (a strong structural fingerprint).
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.edge_count(), g.edge_count());
        prop_assert_eq!(g2.ref_edge_count(), g.ref_edge_count());
        prop_assert_eq!(
            mrx::graph::stats::label_histogram(&g),
            mrx::graph::stats::label_histogram(&g2)
        );
        let degrees = |g: &mrx::graph::DataGraph| {
            let mut d: Vec<(usize, usize)> = g
                .nodes()
                .map(|v| (g.children(v).len(), g.parents(v).len()))
                .collect();
            d.sort_unstable();
            d
        };
        prop_assert_eq!(degrees(&g), degrees(&g2));
        let (p1, _) = mrx::index::bisim(&g);
        let (p2, _) = mrx::index::bisim(&g2);
        prop_assert_eq!(p1.num_blocks, p2.num_blocks);
    }
}

/// Both full-size generators survive the XML round trip (beyond the small
/// in-crate tests).
#[test]
fn generators_roundtrip_at_scale() {
    for g in [
        xmark_like(&XmarkConfig::with_target_nodes(6_000), 77),
        nasa_like(6_000, 77),
    ] {
        let xml = write_document(&g).unwrap();
        let g2 = parse(&xml).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.ref_edge_count(), g.ref_edge_count());
    }
}

/// Deeply nested documents must not blow the stack in the parser.
#[test]
fn deep_nesting_parses() {
    let depth = 2_000;
    let mut doc = String::new();
    for _ in 0..depth {
        doc.push_str("<d>");
    }
    for _ in 0..depth {
        doc.push_str("</d>");
    }
    let g = parse(&doc).unwrap();
    assert_eq!(g.node_count(), depth);
}
