//! Robustness properties of the XML substrate: the parser must never panic
//! on arbitrary input, and the writer/parser pair must round-trip every
//! serializable graph the generators can produce. Randomness comes from the
//! in-repo seeded PRNG, so every failure reproduces from its case number.

use mrx::datagen::{nasa_like, xmark_like, Prng, XmarkConfig};
use mrx::graph::xml::{parse, write_document};
use mrx::graph::GraphBuilder;

/// Totally arbitrary bytes-as-string input: must return Ok or Err, never
/// panic or hang.
#[test]
fn parser_never_panics_on_arbitrary_input() {
    let mut rng = Prng::seed_from_u64(0xF00D);
    for _ in 0..256 {
        let len = rng.gen_range(0..400usize);
        let input: String = (0..len)
            .map(|_| {
                // Mostly printable ASCII with some markup-significant and
                // non-ASCII characters mixed in.
                match rng.gen_range(0..10usize) {
                    0 => '<',
                    1 => '>',
                    2 => '&',
                    3 => '"',
                    4 => char::from_u32(rng.gen_range(0x80..0x2FFusize) as u32).unwrap_or('¿'),
                    _ => (rng.gen_range(0x20..0x7Fusize) as u8) as char,
                }
            })
            .collect();
        let _ = parse(&input);
    }
}

/// Markup-shaped garbage: random concatenations of tag fragments.
#[test]
fn parser_never_panics_on_tag_soup() {
    const PARTS: &[&str] = &[
        "<a>",
        "</a>",
        "<b x='1'>",
        "<c/>",
        "<!--",
        "-->",
        "<![CDATA[",
        "]]>",
        "<?pi",
        "?>",
        "text&amp;more",
        "<!DOCTYPE r [",
        "]>",
        "id=\"x\"",
        "<",
        ">",
        "\"",
    ];
    let mut rng = Prng::seed_from_u64(0x50FA);
    for _ in 0..256 {
        let n = rng.gen_range(0..24usize);
        let soup: String = (0..n)
            .map(|_| PARTS[rng.gen_range(0..PARTS.len())])
            .collect();
        let _ = parse(&soup);
    }
}

/// Random trees with random reference edges round-trip exactly.
#[test]
fn writer_parser_roundtrip_random_trees() {
    for case in 0..64u64 {
        let mut rng = Prng::seed_from_u64(0x7EE5 ^ case);
        let n = rng.gen_range(1..50usize);
        let labels = rng.gen_range(1..5usize);
        let nrefs = rng.gen_range(0..12usize);
        let mut b = GraphBuilder::new();
        let ls: Vec<_> = (0..labels).map(|i| format!("tag{i}")).collect();
        let root = b.add_node(&ls[0]);
        let mut nodes = vec![root];
        for _ in 1..n {
            let parent = nodes[rng.gen_range(0..nodes.len())];
            let l = &ls[rng.gen_range(0..ls.len())];
            nodes.push(b.add_child(parent, l));
        }
        for _ in 0..nrefs {
            let from = nodes[rng.gen_range(0..nodes.len())];
            let to = nodes[rng.gen_range(0..nodes.len())];
            if from != to {
                b.add_ref(from, to);
            }
        }
        let g = b.freeze();
        let xml = write_document(&g).unwrap();
        let g2 = parse(&xml).unwrap();
        // The parser assigns ids in document (pre-order) order while the
        // random builder uses creation order, so compare order-independent
        // invariants: counts, label histogram, degree sequences, and the
        // full-bisimulation block count (a strong structural fingerprint).
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.ref_edge_count(), g.ref_edge_count());
        assert_eq!(
            mrx::graph::stats::label_histogram(&g),
            mrx::graph::stats::label_histogram(&g2)
        );
        let degrees = |g: &mrx::graph::DataGraph| {
            let mut d: Vec<(usize, usize)> = g
                .nodes()
                .map(|v| (g.children(v).len(), g.parents(v).len()))
                .collect();
            d.sort_unstable();
            d
        };
        assert_eq!(degrees(&g), degrees(&g2));
        let (p1, _) = mrx::index::bisim(&g);
        let (p2, _) = mrx::index::bisim(&g2);
        assert_eq!(p1.num_blocks, p2.num_blocks);
    }
}

/// Both full-size generators survive the XML round trip (beyond the small
/// in-crate tests).
#[test]
fn generators_roundtrip_at_scale() {
    for g in [
        xmark_like(&XmarkConfig::with_target_nodes(6_000), 77),
        nasa_like(6_000, 77),
    ] {
        let xml = write_document(&g).unwrap();
        let g2 = parse(&xml).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.ref_edge_count(), g.ref_edge_count());
    }
}

/// Deeply nested documents must not blow the stack in the parser: beyond the
/// default `ParseOptions::max_depth` they are rejected with a typed error,
/// and raising the limit parses them without growing the call stack.
#[test]
fn deep_nesting_parses() {
    let depth = 2_000;
    let mut doc = String::new();
    for _ in 0..depth {
        doc.push_str("<d>");
    }
    for _ in 0..depth {
        doc.push_str("</d>");
    }
    let err = parse(&doc).unwrap_err();
    assert!(err.message.contains("max_depth"), "unexpected error: {err}");
    let opts = mrx::graph::xml::ParseOptions {
        max_depth: depth,
        ..Default::default()
    };
    let g = mrx::graph::xml::parse_with(&doc, &opts).unwrap();
    assert_eq!(g.node_count(), depth);
}
