//! The paper's worked examples and stated properties, reproduced as tests.
//!
//! * Figure 1: the example data graph and its XPath answers.
//! * Figure 2: same label paths ≠ bisimilar.
//! * Lemma 1: the simplified k-bisimilarity definition.
//! * A(k) properties 1–5 (§2).
//! * Figure 3: D(k)-promote vs M(k) refinement on the same FUP.
//! * Figure 4: over-refinement through overqualified parents, and how the
//!   M*(k)-index avoids it.
//! * (Figure 7 is covered node-for-node in `mrx-index`'s unit tests.)

use mrx::graph::{DataGraph, GraphBuilder, NodeId};
use mrx::index::{
    bisim, k_bisim, k_bisim_all, AkIndex, DkIndex, EvalStrategy, MStarIndex, MkIndex,
};
use mrx::path::{eval_data, PathExpr};

/// Figure 1's auction-site graph, with the oids of the paper.
fn figure1() -> DataGraph {
    let mut b = GraphBuilder::new();
    let root = b.add_node("root"); // 0
    let site = b.add_child(root, "site"); // 1
    let regions = b.add_child(site, "regions"); // 2
    let people = b.add_child(site, "people"); // 3
    let auctions = b.add_child(site, "auctions"); // 4
    let africa = b.add_child(regions, "africa"); // 5
    let asia = b.add_child(regions, "asia"); // 6
    let p7 = b.add_child(people, "person"); // 7
    let p8 = b.add_child(people, "person"); // 8
    let _p9 = b.add_child(people, "person"); // 9
    let a10 = b.add_child(auctions, "auction"); // 10
    let a11 = b.add_child(auctions, "auction"); // 11
    let _i12 = b.add_child(africa, "item"); // 12
    let i13 = b.add_child(africa, "item"); // 13
    let _i14 = b.add_child(asia, "item"); // 14
    let _s15 = b.add_child(a10, "seller"); // 15
    let b16 = b.add_child(a10, "bidder"); // 16
    let b17 = b.add_child(a10, "bidder"); // 17
    let s18 = b.add_child(a11, "seller"); // 18
    let i19 = b.add_child(a11, "item"); // 19
    let _i20 = b.add_child(a11, "item"); // 20
    b.add_ref(p7, b16);
    b.add_ref(p8, b17);
    b.add_ref(p8, s18);
    b.add_ref(i13, i19);
    b.freeze()
}

#[test]
fn figure1_xpath_examples() {
    let g = figure1();
    let persons = PathExpr::parse("/site/people/person").unwrap();
    let got: Vec<u32> = eval_data(&g, &persons.compile(&g))
        .iter()
        .map(|n| n.0)
        .collect();
    assert_eq!(got, vec![7, 8, 9], "the paper's first example");
    let items = PathExpr::parse("/site/regions/*/item").unwrap();
    let got: Vec<u32> = eval_data(&g, &items.compile(&g))
        .iter()
        .map(|n| n.0)
        .collect();
    assert_eq!(got, vec![12, 13, 14], "the paper's wildcard example");
}

/// Figure 2: the two `d` nodes share the label paths {r/a/c/d, r/b/c/d} yet
/// are not bisimilar, because their `c` parents differ structurally.
#[test]
fn figure2_same_paths_not_bisimilar() {
    // Left: r -> a -> c1 -> d; r -> b -> c2 -> d (two c's into one d).
    let mut bl = GraphBuilder::new();
    let r = bl.add_node("r");
    let a = bl.add_child(r, "a");
    let b = bl.add_child(r, "b");
    let c1 = bl.add_child(a, "c");
    let c2 = bl.add_child(b, "c");
    let d_left = bl.add_child(c1, "d");
    bl.add_ref(c2, d_left);
    let left = bl.freeze();

    // Right: r -> a -> c <- b; c -> d (one shared c).
    let mut br = GraphBuilder::new();
    let r = br.add_node("r");
    let a = br.add_child(r, "a");
    let b = br.add_child(r, "b");
    let c = br.add_child(a, "c");
    br.add_ref(b, c);
    let d_right = br.add_child(c, "d");
    let right = br.freeze();

    // Both d's have exactly the incoming label paths r/a/c/d and r/b/c/d:
    for (g, d) in [(&left, d_left), (&right, d_right)] {
        for p in ["//r/a/c/d", "//r/b/c/d"] {
            let q = PathExpr::parse(p).unwrap();
            assert_eq!(eval_data(g, &q.compile(g)), vec![d], "{p}");
        }
    }

    // ...but in the combined graph (both shapes under one root) the two d's
    // are separated by full bisimulation.
    let mut bc = GraphBuilder::new();
    let top = bc.add_node("r");
    let a1 = bc.add_child(top, "a");
    let b1 = bc.add_child(top, "b");
    let c1 = bc.add_child(a1, "c");
    let c2 = bc.add_child(b1, "c");
    let d1 = bc.add_child(c1, "d");
    bc.add_ref(c2, d1);
    let a2 = bc.add_child(top, "a");
    let b2 = bc.add_child(top, "b");
    let c3 = bc.add_child(a2, "c");
    bc.add_ref(b2, c3);
    let d2 = bc.add_child(c3, "d");
    let g = bc.freeze();
    let (p, _) = bisim(&g);
    assert!(
        !p.same_block(d1, d2),
        "Figure 2's d nodes are not bisimilar"
    );
    // yet 1-bisimilarity cannot tell them apart (both have only c-parents)
    assert!(k_bisim(&g, 1).same_block(d1, d2));
}

/// Lemma 1: u ≈k v iff u ≈0 v and their parents match up to ≈(k−1).
/// Verified against the inductive Definition 2 on a batch of graphs.
#[test]
fn lemma1_simplified_definition() {
    use mrx::datagen::{random_graph, RandomGraphConfig};
    for seed in 0..10 {
        let g = random_graph(&RandomGraphConfig::default(), seed);
        let parts = k_bisim_all(&g, 4);
        for k in 1..=4usize {
            let fine = &parts[k];
            let prev = &parts[k - 1];
            for u in g.nodes() {
                for v in g.nodes() {
                    if u >= v {
                        continue;
                    }
                    // Lemma 1's right-hand side:
                    let same_label = g.label(u) == g.label(v);
                    let parents_match = same_label && {
                        let pu: Vec<u32> = {
                            let mut x: Vec<u32> = g
                                .parents(u)
                                .iter()
                                .map(|p| prev.block_of[p.index()])
                                .collect();
                            x.sort_unstable();
                            x.dedup();
                            x
                        };
                        let pv: Vec<u32> = {
                            let mut x: Vec<u32> = g
                                .parents(v)
                                .iter()
                                .map(|p| prev.block_of[p.index()])
                                .collect();
                            x.sort_unstable();
                            x.dedup();
                            x
                        };
                        pu == pv
                    };
                    // Lemma 1: u ≈k v ⟺ u ≈0 v ∧ parents match at ≈(k−1) —
                    // no ≈(k−1) requirement on u, v themselves.
                    assert_eq!(
                        fine.same_block(u, v),
                        same_label && parents_match,
                        "Lemma 1 mismatch at k={k} for {u:?},{v:?} (seed {seed})"
                    );
                }
            }
        }
    }
}

/// A(k) properties 1–5 from §2, on the Figure 1 graph.
#[test]
fn ak_properties() {
    let g = figure1();
    let parts = k_bisim_all(&g, 5);

    // Property 5: ≈(k+1) refines ≈k.
    for w in parts.windows(2) {
        assert!(w[1].refines(&w[0]));
    }

    for k in 0..=3u32 {
        let ak = AkIndex::build(&g, k);
        // Property 3 (precision ≤ k) + Property 4 (safety) via ground truth:
        for expr in [
            "//person",
            "//people/person",
            "//site/auctions/auction",
            "//auction/seller",
            "//regions/africa/item/item",
        ] {
            let q = PathExpr::parse(expr).unwrap();
            let ans = ak.query(&g, &q);
            assert_eq!(ans.nodes, eval_data(&g, &q.compile(&g)), "A({k}) {expr}");
            if q.length() <= k as usize {
                assert!(!ans.validated, "A({k}) is precise for length ≤ {k}: {expr}");
            }
        }
        // Properties 1–2: extents are ≈k classes (same incoming label paths
        // up to length k) — checked against the independent partition.
        for v in ak.graph().iter() {
            let ext = ak.graph().extent(v);
            let class = parts[k as usize].block_of[ext[0].index()];
            assert!(ext
                .iter()
                .all(|o| parts[k as usize].block_of[o.index()] == class));
        }
    }
}

/// Figure 3's contrast: one FUP, two refinement philosophies.
#[test]
fn figure3_dk_vs_mk_refinement() {
    // r -> a, c, d; a -> b1; c -> b2, b3; d -> b3, b4 (our rendition; the
    // figure's exact edges are not recoverable from the PDF art, but the
    // phenomenon is identical: only b1 is relevant to //r/a/b).
    let mut bld = GraphBuilder::new();
    let r = bld.add_node("r");
    let a = bld.add_child(r, "a");
    let c = bld.add_child(r, "c");
    let d = bld.add_child(r, "d");
    let b1 = bld.add_child(a, "b");
    let _b2 = bld.add_child(c, "b");
    let b3 = bld.add_child(c, "b");
    bld.add_ref(d, b3);
    let _b4 = bld.add_child(d, "b");
    let g = bld.freeze();
    let fup = PathExpr::parse("//r/a/b").unwrap();

    let mut dk = DkIndex::a0(&g);
    dk.promote_for(&g, &fup);
    let mut mk = MkIndex::new(&g);
    mk.refine_for(&g, &fup);

    let bl = g.labels().get("b").unwrap();
    // D(k)-promote: "essentially a copy of the data graph" — every b alone.
    assert_eq!(dk.graph().nodes_with_label(bl).count(), 4);
    // M(k): the relevant {b1} plus ONE remainder node for all the rest.
    assert_eq!(mk.graph().nodes_with_label(bl).count(), 2);
    let rel = mk.graph().node_of(b1);
    assert_eq!(mk.graph().extent(rel), &[b1]);
    assert_eq!(mk.graph().k(rel), 2);
    // Both support the FUP.
    assert_eq!(dk.query(&g, &fup).nodes, vec![b1]);
    assert_eq!(mk.query(&g, &fup).nodes, vec![b1]);
}

/// Figure 4: b2 and b3 are overqualified (k = 2) when //b/c arrives; the
/// c's are 1-bisimilar and should stay together — M(k) splits them, the
/// M*(k)-index does not.
#[test]
fn figure4_overqualified_parents() {
    // r → a; a → b2, b3; b2 → c4; b3 → c5; plus an x → b2 reference that
    // makes the b's separable at higher k (the "previous FUP" effect).
    let mut bld = GraphBuilder::new();
    let r = bld.add_node("r");
    let a = bld.add_child(r, "a");
    let b2 = bld.add_child(a, "b");
    let b3 = bld.add_child(a, "b");
    let c4 = bld.add_child(b2, "c");
    let c5 = bld.add_child(b3, "c");
    let x = bld.add_child(r, "x");
    bld.add_ref(x, b2);
    let g = bld.freeze();

    // Sanity: c4 and c5 really are 1-bisimilar (both have one b-parent).
    assert!(k_bisim(&g, 1).same_block(c4, c5));

    let first = PathExpr::parse("//r/x/b").unwrap(); // makes b's k=2, split
    let second = PathExpr::parse("//b/c").unwrap(); // needs c's at k=1

    let mut mk = MkIndex::new(&g);
    mk.refine_for(&g, &first);
    mk.refine_for(&g, &second);
    let cl = g.labels().get("c").unwrap();
    assert_eq!(
        mk.graph().nodes_with_label(cl).count(),
        2,
        "M(k) over-refines: the overqualified b-pieces split the c's"
    );

    let mut ms = MStarIndex::new(&g);
    ms.refine_for(&g, &first);
    ms.refine_for(&g, &second);
    ms.check_invariants(&g);
    let i1 = ms.component(1);
    assert_eq!(
        i1.extent(i1.node_of(c4)),
        &[c4, c5],
        "M*(k) splits with perfectly qualified I0 parents: c's stay together"
    );
    assert_eq!(i1.k(i1.node_of(c4)), 1);
    // and both answer //b/c correctly
    let truth = eval_data(&g, &second.compile(&g));
    assert_eq!(mk.query(&g, &second).nodes, truth);
    assert_eq!(ms.query(&g, &second, EvalStrategy::TopDown).nodes, truth);
}

/// The safety property (§3): index answers never miss a true answer, on any
/// index, even mid-refinement.
#[test]
fn safety_holds_mid_refinement() {
    let g = figure1();
    let queries: Vec<PathExpr> = [
        "//auction/bidder",
        "//person/bidder",
        "//site/people/person",
        "//item/item",
        "//auctions/auction/seller",
    ]
    .iter()
    .map(|s| PathExpr::parse(s).unwrap())
    .collect();
    let mut mk = MkIndex::new(&g);
    let mut ms = MStarIndex::new(&g);
    for fup in &queries {
        // check every query BEFORE and AFTER each refinement step
        for q in &queries {
            let truth = eval_data(&g, &q.compile(&g));
            assert_eq!(mk.query(&g, q).nodes, truth);
            assert_eq!(ms.query(&g, q, EvalStrategy::TopDown).nodes, truth);
        }
        mk.refine_for(&g, fup);
        ms.refine_for(&g, fup);
    }
}

/// NodeId sanity for the figure builder (documents the oid layout used
/// throughout this file).
#[test]
fn figure1_oids() {
    let g = figure1();
    assert_eq!(g.node_count(), 21);
    assert_eq!(g.label_str(g.label(NodeId(1))), "site");
    assert_eq!(g.label_str(g.label(NodeId(20))), "item");
    assert_eq!(g.ref_edge_count(), 4);
}
