//! Tests that *document* where this implementation deliberately deviates
//! from (or repairs) the paper — see DESIGN.md §"Paper deviations".
//!
//! The headline one: the paper's M(k) REFINENODE can place data nodes with
//! different structural contexts into one piece and stamp it with a high
//! claimed similarity (a *mixed piece*), because it splits only by the
//! *qualifying* parents. Trusting that claimed similarity — as the paper's
//! query algorithm does — then returns unvalidated false positives for
//! other queries. This test constructs the minimal such scenario and shows
//! both behaviours side by side.

use mrx::graph::{DataGraph, GraphBuilder};
use mrx::index::{EvalStrategy, MStarIndex, MkIndex};
use mrx::path::{eval_data, PathExpr};

/// Seeded scenario on the XMark-like dataset where a long workload makes
/// the claimed-k policy observably imprecise while the proven-k policy
/// stays exact. (A minimal hand-built example is surprisingly hard to
/// write: the REFINENODE recursion separates the obvious two-node cases;
/// the imprecision needs colliding FUPs over shared reference structure,
/// which the auction data supplies reliably.)
fn refined_mk_on_xmark() -> (DataGraph, MkIndex, Vec<PathExpr>) {
    use mrx::prelude::{xmark_like, XmarkConfig};
    use mrx::workload::{Workload, WorkloadConfig};
    let g = xmark_like(&XmarkConfig::with_target_nodes(3_000), 0xA0C71);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 9,
            num_queries: 300,
            // Seed re-derived for the in-repo PRNG: this workload produces
            // mixed pieces and observable claimed-k imprecision.
            seed: 4,
            max_enumerated_paths: 400_000,
        },
    );
    let mut idx = MkIndex::new(&g);
    for q in &w.queries {
        idx.refine_for(&g, q);
    }
    (g, idx, w.queries)
}

#[test]
fn claimed_trust_can_return_false_positives_on_mixed_pieces() {
    let (g, idx, queries) = refined_mk_on_xmark();
    idx.graph().check_invariants(&g);
    let mut paper_wrong = 0usize;
    for q in &queries {
        let truth = eval_data(&g, &q.compile(&g));
        // Sound policy: always exact.
        assert_eq!(idx.query(&g, q).nodes, truth, "sound policy wrong on {q}");
        // Paper policy: safe (superset) but occasionally imprecise.
        let paper = idx.query_paper(&g, q).nodes;
        for n in &truth {
            assert!(paper.contains(n), "paper policy unsafe on {q}");
        }
        if paper != truth {
            paper_wrong += 1;
        }
    }
    assert!(
        paper_wrong > 0,
        "expected the documented claimed-k imprecision to manifest on this \
         seeded workload (if the algorithms changed, re-derive the seed)"
    );
    // There must be at least one mixed piece: claimed above proven.
    let mixed = idx
        .graph()
        .iter()
        .filter(|&v| idx.graph().k(v) > idx.graph().genuine(v))
        .count();
    assert!(mixed > 0, "imprecision implies mixed pieces exist");
}

#[test]
fn mstar_has_the_same_claimed_trust_caveat() {
    use mrx::prelude::{xmark_like, XmarkConfig};
    use mrx::workload::{Workload, WorkloadConfig};
    let g = xmark_like(&XmarkConfig::with_target_nodes(3_000), 0xA0C71);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 9,
            num_queries: 300,
            seed: 1,
            max_enumerated_paths: 400_000,
        },
    );
    let mut idx = MStarIndex::new(&g);
    for q in &w.queries {
        idx.refine_for(&g, q);
    }
    let mut paper_wrong = 0usize;
    for q in &w.queries {
        let truth = eval_data(&g, &q.compile(&g));
        let sound = idx.query(&g, q, EvalStrategy::TopDown);
        assert_eq!(sound.nodes, truth, "sound policy wrong on {q}");
        if idx.query_paper(&g, q, EvalStrategy::TopDown).nodes != truth {
            paper_wrong += 1;
        }
    }
    assert!(
        paper_wrong > 0,
        "expected claimed-k imprecision on M*(k) too"
    );
}

#[test]
fn dk_promote_full_splits_do_not_have_the_caveat() {
    // The same workload under D(k)-promote: PROMOTE splits by *every*
    // parent, which is bisimilarity-faithful, so the paper policy stays
    // exact (this is why the paper never noticed the M(k) subtlety).
    use mrx::prelude::{xmark_like, XmarkConfig};
    use mrx::workload::{Workload, WorkloadConfig};
    let g = xmark_like(&XmarkConfig::with_target_nodes(3_000), 0xA0C71);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 100,
            seed: 1,
            max_enumerated_paths: 400_000,
        },
    );
    let mut idx = mrx::index::DkIndex::a0(&g);
    for q in &w.queries {
        idx.promote_for(&g, q);
    }
    for q in &w.queries {
        let truth = eval_data(&g, &q.compile(&g));
        assert_eq!(
            idx.query_paper(&g, q).nodes,
            truth,
            "D(k)-promote imprecise on {q}"
        );
    }
}

#[test]
fn vrest_keeps_old_similarity_unlike_figure7_artwork() {
    // Figure 7 draws *both* a-pieces in I1 with local similarity 1, but
    // SPLITNODE*'s pseudocode (lines 17–19) explicitly gives the remainder
    // piece the *old* similarity. We follow the pseudocode; this test pins
    // that choice (see DESIGN.md).
    let mut bld = GraphBuilder::new();
    let r = bld.add_node("r");
    let a1 = bld.add_child(r, "a");
    let b3 = bld.add_child(r, "b");
    let a2 = bld.add_child(b3, "a");
    let _c4 = bld.add_child(a1, "c");
    let _c5 = bld.add_child(a2, "c");
    let _c6 = bld.add_child(b3, "c");
    let g = bld.freeze();
    let mut idx = MStarIndex::new(&g);
    idx.refine_for(&g, &PathExpr::parse("//b/a/c").unwrap());
    let i1 = idx.component(1);
    assert_eq!(i1.k(i1.node_of(a2)), 1, "relevant piece gets k = 1");
    assert_eq!(
        i1.k(i1.node_of(a1)),
        0,
        "vrest keeps kold = 0 per pseudocode"
    );
}
