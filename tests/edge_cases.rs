//! Edge cases across the whole index family: wildcard and root-anchored
//! expressions, empty target sets, labels missing from the alphabet,
//! single-node documents, and degenerate workloads.

use mrx::graph::xml::parse;
use mrx::graph::{DataGraph, GraphBuilder};
use mrx::index::{
    AkIndex, ApexIndex, DkIndex, EvalStrategy, MStarIndex, MkIndex, OneIndex, UdIndex,
};
use mrx::path::{eval_data, PathExpr};

fn doc() -> DataGraph {
    parse(
        "<site>
           <regions><africa><item/></africa><asia><item/><item/></asia></regions>
           <people><person/><person/></people>
         </site>",
    )
    .unwrap()
}

/// Wildcard expressions work on every index (and as FUPs for the adaptive
/// ones — the refinement machinery is target-set-based, so `*` steps are
/// transparent to it).
#[test]
fn wildcard_expressions_everywhere() {
    let g = doc();
    let exprs = ["//regions/*/item", "//site/*", "//*/item", "/site/*/africa"];
    let a2 = AkIndex::build(&g, 2);
    let one = OneIndex::build(&g);
    let ud = UdIndex::build(&g, 2, 1);
    let mut mk = MkIndex::new(&g);
    let mut ms = MStarIndex::new(&g);
    let mut dk = DkIndex::a0(&g);
    for e in exprs {
        let q = PathExpr::parse(e).unwrap();
        // use the wildcard expressions themselves as FUPs
        mk.refine_for(&g, &q);
        ms.refine_for(&g, &q);
        dk.promote_for(&g, &q);
    }
    mk.graph().check_invariants(&g);
    ms.check_invariants(&g);
    for e in exprs {
        let q = PathExpr::parse(e).unwrap();
        let truth = eval_data(&g, &q.compile(&g));
        assert_eq!(a2.query(&g, &q).nodes, truth, "A(2) {e}");
        assert_eq!(one.query(&g, &q).nodes, truth, "1-index {e}");
        assert_eq!(ud.query(&g, &q).nodes, truth, "UD {e}");
        assert_eq!(mk.query(&g, &q).nodes, truth, "M(k) {e}");
        assert_eq!(dk.query(&g, &q).nodes, truth, "D(k) {e}");
        for strat in [
            EvalStrategy::Naive,
            EvalStrategy::TopDown,
            EvalStrategy::BottomUp,
        ] {
            assert_eq!(ms.query(&g, &q, strat).nodes, truth, "M*(k) {strat:?} {e}");
        }
    }
}

/// Root-anchored expressions always validate and always come out exact —
/// including when used as FUPs.
#[test]
fn anchored_expressions_everywhere() {
    let g = doc();
    let exprs = ["/regions", "/people/person", "/site", "/regions/asia/item"];
    let mut mk = MkIndex::new(&g);
    let mut ms = MStarIndex::new(&g);
    for e in exprs {
        let q = PathExpr::parse(e).unwrap();
        mk.refine_for(&g, &q);
        ms.refine_for(&g, &q);
    }
    mk.graph().check_invariants(&g);
    ms.check_invariants(&g);
    for e in exprs {
        let q = PathExpr::parse(e).unwrap();
        let truth = eval_data(&g, &q.compile(&g));
        assert_eq!(mk.query(&g, &q).nodes, truth, "M(k) {e}");
        assert_eq!(
            ms.query(&g, &q, EvalStrategy::TopDown).nodes,
            truth,
            "M*(k) {e}"
        );
        assert_eq!(AkIndex::build(&g, 1).query(&g, &q).nodes, truth, "A(1) {e}");
    }
}

/// Expressions over labels that exist nowhere in the document.
#[test]
fn missing_labels_are_empty_everywhere() {
    let g = doc();
    let mut mk = MkIndex::new(&g);
    let mut ms = MStarIndex::new(&g);
    for e in [
        "//warehouse",
        "//item/warehouse",
        "//warehouse/item",
        "/warehouse",
    ] {
        let q = PathExpr::parse(e).unwrap();
        mk.refine_for(&g, &q); // refining for a no-match FUP must be a no-op
        ms.refine_for(&g, &q);
        assert!(mk.query(&g, &q).nodes.is_empty(), "{e}");
        assert!(
            ms.query(&g, &q, EvalStrategy::TopDown).nodes.is_empty(),
            "{e}"
        );
        assert!(AkIndex::build(&g, 0).query(&g, &q).nodes.is_empty(), "{e}");
        assert!(
            ApexIndex::build(&g, std::slice::from_ref(&q))
                .query(&g, &q)
                .nodes
                .is_empty(),
            "{e}"
        );
    }
    mk.graph().check_invariants(&g);
    ms.check_invariants(&g);
}

/// FUPs whose index target set exists but whose data target set is empty
/// (pure false-positive targets) refine without panicking and end precise.
#[test]
fn all_false_positive_fup() {
    // a-b paths exist under r1 only; query //r2/a/b has index instances on
    // A(0) (labels collide) but no data instances.
    let mut b = GraphBuilder::new();
    let root = b.add_node("root");
    let r1 = b.add_child(root, "r1");
    let r2 = b.add_child(root, "r2");
    let a1 = b.add_child(r1, "a");
    b.add_child(a1, "b");
    b.add_child(r2, "a"); // a without b below
    let g = b.freeze();
    let q = PathExpr::parse("//r2/a/b").unwrap();
    assert!(eval_data(&g, &q.compile(&g)).is_empty());
    let mut mk = MkIndex::new(&g);
    mk.refine_for(&g, &q);
    mk.graph().check_invariants(&g);
    assert!(mk.query(&g, &q).nodes.is_empty());
    // the paper-policy answer must also be clean after refinement: REFINE's
    // final loop breaks every false instance of the FUP itself
    assert!(mk.query_paper(&g, &q).nodes.is_empty());
    let mut ms = MStarIndex::new(&g);
    ms.refine_for(&g, &q);
    ms.check_invariants(&g);
    assert!(ms
        .query_paper(&g, &q, EvalStrategy::TopDown)
        .nodes
        .is_empty());
}

/// A single-element document survives the whole machinery.
#[test]
fn single_node_document() {
    let g = parse("<only/>").unwrap();
    let q = PathExpr::parse("//only").unwrap();
    assert_eq!(AkIndex::build(&g, 3).query(&g, &q).nodes.len(), 1);
    assert_eq!(OneIndex::build(&g).query(&g, &q).nodes.len(), 1);
    let mut ms = MStarIndex::new(&g);
    ms.refine_for(&g, &q);
    assert_eq!(ms.query(&g, &q, EvalStrategy::TopDown).nodes.len(), 1);
    assert_eq!(ms.max_k(), 0);
}

/// Queries longer than any path in the document.
#[test]
fn queries_longer_than_the_document() {
    let g = parse("<a><b/></a>").unwrap();
    let q = PathExpr::parse("//a/b/a/b/a/b/a/b").unwrap();
    assert!(eval_data(&g, &q.compile(&g)).is_empty());
    let mut mk = MkIndex::new(&g);
    mk.refine_for(&g, &q);
    assert!(mk.query(&g, &q).nodes.is_empty());
    let mut ms = MStarIndex::new(&g);
    ms.refine_for(&g, &q);
    assert!(ms.query(&g, &q, EvalStrategy::TopDown).nodes.is_empty());
    assert_eq!(
        ms.max_k(),
        7,
        "components grow to the FUP's length regardless"
    );
}

/// Self-referential (cyclic) single-label documents: the degenerate worst
/// case for bisimulation machinery.
#[test]
fn single_label_cycle() {
    let mut b = GraphBuilder::new();
    let n0 = b.add_node("x");
    let n1 = b.add_child(n0, "x");
    let n2 = b.add_child(n1, "x");
    b.add_ref(n2, n0);
    let g = b.freeze();
    for e in ["//x", "//x/x", "//x/x/x", "//x/x/x/x/x"] {
        let q = PathExpr::parse(e).unwrap();
        let truth = eval_data(&g, &q.compile(&g));
        let mut ms = MStarIndex::new(&g);
        ms.refine_for(&g, &q);
        ms.check_invariants(&g);
        assert_eq!(ms.query(&g, &q, EvalStrategy::TopDown).nodes, truth, "{e}");
        let mut dk = DkIndex::a0(&g);
        dk.promote_for(&g, &q);
        assert_eq!(dk.query(&g, &q).nodes, truth, "{e}");
    }
}
