//! Asserts the headline property of the flat (v2) load path: the number of
//! heap allocations is a function of the *schema* (array count per section),
//! not of the node count. Loading a 25× larger snapshot must perform the
//! same number of allocations — the v1 path, by contrast, allocates per
//! index node while rebuilding extents and recomputing induced edges.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mrx::datagen::nasa_like;
use mrx::path::PathExpr;
use mrx::prelude::{DataGraph, MStarIndex};
use mrx::store::{load_frozen_from, save_frozen_to};
use mrx_graph::FrozenGraph;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot_bytes(g: &DataGraph) -> Vec<u8> {
    let mut idx = MStarIndex::new(g);
    for expr in ["//dataset/reference/source", "//dataset/history/ingest"] {
        idx.refine_for(g, &PathExpr::parse(expr).unwrap());
    }
    let mut buf = Vec::new();
    save_frozen_to(&mut buf, &FrozenGraph::freeze(g), &idx.freeze()).unwrap();
    buf
}

fn allocs_during_load(bytes: &[u8]) -> (u64, usize) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let (fg, fz) = load_frozen_from(bytes).unwrap();
    let after = ALLOCS.load(Ordering::Relaxed);
    let nodes = fg.node_count() + fz.components.iter().map(|c| c.node_count()).sum::<usize>();
    (after - before, nodes)
}

// A single test: the binary has its own process, and one test keeps the
// counter free of cross-test noise.
#[test]
fn v2_load_allocation_count_is_independent_of_node_count() {
    let small = snapshot_bytes(&nasa_like(800, 4));
    let large = snapshot_bytes(&nasa_like(20_000, 4));
    assert!(
        large.len() > 10 * small.len(),
        "datasets not far enough apart"
    );

    // Warm up once (lazy statics, allocator metadata).
    let _ = allocs_during_load(&small);

    let (a_small, n_small) = allocs_during_load(&small);
    let (a_large, n_large) = allocs_during_load(&large);
    assert!(n_large > 10 * n_small);

    // Identical schema => identical allocation count, modulo a tiny slack
    // for allocator-internal or harness noise.
    assert!(
        a_large <= a_small + 8,
        "v2 load allocates per node: {a_small} allocations for {n_small} nodes \
         but {a_large} for {n_large}"
    );
    // And the absolute count is a small schema constant, nowhere near the
    // node count.
    assert!(
        (a_large as usize) < n_large / 50,
        "v2 load performed {a_large} allocations for {n_large} nodes"
    );
}
