//! Parity suite for the query-serving layer: a [`QuerySession`] must return
//! byte-identical answers *and cost counts* to the legacy per-query entry
//! points — cold, warm (cache hit), and after refinement invalidated the
//! cache — under both trust policies, across all six index families, on
//! both synthetic datasets, at several thread counts.

use mrx::index::query::answer_compiled;
use mrx::index::{
    replay, replay_mstar, AkIndex, DkIndex, EvalStrategy, IndexGraph, MStarIndex, MkIndex,
    OneIndex, QuerySession, TrustPolicy,
};
use mrx::path::{eval_data, PathExpr};
use mrx::prelude::{nasa_like, xmark_like, Cost, DataGraph, XmarkConfig};
use mrx::workload::{Workload, WorkloadConfig};

const POLICIES: [TrustPolicy; 2] = [TrustPolicy::Proven, TrustPolicy::Claimed];

fn docs() -> Vec<(&'static str, DataGraph)> {
    vec![
        (
            "xmark",
            xmark_like(&XmarkConfig::with_target_nodes(2_500), 11),
        ),
        ("nasa", nasa_like(2_500, 12)),
    ]
}

fn workload(g: &DataGraph) -> Workload {
    Workload::generate(
        g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 40,
            seed: 5,
            max_enumerated_paths: 100_000,
        },
    )
}

/// Serves every query twice (cold, then warm hit) and checks both servings
/// against the legacy `answer_compiled` path.
fn assert_session_parity(tag: &str, ig: &IndexGraph, g: &DataGraph, queries: &[PathExpr]) {
    for policy in POLICIES {
        let mut session = QuerySession::new(policy);
        for round in ["cold", "warm"] {
            for q in queries {
                let served = session.serve(ig, g, q);
                let legacy = answer_compiled(ig, g, &q.compile(g), policy);
                assert_eq!(
                    served.nodes, legacy.nodes,
                    "{tag}/{policy:?}/{round}: answer mismatch on {q}"
                );
                assert_eq!(
                    served.cost, legacy.cost,
                    "{tag}/{policy:?}/{round}: cost mismatch on {q}"
                );
            }
        }
        let stats = session.stats();
        assert_eq!(stats.queries, 2 * queries.len() as u64, "{tag}/{policy:?}");
        assert!(
            stats.hits >= queries.len() as u64,
            "{tag}/{policy:?}: second round must be all hits (got {})",
            stats.hits
        );
        assert_eq!(stats.evictions, 0, "{tag}/{policy:?}");
    }
}

#[test]
fn sessions_match_legacy_answers_on_all_single_graph_families() {
    for (ds, g) in docs() {
        let w = workload(&g);
        let ak = AkIndex::build(&g, 2);
        let one = OneIndex::build(&g);
        let dkc = DkIndex::construct(&g, &w.queries);
        let mut dkp = DkIndex::a0(&g);
        let mut mk = MkIndex::new(&g);
        for q in &w.queries {
            dkp.promote_for(&g, q);
            mk.refine_for(&g, q);
        }
        for (name, ig) in [
            ("ak", ak.graph()),
            ("one", one.graph()),
            ("dk-construct", dkc.graph()),
            ("dk-promote", dkp.graph()),
            ("mk", mk.graph()),
        ] {
            assert_session_parity(&format!("{ds}/{name}"), ig, &g, &w.queries);
        }
    }
}

#[test]
fn sessions_match_legacy_answers_on_mstar() {
    for (ds, g) in docs() {
        let w = workload(&g);
        let mut mstar = MStarIndex::new(&g);
        for q in &w.queries {
            mstar.refine_for(&g, q);
        }
        let strategy = EvalStrategy::TopDown;
        for policy in POLICIES {
            let mut session = QuerySession::new(policy);
            for round in ["cold", "warm"] {
                for q in &w.queries {
                    let served = session.serve_mstar(&mstar, &g, q, strategy);
                    let legacy = mstar.query_with_policy(&g, q, strategy, policy);
                    assert_eq!(
                        served.nodes, legacy.nodes,
                        "{ds}/mstar/{policy:?}/{round}: answer mismatch on {q}"
                    );
                    assert_eq!(
                        served.cost, legacy.cost,
                        "{ds}/mstar/{policy:?}/{round}: cost mismatch on {q}"
                    );
                }
            }
            assert!(session.stats().hits >= w.queries.len() as u64);
        }
    }
}

/// Refinement between servings must invalidate cached answers: the
/// re-served answer always matches a fresh evaluation, never the stale
/// pre-refinement extent. Exercises every family that mutates in place.
#[test]
fn post_refinement_servings_match_fresh_evaluation() {
    for (ds, g) in docs() {
        let w = workload(&g);
        let mid = w.queries.len() / 2;
        let (early, late) = w.queries.split_at(mid);
        for policy in POLICIES {
            let mut mk = MkIndex::new(&g);
            let mut session = QuerySession::new(policy);
            for q in early {
                session.serve(mk.graph(), &g, q);
            }
            for q in late {
                mk.refine_for(&g, q); // bumps the mutation epoch
            }
            for q in &w.queries {
                let served = session.serve(mk.graph(), &g, q).clone();
                let fresh = answer_compiled(mk.graph(), &g, &q.compile(&g), policy);
                assert_eq!(
                    served.nodes, fresh.nodes,
                    "{ds}/mk/{policy:?}: stale answer served for {q}"
                );
                assert_eq!(served.cost, fresh.cost, "{ds}/mk/{policy:?}: {q}");
            }
        }
    }
}

/// The ISSUE's regression scenario: build M(k), serve a query, apply an FUP
/// whose refinement splits one of the served query's target index nodes,
/// then assert the re-served answer matches a fresh evaluation (and ground
/// truth) rather than the stale cached extent.
#[test]
fn mk_fup_splitting_a_target_node_evicts_the_cached_answer() {
    let g = xmark_like(&XmarkConfig::with_target_nodes(2_500), 11);
    let served_q = PathExpr::parse("//person").unwrap();
    let fup = PathExpr::parse("//open_auction/bidder/personref/person").unwrap();

    let mut mk = MkIndex::new(&g);
    let mut session = QuerySession::new(TrustPolicy::Claimed);
    let before = session.serve(mk.graph(), &g, &served_q).clone();
    assert_eq!(before.nodes, eval_data(&g, &served_q.compile(&g)));
    let targets_before = before.target_index_nodes.clone();

    let epoch_before = mk.graph().mutation_epoch();
    mk.refine_for(&g, &fup);
    assert!(
        mk.graph().mutation_epoch() > epoch_before,
        "refinement must bump the mutation epoch"
    );
    // The FUP's last step targets `person` nodes, so refinement split at
    // least one of the served query's target index nodes.
    assert!(
        targets_before.iter().any(|&t| !mk.graph().is_alive(t)),
        "test premise: the FUP splits a target node of the served query"
    );

    let after = session.serve(mk.graph(), &g, &served_q).clone();
    let fresh = mk.query_paper(&g, &served_q);
    assert_eq!(after.nodes, fresh.nodes, "stale extent served");
    assert_eq!(after.cost, fresh.cost);
    assert_eq!(after.nodes, eval_data(&g, &served_q.compile(&g)));
    assert_eq!(session.stats().evictions, 1);
    assert_eq!(session.stats().hits, 0);
}

/// Parallel replay is an aggregate of per-thread sessions: totals must be
/// identical at 1, 2, and 8 threads, and must equal the legacy per-query
/// sum.
#[test]
fn replay_totals_are_thread_count_invariant() {
    for (ds, g) in docs() {
        let w = workload(&g);
        let ak = AkIndex::build(&g, 2);
        let mut mstar = MStarIndex::new(&g);
        for q in &w.queries {
            mstar.refine_for(&g, q);
        }
        for policy in POLICIES {
            let legacy: Cost = w
                .queries
                .iter()
                .map(|q| answer_compiled(ak.graph(), &g, &q.compile(&g), policy).cost)
                .sum();
            for threads in [1usize, 2, 8] {
                let r = replay(ak.graph(), &g, &w.queries, policy, threads);
                assert_eq!(r.total, legacy, "{ds}/ak/{policy:?}/{threads}t");
                assert_eq!(r.queries, w.queries.len());
                assert_eq!(r.stats.queries, w.queries.len() as u64);
            }
            let strategy = EvalStrategy::TopDown;
            let legacy_ms: Cost = w
                .queries
                .iter()
                .map(|q| mstar.query_with_policy(&g, q, strategy, policy).cost)
                .sum();
            for threads in [1usize, 2, 8] {
                let r = replay_mstar(&mstar, &g, &w.queries, strategy, policy, threads);
                assert_eq!(r.total, legacy_ms, "{ds}/mstar/{policy:?}/{threads}t");
            }
        }
    }
}
