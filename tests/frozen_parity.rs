//! Parity suite for the frozen serving path: a frozen snapshot must return
//! byte-identical answers *and cost counts* to the live mutable index —
//! across six index families, both synthetic datasets, cold and warm
//! query sessions, both trust policies — and a `freeze → save (v2) → load`
//! round trip must reproduce the snapshot and its answers exactly.

use mrx::index::query::answer_compiled;
use mrx::index::{
    AkIndex, DkIndex, EvalStrategy, FrozenIndex, FrozenMStar, IndexGraph, MkIndex, OneIndex,
    QuerySession, TrustPolicy,
};
use mrx::path::PathExpr;
use mrx::prelude::{nasa_like, xmark_like, DataGraph, MStarIndex, XmarkConfig};
use mrx::store::{load_frozen_from, save_frozen_to};
use mrx::workload::{Workload, WorkloadConfig};
use mrx_graph::FrozenGraph;

const POLICIES: [TrustPolicy; 2] = [TrustPolicy::Proven, TrustPolicy::Claimed];

fn docs() -> Vec<(&'static str, DataGraph)> {
    vec![
        (
            "xmark",
            xmark_like(&XmarkConfig::with_target_nodes(2_500), 11),
        ),
        ("nasa", nasa_like(2_500, 12)),
    ]
}

fn workload(g: &DataGraph) -> Workload {
    Workload::generate(
        g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 30,
            seed: 7,
            max_enumerated_paths: 100_000,
        },
    )
}

/// Frozen vs. live for one single-graph index family: the legacy per-query
/// entry point and a cold/warm session must agree bit for bit on answers
/// and costs.
fn assert_frozen_parity(
    tag: &str,
    ig: &IndexGraph,
    g: &DataGraph,
    fg: &FrozenGraph,
    queries: &[PathExpr],
) {
    let fz = FrozenIndex::freeze(ig);
    fz.validate().unwrap_or_else(|e| panic!("{tag}: {e}"));
    for policy in POLICIES {
        // Per-query entry point.
        for q in queries {
            let live = answer_compiled(ig, g, &q.compile(g), policy);
            let frozen = answer_compiled(&fz, fg, &q.compile(fg), policy);
            assert_eq!(
                frozen.nodes, live.nodes,
                "{tag}/{policy:?}: answer mismatch on {q}"
            );
            assert_eq!(
                frozen.cost, live.cost,
                "{tag}/{policy:?}: cost mismatch on {q}"
            );
            assert_eq!(
                frozen.validated, live.validated,
                "{tag}/{policy:?}: validation mismatch on {q}"
            );
        }
        // Cold + warm session servings.
        let mut live_session = QuerySession::new(policy);
        let mut frozen_session = QuerySession::new(policy);
        for round in ["cold", "warm"] {
            for q in queries {
                let live = live_session.serve(ig, g, q).clone();
                let frozen = frozen_session.serve(&fz, fg, q);
                assert_eq!(
                    frozen.nodes, live.nodes,
                    "{tag}/{policy:?}/{round}: session answer mismatch on {q}"
                );
                assert_eq!(
                    frozen.cost, live.cost,
                    "{tag}/{policy:?}/{round}: session cost mismatch on {q}"
                );
            }
        }
        let (ls, fs) = (live_session.stats(), frozen_session.stats());
        assert_eq!(ls.queries, fs.queries, "{tag}/{policy:?}");
        assert_eq!(
            ls.hits, fs.hits,
            "{tag}/{policy:?}: cache behaviour diverged"
        );
    }
}

#[test]
fn frozen_matches_live_on_all_single_graph_families() {
    for (ds, g) in docs() {
        let w = workload(&g);
        let fg = FrozenGraph::freeze(&g);
        fg.validate().unwrap();

        let ak = AkIndex::build(&g, 2);
        let one = OneIndex::build(&g);
        let dkc = DkIndex::construct(&g, &w.queries);
        let mut dkp = DkIndex::a0(&g);
        let mut mk = MkIndex::new(&g);
        for q in &w.queries {
            dkp.promote_for(&g, q);
            mk.refine_for(&g, q);
        }

        assert_frozen_parity(&format!("{ds}/ak"), ak.graph(), &g, &fg, &w.queries);
        assert_frozen_parity(&format!("{ds}/1-index"), one.graph(), &g, &fg, &w.queries);
        assert_frozen_parity(
            &format!("{ds}/dk-construct"),
            dkc.graph(),
            &g,
            &fg,
            &w.queries,
        );
        assert_frozen_parity(
            &format!("{ds}/dk-promote"),
            dkp.graph(),
            &g,
            &fg,
            &w.queries,
        );
        assert_frozen_parity(&format!("{ds}/mk"), mk.graph(), &g, &fg, &w.queries);
    }
}

#[test]
fn frozen_mstar_matches_live_top_down() {
    for (ds, g) in docs() {
        let w = workload(&g);
        let fg = FrozenGraph::freeze(&g);
        let mut idx = MStarIndex::new(&g);
        for q in &w.queries {
            idx.refine_for(&g, q);
        }
        let fz = idx.freeze();
        fz.validate().unwrap();
        assert_eq!(fz.mutation_epoch(), idx.mutation_epoch(), "{ds}");

        for policy in POLICIES {
            for q in &w.queries {
                let live = idx.query_with_policy(&g, q, EvalStrategy::TopDown, policy);
                let frozen = fz.query_top_down(&fg, q, policy);
                assert_eq!(frozen.nodes, live.nodes, "{ds}/{policy:?}: {q}");
                assert_eq!(frozen.cost, live.cost, "{ds}/{policy:?}: {q}");
            }
            // Cold + warm sessions through the frozen serving entry point.
            let mut live_session = QuerySession::new(policy);
            let mut frozen_session = QuerySession::new(policy);
            for round in ["cold", "warm"] {
                for q in &w.queries {
                    let live = live_session
                        .serve_mstar(&idx, &g, q, EvalStrategy::TopDown)
                        .clone();
                    let frozen = frozen_session.serve_frozen_mstar(&fz, &fg, q);
                    assert_eq!(
                        frozen.nodes, live.nodes,
                        "{ds}/{policy:?}/{round}: session answer mismatch on {q}"
                    );
                    assert_eq!(
                        frozen.cost, live.cost,
                        "{ds}/{policy:?}/{round}: session cost mismatch on {q}"
                    );
                }
            }
            assert_eq!(
                live_session.stats().hits,
                frozen_session.stats().hits,
                "{ds}/{policy:?}: cache behaviour diverged"
            );
        }
    }
}

#[test]
fn v2_round_trip_is_bit_identical_and_answers_match() {
    for (ds, g) in docs() {
        let w = workload(&g);
        let fg = FrozenGraph::freeze(&g);
        let mut idx = MStarIndex::new(&g);
        for q in &w.queries {
            idx.refine_for(&g, q);
        }
        let fz = idx.freeze();

        let mut buf = Vec::new();
        save_frozen_to(&mut buf, &fg, &fz).unwrap();
        let (fg2, fz2): (FrozenGraph, FrozenMStar) = load_frozen_from(&buf[..]).unwrap();
        assert_eq!(fg, fg2, "{ds}: graph round trip not bit-identical");
        assert_eq!(fz, fz2, "{ds}: index round trip not bit-identical");

        for policy in POLICIES {
            for q in &w.queries {
                let before = fz.query_top_down(&fg, q, policy);
                let after = fz2.query_top_down(&fg2, q, policy);
                assert_eq!(after.nodes, before.nodes, "{ds}/{policy:?}: {q}");
                assert_eq!(after.cost, before.cost, "{ds}/{policy:?}: {q}");
            }
        }
    }
}
