//! Property-based tests for the disk-resident store: round-trips over
//! random graphs and refined indexes, plus robustness against corruption.
//! Randomness comes from the in-repo seeded PRNG, so every failure
//! reproduces from its case number.

use mrx::datagen::{random_graph, Prng, RandomGraphConfig};
use mrx::graph::FrozenGraph;
use mrx::index::{EvalStrategy, MStarIndex};
use mrx::path::{eval_data, PathExpr};
use mrx::store::{
    load_frozen_from, load_graph_from, load_mstar_from, save_frozen_to, save_graph_to,
    save_mstar_to, StoreError,
};
use mrx::workload::{Workload, WorkloadConfig};

#[test]
fn graph_roundtrip_is_exact() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0x60AD ^ case);
        let g = random_graph(
            &RandomGraphConfig {
                nodes: rng.gen_range(1..80usize),
                labels: rng.gen_range(1..6usize),
                extra_edge_ratio: rng.gen_range(0.0..0.8),
                allow_cycles: true,
            },
            rng.next_u64(),
        );
        let mut buf = Vec::new();
        save_graph_to(&mut buf, &g).unwrap();
        let g2 = load_graph_from(&buf[..]).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.ref_edge_count(), g.ref_edge_count());
        for v in g.nodes() {
            assert_eq!(g.label_str(g.label(v)), g2.label_str(g2.label(v)));
            assert_eq!(g.children(v), g2.children(v));
            assert_eq!(g.parents(v), g2.parents(v));
            assert_eq!(g.tree_parent(v), g2.tree_parent(v));
        }
    }
}

#[test]
fn mstar_roundtrip_preserves_everything() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0x57A6 ^ case);
        let g = random_graph(
            &RandomGraphConfig {
                nodes: rng.gen_range(10..60usize),
                labels: 4,
                extra_edge_ratio: 0.4,
                allow_cycles: true,
            },
            rng.next_u64(),
        );
        let w = Workload::generate(
            &g,
            &WorkloadConfig {
                max_path_len: 3,
                num_queries: 6,
                seed: rng.next_u64(),
                max_enumerated_paths: 10_000,
            },
        );
        let mut idx = MStarIndex::new(&g);
        for q in &w.queries {
            idx.refine_for(&g, q);
        }
        let mut buf = Vec::new();
        save_mstar_to(&mut buf, &g, &idx).unwrap();
        let (g2, idx2) = load_mstar_from(&buf[..]).unwrap();
        idx2.check_invariants(&g2);
        assert_eq!(idx2.max_k(), idx.max_k());
        assert_eq!(idx2.node_count(), idx.node_count());
        assert_eq!(idx2.edge_count(), idx.edge_count());
        assert_eq!(idx2.logical_node_count(), idx.logical_node_count());
        // proven similarities survive, so sound answers stay identical
        for q in &w.queries {
            let truth = eval_data(&g2, &q.compile(&g2));
            assert_eq!(
                idx2.query(&g2, q, EvalStrategy::TopDown).nodes,
                truth,
                "{q}"
            );
        }
    }
}

#[test]
fn single_byte_corruption_never_panics_and_rarely_passes() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0xC0DE ^ case);
        let g = random_graph(
            &RandomGraphConfig {
                nodes: 20,
                labels: 3,
                extra_edge_ratio: 0.3,
                allow_cycles: true,
            },
            rng.next_u64(),
        );
        let mut idx = MStarIndex::new(&g);
        idx.refine_for(&g, &PathExpr::parse("//l0/l1").unwrap());
        let mut buf = Vec::new();
        save_mstar_to(&mut buf, &g, &idx).unwrap();
        let i = rng.gen_range(0..buf.len());
        buf[i] ^= 0x5A;
        // Must not panic; anything but silent acceptance of a *different*
        // index is fine. (Flips inside the directory padding or a length
        // prefix surface as Format/Io errors; flips in payloads trip the
        // checksum.)
        match load_mstar_from(&buf[..]) {
            Ok((g2, idx2)) => {
                // The flip hit a byte that decodes identically (e.g. inside
                // the directory, which the sequential loader skips). Accept
                // only if the result is indistinguishable.
                assert_eq!(g2.node_count(), g.node_count());
                assert_eq!(idx2.node_count(), idx.node_count());
            }
            Err(StoreError::Checksum { .. } | StoreError::Format(_) | StoreError::Io(_)) => {}
        }
    }
}

/// Builds a small refined snapshot pair (v1 extent layout bytes, v2 flat
/// CSR layout bytes) from one seeded random graph.
fn snapshot_pair(seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = Prng::seed_from_u64(seed);
    let g = random_graph(
        &RandomGraphConfig {
            nodes: rng.gen_range(12..48usize),
            labels: 4,
            extra_edge_ratio: 0.3,
            allow_cycles: true,
        },
        rng.next_u64(),
    );
    let mut idx = MStarIndex::new(&g);
    idx.refine_for(&g, &PathExpr::parse("//l0/l1").unwrap());
    idx.refine_for(&g, &PathExpr::parse("//l2").unwrap());
    let mut v1 = Vec::new();
    save_mstar_to(&mut v1, &g, &idx).unwrap();
    let mut v2 = Vec::new();
    save_frozen_to(&mut v2, &FrozenGraph::freeze(&g), &idx.freeze()).unwrap();
    (v1, v2)
}

/// Applies `count` seeded byte mutations (xor, overwrite, or splice-out)
/// to `buf` in place.
fn mutate_bytes(buf: &mut Vec<u8>, rng: &mut Prng, count: usize) {
    for _ in 0..count {
        if buf.is_empty() {
            return;
        }
        let at = rng.gen_range(0..buf.len());
        match rng.gen_range(0..3usize) {
            0 => buf[at] ^= (rng.next_u64() % 255 + 1) as u8,
            1 => buf[at] = rng.next_u64() as u8,
            _ => {
                // Remove a short run, shifting everything after it — models
                // a lost block rather than a flipped one.
                let run = rng.gen_range(1..9usize).min(buf.len() - at);
                buf.drain(at..at + run);
            }
        }
    }
}

/// Seeded multi-byte mutation over both snapshot layouts: every mutated
/// image must either load (the mutation hit dead bytes such as directory
/// padding) or fail with a typed `StoreError` — never panic. Exercises
/// 1..=8 mutations per image so shifted lengths, spliced sections, and
/// compound corruptions are all covered, not just single flips.
#[test]
fn seeded_multibyte_mutation_parses_or_errors_typed() {
    for case in 0..96u64 {
        let mut rng = Prng::seed_from_u64(0xFA17 ^ case);
        let (v1, v2) = snapshot_pair(rng.next_u64());
        for (label, image) in [("v1", &v1), ("v2", &v2)] {
            let mut buf = image.clone();
            let n = rng.gen_range(1..9usize);
            mutate_bytes(&mut buf, &mut rng, n);
            // Typed-or-Ok, by construction of the error enum: any panic
            // (index out of bounds, capacity overflow, unwrap) fails the
            // harness, which is the property under test.
            let outcome = match label {
                "v1" => load_mstar_from(&buf[..]).map(|_| ()),
                _ => load_frozen_from(&buf[..]).map(|_| ()),
            };
            match outcome {
                Ok(()) => {}
                Err(StoreError::Checksum { .. } | StoreError::Format(_) | StoreError::Io(_)) => {}
            }
        }
    }
}

/// Fixed-seed regression cases for the mutation property. The seeds below
/// reproduce corruption shapes that exercised every rejection family
/// (checksum, format, io) during the initial fuzzing sweep; they pin the
/// loader's behaviour so a refactor that reintroduces a panicking path
/// fails here with a reproducible case number.
#[test]
fn mutation_regression_seeds_stay_typed() {
    // (seed, mutations) pairs covering: header damage, directory damage,
    // mid-payload splice, tail truncation-by-drain, and compound hits.
    const CASES: &[(u64, usize)] = &[
        (0xFA17, 1),
        (0xFA17 ^ 7, 3),
        (0xFA17 ^ 23, 8),
        (0xDEAD_BEEF, 2),
        (0x0BAD_F00D, 5),
        (42, 8),
    ];
    for &(seed, n) in CASES {
        let mut rng = Prng::seed_from_u64(seed);
        let (v1, v2) = snapshot_pair(rng.next_u64());
        for image in [&v1, &v2] {
            let mut buf = image.clone();
            mutate_bytes(&mut buf, &mut rng, n);
            let _ = load_mstar_from(&buf[..]);
            let _ = load_frozen_from(&buf[..]);
        }
    }
}

#[test]
fn truncation_is_an_io_or_format_error() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0x7A11 ^ case);
        let g = random_graph(
            &RandomGraphConfig {
                nodes: 15,
                labels: 3,
                extra_edge_ratio: 0.2,
                allow_cycles: false,
            },
            rng.next_u64(),
        );
        let mut buf = Vec::new();
        save_graph_to(&mut buf, &g).unwrap();
        let n = rng.gen_range(0..buf.len().saturating_sub(1).max(1));
        assert!(load_graph_from(&buf[..n]).is_err());
    }
}
