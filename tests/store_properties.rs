//! Property-based tests for the disk-resident store: round-trips over
//! random graphs and refined indexes, plus robustness against corruption.
//! Randomness comes from the in-repo seeded PRNG, so every failure
//! reproduces from its case number.

use mrx::datagen::{random_graph, Prng, RandomGraphConfig};
use mrx::index::{EvalStrategy, MStarIndex};
use mrx::path::{eval_data, PathExpr};
use mrx::store::{load_graph_from, load_mstar_from, save_graph_to, save_mstar_to, StoreError};
use mrx::workload::{Workload, WorkloadConfig};

#[test]
fn graph_roundtrip_is_exact() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0x60AD ^ case);
        let g = random_graph(
            &RandomGraphConfig {
                nodes: rng.gen_range(1..80usize),
                labels: rng.gen_range(1..6usize),
                extra_edge_ratio: rng.gen_range(0.0..0.8),
                allow_cycles: true,
            },
            rng.next_u64(),
        );
        let mut buf = Vec::new();
        save_graph_to(&mut buf, &g).unwrap();
        let g2 = load_graph_from(&buf[..]).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.ref_edge_count(), g.ref_edge_count());
        for v in g.nodes() {
            assert_eq!(g.label_str(g.label(v)), g2.label_str(g2.label(v)));
            assert_eq!(g.children(v), g2.children(v));
            assert_eq!(g.parents(v), g2.parents(v));
            assert_eq!(g.tree_parent(v), g2.tree_parent(v));
        }
    }
}

#[test]
fn mstar_roundtrip_preserves_everything() {
    for case in 0..24u64 {
        let mut rng = Prng::seed_from_u64(0x57A6 ^ case);
        let g = random_graph(
            &RandomGraphConfig {
                nodes: rng.gen_range(10..60usize),
                labels: 4,
                extra_edge_ratio: 0.4,
                allow_cycles: true,
            },
            rng.next_u64(),
        );
        let w = Workload::generate(
            &g,
            &WorkloadConfig {
                max_path_len: 3,
                num_queries: 6,
                seed: rng.next_u64(),
                max_enumerated_paths: 10_000,
            },
        );
        let mut idx = MStarIndex::new(&g);
        for q in &w.queries {
            idx.refine_for(&g, q);
        }
        let mut buf = Vec::new();
        save_mstar_to(&mut buf, &g, &idx).unwrap();
        let (g2, idx2) = load_mstar_from(&buf[..]).unwrap();
        idx2.check_invariants(&g2);
        assert_eq!(idx2.max_k(), idx.max_k());
        assert_eq!(idx2.node_count(), idx.node_count());
        assert_eq!(idx2.edge_count(), idx.edge_count());
        assert_eq!(idx2.logical_node_count(), idx.logical_node_count());
        // proven similarities survive, so sound answers stay identical
        for q in &w.queries {
            let truth = eval_data(&g2, &q.compile(&g2));
            assert_eq!(
                idx2.query(&g2, q, EvalStrategy::TopDown).nodes,
                truth,
                "{q}"
            );
        }
    }
}

#[test]
fn single_byte_corruption_never_panics_and_rarely_passes() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0xC0DE ^ case);
        let g = random_graph(
            &RandomGraphConfig {
                nodes: 20,
                labels: 3,
                extra_edge_ratio: 0.3,
                allow_cycles: true,
            },
            rng.next_u64(),
        );
        let mut idx = MStarIndex::new(&g);
        idx.refine_for(&g, &PathExpr::parse("//l0/l1").unwrap());
        let mut buf = Vec::new();
        save_mstar_to(&mut buf, &g, &idx).unwrap();
        let i = rng.gen_range(0..buf.len());
        buf[i] ^= 0x5A;
        // Must not panic; anything but silent acceptance of a *different*
        // index is fine. (Flips inside the directory padding or a length
        // prefix surface as Format/Io errors; flips in payloads trip the
        // checksum.)
        match load_mstar_from(&buf[..]) {
            Ok((g2, idx2)) => {
                // The flip hit a byte that decodes identically (e.g. inside
                // the directory, which the sequential loader skips). Accept
                // only if the result is indistinguishable.
                assert_eq!(g2.node_count(), g.node_count());
                assert_eq!(idx2.node_count(), idx.node_count());
            }
            Err(StoreError::Checksum { .. } | StoreError::Format(_) | StoreError::Io(_)) => {}
        }
    }
}

#[test]
fn truncation_is_an_io_or_format_error() {
    for case in 0..48u64 {
        let mut rng = Prng::seed_from_u64(0x7A11 ^ case);
        let g = random_graph(
            &RandomGraphConfig {
                nodes: 15,
                labels: 3,
                extra_edge_ratio: 0.2,
                allow_cycles: false,
            },
            rng.next_u64(),
        );
        let mut buf = Vec::new();
        save_graph_to(&mut buf, &g).unwrap();
        let n = rng.gen_range(0..buf.len().saturating_sub(1).max(1));
        assert!(load_graph_from(&buf[..n]).is_err());
    }
}
