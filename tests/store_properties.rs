//! Property-based tests for the disk-resident store: round-trips over
//! random graphs and refined indexes, plus robustness against corruption.

use mrx::datagen::{random_graph, RandomGraphConfig};
use mrx::index::{EvalStrategy, MStarIndex};
use mrx::path::{eval_data, PathExpr};
use mrx::store::{load_graph_from, load_mstar_from, save_graph_to, save_mstar_to, StoreError};
use mrx::workload::{Workload, WorkloadConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graph_roundtrip_is_exact(
        nodes in 1usize..80,
        labels in 1usize..6,
        extra in 0.0f64..0.8,
        seed in any::<u64>(),
    ) {
        let g = random_graph(
            &RandomGraphConfig { nodes, labels, extra_edge_ratio: extra, allow_cycles: true },
            seed,
        );
        let mut buf = Vec::new();
        save_graph_to(&mut buf, &g).unwrap();
        let g2 = load_graph_from(&buf[..]).unwrap();
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.edge_count(), g.edge_count());
        prop_assert_eq!(g2.ref_edge_count(), g.ref_edge_count());
        for v in g.nodes() {
            prop_assert_eq!(g.label_str(g.label(v)), g2.label_str(g2.label(v)));
            prop_assert_eq!(g.children(v), g2.children(v));
            prop_assert_eq!(g.parents(v), g2.parents(v));
            prop_assert_eq!(g.tree_parent(v), g2.tree_parent(v));
        }
    }

    #[test]
    fn mstar_roundtrip_preserves_everything(
        nodes in 10usize..60,
        seed in any::<u64>(),
        wseed in any::<u64>(),
    ) {
        let g = random_graph(
            &RandomGraphConfig { nodes, labels: 4, extra_edge_ratio: 0.4, allow_cycles: true },
            seed,
        );
        let w = Workload::generate(&g, &WorkloadConfig {
            max_path_len: 3, num_queries: 6, seed: wseed, max_enumerated_paths: 10_000,
        });
        let mut idx = MStarIndex::new(&g);
        for q in &w.queries {
            idx.refine_for(&g, q);
        }
        let mut buf = Vec::new();
        save_mstar_to(&mut buf, &g, &idx).unwrap();
        let (g2, idx2) = load_mstar_from(&buf[..]).unwrap();
        idx2.check_invariants(&g2);
        prop_assert_eq!(idx2.max_k(), idx.max_k());
        prop_assert_eq!(idx2.node_count(), idx.node_count());
        prop_assert_eq!(idx2.edge_count(), idx.edge_count());
        prop_assert_eq!(idx2.logical_node_count(), idx.logical_node_count());
        // proven similarities survive, so sound answers stay identical
        for q in &w.queries {
            let truth = eval_data(&g2, &q.compile(&g2));
            prop_assert_eq!(&idx2.query(&g2, q, EvalStrategy::TopDown).nodes, &truth, "{}", q);
        }
    }

    #[test]
    fn single_byte_corruption_never_panics_and_rarely_passes(
        seed in any::<u64>(),
        victim in any::<proptest::sample::Index>(),
    ) {
        let g = random_graph(
            &RandomGraphConfig { nodes: 20, labels: 3, extra_edge_ratio: 0.3, allow_cycles: true },
            seed,
        );
        let mut idx = MStarIndex::new(&g);
        idx.refine_for(&g, &PathExpr::parse("//l0/l1").unwrap());
        let mut buf = Vec::new();
        save_mstar_to(&mut buf, &g, &idx).unwrap();
        let i = victim.index(buf.len());
        buf[i] ^= 0x5A;
        // Must not panic; anything but silent acceptance of a *different*
        // index is fine. (Flips inside the directory padding or a length
        // prefix surface as Format/Io errors; flips in payloads trip the
        // checksum.)
        match load_mstar_from(&buf[..]) {
            Ok((g2, idx2)) => {
                // The flip hit a byte that decodes identically (e.g. inside
                // the directory, which the sequential loader skips). Accept
                // only if the result is indistinguishable.
                prop_assert_eq!(g2.node_count(), g.node_count());
                prop_assert_eq!(idx2.node_count(), idx.node_count());
            }
            Err(StoreError::Checksum { .. } | StoreError::Format(_) | StoreError::Io(_)) => {}
        }
    }

    #[test]
    fn truncation_is_an_io_or_format_error(
        seed in any::<u64>(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let g = random_graph(
            &RandomGraphConfig { nodes: 15, labels: 3, extra_edge_ratio: 0.2, allow_cycles: false },
            seed,
        );
        let mut buf = Vec::new();
        save_graph_to(&mut buf, &g).unwrap();
        let n = cut.index(buf.len().saturating_sub(1));
        prop_assert!(load_graph_from(&buf[..n]).is_err());
    }
}
