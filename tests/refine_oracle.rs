//! Oracle equivalence for the refinement engine: on every graph, at every
//! thread count, the engine in `mrx_index::refine` must produce the *same*
//! partition — block ids and all — as the naive reference implementation it
//! replaced (`mrx::index::naive`).
//!
//! Graphs cover random DAGs/cyclic graphs, XMark-like and NASA-like
//! documents, and sizes straddling the sequential-fallback threshold
//! (`SEQ_THRESHOLD`), so both the sequential and the sharded parallel path
//! are exercised regardless of the host's core count.

use mrx::datagen::{nasa_like, random_graph, xmark_like, RandomGraphConfig, XmarkConfig};
use mrx::graph::DataGraph;
use mrx::index::{label_partition, naive, Direction, Partition, Refiner, SEQ_THRESHOLD};

const THREADS: &[usize] = &[1, 2, 8];

/// `≈k` by the engine at an explicit thread count.
fn engine_k_bisim(g: &DataGraph, k: u32, dir: Direction, threads: usize) -> Partition {
    let mut r = Refiner::with_threads(g, dir, threads);
    r.run(k);
    r.finish().0
}

/// Asserts engine == naive for `0..=kmax` rounds in both directions at all
/// thread counts, comparing `block_of` verbatim (the engine renumbers by
/// first occurrence, so equality is exact, not just up-to-renaming).
fn assert_matches_naive(g: &DataGraph, kmax: u32, what: &str) {
    let mut up = label_partition(g);
    let mut down = label_partition(g);
    for k in 0..=kmax {
        for &t in THREADS {
            let e_up = engine_k_bisim(g, k, Direction::Up, t);
            assert_eq!(e_up.num_blocks, up.num_blocks, "{what}: up k={k} t={t}");
            assert_eq!(e_up.block_of, up.block_of, "{what}: up k={k} t={t}");
            let e_down = engine_k_bisim(g, k, Direction::Down, t);
            assert_eq!(
                e_down.num_blocks, down.num_blocks,
                "{what}: down k={k} t={t}"
            );
            assert_eq!(e_down.block_of, down.block_of, "{what}: down k={k} t={t}");
        }
        up = naive::refine_once(g, &up);
        down = naive::refine_once_down(g, &down);
    }
}

#[test]
fn random_graphs_match_naive() {
    for seed in 0..12u64 {
        let g = random_graph(
            &RandomGraphConfig {
                nodes: 30 + (seed as usize) * 17,
                labels: 2 + (seed as usize % 4),
                extra_edge_ratio: 0.1 * (seed % 8) as f64,
                allow_cycles: seed % 2 == 0,
            },
            seed,
        );
        assert_matches_naive(&g, 4, &format!("random seed={seed}"));
    }
}

#[test]
fn sizes_around_seq_threshold_match_naive() {
    // Straddle the sequential/parallel dispatch boundary so multi-thread
    // runs take both code paths.
    for nodes in [
        SEQ_THRESHOLD - 500,
        SEQ_THRESHOLD - 1,
        SEQ_THRESHOLD,
        SEQ_THRESHOLD + 1,
        SEQ_THRESHOLD + 500,
    ] {
        let g = random_graph(
            &RandomGraphConfig {
                nodes,
                labels: 6,
                extra_edge_ratio: 0.3,
                allow_cycles: true,
            },
            42,
        );
        assert_matches_naive(&g, 3, &format!("threshold nodes={nodes}"));
    }
}

#[test]
fn xmark_like_matches_naive() {
    let g = xmark_like(&XmarkConfig::with_target_nodes(8_000), 7);
    assert!(
        g.node_count() > SEQ_THRESHOLD,
        "dataset must hit parallel path"
    );
    assert_matches_naive(&g, 5, "xmark");
}

#[test]
fn nasa_like_matches_naive() {
    let g = nasa_like(8_000, 7);
    assert!(
        g.node_count() > SEQ_THRESHOLD,
        "dataset must hit parallel path"
    );
    assert_matches_naive(&g, 5, "nasa");
}

#[test]
fn fixpoint_matches_naive_bisim() {
    for seed in [3u64, 11, 19] {
        let g = random_graph(
            &RandomGraphConfig {
                nodes: 200,
                labels: 4,
                extra_edge_ratio: 0.4,
                allow_cycles: true,
            },
            seed,
        );
        let (np, nrounds) = naive::bisim(&g);
        for &t in THREADS {
            let mut r = Refiner::with_threads(&g, Direction::Up, t);
            let rounds = r.run_to_fixpoint();
            let (p, _) = r.finish();
            assert_eq!(rounds, nrounds, "seed={seed} t={t}");
            assert_eq!(p.num_blocks, np.num_blocks, "seed={seed} t={t}");
            assert_eq!(p.block_of, np.block_of, "seed={seed} t={t}");
        }
    }
}

#[test]
fn mrx_threads_env_is_respected_by_default_constructor() {
    // `default_threads` is read at Refiner::new; engine output must not
    // depend on it. Set, exercise, restore.
    let g = random_graph(
        &RandomGraphConfig {
            nodes: 120,
            labels: 3,
            extra_edge_ratio: 0.2,
            allow_cycles: false,
        },
        5,
    );
    let expect = naive::k_bisim(&g, 3);
    let prior = std::env::var("MRX_THREADS").ok();
    let host = mrx::index::host_parallelism();
    for setting in ["1", "2", "8"] {
        std::env::set_var("MRX_THREADS", setting);
        let requested = setting.parse::<usize>().unwrap();
        // Requests beyond the host's parallelism are clamped: oversubscribing
        // a small host regresses the parallel rounds without any upside.
        assert_eq!(mrx::index::requested_threads(), Some(requested));
        assert_eq!(mrx::index::default_threads(), requested.min(host));
        let got = mrx::index::k_bisim(&g, 3);
        assert_eq!(got.block_of, expect.block_of, "MRX_THREADS={setting}");
    }
    match prior {
        Some(v) => std::env::set_var("MRX_THREADS", v),
        None => std::env::remove_var("MRX_THREADS"),
    }
}
