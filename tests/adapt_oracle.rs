//! Oracle suite for the batched adaptation engine: `AdaptEngine` must leave
//! every index family in a *bit-identical* state to the legacy per-FUP
//! recursive operators (`MkIndex::refine_for`, `DkIndex::promote_for`,
//! `MStarIndex::refine_for`) applied sequentially — extents, `k` values and
//! false-instance counts — over shuffled duplicated workloads, at one and
//! two threads. Plus the steady-state guarantees: zero scratch allocations
//! when re-adapting a converged batch, and a single observable mutation
//! epoch per batch.

use mrx::datagen::Prng;
use mrx::index::{
    AdaptEngine, DkIndex, EvalStrategy, MStarIndex, MkIndex, QuerySession, TrustPolicy,
};
use mrx::path::PathExpr;
use mrx::prelude::{nasa_like, xmark_like, DataGraph, XmarkConfig};
use mrx::workload::{Workload, WorkloadConfig};

fn docs() -> Vec<(&'static str, DataGraph)> {
    vec![
        (
            "xmark",
            xmark_like(&XmarkConfig::with_target_nodes(2_500), 11),
        ),
        ("nasa", nasa_like(2_500, 12)),
    ]
}

/// A 50-query workload (duplicates included, as generated) shuffled with a
/// seeded PRNG so the batch order differs from generation order.
fn shuffled_fups(g: &DataGraph, shuffle_seed: u64) -> Vec<PathExpr> {
    let w = Workload::generate(
        g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 50,
            seed: 5,
            max_enumerated_paths: 100_000,
        },
    );
    let mut fups = w.queries;
    let mut rng = Prng::seed_from_u64(shuffle_seed);
    for i in (1..fups.len()).rev() {
        let j = rng.gen_range(0..=i);
        fups.swap(i, j);
    }
    fups
}

#[test]
fn batched_mk_matches_sequential_refine_for() {
    for (tag, g) in docs() {
        for shuffle_seed in [1u64, 9] {
            let fups = shuffled_fups(&g, shuffle_seed);
            let mut oracle = MkIndex::new(&g);
            for f in &fups {
                oracle.refine_for(&g, f);
            }
            for threads in [1usize, 2] {
                let mut idx = MkIndex::new(&g);
                let mut engine = AdaptEngine::with_threads(threads);
                idx.refine_batch(&g, &fups, &mut engine);
                idx.graph().check_invariants(&g);
                assert_eq!(
                    idx.graph().export_extents(),
                    oracle.graph().export_extents(),
                    "{tag}/seed{shuffle_seed}/t{threads}: extent mismatch"
                );
                assert_eq!(
                    idx.false_instance_breaks(),
                    oracle.false_instance_breaks(),
                    "{tag}/seed{shuffle_seed}/t{threads}: break count mismatch"
                );
            }
        }
    }
}

#[test]
fn batched_dk_promote_matches_sequential_promote_for() {
    for (tag, g) in docs() {
        for shuffle_seed in [1u64, 9] {
            let fups = shuffled_fups(&g, shuffle_seed);
            let mut oracle = DkIndex::a0(&g);
            for f in &fups {
                oracle.promote_for(&g, f);
            }
            for threads in [1usize, 2] {
                let mut idx = DkIndex::a0(&g);
                let mut engine = AdaptEngine::with_threads(threads);
                idx.promote_batch(&g, &fups, &mut engine);
                idx.graph().check_invariants(&g);
                assert_eq!(
                    idx.graph().export_extents(),
                    oracle.graph().export_extents(),
                    "{tag}/seed{shuffle_seed}/t{threads}: extent mismatch"
                );
            }
        }
    }
}

#[test]
fn batched_mstar_matches_sequential_refine_for() {
    for (tag, g) in docs() {
        for shuffle_seed in [1u64, 9] {
            let fups = shuffled_fups(&g, shuffle_seed);
            let mut oracle = MStarIndex::new(&g);
            for f in &fups {
                oracle.refine_for(&g, f);
            }
            for threads in [1usize, 2] {
                let mut idx = MStarIndex::new(&g);
                let mut engine = AdaptEngine::with_threads(threads);
                idx.refine_batch(&g, &fups, &mut engine);
                idx.check_invariants(&g);
                assert_eq!(
                    idx.max_k(),
                    oracle.max_k(),
                    "{tag}/seed{shuffle_seed}/t{threads}: hierarchy height mismatch"
                );
                for i in 0..=idx.max_k() {
                    assert_eq!(
                        idx.component(i).export_extents(),
                        oracle.component(i).export_extents(),
                        "{tag}/seed{shuffle_seed}/t{threads}: component {i} mismatch"
                    );
                }
                assert_eq!(
                    idx.false_instance_breaks(),
                    oracle.false_instance_breaks(),
                    "{tag}/seed{shuffle_seed}/t{threads}: break count mismatch"
                );
            }
        }
    }
}

/// Interleaved batches across families must stay bit-identical too: the
/// engine's plan cache is rebuilt when the batch changes, and convergence
/// skipping must not skip work a prefix batch left undone.
#[test]
fn engine_survives_changing_batches() {
    let (_, g) = docs().remove(0);
    let fups = shuffled_fups(&g, 3);
    let (first, second) = fups.split_at(fups.len() / 2);

    let mut oracle = MkIndex::new(&g);
    for f in first.iter().chain(second) {
        oracle.refine_for(&g, f);
    }

    let mut idx = MkIndex::new(&g);
    let mut engine = AdaptEngine::with_threads(1);
    idx.refine_batch(&g, first, &mut engine);
    idx.refine_batch(&g, second, &mut engine);
    assert_eq!(
        idx.graph().export_extents(),
        oracle.graph().export_extents()
    );
    assert_eq!(idx.false_instance_breaks(), oracle.false_instance_breaks());
}

/// Re-adapting an already-converged batch must be allocation-free: every
/// job is skipped off the reused plan and eval probe, so the engine's
/// alloc counter stands still while the reuse counter advances.
#[test]
fn steady_state_adaptation_is_allocation_free() {
    let (_, g) = docs().remove(0);
    let fups = shuffled_fups(&g, 1);

    let mut mk = MkIndex::new(&g);
    let mut engine = AdaptEngine::with_threads(1);
    mk.refine_batch(&g, &fups, &mut engine);
    let warm_allocs = engine.stats().scratch_allocs;
    let warm_reuses = engine.stats().scratch_reuses;
    mk.refine_batch(&g, &fups, &mut engine);
    assert_eq!(
        engine.stats().scratch_allocs,
        warm_allocs,
        "converged M(k) batch must not allocate scratch"
    );
    assert!(
        engine.stats().scratch_reuses > warm_reuses,
        "converged M(k) batch must reuse the plan and probes"
    );

    let mut dk = DkIndex::a0(&g);
    let mut engine = AdaptEngine::with_threads(1);
    dk.promote_batch(&g, &fups, &mut engine);
    let warm_allocs = engine.stats().scratch_allocs;
    dk.promote_batch(&g, &fups, &mut engine);
    assert_eq!(
        engine.stats().scratch_allocs,
        warm_allocs,
        "converged D(k)-promote batch must not allocate scratch"
    );

    let mut mstar = MStarIndex::new(&g);
    let mut engine = AdaptEngine::with_threads(1);
    mstar.refine_batch(&g, &fups, &mut engine);
    let warm_allocs = engine.stats().scratch_allocs;
    mstar.refine_batch(&g, &fups, &mut engine);
    assert_eq!(
        engine.stats().scratch_allocs,
        warm_allocs,
        "converged M*(k) batch must not allocate scratch"
    );
}

/// A whole adaptation batch bumps the observable mutation epoch exactly
/// once for the single-graph families, and a converged batch not at all.
#[test]
fn batch_bumps_mutation_epoch_once() {
    let (_, g) = docs().remove(0);
    let fups = shuffled_fups(&g, 1);

    let mut mk = MkIndex::new(&g);
    let mut engine = AdaptEngine::with_threads(1);
    let e0 = mk.graph().mutation_epoch();
    mk.refine_batch(&g, &fups, &mut engine);
    assert_eq!(
        mk.graph().mutation_epoch(),
        e0 + 1,
        "dirty M(k) batch must bump the epoch exactly once"
    );
    let e1 = mk.graph().mutation_epoch();
    mk.refine_batch(&g, &fups, &mut engine);
    assert_eq!(
        mk.graph().mutation_epoch(),
        e1,
        "converged M(k) batch must not bump the epoch"
    );

    let mut dk = DkIndex::a0(&g);
    let mut engine = AdaptEngine::with_threads(1);
    let e0 = dk.graph().mutation_epoch();
    dk.promote_batch(&g, &fups, &mut engine);
    assert_eq!(dk.graph().mutation_epoch(), e0 + 1);
    let e1 = dk.graph().mutation_epoch();
    dk.promote_batch(&g, &fups, &mut engine);
    assert_eq!(dk.graph().mutation_epoch(), e1);

    // M*(k) sums per-component epochs; a converged batch must leave the
    // combined generation untouched.
    let mut mstar = MStarIndex::new(&g);
    let mut engine = AdaptEngine::with_threads(1);
    let e0 = mstar.mutation_epoch();
    mstar.refine_batch(&g, &fups, &mut engine);
    assert!(mstar.mutation_epoch() > e0);
    let e1 = mstar.mutation_epoch();
    mstar.refine_batch(&g, &fups, &mut engine);
    assert_eq!(e1, mstar.mutation_epoch());
}

/// `QuerySession` regression: one adaptation batch invalidates each cached
/// answer exactly once — the next serving misses, every serving after that
/// hits again — instead of thrashing the cache per split.
#[test]
fn session_cache_invalidates_once_per_batch() {
    let (_, g) = docs().remove(0);
    let fups = shuffled_fups(&g, 1);
    let queries: Vec<PathExpr> = fups.iter().take(6).cloned().collect();

    let mut mk = MkIndex::new(&g);
    let mut session = QuerySession::new(TrustPolicy::Proven);
    for q in &queries {
        session.serve(mk.graph(), &g, q); // prime the cache
        session.serve(mk.graph(), &g, q);
    }
    let before = session.stats().clone();

    let mut engine = AdaptEngine::with_threads(1);
    mk.refine_batch(&g, &fups, &mut engine);

    for round in 0..2 {
        for q in &queries {
            session.serve(mk.graph(), &g, q);
        }
        let now = session.stats();
        let distinct = queries
            .iter()
            .enumerate()
            .filter(|(i, q)| !queries[..*i].contains(q))
            .count() as u64;
        if round == 0 {
            assert_eq!(
                now.misses - before.misses,
                distinct,
                "each distinct cached query must miss exactly once after the batch"
            );
        } else {
            assert_eq!(
                now.misses - before.misses,
                distinct,
                "the second post-batch round must be all warm hits"
            );
        }
    }

    // And a converged follow-up batch must not invalidate anything.
    let before = session.stats().clone();
    mk.refine_batch(&g, &fups, &mut engine);
    for q in &queries {
        session.serve(mk.graph(), &g, q);
    }
    assert_eq!(
        session.stats().misses,
        before.misses,
        "a no-op batch must leave every cached answer warm"
    );

    // Same observable for the M*(k) hierarchy through its own entry point.
    let mut mstar = MStarIndex::new(&g);
    let mut session = QuerySession::new(TrustPolicy::Proven);
    for q in &queries {
        session.serve_mstar(&mstar, &g, q, EvalStrategy::TopDown);
        session.serve_mstar(&mstar, &g, q, EvalStrategy::TopDown);
    }
    let mut engine = AdaptEngine::with_threads(1);
    mstar.refine_batch(&g, &fups, &mut engine);
    let before = session.stats().clone();
    for round in 0..2 {
        for q in &queries {
            session.serve_mstar(&mstar, &g, q, EvalStrategy::TopDown);
        }
        let distinct = queries
            .iter()
            .enumerate()
            .filter(|(i, q)| !queries[..*i].contains(q))
            .count() as u64;
        assert_eq!(
            session.stats().misses - before.misses,
            distinct,
            "round {round}: one miss per distinct query, then warm hits"
        );
    }
    let before = session.stats().clone();
    mstar.refine_batch(&g, &fups, &mut engine);
    for q in &queries {
        session.serve_mstar(&mstar, &g, q, EvalStrategy::TopDown);
    }
    assert_eq!(session.stats().misses, before.misses);
}
