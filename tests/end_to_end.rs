//! Cross-crate integration tests: the full pipeline from document to
//! answered workload, on both synthetic datasets.

use mrx::graph::stats::{all_reachable, graph_stats};
use mrx::graph::xml::{parse, write_document};
use mrx::index::{AkIndex, DkIndex, EvalStrategy, MStarIndex, MkIndex, OneIndex};
use mrx::path::{eval_data, PathExpr};
use mrx::prelude::{nasa_like, xmark_like, XmarkConfig};
use mrx::workload::{Workload, WorkloadConfig};

/// Generate → serialize → parse → index → query: every stage of the stack
/// in one flow, with the indexes built on the *re-parsed* graph.
#[test]
fn xmark_roundtrip_pipeline() {
    let original = xmark_like(&XmarkConfig::with_target_nodes(2_000), 9);
    let xml = write_document(&original).expect("generated graphs are trees + refs");
    let g = parse(&xml).expect("writer output parses");
    assert_eq!(g.node_count(), original.node_count());
    assert_eq!(g.edge_count(), original.edge_count());
    assert!(all_reachable(&g));

    let mut idx = MkIndex::new(&g);
    for expr in [
        "//open_auction/bidder",
        "//person/profile/interest",
        "//item/incategory",
    ] {
        let q = PathExpr::parse(expr).unwrap();
        let before = idx.answer_and_refine(&g, &q);
        let after = idx.query(&g, &q);
        assert_eq!(before.nodes, after.nodes, "{expr}");
        assert_eq!(after.nodes, eval_data(&g, &q.compile(&g)), "{expr}");
    }
    idx.graph().check_invariants(&g);
}

/// All five index families agree with ground truth across a whole sampled
/// workload on the NASA-like dataset.
#[test]
fn all_indexes_agree_on_nasa_workload() {
    let g = nasa_like(4_000, 21);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 60,
            seed: 13,
            max_enumerated_paths: 200_000,
        },
    );

    let a2 = AkIndex::build(&g, 2);
    let one = OneIndex::build(&g);
    let ud = mrx::index::UdIndex::build(&g, 2, 2);
    let dkc = DkIndex::construct(&g, &w.queries);
    let mut dkp = DkIndex::a0(&g);
    let mut mk = MkIndex::new(&g);
    let mut mstar = MStarIndex::new(&g);
    for q in &w.queries {
        dkp.promote_for(&g, q);
        mk.refine_for(&g, q);
        mstar.refine_for(&g, q);
    }
    mstar.check_invariants(&g);

    for q in &w.queries {
        let truth = eval_data(&g, &q.compile(&g));
        assert_eq!(a2.query(&g, q).nodes, truth, "A(2) on {q}");
        assert_eq!(one.query(&g, q).nodes, truth, "1-index on {q}");
        assert_eq!(ud.query(&g, q).nodes, truth, "UD(2,2) on {q}");
        assert_eq!(dkc.query(&g, q).nodes, truth, "D(k)-construct on {q}");
        assert_eq!(dkp.query(&g, q).nodes, truth, "D(k)-promote on {q}");
        assert_eq!(mk.query(&g, q).nodes, truth, "M(k) on {q}");
        for strat in [EvalStrategy::Naive, EvalStrategy::TopDown] {
            assert_eq!(
                mstar.query(&g, q, strat).nodes,
                truth,
                "M*(k) {strat:?} on {q}"
            );
        }
    }
}

/// The paper's headline size relations hold on both datasets: the M(k)
/// index is never larger than D(k)-promote, and M*(k)'s stored node count
/// beats both adaptive baselines.
#[test]
fn headline_size_relations() {
    for (name, g) in [
        (
            "xmark",
            xmark_like(&XmarkConfig::with_target_nodes(4_000), 5),
        ),
        ("nasa", nasa_like(4_000, 5)),
    ] {
        let w = Workload::generate(
            &g,
            &WorkloadConfig {
                max_path_len: 4,
                num_queries: 80,
                seed: 7,
                max_enumerated_paths: 200_000,
            },
        );
        let mut dkp = DkIndex::a0(&g);
        let mut mk = MkIndex::new(&g);
        let mut mstar = MStarIndex::new(&g);
        for q in &w.queries {
            dkp.promote_for(&g, q);
            mk.refine_for(&g, q);
            mstar.refine_for(&g, q);
        }
        assert!(
            mk.node_count() <= dkp.node_count(),
            "{name}: M(k) {} vs D(k)-promote {}",
            mk.node_count(),
            dkp.node_count()
        );
        assert!(
            mstar.node_count() <= dkp.node_count(),
            "{name}: M*(k) {} vs D(k)-promote {}",
            mstar.node_count(),
            dkp.node_count()
        );
        assert!(
            mstar.node_count() <= mk.node_count(),
            "{name}: M*(k) {} vs M(k) {}",
            mstar.node_count(),
            mk.node_count()
        );
    }
}

/// M*(k) top-down evaluation must be cheaper on average than evaluating in
/// the finest component (the multiresolution advantage, §4.1).
#[test]
fn mstar_topdown_beats_naive_on_average() {
    let g = xmark_like(&XmarkConfig::with_target_nodes(4_000), 3);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 9,
            num_queries: 120,
            seed: 3,
            max_enumerated_paths: 400_000,
        },
    );
    let mut mstar = MStarIndex::new(&g);
    for q in &w.queries {
        mstar.refine_for(&g, q);
    }
    let (mut td, mut naive) = (0u64, 0u64);
    for q in &w.queries {
        td += mstar.query_paper(&g, q, EvalStrategy::TopDown).cost.total();
        naive += mstar.query_paper(&g, q, EvalStrategy::Naive).cost.total();
    }
    assert!(
        td < naive,
        "top-down {td} should beat naive {naive} over a mixed-length workload"
    );
}

/// Workload statistics drive Figures 8–9; sanity-check the whole chain on
/// a generated dataset rather than a toy.
#[test]
fn workload_distribution_matches_figure8_shape() {
    let g = nasa_like(6_000, 7);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 9,
            num_queries: 500,
            seed: 0xF1D0,
            max_enumerated_paths: 400_000,
        },
    );
    let h = w.length_histogram();
    // Monotone-ish decreasing, mass concentrated on short queries.
    assert!(h[0] > 0.15 && h[0] < 0.6, "{h:?}");
    assert!(h[0] > h[3] && h[3] > h[8], "{h:?}");
    let s = graph_stats(&g);
    assert!(s.max_tree_depth >= 8, "NASA stand-in must be deep");
}

/// Stress: a long adversarial FUP sequence with repeated and overlapping
/// expressions keeps every invariant and stays idempotent at the end.
#[test]
fn repeated_overlapping_fups_are_stable() {
    let g = nasa_like(2_000, 8);
    let exprs = [
        "//dataset/reference/source",
        "//reference/source/journal/author",
        "//source/journal/author/lastname",
        "//dataset/reference/source", // repeat
        "//author/lastname",
        "//dataset/history/ingest/creator/name",
        "//reference/source/journal/author", // repeat
    ];
    let mut mk = MkIndex::new(&g);
    let mut mstar = MStarIndex::new(&g);
    for e in exprs {
        let q = PathExpr::parse(e).unwrap();
        mk.refine_for(&g, &q);
        mstar.refine_for(&g, &q);
    }
    mk.graph().check_invariants(&g);
    mstar.check_invariants(&g);
    let (mk_nodes, ms_nodes) = (mk.node_count(), mstar.node_count());
    // replay: everything already supported, sizes must not move
    for e in exprs {
        let q = PathExpr::parse(e).unwrap();
        mk.refine_for(&g, &q);
        mstar.refine_for(&g, &q);
    }
    assert_eq!(mk.node_count(), mk_nodes);
    assert_eq!(mstar.node_count(), ms_nodes);
}
