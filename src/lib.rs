//! # mrx — Multiresolution Indexing of XML for Frequent Queries
//!
//! A from-scratch Rust implementation of He & Yang's ICDE 2004 paper:
//! the **M(k)-index** and **M\*(k)-index**, their baselines (1-index,
//! A(k)-index, D(k)-index in both construct and promote flavours), and the
//! complete substrate stack — XML data-graph model and parser, synthetic
//! XMark-like and NASA-like dataset generators, simple-path-expression
//! engine with validation, workload generation, and the experiment harness
//! that regenerates every figure of the paper's evaluation.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a module of the same name.
//!
//! ## Quick start
//!
//! ```
//! use mrx::graph::xml::parse;
//! use mrx::path::PathExpr;
//! use mrx::index::{EvalStrategy, MStarIndex};
//!
//! // 1. Load a document (ID/IDREF attributes become reference edges).
//! let g = parse(r#"<site>
//!     <people><person id="p1"><name/></person></people>
//!     <open_auctions><open_auction><seller person="p1"/></open_auction></open_auctions>
//! </site>"#).unwrap();
//!
//! // 2. Build an adaptive multiresolution index.
//! let mut idx = MStarIndex::new(&g);
//!
//! // 3. Answer a query; its first run validates against the data graph.
//! let fup = PathExpr::parse("//open_auction/seller/person").unwrap();
//! let first = idx.answer_and_refine(&g, &fup);
//!
//! // 4. After refinement the index answers the FUP precisely: the default
//! //    (sound) policy double-checks one representative per index node,
//! //    the paper's claimed-k policy trusts the index outright.
//! let second = idx.query(&g, &fup, EvalStrategy::TopDown);
//! assert_eq!(first.nodes, second.nodes);
//! assert!(!idx.query_paper(&g, &fup, EvalStrategy::TopDown).validated);
//! ```
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`graph`] | `mrx-graph` | labeled data graph, XML parser/writer, stats |
//! | [`datagen`] | `mrx-datagen` | XMark-like, NASA-like, DTD-driven, random generators |
//! | [`path`] | `mrx-path` | path expressions, evaluation, validation, cost metric |
//! | [`index`] | `mrx-index` | 1-index, A(k), D(k), M(k), M*(k) + partition engine |
//! | [`workload`] | `mrx-workload` | §5 workload generator and FUP extraction |
//! | [`store`] | `mrx-store` | disk-resident persistence, lazy component loading (§6) |

pub use mrx_datagen as datagen;
pub use mrx_graph as graph;
pub use mrx_index as index;
pub use mrx_path as path;
pub use mrx_store as store;
pub use mrx_workload as workload;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use mrx_datagen::{nasa_like, xmark_like, XmarkConfig};
    pub use mrx_graph::{DataGraph, GraphBuilder, LabelId, NodeId};
    pub use mrx_index::{
        AkIndex, Answer, ApexIndex, DkIndex, EvalStrategy, IdxId, IndexGraph, MStarIndex, MkIndex,
        OneIndex, QuerySession, TrustPolicy, UdIndex,
    };
    pub use mrx_path::{eval_data, Cost, PathExpr};
    pub use mrx_workload::{FupExtractor, Workload, WorkloadConfig};
}
