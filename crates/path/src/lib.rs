//! Simple path expressions over labeled data graphs.
//!
//! The paper (He & Yang, ICDE 2004, §2) works with *simple path
//! expressions* — label paths, optionally starting with the
//! self-or-descendant axis `//`, optionally containing `*` wildcards:
//!
//! * `/site/people/person` — anchored at the document root;
//! * `//name/lastname` — matched anywhere in the graph;
//! * `/site/regions/*/item` — one wildcard step.
//!
//! A path `l0/l1/…/ln` has **length `n`** (edge count, the paper's
//! convention), i.e. one less than its number of labels.
//!
//! This crate provides parsing ([`PathExpr`]), compilation against a graph's
//! label alphabet ([`CompiledPath`]), ground-truth evaluation on the data
//! graph ([`eval_data`]), and backward *validation* of candidate answers with
//! the paper's data-node-visit cost accounting ([`Validator`]).
//!
//! ```
//! use mrx_graph::xml::parse;
//! use mrx_path::{PathExpr, eval_data};
//!
//! let g = parse("<site><people><person/><person/></people></site>").unwrap();
//! let p = PathExpr::parse("//people/person").unwrap();
//! assert_eq!(p.length(), 1);
//! assert_eq!(eval_data(&g, &p.compile(&g)).len(), 2);
//! ```

mod budget;
mod cost;
mod eval;
mod expr;
mod scratch;
mod validate;

pub use budget::{
    never_fails, BudgetError, BudgetKind, BudgetMeter, CancelProbe, Governor, QueryBudget,
    Ungoverned, POLL_INTERVAL,
};
pub use cost::Cost;
pub use eval::{eval_data, eval_data_budgeted, eval_data_counting, eval_data_in, eval_data_with};
pub use expr::{CompiledPath, CompiledStep, ParsePathError, PathExpr, Step};
pub use scratch::{EpochMemo, EpochSet, EvalScratch};
pub use validate::{DownValidator, Validator, ValidatorRef};
