//! The paper's main-memory cost metric (§5, "Cost metrics").
//!
//! > "The cost of a query consists of two parts: (1) the cost of evaluating
//! > the query on the index graph, and (2) the cost of validating the answer
//! > on the data graph. We measure the first part by the number of index
//! > nodes visited during query evaluation, and the second part by the number
//! > of data nodes visited during validation."
//!
//! Data nodes sitting in the extents of target-set index nodes are *not*
//! counted unless validation actually visits them.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Node-visit counters for one or more query evaluations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Index nodes visited while evaluating the expression on the index graph.
    pub index_nodes: u64,
    /// Data nodes visited while validating candidate answers on the data graph.
    pub data_nodes: u64,
}

impl Cost {
    /// A zero cost.
    pub const ZERO: Cost = Cost {
        index_nodes: 0,
        data_nodes: 0,
    };

    /// Creates a cost from its two components.
    pub fn new(index_nodes: u64, data_nodes: u64) -> Self {
        Cost {
            index_nodes,
            data_nodes,
        }
    }

    /// Total node visits (the quantity plotted on the paper's vertical axes).
    pub fn total(&self) -> u64 {
        self.index_nodes + self.data_nodes
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            index_nodes: self.index_nodes + rhs.index_nodes,
            data_nodes: self.data_nodes + rhs.data_nodes,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.index_nodes += rhs.index_nodes;
        self.data_nodes += rhs.data_nodes;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cost::new(3, 4);
        let b = Cost::new(10, 0);
        assert_eq!((a + b).total(), 17);
        let mut c = Cost::ZERO;
        c += a;
        c += b;
        assert_eq!(c, Cost::new(13, 4));
        let s: Cost = [a, b, Cost::ZERO].into_iter().sum();
        assert_eq!(s.total(), 17);
    }
}
