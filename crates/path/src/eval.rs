//! Ground-truth evaluation of path expressions on the data graph.
//!
//! Indexes use this only for validation and testing; the point of the paper
//! is to avoid it. The harness uses it to compute FUP target sets (`T` in
//! REFINE/REFINE*) and to check every index answer in tests.

use mrx_graph::{GraphView, NodeId};

use crate::budget::{never_fails, BudgetError, BudgetMeter, Governor, Ungoverned};
use crate::{CompiledPath, CompiledStep, Cost, EvalScratch};

/// Evaluates `path` on the data graph, returning the target set sorted by
/// node id.
///
/// All evaluators in this module are generic over [`GraphView`], so the
/// same traversal (and therefore the same answers and cost accounting)
/// runs over the live `DataGraph` and the frozen snapshot form.
pub fn eval_data<G: GraphView>(g: &G, path: &CompiledPath) -> Vec<NodeId> {
    eval_data_with(g, path, &mut EvalScratch::new())
}

/// [`eval_data`] over caller-owned scratch, without cost accounting.
///
/// This is the fast path for internal truth computation (FUP target sets):
/// a leading concrete-label step of an unanchored expression seeds the
/// frontier from the graph's label CSR instead of scanning every node. The
/// counting variants below keep the full scan on purpose — `data_nodes`
/// must reflect what an index-free evaluator would visit, and the paper's
/// cost figures depend on that.
pub fn eval_data_with<G: GraphView>(
    g: &G,
    path: &CompiledPath,
    scratch: &mut EvalScratch,
) -> Vec<NodeId> {
    if !path.anchored {
        match path.steps[0] {
            CompiledStep::Label(l) => {
                let EvalScratch {
                    mark,
                    frontier,
                    next,
                } = scratch;
                frontier.clear();
                frontier.extend_from_slice(g.label_nodes(l));
                for step in &path.steps[1..] {
                    next.clear();
                    mark.reset(g.node_count());
                    for &v in frontier.iter() {
                        for &c in g.children(v) {
                            if step.matches(g.label(c)) && mark.insert(c.index()) {
                                next.push(c);
                            }
                        }
                    }
                    std::mem::swap(frontier, next);
                    if frontier.is_empty() {
                        break;
                    }
                }
                if path.steps.len() > 1 {
                    frontier.sort_unstable();
                }
                return frontier.clone();
            }
            CompiledStep::NoSuchLabel => return Vec::new(),
            CompiledStep::Wildcard => {}
        }
    }
    let mut cost = Cost::ZERO;
    eval_data_in(g, path, &mut cost, scratch)
}

/// Like [`eval_data`] but counts every data node visited into
/// `cost.data_nodes` (used when a query is answered *without* any index,
/// the paper's implicit baseline).
pub fn eval_data_counting<G: GraphView>(
    g: &G,
    path: &CompiledPath,
    cost: &mut Cost,
) -> Vec<NodeId> {
    eval_data_in(g, path, cost, &mut EvalScratch::new())
}

/// [`eval_data_counting`] over caller-owned scratch: no per-call mark bitmap
/// or frontier allocation once the scratch has warmed up.
pub fn eval_data_in<G: GraphView>(
    g: &G,
    path: &CompiledPath,
    cost: &mut Cost,
    scratch: &mut EvalScratch,
) -> Vec<NodeId> {
    never_fails(eval_data_governed(g, path, cost, scratch, &mut Ungoverned))
}

/// [`eval_data_in`] under a [`BudgetMeter`]: stops with a typed
/// [`BudgetError`] (partial cost attached in `cost`) when the query exhausts
/// its step budget, deadline, or is cooperatively cancelled.
pub fn eval_data_budgeted<G: GraphView>(
    g: &G,
    path: &CompiledPath,
    cost: &mut Cost,
    scratch: &mut EvalScratch,
    meter: &mut BudgetMeter,
) -> Result<Vec<NodeId>, BudgetError> {
    eval_data_governed(g, path, cost, scratch, meter)
        .map_err(|kind| BudgetMeter::exhausted(kind, cost))
}

/// The one traversal both of the above monomorphize: [`Ungoverned`] erases
/// every budget check (`Err = Infallible`), so the ungoverned build of this
/// loop is identical to the pre-budget evaluator.
fn eval_data_governed<G: GraphView, B: Governor>(
    g: &G,
    path: &CompiledPath,
    cost: &mut Cost,
    scratch: &mut EvalScratch,
    budget: &mut B,
) -> Result<Vec<NodeId>, B::Err> {
    let EvalScratch {
        mark,
        frontier,
        next,
    } = scratch;
    frontier.clear();
    let first = path.steps[0];
    if path.anchored {
        cost.data_nodes += 1; // the root
        budget.visit(1)?;
        for &c in g.children(g.root()) {
            cost.data_nodes += 1;
            budget.visit(1)?;
            if first.matches(g.label(c)) {
                frontier.push(c);
            }
        }
    } else {
        for i in 0..g.node_count() {
            let v = NodeId(i as u32);
            cost.data_nodes += 1;
            budget.visit(1)?;
            if first.matches(g.label(v)) {
                frontier.push(v);
            }
        }
    }
    budget.results(frontier.len())?;

    for step in &path.steps[1..] {
        next.clear();
        // Per-step clear is one epoch bump; the mark keeps `next` free of
        // duplicates, so no dedup pass is needed afterwards.
        mark.reset(g.node_count());
        for &v in frontier.iter() {
            for &c in g.children(v) {
                cost.data_nodes += 1;
                budget.visit(1)?;
                if step.matches(g.label(c)) && mark.insert(c.index()) {
                    next.push(c);
                }
            }
        }
        budget.results(next.len())?;
        std::mem::swap(frontier, next);
        if frontier.is_empty() {
            break;
        }
    }
    // The initial frontier is already sorted (node-id scan, or the root's
    // sorted child slice); only multi-step traversal disturbs the order.
    if path.steps.len() > 1 {
        frontier.sort_unstable();
    }
    Ok(frontier.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathExpr;
    use mrx_graph::xml::parse;
    use mrx_graph::{DataGraph, GraphBuilder};

    /// The paper's Figure 1 graph (auction site with reference edges).
    fn figure1() -> DataGraph {
        let mut b = GraphBuilder::new();
        let root = b.add_node("root"); // 0
        let site = b.add_child(root, "site"); // 1
        let regions = b.add_child(site, "regions"); // 2
        let people = b.add_child(site, "people"); // 3
        let auctions = b.add_child(site, "auctions"); // 4
        let africa = b.add_child(regions, "africa"); // 5
        let asia = b.add_child(regions, "asia"); // 6
        let p7 = b.add_child(people, "person"); // 7
        let p8 = b.add_child(people, "person"); // 8
        let _p9 = b.add_child(people, "person"); // 9
        let a10 = b.add_child(auctions, "auction"); // 10
        let a11 = b.add_child(auctions, "auction"); // 11
        let i12 = b.add_child(africa, "item"); // 12
        let i13 = b.add_child(africa, "item"); // 13
        let i14 = b.add_child(asia, "item"); // 14
        let _s15 = b.add_child(a10, "seller"); // 15
        let b16 = b.add_child(a10, "bidder"); // 16
        let b17 = b.add_child(a10, "bidder"); // 17
        let s18 = b.add_child(a11, "seller"); // 18
        let i19 = b.add_child(a11, "item"); // 19
        let _i20 = b.add_child(a11, "item"); // 20
                                             // reference edges (dashed in the figure)
        b.add_ref(p7, b16);
        b.add_ref(p8, b17);
        b.add_ref(p8, s18);
        b.add_ref(i13, i19);
        b.add_ref(a10, i12);
        let _ = (i14,);
        b.freeze()
    }

    fn ids(v: &[NodeId]) -> Vec<u32> {
        v.iter().map(|n| n.0).collect()
    }

    #[test]
    fn paper_example_absolute() {
        let g = figure1();
        let p = PathExpr::parse("/site/people/person").unwrap().compile(&g);
        assert_eq!(ids(&eval_data(&g, &p)), vec![7, 8, 9]);
    }

    #[test]
    fn paper_example_wildcard() {
        let g = figure1();
        let p = PathExpr::parse("/site/regions/*/item").unwrap().compile(&g);
        assert_eq!(ids(&eval_data(&g, &p)), vec![12, 13, 14]);
    }

    #[test]
    fn descendant_matches_everywhere() {
        let g = figure1();
        let p = PathExpr::parse("//item").unwrap().compile(&g);
        assert_eq!(ids(&eval_data(&g, &p)), vec![12, 13, 14, 19, 20]);
    }

    #[test]
    fn paths_through_reference_edges() {
        let g = figure1();
        // person -> bidder is a reference edge
        let p = PathExpr::parse("//person/bidder").unwrap().compile(&g);
        assert_eq!(ids(&eval_data(&g, &p)), vec![16, 17]);
        // item -> item via the i13 -> i19 reference
        let q = PathExpr::parse("//item/item").unwrap().compile(&g);
        assert_eq!(ids(&eval_data(&g, &q)), vec![19]);
    }

    #[test]
    fn missing_label_yields_empty() {
        let g = figure1();
        let p = PathExpr::parse("//nosuchthing/person").unwrap().compile(&g);
        assert!(eval_data(&g, &p).is_empty());
    }

    #[test]
    fn anchored_first_step_must_be_root_child() {
        let g = figure1();
        let p = PathExpr::parse("/people/person").unwrap().compile(&g);
        assert!(
            eval_data(&g, &p).is_empty(),
            "people is not a child of root"
        );
    }

    #[test]
    fn duplicate_candidates_are_merged_across_parents() {
        // Diamond: r -> a, r -> b, a -> c, b -> c; //*/c must return c once.
        let g = parse(r#"<r><a id="x"/><b to="x"/></r>"#).unwrap();
        let p = PathExpr::parse("//r/*").unwrap().compile(&g);
        assert_eq!(eval_data(&g, &p).len(), 2);
    }

    #[test]
    fn counting_visits() {
        let g = figure1();
        let mut cost = Cost::ZERO;
        let p = PathExpr::parse("//person").unwrap().compile(&g);
        eval_data_counting(&g, &p, &mut cost);
        // unanchored single label scans every node once
        assert_eq!(cost.data_nodes as usize, g.node_count());
        assert_eq!(cost.index_nodes, 0);
    }

    #[test]
    fn fast_path_matches_counting_eval() {
        let g = figure1();
        let mut scratch = EvalScratch::new();
        for expr in [
            "//person",
            "//person/bidder",
            "//item/item",
            "//*/item",
            "/site/people/person",
            "//nosuchthing/person",
        ] {
            let p = PathExpr::parse(expr).unwrap().compile(&g);
            let mut cost = Cost::ZERO;
            let slow = eval_data_in(&g, &p, &mut cost, &mut EvalScratch::new());
            let fast = eval_data_with(&g, &p, &mut scratch);
            assert_eq!(fast, slow, "mismatch on {expr}");
        }
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut b = GraphBuilder::new();
        let r = b.add_node("r");
        let a = b.add_child(r, "a");
        let c = b.add_child(a, "a");
        b.add_ref(c, a); // a-cycle
        let g = b.freeze();
        let p = PathExpr::parse("//a/a/a/a/a/a").unwrap().compile(&g);
        let res = eval_data(&g, &p);
        assert!(!res.is_empty()); // cycle supplies arbitrarily long a-paths
    }
}
