//! Epoch-stamped sparse scratch buffers for the query hot path.
//!
//! Evaluation and validation need per-query "have I seen this state?"
//! storage. Allocating (and zeroing) a dense bitmap or memo table per query
//! is O(n) before any real work happens — ~1.2 MB for a validator memo on a
//! 120k-node document. The types here pay that cost once per *session*
//! instead: each slot carries the epoch in which it was last written, and
//! clearing the whole structure is a single epoch increment. Lookups compare
//! stamps, so stale entries from earlier queries are invisible without ever
//! being touched.
//!
//! Epoch wraparound (after `u32::MAX` clears) falls back to one hard reset
//! of the stamp array, keeping the fast path branch-free and sound.

/// A sparse set over `0..n`, cleared in O(1) by bumping an epoch.
///
/// Replaces per-query `vec![false; n]` mark bitmaps.
#[derive(Debug, Default, Clone)]
pub struct EpochSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl EpochSet {
    /// An empty set; call [`EpochSet::reset`] before use.
    pub const fn new() -> Self {
        EpochSet {
            stamps: Vec::new(),
            epoch: 0,
        }
    }

    /// Empties the set and ensures it covers `0..n`. O(1) except on first
    /// use, growth, or epoch wraparound.
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        match self.epoch.checked_add(1) {
            Some(e) => self.epoch = e,
            None => {
                self.stamps.fill(0);
                self.epoch = 1;
            }
        }
    }

    /// Inserts `i`; returns `true` iff it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        if self.stamps[i] == self.epoch {
            false
        } else {
            self.stamps[i] = self.epoch;
            true
        }
    }

    /// Whether `i` is present.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.stamps[i] == self.epoch
    }
}

/// A sparse `u8` memo table over `0..slots`, cleared in O(1) by bumping an
/// epoch. Unwritten entries read as `0` (the conventional UNKNOWN).
///
/// Replaces per-query `vec![0u8; n * steps]` validator memos.
#[derive(Debug, Default, Clone)]
pub struct EpochMemo {
    stamps: Vec<u32>,
    vals: Vec<u8>,
    epoch: u32,
}

impl EpochMemo {
    /// An empty memo; call [`EpochMemo::reset`] before use.
    pub const fn new() -> Self {
        EpochMemo {
            stamps: Vec::new(),
            vals: Vec::new(),
            epoch: 0,
        }
    }

    /// Clears all entries to `0` and ensures capacity for `slots` entries.
    /// O(1) except on first use, growth, or epoch wraparound.
    pub fn reset(&mut self, slots: usize) {
        if self.stamps.len() < slots {
            self.stamps.resize(slots, 0);
            self.vals.resize(slots, 0);
        }
        match self.epoch.checked_add(1) {
            Some(e) => self.epoch = e,
            None => {
                self.stamps.fill(0);
                self.epoch = 1;
            }
        }
    }

    /// The value at `slot` (0 if never written this epoch).
    #[inline]
    pub fn get(&self, slot: usize) -> u8 {
        if self.stamps[slot] == self.epoch {
            self.vals[slot]
        } else {
            0
        }
    }

    /// Writes `val` at `slot`.
    #[inline]
    pub fn set(&mut self, slot: usize, val: u8) {
        self.stamps[slot] = self.epoch;
        self.vals[slot] = val;
    }
}

/// Reusable buffers for [`crate::eval_data_in`]: the duplicate-suppression
/// set plus the two frontier vectors swapped between steps.
#[derive(Debug, Default, Clone)]
pub struct EvalScratch {
    pub(crate) mark: EpochSet,
    pub(crate) frontier: Vec<mrx_graph::NodeId>,
    pub(crate) next: Vec<mrx_graph::NodeId>,
}

impl EvalScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_set_insert_and_reset() {
        let mut s = EpochSet::new();
        s.reset(4);
        assert!(s.insert(2));
        assert!(!s.insert(2));
        assert!(s.contains(2));
        assert!(!s.contains(3));
        s.reset(4);
        assert!(!s.contains(2), "reset clears membership");
        assert!(s.insert(2));
    }

    #[test]
    fn epoch_set_grows() {
        let mut s = EpochSet::new();
        s.reset(2);
        assert!(s.insert(1));
        s.reset(10);
        assert!(!s.contains(1));
        assert!(s.insert(9));
    }

    #[test]
    fn epoch_memo_defaults_to_zero() {
        let mut m = EpochMemo::new();
        m.reset(3);
        assert_eq!(m.get(0), 0);
        m.set(0, 2);
        m.set(1, 1);
        assert_eq!(m.get(0), 2);
        assert_eq!(m.get(1), 1);
        assert_eq!(m.get(2), 0);
        m.reset(3);
        assert_eq!(m.get(0), 0, "reset clears values");
    }

    #[test]
    fn wraparound_hard_resets() {
        let mut s = EpochSet::new();
        s.reset(2);
        s.insert(0);
        s.epoch = u32::MAX; // simulate u32::MAX clears
        s.stamps[1] = u32::MAX; // a stale stamp that would collide
        s.reset(2);
        assert_eq!(s.epoch, 1);
        assert!(!s.contains(0));
        assert!(!s.contains(1), "stale stamp must not survive wraparound");

        let mut m = EpochMemo::new();
        m.reset(2);
        m.set(0, 2);
        m.epoch = u32::MAX;
        m.stamps[1] = u32::MAX;
        m.vals[1] = 2;
        m.reset(2);
        assert_eq!(m.get(0), 0);
        assert_eq!(m.get(1), 0, "stale memo must not survive wraparound");
    }
}
