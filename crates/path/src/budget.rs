//! Query resource governance: budgets, meters, and the governor hook the
//! evaluators are generic over.
//!
//! A [`QueryBudget`] bounds a single query three ways — total node visits
//! (`max_steps`, the same unit as [`Cost::total`]), result-set size
//! (`max_result_nodes`), and wall clock (`deadline`) — plus a shared
//! cooperative-cancellation flag so parallel replay workers can stop each
//! other. A [`BudgetMeter`] is the per-query mutable state; evaluators charge
//! it as they visit nodes.
//!
//! The hot path stays free: evaluators are generic over [`Governor`], and the
//! no-op [`Ungoverned`] implementation monomorphizes every check away (its
//! error type is [`Infallible`]), so the ungoverned code is bit-identical to
//! the pre-budget code. Deadline and cancellation are polled only once per
//! [`POLL_INTERVAL`] visits to keep `Instant::now()` and the atomic load off
//! the per-node path.

use std::convert::Infallible;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::Cost;

pub use mrx_error::{BudgetError, BudgetKind};

/// Visits between deadline/cancellation polls.
pub const POLL_INTERVAL: u32 = 4096;

/// A caller-supplied cancellation predicate, polled at the same cadence as
/// the deadline and the shared cancel flag. Unlike the [`AtomicBool`] flag —
/// which someone else must remember to raise — a probe *asks* whether the
/// query still matters (the canonical use is a server peeking its client
/// socket: a disconnected client cancels its own in-flight query). Probes
/// must be cheap and non-blocking; they run on the evaluation thread.
#[derive(Clone)]
pub struct CancelProbe(Arc<dyn Fn() -> bool + Send + Sync>);

impl CancelProbe {
    /// Wraps a predicate that returns `true` once the query is cancelled.
    pub fn new(probe: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        CancelProbe(Arc::new(probe))
    }

    /// Runs the predicate.
    pub fn is_cancelled(&self) -> bool {
        (self.0)()
    }
}

impl fmt::Debug for CancelProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CancelProbe(..)")
    }
}

/// Resource limits for one query. `Default` is unlimited.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Cap on total node visits (index + data), i.e. on [`Cost::total`].
    pub max_steps: Option<u64>,
    /// Cap on the number of result nodes a query may accumulate.
    pub max_result_nodes: Option<u64>,
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Shared cancellation flag; when set, governed queries stop at the next
    /// poll with [`BudgetKind::Cancelled`].
    pub cancel: Option<Arc<AtomicBool>>,
    /// Cooperative cancellation probe (e.g. client-disconnect detection);
    /// when it reports cancelled, governed queries stop at the next poll
    /// with [`BudgetKind::Cancelled`].
    pub probe: Option<CancelProbe>,
}

impl QueryBudget {
    /// An unlimited budget (every check passes).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// True if no limit or cancellation hook is configured.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none()
            && self.max_result_nodes.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
            && self.probe.is_none()
    }

    /// Starts metering one query against this budget.
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter {
            max_steps: self.max_steps.unwrap_or(u64::MAX),
            max_result_nodes: self.max_result_nodes.unwrap_or(u64::MAX),
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            probe: self.probe.clone(),
            spent: 0,
            until_poll: POLL_INTERVAL,
        }
    }
}

/// Hook the evaluators are generic over. [`Ungoverned`] compiles to nothing;
/// [`BudgetMeter`] enforces a [`QueryBudget`].
pub trait Governor {
    /// Error produced when a limit trips. [`Infallible`] for [`Ungoverned`],
    /// so the compiler erases every check.
    type Err;

    /// Whether limits can actually trip. Evaluators may branch on this to
    /// pick between a bulk traversal (no early exit needed) and a
    /// per-element loop that can stop at the exact tripping visit; the
    /// branch is a constant, so each monomorphization keeps only one arm.
    const GOVERNED: bool;

    /// Charges `n` node visits; fails when the step budget, deadline, or
    /// cancellation flag trips.
    fn visit(&mut self, n: u64) -> Result<(), Self::Err>;

    /// Checks an accumulated result-set size against the node cap.
    fn results(&mut self, n: usize) -> Result<(), Self::Err>;
}

/// The no-op governor: all checks vanish at monomorphization.
#[derive(Debug, Default, Clone, Copy)]
pub struct Ungoverned;

impl Governor for Ungoverned {
    type Err = Infallible;
    const GOVERNED: bool = false;

    #[inline(always)]
    fn visit(&mut self, _n: u64) -> Result<(), Infallible> {
        Ok(())
    }

    #[inline(always)]
    fn results(&mut self, _n: usize) -> Result<(), Infallible> {
        Ok(())
    }
}

/// Unwraps a `Result<T, Infallible>` from an [`Ungoverned`] evaluation.
#[inline(always)]
pub fn never_fails<T>(r: Result<T, Infallible>) -> T {
    match r {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Per-query budget enforcement state. Reports only [`BudgetKind`]; callers
/// attach the partial [`Cost`] via [`BudgetMeter::exhausted`] where the cost
/// counters live.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    max_steps: u64,
    max_result_nodes: u64,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    probe: Option<CancelProbe>,
    spent: u64,
    until_poll: u32,
}

impl BudgetMeter {
    /// Node visits charged so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Builds the typed error for a trip, attaching the partial cost.
    pub fn exhausted(kind: BudgetKind, cost: &Cost) -> BudgetError {
        BudgetError {
            kind,
            index_nodes: cost.index_nodes,
            data_nodes: cost.data_nodes,
        }
    }

    #[cold]
    fn poll(&mut self) -> Result<(), BudgetKind> {
        self.until_poll = POLL_INTERVAL;
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(BudgetKind::Cancelled);
            }
        }
        if let Some(probe) = &self.probe {
            if probe.is_cancelled() {
                return Err(BudgetKind::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetKind::Deadline);
            }
        }
        Ok(())
    }
}

impl Governor for BudgetMeter {
    type Err = BudgetKind;
    const GOVERNED: bool = true;

    #[inline]
    fn visit(&mut self, n: u64) -> Result<(), BudgetKind> {
        self.spent += n;
        if self.spent > self.max_steps {
            return Err(BudgetKind::Steps);
        }
        let n32 = n.min(u64::from(u32::MAX)) as u32;
        match self.until_poll.checked_sub(n32) {
            Some(left) if left > 0 => {
                self.until_poll = left;
                Ok(())
            }
            _ => self.poll(),
        }
    }

    #[inline]
    fn results(&mut self, n: usize) -> Result<(), BudgetKind> {
        if n as u64 > self.max_result_nodes {
            return Err(BudgetKind::ResultNodes);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = QueryBudget::unlimited();
        assert!(b.is_unlimited());
        let mut m = b.meter();
        for _ in 0..100 {
            m.visit(1_000_000).unwrap();
        }
        m.results(usize::MAX).unwrap();
    }

    #[test]
    fn step_budget_trips_at_cap() {
        let b = QueryBudget {
            max_steps: Some(10),
            ..QueryBudget::default()
        };
        let mut m = b.meter();
        m.visit(10).unwrap();
        assert_eq!(m.visit(1), Err(BudgetKind::Steps));
        assert_eq!(m.spent(), 11);
    }

    #[test]
    fn result_cap_trips() {
        let b = QueryBudget {
            max_result_nodes: Some(5),
            ..QueryBudget::default()
        };
        let mut m = b.meter();
        m.results(5).unwrap();
        assert_eq!(m.results(6), Err(BudgetKind::ResultNodes));
    }

    #[test]
    fn expired_deadline_trips_on_poll() {
        let b = QueryBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..QueryBudget::default()
        };
        let mut m = b.meter();
        // Charges accumulate fine until the poll interval elapses.
        let mut tripped = false;
        for _ in 0..2 {
            if m.visit(u64::from(POLL_INTERVAL)) == Err(BudgetKind::Deadline) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn cancellation_flag_trips_on_poll() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = QueryBudget {
            cancel: Some(flag.clone()),
            ..QueryBudget::default()
        };
        let mut m = b.meter();
        m.visit(u64::from(POLL_INTERVAL) * 2).unwrap();
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            m.visit(u64::from(POLL_INTERVAL) * 2),
            Err(BudgetKind::Cancelled)
        );
    }

    #[test]
    fn cancel_probe_trips_on_poll() {
        let flag = Arc::new(AtomicBool::new(false));
        let probe_flag = flag.clone();
        let b = QueryBudget {
            probe: Some(CancelProbe::new(move || probe_flag.load(Ordering::Relaxed))),
            ..QueryBudget::default()
        };
        assert!(!b.is_unlimited());
        let mut m = b.meter();
        m.visit(u64::from(POLL_INTERVAL) * 2).unwrap();
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            m.visit(u64::from(POLL_INTERVAL) * 2),
            Err(BudgetKind::Cancelled)
        );
    }

    #[test]
    fn exhausted_attaches_partial_cost() {
        let cost = Cost {
            index_nodes: 3,
            data_nodes: 7,
        };
        let e = BudgetMeter::exhausted(BudgetKind::Steps, &cost);
        assert_eq!(e.index_nodes, 3);
        assert_eq!(e.data_nodes, 7);
    }
}
