//! Path-expression syntax, parsing and compilation.

use std::fmt;

use mrx_graph::{GraphView, LabelId};

pub use mrx_error::ParsePathError;

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Step {
    /// Match a specific element label.
    Label(Box<str>),
    /// `*`: match any label.
    Wildcard,
}

impl Step {
    /// The label string, if this is a label step.
    pub fn as_label(&self) -> Option<&str> {
        match self {
            Step::Label(s) => Some(s),
            Step::Wildcard => None,
        }
    }
}

/// A parsed simple path expression.
///
/// `anchored == true` means the expression starts with a single `/` and its
/// first step matches children of the document root (XPath `/site/...`);
/// `anchored == false` means it starts with `//` and matches anywhere.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathExpr {
    anchored: bool,
    steps: Vec<Step>,
}

impl PathExpr {
    /// Parses `/a/b`, `//a/b`, with `*` wildcards as steps.
    pub fn parse(input: &str) -> Result<Self, ParsePathError> {
        let input = input.trim();
        if input.is_empty() {
            return Err(ParsePathError::Empty);
        }
        let (anchored, rest) = if let Some(r) = input.strip_prefix("//") {
            (false, r)
        } else if let Some(r) = input.strip_prefix('/') {
            (true, r)
        } else {
            return Err(ParsePathError::MissingAxis);
        };
        if rest.is_empty() {
            return Err(ParsePathError::Empty);
        }
        let mut steps = Vec::new();
        for (i, part) in rest.split('/').enumerate() {
            if part.is_empty() {
                return Err(ParsePathError::EmptyStep { position: i });
            }
            steps.push(if part == "*" {
                Step::Wildcard
            } else {
                Step::Label(part.into())
            });
        }
        Ok(PathExpr { anchored, steps })
    }

    /// Builds an unanchored (`//`) expression from label strings.
    ///
    /// # Panics
    /// Panics if `labels` is empty.
    pub fn descendant<S: AsRef<str>>(labels: impl IntoIterator<Item = S>) -> Self {
        let steps: Vec<Step> = labels
            .into_iter()
            .map(|l| Step::Label(l.as_ref().into()))
            .collect();
        assert!(
            !steps.is_empty(),
            "a path expression needs at least one step"
        );
        PathExpr {
            anchored: false,
            steps,
        }
    }

    /// Builds an anchored (`/`) expression from label strings.
    ///
    /// # Panics
    /// Panics if `labels` is empty.
    pub fn absolute<S: AsRef<str>>(labels: impl IntoIterator<Item = S>) -> Self {
        let mut p = Self::descendant(labels);
        p.anchored = true;
        p
    }

    /// Whether the expression is anchored at the root (single leading `/`).
    pub fn is_anchored(&self) -> bool {
        self.anchored
    }

    /// The steps, in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The paper's path length: number of **edges**, `steps - 1`.
    pub fn length(&self) -> usize {
        self.steps.len() - 1
    }

    /// The contiguous sub-expression over steps `start..end` as an
    /// unanchored `//` expression (used by workload sampling and by the
    /// M*(k) subpath pre-filtering strategy).
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn subsequence(&self, start: usize, end: usize) -> PathExpr {
        assert!(start < end && end <= self.steps.len(), "invalid step range");
        PathExpr {
            anchored: false,
            steps: self.steps[start..end].to_vec(),
        }
    }

    /// Compiles against a graph's label alphabet for fast evaluation.
    ///
    /// Works over any [`GraphView`] — live or frozen — and compiles to the
    /// same [`CompiledPath`] on both, since the label alphabet is preserved
    /// by freezing.
    pub fn compile<G: GraphView>(&self, g: &G) -> CompiledPath {
        CompiledPath {
            anchored: self.anchored,
            steps: self
                .steps
                .iter()
                .map(|s| match s {
                    Step::Wildcard => CompiledStep::Wildcard,
                    Step::Label(name) => match g.label_lookup(name) {
                        Some(id) => CompiledStep::Label(id),
                        None => CompiledStep::NoSuchLabel,
                    },
                })
                .collect(),
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.anchored { "/" } else { "//" })?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            match s {
                Step::Label(l) => f.write_str(l)?,
                Step::Wildcard => f.write_str("*")?,
            }
        }
        Ok(())
    }
}

/// One compiled step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledStep {
    /// Match this interned label.
    Label(LabelId),
    /// The label does not occur in the graph: matches nothing.
    NoSuchLabel,
    /// Matches any label.
    Wildcard,
}

impl CompiledStep {
    /// Whether this step matches label `l`.
    #[inline]
    pub fn matches(&self, l: LabelId) -> bool {
        match *self {
            CompiledStep::Label(want) => want == l,
            CompiledStep::NoSuchLabel => false,
            CompiledStep::Wildcard => true,
        }
    }
}

/// A [`PathExpr`] compiled against one graph's label alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPath {
    /// Whether the first step matches only children of the root.
    pub anchored: bool,
    /// Compiled steps.
    pub steps: Vec<CompiledStep>,
}

impl CompiledPath {
    /// The paper's path length (edges).
    pub fn length(&self) -> usize {
        self.steps.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_graph::GraphBuilder;

    #[test]
    fn parse_descendant() {
        let p = PathExpr::parse("//a/b/c").unwrap();
        assert!(!p.is_anchored());
        assert_eq!(p.length(), 2);
        assert_eq!(p.to_string(), "//a/b/c");
    }

    #[test]
    fn parse_anchored_and_wildcard() {
        let p = PathExpr::parse("/site/regions/*/item").unwrap();
        assert!(p.is_anchored());
        assert_eq!(p.length(), 3);
        assert_eq!(p.steps()[2], Step::Wildcard);
        assert_eq!(p.to_string(), "/site/regions/*/item");
        assert_eq!(p.steps()[0].as_label(), Some("site"));
        assert_eq!(p.steps()[2].as_label(), None);
    }

    #[test]
    fn parse_single_label() {
        let p = PathExpr::parse("//person").unwrap();
        assert_eq!(p.length(), 0);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(PathExpr::parse(""), Err(ParsePathError::Empty));
        assert_eq!(PathExpr::parse("/"), Err(ParsePathError::Empty));
        assert_eq!(PathExpr::parse("//"), Err(ParsePathError::Empty));
        assert_eq!(PathExpr::parse("a/b"), Err(ParsePathError::MissingAxis));
        assert_eq!(
            PathExpr::parse("//a//b"),
            Err(ParsePathError::EmptyStep { position: 1 })
        );
        assert_eq!(
            PathExpr::parse("/a/"),
            Err(ParsePathError::EmptyStep { position: 1 })
        );
        // errors render
        assert!(PathExpr::parse("//a//b")
            .unwrap_err()
            .to_string()
            .contains("position 1"));
    }

    #[test]
    fn constructors() {
        let p = PathExpr::descendant(["name", "lastname"]);
        assert_eq!(p.to_string(), "//name/lastname");
        let q = PathExpr::absolute(["site", "people"]);
        assert_eq!(q.to_string(), "/site/people");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_constructor_panics() {
        let _ = PathExpr::descendant(Vec::<String>::new());
    }

    #[test]
    fn subsequence_is_descendant() {
        let p = PathExpr::parse("/a/b/c/d").unwrap();
        let s = p.subsequence(1, 3);
        assert_eq!(s.to_string(), "//b/c");
        assert!(!s.is_anchored());
    }

    #[test]
    fn compile_resolves_labels() {
        let mut b = GraphBuilder::new();
        let r = b.add_node("r");
        b.add_child(r, "a");
        let g = b.freeze();
        let c = PathExpr::parse("//a/zzz/*").unwrap().compile(&g);
        let a = g.labels().get("a").unwrap();
        assert_eq!(c.steps[0], CompiledStep::Label(a));
        assert_eq!(c.steps[1], CompiledStep::NoSuchLabel);
        assert_eq!(c.steps[2], CompiledStep::Wildcard);
        assert!(c.steps[0].matches(a));
        assert!(!c.steps[1].matches(a));
        assert!(c.steps[2].matches(a));
        assert_eq!(c.length(), 2);
    }
}
