//! Backward validation of candidate answers against the data graph.
//!
//! When an index node's local similarity is smaller than the query length,
//! its extent may contain false positives (§3.1). Validation walks the data
//! graph *backwards* from each candidate, checking that an instance of the
//! whole label path really ends there.
//!
//! The walk is memoized per query on `(node, step)` states — a state is
//! explored at most once no matter how many candidates share ancestors — and
//! every first exploration of a state counts as one data-node visit in the
//! paper's cost metric.

use mrx_graph::{DataGraph, GraphView, NodeId};
use mrx_postings::{contains_seeking, PostingId, SliceSeeker};

use crate::{CompiledPath, Cost, EpochMemo};

const YES: u8 = 1;
const NO: u8 = 2;

/// The shared memoized backward walk: does an instance of
/// `path.steps[0..=step]` end at `v`? `memo[step * n + node]` holds
/// UNKNOWN (0) / YES / NO; every first exploration of a state counts one
/// data-node visit.
///
/// Generic over [`GraphView`]: the memo slot layout and the `any`
/// short-circuit over the *sorted* parent slice make the explored-state
/// set (and so the cost) a function of the adjacency arrays alone, which
/// freezing copies verbatim — live and frozen validation are bit-identical.
fn check_backward<G: GraphView>(
    g: &G,
    path: &CompiledPath,
    memo: &mut EpochMemo,
    v: NodeId,
    step: usize,
    cost: &mut Cost,
) -> bool {
    let slot = step * g.node_count() + v.index();
    match memo.get(slot) {
        YES => return true,
        NO => return false,
        _ => {}
    }
    cost.data_nodes += 1;
    // Mark NO before recursing: `step` strictly decreases, so there is
    // no recursion back into this state, but the early mark keeps the
    // accounting right even on pathological shapes.
    memo.set(slot, NO);
    let ok = if !path.steps[step].matches(g.label(v)) {
        false
    } else if step == 0 {
        if path.anchored {
            contains_seeking(SliceSeeker::new(g.parents(v)), g.root().to_u32())
        } else {
            true
        }
    } else {
        g.parents(v)
            .iter()
            .any(|&p| check_backward(g, path, memo, p, step - 1, cost))
    };
    memo.set(slot, if ok { YES } else { NO });
    ok
}

/// Memoized backward validator for one query on one graph. Owns its memo;
/// for a session-owned memo reused across queries see [`ValidatorRef`].
pub struct Validator<'g, G: GraphView = DataGraph> {
    g: &'g G,
    path: CompiledPath,
    memo: EpochMemo,
}

impl<'g, G: GraphView> Validator<'g, G> {
    /// Creates a validator for `path` over `g`.
    pub fn new(g: &'g G, path: CompiledPath) -> Self {
        let mut memo = EpochMemo::new();
        memo.reset(g.node_count() * path.steps.len());
        Validator { g, path, memo }
    }

    /// The query this validator checks.
    pub fn path(&self) -> &CompiledPath {
        &self.path
    }

    /// Whether `v` is a true answer, counting data-node visits into `cost`.
    pub fn is_answer(&mut self, v: NodeId, cost: &mut Cost) -> bool {
        check_backward(
            self.g,
            &self.path,
            &mut self.memo,
            v,
            self.path.steps.len() - 1,
            cost,
        )
    }

    /// Filters `candidates` down to true answers (order preserved).
    pub fn filter(
        &mut self,
        candidates: impl IntoIterator<Item = NodeId>,
        cost: &mut Cost,
    ) -> Vec<NodeId> {
        candidates
            .into_iter()
            .filter(|&v| self.is_answer(v, cost))
            .collect()
    }
}

/// A [`Validator`] over a borrowed, session-owned [`EpochMemo`].
///
/// The memo is reset lazily on the first check, so constructing one costs
/// nothing for queries that end up not validating; in a warmed-up session
/// the reset itself is a single epoch bump, never an O(n·steps) zeroing.
/// Identical memoization (and therefore cost accounting) to [`Validator`].
pub struct ValidatorRef<'a, G: GraphView = DataGraph> {
    g: &'a G,
    path: &'a CompiledPath,
    memo: &'a mut EpochMemo,
    ready: bool,
}

impl<'a, G: GraphView> ValidatorRef<'a, G> {
    /// Wraps a session memo for validating `path` over `g`.
    pub fn new(g: &'a G, path: &'a CompiledPath, memo: &'a mut EpochMemo) -> Self {
        ValidatorRef {
            g,
            path,
            memo,
            ready: false,
        }
    }

    /// Whether `v` is a true answer, counting data-node visits into `cost`.
    pub fn is_answer(&mut self, v: NodeId, cost: &mut Cost) -> bool {
        if !self.ready {
            self.memo.reset(self.g.node_count() * self.path.steps.len());
            self.ready = true;
        }
        check_backward(
            self.g,
            self.path,
            self.memo,
            v,
            self.path.steps.len() - 1,
            cost,
        )
    }
}

/// Memoized *forward* validator: checks that a data node **starts** an
/// instance of a label path (all steps, walking children). The counterpart
/// of [`Validator`] for outgoing paths — used by the UD(k,l)-index's
/// down-bisimilarity support and by bottom-up evaluation strategies.
pub struct DownValidator<'g, G: GraphView = DataGraph> {
    g: &'g G,
    path: CompiledPath,
    /// `memo[step * n + node]`: status of "an instance of steps[step..]
    /// starts at node".
    memo: EpochMemo,
}

impl<'g, G: GraphView> DownValidator<'g, G> {
    /// Creates a forward validator for `path` over `g` (the `anchored` flag
    /// is ignored: outgoing paths have no root anchor).
    pub fn new(g: &'g G, path: CompiledPath) -> Self {
        let mut memo = EpochMemo::new();
        memo.reset(g.node_count() * path.steps.len());
        DownValidator { g, path, memo }
    }

    /// Whether an instance of the whole path starts at `v`, counting
    /// data-node visits into `cost`.
    pub fn starts_instance(&mut self, v: NodeId, cost: &mut Cost) -> bool {
        self.check(v, 0, cost)
    }

    /// Filters `candidates` down to instance starts (order preserved).
    pub fn filter(
        &mut self,
        candidates: impl IntoIterator<Item = NodeId>,
        cost: &mut Cost,
    ) -> Vec<NodeId> {
        candidates
            .into_iter()
            .filter(|&v| self.starts_instance(v, cost))
            .collect()
    }

    fn check(&mut self, v: NodeId, step: usize, cost: &mut Cost) -> bool {
        let n = self.g.node_count();
        let slot = step * n + v.index();
        match self.memo.get(slot) {
            YES => return true,
            NO => return false,
            _ => {}
        }
        cost.data_nodes += 1;
        self.memo.set(slot, NO);
        let ok = if !self.path.steps[step].matches(self.g.label(v)) {
            false
        } else if step + 1 == self.path.steps.len() {
            true
        } else {
            let children: Vec<NodeId> = self.g.children(v).to_vec();
            children.into_iter().any(|c| self.check(c, step + 1, cost))
        };
        self.memo.set(slot, if ok { YES } else { NO });
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eval_data, PathExpr};
    use mrx_graph::xml::parse;

    fn doc() -> DataGraph {
        parse(
            "<site><people><person><name><lastname/></name></person>
              <person><name/></person></people>
             <forum><name><lastname/></name></forum></site>",
        )
        .unwrap()
    }

    #[test]
    fn validates_true_answers_only() {
        let g = doc();
        let p = PathExpr::parse("//person/name/lastname")
            .unwrap()
            .compile(&g);
        let truth = eval_data(&g, &p);
        assert_eq!(truth.len(), 1);
        let mut v = Validator::new(&g, p);
        let mut cost = Cost::ZERO;
        // All lastname nodes are candidates (what a coarse index would return).
        let lastname = g.labels().get("lastname").unwrap();
        let candidates: Vec<NodeId> = g.nodes_with_label(lastname).collect();
        assert_eq!(candidates.len(), 2);
        let accepted = v.filter(candidates, &mut cost);
        assert_eq!(accepted, truth);
        assert!(cost.data_nodes > 0);
    }

    #[test]
    fn memoization_caps_cost() {
        let g = doc();
        let p = PathExpr::parse("//name").unwrap().compile(&g);
        let mut v = Validator::new(&g, p);
        let mut cost = Cost::ZERO;
        let name = g.labels().get("name").unwrap();
        let candidates: Vec<NodeId> = g.nodes_with_label(name).collect();
        let k = candidates.len();
        let before = cost.data_nodes;
        let first = v.filter(candidates.clone(), &mut cost);
        assert_eq!(first.len(), k);
        let mid = cost.data_nodes;
        assert!(mid > before);
        // Re-validating the same candidates is free.
        let again = v.filter(candidates, &mut cost);
        assert_eq!(again.len(), k);
        assert_eq!(cost.data_nodes, mid);
    }

    #[test]
    fn anchored_validation_checks_root() {
        let g = doc();
        let p = PathExpr::parse("/people").unwrap().compile(&g);
        let mut v = Validator::new(&g, p.clone());
        let mut cost = Cost::ZERO;
        let people = g.labels().get("people").unwrap();
        let candidates: Vec<NodeId> = g.nodes_with_label(people).collect();
        // `people` is a child of `site` (the root), so it *is* an answer of
        // the anchored query /people under our root-children convention.
        assert_eq!(v.filter(candidates, &mut cost), eval_data(&g, &p));
    }

    #[test]
    fn down_validator_checks_outgoing_paths() {
        let g = doc();
        // //person/name/lastname starts at exactly one person node
        let p = PathExpr::parse("//person/name/lastname")
            .unwrap()
            .compile(&g);
        let mut v = DownValidator::new(&g, p);
        let mut cost = Cost::ZERO;
        let person = g.labels().get("person").unwrap();
        let starts: Vec<NodeId> = g.nodes_with_label(person).collect();
        let ok = v.filter(starts, &mut cost);
        assert_eq!(ok.len(), 1);
        assert!(cost.data_nodes > 0);
        // memoized: re-checking is free
        let before = cost.data_nodes;
        assert!(v.starts_instance(ok[0], &mut cost));
        assert_eq!(cost.data_nodes, before);
    }

    #[test]
    fn down_validator_rejects_wrong_labels() {
        let g = doc();
        let p = PathExpr::parse("//site/person").unwrap().compile(&g);
        let mut v = DownValidator::new(&g, p);
        let mut cost = Cost::ZERO;
        let all: Vec<NodeId> = g.nodes().collect();
        assert!(
            v.filter(all, &mut cost).is_empty(),
            "site has no person child"
        );
    }

    #[test]
    fn agrees_with_forward_eval_on_reference_graphs() {
        let g = parse(r#"<r><a id="x"><b/></a><c to="x"/><d><b/></d></r>"#).unwrap();
        for expr in ["//c/a/b", "//r/c/a", "//d/b", "//a/b", "//r/a/b"] {
            let p = PathExpr::parse(expr).unwrap().compile(&g);
            let truth = eval_data(&g, &p);
            let mut v = Validator::new(&g, p);
            let mut cost = Cost::ZERO;
            let all: Vec<NodeId> = g.nodes().collect();
            let accepted = v.filter(all, &mut cost);
            assert_eq!(accepted, truth, "mismatch for {expr}");
        }
    }
}
