//! Uniform random labeled graphs for property-based testing.
//!
//! These graphs are deliberately *adversarial* rather than XML-like: small
//! label alphabets force heavy label sharing, and random extra edges create
//! diamonds, multiple parents, and cycles — the shapes that stress
//! bisimulation partitioning and the refinement algorithms.

use crate::prng::Prng;
use mrx_graph::{DataGraph, GraphBuilder};

/// Shape parameters for [`random_graph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomGraphConfig {
    /// Number of nodes (≥ 1; node 0 is the root).
    pub nodes: usize,
    /// Alphabet size (small values maximize label collisions).
    pub labels: usize,
    /// Extra non-tree edges to add, as a fraction of `nodes`.
    pub extra_edge_ratio: f64,
    /// Whether extra edges may point "backwards" (creating cycles).
    pub allow_cycles: bool,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            nodes: 40,
            labels: 4,
            extra_edge_ratio: 0.4,
            allow_cycles: true,
        }
    }
}

/// Generates a random rooted labeled graph: a random tree over `nodes`
/// (guaranteeing reachability) plus random reference edges. Deterministic
/// in `(config, seed)`.
pub fn random_graph(config: &RandomGraphConfig, seed: u64) -> DataGraph {
    assert!(config.nodes >= 1);
    assert!(config.labels >= 1);
    let mut rng = Prng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(config.nodes);
    let labels: Vec<_> = (0..config.labels)
        .map(|i| b.intern(&format!("l{i}")))
        .collect();
    let root = b.add_node_with(labels[0]);
    let mut nodes = vec![root];
    for _ in 1..config.nodes {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let l = labels[rng.gen_range(0..labels.len())];
        nodes.push(b.add_child_with(parent, l));
    }
    let extra = (config.nodes as f64 * config.extra_edge_ratio) as usize;
    for _ in 0..extra {
        let i = rng.gen_range(0..nodes.len());
        let j = rng.gen_range(0..nodes.len());
        if i == j {
            continue;
        }
        let (from, to) = if config.allow_cycles || i < j {
            (nodes[i], nodes[j])
        } else {
            (nodes[j], nodes[i])
        };
        b.add_ref(from, to);
    }
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_graph::stats::all_reachable;

    #[test]
    fn always_rooted_and_reachable() {
        for seed in 0..20 {
            let g = random_graph(&RandomGraphConfig::default(), seed);
            assert_eq!(g.node_count(), 40);
            assert!(all_reachable(&g));
        }
    }

    #[test]
    fn acyclic_mode_produces_dags() {
        let cfg = RandomGraphConfig {
            allow_cycles: false,
            ..Default::default()
        };
        for seed in 0..10 {
            let g = random_graph(&cfg, seed);
            // node ids are a topological order: every edge goes id-up
            for v in g.nodes() {
                for &c in g.children(v) {
                    assert!(c > v, "edge {v:?} -> {c:?} violates topo order");
                }
            }
        }
    }

    #[test]
    fn single_node() {
        let cfg = RandomGraphConfig {
            nodes: 1,
            ..Default::default()
        };
        let g = random_graph(&cfg, 0);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn deterministic() {
        let cfg = RandomGraphConfig::default();
        let a = random_graph(&cfg, 5);
        let b = random_graph(&cfg, 5);
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
