//! A small, seeded, deterministic PRNG — the repo's replacement for the
//! external `rand` crate, so the workspace builds with no registry access.
//!
//! The generator is xoshiro256** (Blackman & Vigna) seeded through
//! SplitMix64, the combination the `rand` ecosystem itself recommends for
//! non-cryptographic simulation work. Determinism in the seed is part of
//! the contract: every dataset generator and workload sampler in this repo
//! derives its entire output stream from one `u64`.
//!
//! ```
//! use mrx_datagen::prng::Prng;
//!
//! let mut a = Prng::seed_from_u64(7);
//! let mut b = Prng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(0..10usize);
//! assert!(x < 10);
//! ```

/// One step of SplitMix64; also used standalone to stretch a seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator whose full state is derived from `seed` via
    /// SplitMix64 (distinct seeds give uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value in `range`; panics on an empty range, like `rand`.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's multiply-shift rejection
    /// (unbiased).
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Ranges [`Prng::gen_range`] can sample from.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from `self`.
    fn sample(self, rng: &mut Prng) -> Self::Output;
}

impl UniformRange for std::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Prng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as usize
    }
}

impl UniformRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Prng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.bounded_u64((hi - lo) as u64 + 1) as usize
    }
}

impl UniformRange for std::ops::Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Prng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Prng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Prng::seed_from_u64(123);
        let mut b = Prng::seed_from_u64(123);
        let mut c = Prng::seed_from_u64(124);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_in_bounds_and_hit_everything() {
        let mut rng = Prng::seed_from_u64(0);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = Prng::seed_from_u64(77);
        let mean: f64 = (0..10_000).map(|_| rng.gen_f64()).sum::<f64>() / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean drifted: {mean}");
    }
}
