//! Seeded synthetic XML dataset generators.
//!
//! The paper evaluates on two datasets neither of which is shippable here:
//! an 11 MB XMark document (~120k nodes) produced by the XML Benchmark
//! Project's C generator, and an 11 MB document (~90k nodes) produced by the
//! closed-source IBM XML generator from the NASA astronomy DTD. Structural
//! indexes only observe the *labeled graph shape* — label alphabet, nesting,
//! fan-out, and ID/IDREF sharing — so this crate re-creates both shapes from
//! scratch:
//!
//! * [`xmark`]: an auction-site document following the XMark DTD's element
//!   hierarchy and reference structure (`incategory`, `personref`, `seller`,
//!   `buyer`, `itemref`, `watch`, category-graph `edge`s);
//! * [`dtd`]: a general probabilistic DTD-driven generator (our stand-in for
//!   the IBM generator);
//! * [`nasa`]: a NASA-like astronomy-archive DTD — deeper, broader, more
//!   irregular and more reference-rich than XMark, with element names
//!   (`name`, `title`, `author`, `date`) reused in many contexts;
//! * [`random`]: uniform random labeled graphs for property-based tests.
//!
//! All generators are deterministic in their seed, driven by the in-repo
//! seeded generator in [`prng`] (no external dependencies).

pub mod dtd;
pub mod nasa;
pub mod prng;
pub mod random;
pub mod xmark;

pub use dtd::{Dtd, DtdBuilder, Occurs};
pub use nasa::{nasa_like, nasa_like_with_density};
pub use prng::Prng;
pub use random::{random_graph, RandomGraphConfig};
pub use xmark::{xmark_like, XmarkConfig};
