//! Probabilistic DTD-driven document generation — our stand-in for the
//! closed-source IBM XML generator the paper used on the NASA DTD.
//!
//! A [`Dtd`] declares elements, their child content (with occurrence
//! distributions), and IDREF attributes (as element-to-element reference
//! specs with a firing probability). [`Dtd::generate`] expands the root
//! recursively under a node budget and depth cap, then wires reference edges
//! to uniformly chosen instances of the target element.
//!
//! ```
//! use mrx_datagen::dtd::{DtdBuilder, Occurs};
//!
//! let mut d = DtdBuilder::new("library");
//! let book = d.element("book");
//! let author = d.element("author");
//! d.child(d.root(), book, Occurs::Star { mean: 3.0, max: 10 });
//! d.child(book, author, Occurs::Plus { mean: 1.5, max: 4 });
//! d.reference(author, book, 0.3); // "also wrote" IDREF
//! let g = d.build().generate(42, 10_000);
//! assert!(g.node_count() > 1);
//! ```

use crate::prng::Prng;
use mrx_graph::{DataGraph, GraphBuilder, LabelId, NodeId};

/// Occurrence distribution of a child element within its parent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Occurs {
    /// Exactly one.
    One,
    /// Zero or one, present with probability `p`.
    Optional(f64),
    /// Zero or more: geometric with the given mean, truncated at `max`.
    Star {
        /// Expected count.
        mean: f64,
        /// Hard cap.
        max: usize,
    },
    /// One or more: `1 +` geometric with mean `mean - 1`, truncated at `max`.
    Plus {
        /// Expected count (≥ 1).
        mean: f64,
        /// Hard cap.
        max: usize,
    },
}

impl Occurs {
    fn sample(self, rng: &mut Prng) -> usize {
        match self {
            Occurs::One => 1,
            Occurs::Optional(p) => usize::from(rng.gen_bool(p.clamp(0.0, 1.0))),
            Occurs::Star { mean, max } => sample_trunc_geometric(rng, mean, max),
            Occurs::Plus { mean, max } => {
                1 + sample_trunc_geometric(rng, (mean - 1.0).max(0.0), max.saturating_sub(1))
            }
        }
    }
}

/// A geometric count with the given mean, truncated at `max`.
fn sample_trunc_geometric(rng: &mut Prng, mean: f64, max: usize) -> usize {
    if mean <= 0.0 || max == 0 {
        return 0;
    }
    // For a geometric number of successes with continue-probability q,
    // mean = q / (1 - q)  =>  q = mean / (1 + mean).
    let q = mean / (1.0 + mean);
    let mut n = 0;
    while n < max && rng.gen_bool(q) {
        n += 1;
    }
    n
}

/// Element handle within a [`DtdBuilder`]/[`Dtd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElemId(usize);

#[derive(Debug, Clone)]
struct ElementDecl {
    name: String,
    children: Vec<(ElemId, Occurs)>,
}

#[derive(Debug, Clone, Copy)]
struct RefSpec {
    from: ElemId,
    to: ElemId,
    prob: f64,
}

/// Builder for a [`Dtd`].
#[derive(Debug, Clone)]
pub struct DtdBuilder {
    elements: Vec<ElementDecl>,
    refs: Vec<RefSpec>,
}

impl DtdBuilder {
    /// Starts a DTD whose document element is `root_name`.
    pub fn new(root_name: &str) -> Self {
        DtdBuilder {
            elements: vec![ElementDecl {
                name: root_name.to_string(),
                children: Vec::new(),
            }],
            refs: Vec::new(),
        }
    }

    /// The root element handle.
    pub fn root(&self) -> ElemId {
        ElemId(0)
    }

    /// Declares (or looks up) an element by name.
    pub fn element(&mut self, name: &str) -> ElemId {
        if let Some(i) = self.elements.iter().position(|e| e.name == name) {
            return ElemId(i);
        }
        self.elements.push(ElementDecl {
            name: name.to_string(),
            children: Vec::new(),
        });
        ElemId(self.elements.len() - 1)
    }

    /// Adds `child` to `parent`'s content model with the given occurrence.
    pub fn child(&mut self, parent: ElemId, child: ElemId, occurs: Occurs) {
        self.elements[parent.0].children.push((child, occurs));
    }

    /// Declares an IDREF attribute: each instance of `from` references a
    /// uniformly random instance of `to` with probability `prob`.
    pub fn reference(&mut self, from: ElemId, to: ElemId, prob: f64) {
        self.refs.push(RefSpec {
            from,
            to,
            prob: prob.clamp(0.0, 1.0),
        });
    }

    /// Finalizes the DTD.
    pub fn build(self) -> Dtd {
        Dtd {
            elements: self.elements,
            refs: self.refs,
        }
    }
}

/// A probabilistic DTD: element content models plus reference specs.
#[derive(Debug, Clone)]
pub struct Dtd {
    elements: Vec<ElementDecl>,
    refs: Vec<RefSpec>,
}

impl Dtd {
    /// Number of declared elements (the label alphabet size).
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Generates a document graph with roughly `node_budget` nodes.
    /// Deterministic in `seed`.
    ///
    /// The budget is a *target*, not just a cap: if one expansion of the
    /// root's content model falls short, the root's repeatable (`*`/`+`)
    /// children are instantiated in further rounds until the budget fills
    /// (mirroring how the IBM generator sizes documents by repeating the
    /// top-level collection element). Reference edges are wired afterwards.
    pub fn generate(&self, seed: u64, node_budget: usize) -> DataGraph {
        const MAX_DEPTH: usize = 64;
        let mut rng = Prng::seed_from_u64(seed);
        let mut b = GraphBuilder::with_capacity(node_budget);
        let labels: Vec<LabelId> = self.elements.iter().map(|e| b.intern(&e.name)).collect();
        let mut instances: Vec<Vec<NodeId>> = vec![Vec::new(); self.elements.len()];

        let root = b.add_node_with(labels[0]);
        instances[0].push(root);
        let mut budget = node_budget.saturating_sub(1);

        let root_repeatable = self.elements[0]
            .children
            .iter()
            .any(|&(_, o)| matches!(o, Occurs::Star { .. } | Occurs::Plus { .. }));
        let mut first_round = true;
        while budget > 0 && (first_round || root_repeatable) {
            // One round instantiates the root's content model once; repeat
            // rounds only re-sample the repeatable children.
            let mut frontier: Vec<(NodeId, usize, usize)> = Vec::new(); // (node, elem, depth)
            let mut made_progress = false;
            'seed_round: for &(child, occurs) in &self.elements[0].children {
                if !first_round && !matches!(occurs, Occurs::Star { .. } | Occurs::Plus { .. }) {
                    continue;
                }
                // Repeatable top-level children always yield at least one
                // instance per round, so budget-filling cannot stall.
                let mut n = occurs.sample(&mut rng);
                if matches!(occurs, Occurs::Star { .. } | Occurs::Plus { .. }) {
                    n = n.max(1);
                }
                for _ in 0..n {
                    if budget == 0 {
                        break 'seed_round;
                    }
                    let c = b.add_child_with(root, labels[child.0]);
                    instances[child.0].push(c);
                    budget -= 1;
                    made_progress = true;
                    frontier.push((c, child.0, 1));
                }
            }
            first_round = false;
            if !made_progress {
                break;
            }
            // Breadth-first expansion keeps the budget cut unbiased across
            // the document rather than starving late siblings.
            while !frontier.is_empty() && budget > 0 {
                let mut next = Vec::new();
                'outer: for (node, elem, depth) in frontier {
                    if depth >= MAX_DEPTH {
                        continue;
                    }
                    for &(child, occurs) in &self.elements[elem].children {
                        let n = occurs.sample(&mut rng);
                        for _ in 0..n {
                            if budget == 0 {
                                break 'outer;
                            }
                            let c = b.add_child_with(node, labels[child.0]);
                            instances[child.0].push(c);
                            budget -= 1;
                            next.push((c, child.0, depth + 1));
                        }
                    }
                }
                frontier = next;
            }
        }

        // Reference pass.
        for spec in &self.refs {
            if instances[spec.to.0].is_empty() {
                continue;
            }
            let froms = instances[spec.from.0].clone();
            for f in froms {
                if rng.gen_bool(spec.prob) {
                    let targets = &instances[spec.to.0];
                    let t = targets[rng.gen_range(0..targets.len())];
                    if t != f {
                        b.add_ref(f, t);
                    }
                }
            }
        }
        b.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_graph::stats::{all_reachable, graph_stats};

    fn library() -> Dtd {
        let mut d = DtdBuilder::new("library");
        let shelf = d.element("shelf");
        let book = d.element("book");
        let title = d.element("title");
        let author = d.element("author");
        d.child(d.root(), shelf, Occurs::Star { mean: 4.0, max: 10 });
        d.child(shelf, book, Occurs::Star { mean: 5.0, max: 20 });
        d.child(book, title, Occurs::One);
        d.child(book, author, Occurs::Plus { mean: 1.5, max: 5 });
        d.reference(author, book, 0.4);
        d.build()
    }

    #[test]
    fn generation_is_deterministic() {
        let d = library();
        let g1 = d.generate(9, 2000);
        let g2 = d.generate(9, 2000);
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
    }

    #[test]
    fn respects_budget_roughly() {
        let d = library();
        let g = d.generate(1, 500);
        assert!(g.node_count() <= 501);
        assert!(g.node_count() > 100, "got {}", g.node_count());
        assert!(all_reachable(&g));
    }

    #[test]
    fn element_lookup_is_idempotent() {
        let mut d = DtdBuilder::new("r");
        let a1 = d.element("a");
        let a2 = d.element("a");
        assert_eq!(a1, a2);
        assert_eq!(d.build().element_count(), 2);
    }

    #[test]
    fn references_fire_probabilistically() {
        let d = library();
        let g = d.generate(5, 3000);
        let s = graph_stats(&g);
        assert!(s.ref_edges > 0);
        for &(from, to) in g.ref_edges() {
            assert_eq!(g.label_str(g.label(from)), "author");
            assert_eq!(g.label_str(g.label(to)), "book");
        }
    }

    #[test]
    fn recursive_dtd_is_depth_capped() {
        let mut d = DtdBuilder::new("node");
        let root = d.root();
        // node -> node (always two children): unbounded without the cap
        d.child(root, root, Occurs::Star { mean: 2.0, max: 3 });
        let g = d.build().generate(3, 5000);
        assert!(g.node_count() <= 5001);
        let s = graph_stats(&g);
        assert!(s.max_tree_depth <= 64);
    }

    #[test]
    fn occurs_distributions() {
        let mut rng = Prng::seed_from_u64(0);
        let mut sum = 0usize;
        for _ in 0..2000 {
            sum += Occurs::Star { mean: 3.0, max: 50 }.sample(&mut rng);
        }
        let mean = sum as f64 / 2000.0;
        assert!((2.5..3.5).contains(&mean), "star mean drifted: {mean}");
        for _ in 0..100 {
            assert!(Occurs::Plus { mean: 2.0, max: 5 }.sample(&mut rng) >= 1);
            assert!(Occurs::Optional(0.5).sample(&mut rng) <= 1);
            assert_eq!(Occurs::One.sample(&mut rng), 1);
        }
    }
}
