//! XMark-like auction-site generator.
//!
//! Follows the element hierarchy and reference structure of the XMark DTD
//! (XML Benchmark Project): a `site` with six `regions` of `item`s,
//! `categories` plus a category `catgraph`, `people`, and open/closed
//! auctions. All ID/IDREF attributes of the original become reference edges:
//!
//! * `item/incategory → category`, `catgraph/edge → category` (from/to)
//! * `person/watches/watch → open_auction`
//! * `person/profile/interest → category`
//! * `open_auction/bidder/personref → person`, `…/seller → person`
//! * `open_auction/itemref → item`, `annotation/author → person`
//! * `closed_auction/{buyer,seller} → person`, `…/itemref → item`
//!
//! Entity proportions match XMark's scale-factor ratios (items : persons :
//! open : closed ≈ 21750 : 25500 : 12000 : 9750 per unit scale), so the
//! graph shape tracks the paper's 11 MB / ~120k-node document when sized
//! accordingly (see [`XmarkConfig::with_target_nodes`]).

use crate::prng::Prng;
use mrx_graph::{DataGraph, GraphBuilder, NodeId};

/// Entity counts for one generated document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmarkConfig {
    /// Total number of `item` elements across the six regions.
    pub items: usize,
    /// Number of `person` elements.
    pub persons: usize,
    /// Number of `open_auction` elements.
    pub open_auctions: usize,
    /// Number of `closed_auction` elements.
    pub closed_auctions: usize,
    /// Number of `category` elements.
    pub categories: usize,
}

impl XmarkConfig {
    /// XMark's entity ratios at the given scale factor (scale 1.0 ≈ the
    /// original benchmark's 100 MB document; the paper uses ≈ 0.1).
    pub fn scaled(factor: f64) -> Self {
        let f = factor.max(0.0005);
        XmarkConfig {
            items: (21750.0 * f) as usize + 1,
            persons: (25500.0 * f) as usize + 1,
            open_auctions: (12000.0 * f) as usize + 1,
            closed_auctions: (9750.0 * f) as usize + 1,
            categories: (1000.0 * f) as usize + 1,
        }
    }

    /// Picks a scale so the generated graph has roughly `n` nodes
    /// (within a few percent; the per-entity node counts are randomized).
    pub fn with_target_nodes(n: usize) -> Self {
        // Empirically one unit of scale yields ≈ NODES_PER_SCALE nodes
        // (measured by `tests::nodes_per_scale_estimate`).
        const NODES_PER_SCALE: f64 = 1_210_000.0;
        Self::scaled(n as f64 / NODES_PER_SCALE)
    }
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig::scaled(0.01)
    }
}

/// Generates an XMark-like data graph. Deterministic in `(config, seed)`.
pub fn xmark_like(config: &XmarkConfig, seed: u64) -> DataGraph {
    let mut rng = Prng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(config.items * 30);

    let site = b.add_node("site");

    // --- categories ------------------------------------------------------
    let categories_el = b.add_child(site, "categories");
    let mut categories = Vec::with_capacity(config.categories);
    for _ in 0..config.categories {
        let c = b.add_child(categories_el, "category");
        b.add_child(c, "name");
        let d = b.add_child(c, "description");
        add_text_block(&mut b, d, &mut rng);
        categories.push(c);
    }

    // --- catgraph ----------------------------------------------------------
    let catgraph = b.add_child(site, "catgraph");
    let n_edges = config.categories * 2;
    for _ in 0..n_edges {
        let e = b.add_child(catgraph, "edge");
        // `from` and `to` IDREF attributes
        b.add_ref(e, *pick(&mut rng, &categories));
        b.add_ref(e, *pick(&mut rng, &categories));
    }

    // --- regions / items ---------------------------------------------------
    let regions = b.add_child(site, "regions");
    const REGION_NAMES: [&str; 6] = [
        "africa",
        "asia",
        "australia",
        "europe",
        "namerica",
        "samerica",
    ];
    // XMark's region weights (africa is small, namerica/europe large).
    const REGION_WEIGHTS: [f64; 6] = [0.02, 0.10, 0.02, 0.30, 0.42, 0.14];
    let region_nodes: Vec<NodeId> = REGION_NAMES
        .iter()
        .map(|r| b.add_child(regions, r))
        .collect();
    let mut items = Vec::with_capacity(config.items);
    for i in 0..config.items {
        let region = region_nodes[weighted(&mut rng, &REGION_WEIGHTS)];
        let item = b.add_child(region, "item");
        b.add_child(item, "location");
        b.add_child(item, "quantity");
        b.add_child(item, "name");
        let payment = rng.gen_range(0..3usize);
        for _ in 0..payment {
            b.add_child(item, "payment");
        }
        b.add_child(item, "shipping");
        let d = b.add_child(item, "description");
        add_text_block(&mut b, d, &mut rng);
        let n_cat = rng.gen_range(1..=3);
        for _ in 0..n_cat {
            let inc = b.add_child(item, "incategory");
            b.add_ref(inc, *pick(&mut rng, &categories));
        }
        if rng.gen_bool(0.7) {
            let mailbox = b.add_child(item, "mailbox");
            let n_mail = sample_geometric(&mut rng, 0.6, 5);
            for _ in 0..n_mail {
                let mail = b.add_child(mailbox, "mail");
                b.add_child(mail, "from");
                b.add_child(mail, "to");
                b.add_child(mail, "date");
                let t = b.add_child(mail, "text");
                add_text_block(&mut b, t, &mut rng);
            }
        }
        items.push(item);
        let _ = i;
    }

    // --- people --------------------------------------------------------------
    let people = b.add_child(site, "people");
    let mut persons = Vec::with_capacity(config.persons);
    for _ in 0..config.persons {
        let p = b.add_child(people, "person");
        b.add_child(p, "name");
        b.add_child(p, "emailaddress");
        if rng.gen_bool(0.5) {
            b.add_child(p, "phone");
        }
        if rng.gen_bool(0.4) {
            let addr = b.add_child(p, "address");
            b.add_child(addr, "street");
            b.add_child(addr, "city");
            b.add_child(addr, "country");
            b.add_child(addr, "zipcode");
        }
        if rng.gen_bool(0.3) {
            b.add_child(p, "homepage");
        }
        if rng.gen_bool(0.5) {
            b.add_child(p, "creditcard");
        }
        if rng.gen_bool(0.7) {
            let profile = b.add_child(p, "profile");
            let n_int = sample_geometric(&mut rng, 0.5, 4);
            for _ in 0..n_int {
                let i = b.add_child(profile, "interest");
                b.add_ref(i, *pick(&mut rng, &categories));
            }
            if rng.gen_bool(0.5) {
                b.add_child(profile, "education");
            }
            if rng.gen_bool(0.8) {
                b.add_child(profile, "gender");
            }
            b.add_child(profile, "business");
            if rng.gen_bool(0.6) {
                b.add_child(profile, "age");
            }
        }
        persons.push(p);
    }

    // --- open auctions ---------------------------------------------------------
    let opens_el = b.add_child(site, "open_auctions");
    let mut opens = Vec::with_capacity(config.open_auctions);
    for _ in 0..config.open_auctions {
        let a = b.add_child(opens_el, "open_auction");
        b.add_child(a, "initial");
        if rng.gen_bool(0.4) {
            b.add_child(a, "reserve");
        }
        let n_bidders = sample_geometric(&mut rng, 0.45, 10);
        for _ in 0..n_bidders {
            let bid = b.add_child(a, "bidder");
            b.add_child(bid, "date");
            b.add_child(bid, "time");
            let pr = b.add_child(bid, "personref");
            b.add_ref(pr, *pick(&mut rng, &persons));
            b.add_child(bid, "increase");
        }
        b.add_child(a, "current");
        if rng.gen_bool(0.3) {
            b.add_child(a, "privacy");
        }
        let ir = b.add_child(a, "itemref");
        b.add_ref(ir, *pick(&mut rng, &items));
        let seller = b.add_child(a, "seller");
        b.add_ref(seller, *pick(&mut rng, &persons));
        add_annotation(&mut b, a, &mut rng, &persons);
        b.add_child(a, "quantity");
        b.add_child(a, "type");
        let interval = b.add_child(a, "interval");
        b.add_child(interval, "start");
        b.add_child(interval, "end");
        opens.push(a);
    }

    // --- person watches (need open auctions to exist) ---------------------------
    for &p in &persons {
        if rng.gen_bool(0.3) {
            let watches = b.add_child(p, "watches");
            let n = sample_geometric(&mut rng, 0.5, 6);
            for _ in 0..n {
                let w = b.add_child(watches, "watch");
                b.add_ref(w, *pick(&mut rng, &opens));
            }
        }
    }

    // --- closed auctions ---------------------------------------------------------
    let closed_el = b.add_child(site, "closed_auctions");
    for _ in 0..config.closed_auctions {
        let a = b.add_child(closed_el, "closed_auction");
        let seller = b.add_child(a, "seller");
        b.add_ref(seller, *pick(&mut rng, &persons));
        let buyer = b.add_child(a, "buyer");
        b.add_ref(buyer, *pick(&mut rng, &persons));
        let ir = b.add_child(a, "itemref");
        b.add_ref(ir, *pick(&mut rng, &items));
        b.add_child(a, "price");
        b.add_child(a, "date");
        b.add_child(a, "quantity");
        b.add_child(a, "type");
        add_annotation(&mut b, a, &mut rng, &persons);
    }

    b.freeze()
}

fn add_annotation(b: &mut GraphBuilder, parent: NodeId, rng: &mut Prng, persons: &[NodeId]) {
    if persons.is_empty() {
        return;
    }
    let ann = b.add_child(parent, "annotation");
    let author = b.add_child(ann, "author");
    b.add_ref(author, *pick(rng, persons));
    let d = b.add_child(ann, "description");
    add_text_block(b, d, rng);
    b.add_child(ann, "happiness");
}

/// XMark descriptions are `text | parlist`; a parlist nests `listitem`s that
/// may recursively hold further parlists (bounded here at one extra level).
fn add_text_block(b: &mut GraphBuilder, parent: NodeId, rng: &mut Prng) {
    if rng.gen_bool(0.7) {
        b.add_child(parent, "text");
    } else {
        let parlist = b.add_child(parent, "parlist");
        let n = rng.gen_range(1..=3);
        for _ in 0..n {
            let li = b.add_child(parlist, "listitem");
            if rng.gen_bool(0.2) {
                let inner = b.add_child(li, "parlist");
                let m = rng.gen_range(1..=2);
                for _ in 0..m {
                    let li2 = b.add_child(inner, "listitem");
                    b.add_child(li2, "text");
                }
            } else {
                b.add_child(li, "text");
            }
        }
    }
}

fn pick<'a, T>(rng: &mut Prng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

fn weighted(rng: &mut Prng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Geometric-ish count: each success continues with probability `p`, capped.
fn sample_geometric(rng: &mut Prng, p: f64, max: usize) -> usize {
    let mut n = 0;
    while n < max && rng.gen_bool(p) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_graph::stats::{all_reachable, graph_stats};

    #[test]
    fn deterministic_in_seed() {
        let cfg = XmarkConfig::scaled(0.002);
        let g1 = xmark_like(&cfg, 7);
        let g2 = xmark_like(&cfg, 7);
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        let g3 = xmark_like(&cfg, 8);
        assert_ne!(
            (g1.node_count(), g1.edge_count()),
            (g3.node_count(), g3.edge_count()),
            "different seeds should differ"
        );
    }

    #[test]
    fn structure_is_rooted_and_referenced() {
        let g = xmark_like(&XmarkConfig::scaled(0.002), 42);
        assert!(all_reachable(&g));
        let s = graph_stats(&g);
        assert!(s.ref_edges > 0, "XMark must contain IDREF edges");
        assert!(s.labels > 40, "XMark alphabet is broad, got {}", s.labels);
        assert_eq!(g.label_str(g.label(g.root())), "site");
    }

    #[test]
    fn nodes_per_scale_estimate() {
        // Keeps `with_target_nodes` honest: one unit of scale must yield
        // roughly NODES_PER_SCALE nodes (±20%).
        let g = xmark_like(&XmarkConfig::scaled(0.01), 1);
        let per_scale = g.node_count() as f64 / 0.01;
        assert!(
            (0.8..1.25).contains(&(per_scale / 1_210_000.0)),
            "nodes per unit scale drifted: {per_scale}"
        );
    }

    #[test]
    fn with_target_nodes_is_close() {
        let g = xmark_like(&XmarkConfig::with_target_nodes(20_000), 3);
        let n = g.node_count();
        assert!((14_000..28_000).contains(&n), "got {n} nodes");
    }

    #[test]
    fn serializes_to_xml_and_back() {
        let g = xmark_like(&XmarkConfig::scaled(0.001), 5);
        let xml = mrx_graph::xml::write_document(&g).unwrap();
        let g2 = mrx_graph::xml::parse(&xml).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.ref_edge_count(), g.ref_edge_count());
    }

    #[test]
    fn reference_targets_are_the_right_elements() {
        let g = xmark_like(&XmarkConfig::scaled(0.002), 11);
        for &(from, to) in g.ref_edges() {
            let fl = g.label_str(g.label(from));
            let tl = g.label_str(g.label(to));
            let ok = matches!(
                (fl, tl),
                ("incategory", "category")
                    | ("edge", "category")
                    | ("interest", "category")
                    | ("personref", "person")
                    | ("seller", "person")
                    | ("buyer", "person")
                    | ("author", "person")
                    | ("watch", "open_auction")
                    | ("itemref", "item")
            );
            assert!(ok, "unexpected reference {fl} -> {tl}");
        }
    }
}
