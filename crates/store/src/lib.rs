//! Disk-resident persistence for data graphs and M*(k)-indexes.
//!
//! The paper closes (§6) with: *"We are currently studying how to make the
//! M\*(k)-index I/O-efficient by turning it into a disk-resident structure
//! that can be loaded into memory selectively and incrementally during
//! query processing."* This crate implements that design point:
//!
//! * a compact, versioned, checksummed binary format (`.mrx`) for data
//!   graphs and complete M\*(k)-indexes ([`save_graph`], [`save_mstar`],
//!   [`load_graph`], [`load_mstar`]);
//! * [`MStarFile`]: an open index file whose **components load lazily** —
//!   a top-down query of length `j` touches only `I0..Ij`, so short queries
//!   read a small prefix of the file. Byte- and component-level I/O
//!   accounting is exposed for experiments.
//!
//! Index edges are *not* stored: they are induced by the extents (Property
//! 2) and are recomputed on load, which roughly halves the file size at a
//! modest one-time CPU cost — the trade the paper's "logical vs physical
//! representation" discussion suggests.
//!
//! The **flat (v2) layout** ([`save_frozen`], [`load_frozen`],
//! [`FrozenFile`]) makes the opposite trade for serving: it stores the
//! frozen CSR arrays verbatim (edges included), so loading is a contiguous
//! read plus validation with no per-node work — see [`flat`] for the byte
//! layout and the speed/size discussion.
//!
//! The **compressed (v3) layout** ([`save_compressed`],
//! [`load_compressed`], [`CompressedFile`]) keeps the v2 framing but
//! stores extents and CSR adjacency as delta-varint posting arenas;
//! components load into `CompressedIndex` form and serve straight from the
//! compressed extents through seeking cursors. [`snapshot_version`] peeks
//! a file's layout so callers can dispatch.
//!
//! The **demand-paged (v4) layout** ([`save_paged`], [`PagedFile`]) goes
//! one step further for beyond-RAM corpora: only the graph and small
//! per-component meta sections load eagerly, while extents and the
//! `node_of` inverse map are served through a budgeted page cache with
//! per-page checksums — cold start is near-zero and the resident set is
//! capped, at the price of page faults on first touch. See [`paged`] for
//! the layout and the (degradation-free) failure model.
//!
//! ```no_run
//! use mrx_store::{save_mstar, MStarFile};
//! # let g = mrx_graph::xml::parse("<a/>").unwrap();
//! # let idx = mrx_index::MStarIndex::new(&g);
//! save_mstar("auctions.mrx", &g, &idx)?;
//!
//! let mut file = MStarFile::open("auctions.mrx")?;
//! let q = mrx_path::PathExpr::parse("//a").unwrap();
//! let ans = file.query_top_down(&q)?;          // loads only I0
//! assert_eq!(file.loaded_components(), vec![0]);
//! # Ok::<(), mrx_store::StoreError>(())
//! ```

pub mod fault;
mod file;
pub mod flat;
mod format;
mod lazy_graph;
pub mod paged;
pub mod validate;
mod wire;

pub use file::MStarFile;
pub use flat::{
    load_compressed, load_compressed_from, load_frozen, load_frozen_from, save_compressed,
    save_compressed_to, save_frozen, save_frozen_to, snapshot_version, CompressedFile, FrozenFile,
};
pub use format::{
    load_graph, load_graph_from, load_mstar, load_mstar_from, save_graph, save_graph_to,
    save_mstar, save_mstar_to, StoreError,
};
pub use lazy_graph::LazyGraph;
pub use paged::{paged_image, save_paged, save_paged_with, PagedFile};
pub use validate::{open_validated, SnapshotPayload, ValidatedSnapshot};
