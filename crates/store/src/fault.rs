//! Deterministic fault injection for exercising `.mrx` load paths.
//!
//! Every fault is derived from a single `u64` seed via SplitMix64 (the
//! same stream-stretching step the data generator uses), so a failing
//! seed reproduces its exact corruption. Faults come in two families:
//!
//! * **image faults** mutate the snapshot bytes before parsing — bit
//!   flips, truncation, multi-byte overwrites, and section-length lies;
//! * **reader faults** perturb the I/O stream itself — a mid-stream
//!   error, or a short read, which a correct loader must tolerate
//!   *without* any error at all ([`Read::read`] is allowed to return
//!   fewer bytes than asked at any time).
//!
//! The contract under test: a loader fed any faulted input either
//! succeeds with a fully validated structure or returns a typed
//! [`StoreError`](crate::StoreError) — it never panics, never aborts,
//! and never allocates past the bounds the format's length checks imply.
//!
//! ```
//! use mrx_store::fault::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::from_seed(42);
//! let mut image = vec![0u8; 1024];
//! if plan.corrupt(&mut image) {
//!     // image-level fault applied; parse `image` directly
//! } else {
//!     // reader-level fault: parse through `plan.reader(&image[..])`
//! }
//! # let _ = plan.kind();
//! ```

use std::io::{self, Read};

/// One step of SplitMix64 — the same generator as
/// `mrx_datagen::prng::splitmix64`, duplicated here so the store crate
/// keeps zero runtime dependencies on the data generator.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The corruption a [`FaultPlan`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip one bit at a seeded offset.
    BitFlip,
    /// Cut the image off at a seeded length.
    Truncate,
    /// Overwrite 8 consecutive bytes at a seeded offset with seeded junk.
    Overwrite,
    /// Replace the first section's `u64` length prefix (the bytes at
    /// offset 16 in every `.mrx` layout) with a seeded value — the
    /// "section claims more bytes than exist" attack.
    LengthLie,
    /// The reader returns an [`io::Error`] once a seeded stream position
    /// is reached. Loaders must surface it as `StoreError::Io`.
    IoError,
    /// The reader serves one seeded read short (a legal `read` outcome).
    /// Loaders must succeed as if nothing happened.
    ShortRead,
}

/// A single seeded fault: which [`FaultKind`], where, and with what bytes.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    kind: FaultKind,
    offset: u64,
    value: u64,
}

impl FaultPlan {
    /// Derives a fault deterministically from `seed`. Equal seeds give
    /// byte-identical corruptions.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed;
        let kind = match splitmix64(&mut s) % 6 {
            0 => FaultKind::BitFlip,
            1 => FaultKind::Truncate,
            2 => FaultKind::Overwrite,
            3 => FaultKind::LengthLie,
            4 => FaultKind::IoError,
            _ => FaultKind::ShortRead,
        };
        let offset = splitmix64(&mut s);
        let value = splitmix64(&mut s);
        FaultPlan {
            kind,
            offset,
            value,
        }
    }

    /// The corruption this plan applies.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Applies an image-level fault to `bytes` in place and returns
    /// `true`, or returns `false` for the reader-level kinds
    /// ([`FaultKind::IoError`], [`FaultKind::ShortRead`]) which
    /// [`FaultPlan::reader`] applies instead. Empty images are left
    /// untouched.
    pub fn corrupt(&self, bytes: &mut Vec<u8>) -> bool {
        if bytes.is_empty() {
            return false;
        }
        let len = bytes.len();
        match self.kind {
            FaultKind::BitFlip => {
                let at = (self.offset % len as u64) as usize;
                bytes[at] ^= 1 << (self.value % 8);
                true
            }
            FaultKind::Truncate => {
                bytes.truncate((self.offset % len as u64) as usize);
                true
            }
            FaultKind::Overwrite => {
                let span = 8.min(len);
                let at = (self.offset % (len - span + 1) as u64) as usize;
                bytes[at..at + span].copy_from_slice(&self.value.to_le_bytes()[..span]);
                true
            }
            FaultKind::LengthLie => {
                // Offset 16 holds the first section's u64 length in every
                // .mrx layout (8-byte magic + u32 version + u32 count).
                if len >= 24 {
                    bytes[16..24].copy_from_slice(&self.value.to_le_bytes());
                } else {
                    bytes[0] ^= 1 << (self.value % 8);
                }
                true
            }
            FaultKind::IoError | FaultKind::ShortRead => false,
        }
    }

    /// Wraps `inner` so the reader-level fault fires at a stream position
    /// derived from the seed (taken modulo `input_len`, so the fault lands
    /// inside the stream). Image-level plans produce a transparent reader.
    pub fn reader<R: Read>(&self, inner: R, input_len: u64) -> FaultReader<R> {
        let at = if input_len == 0 {
            0
        } else {
            self.offset % input_len
        };
        let kind = match self.kind {
            FaultKind::IoError | FaultKind::ShortRead => Some(self.kind),
            _ => None,
        };
        FaultReader {
            inner,
            pos: 0,
            fault_at: at,
            kind,
        }
    }
}

/// A [`Read`] adapter that injects its plan's stream-level fault once.
pub struct FaultReader<R: Read> {
    inner: R,
    pos: u64,
    fault_at: u64,
    kind: Option<FaultKind>,
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let end = self.pos + buf.len() as u64;
        match self.kind {
            Some(FaultKind::IoError) if end > self.fault_at => Err(io::Error::other(format!(
                "injected I/O fault at stream offset {}",
                self.fault_at
            ))),
            Some(FaultKind::ShortRead) if !buf.is_empty() && end > self.fault_at => {
                // Serve exactly up to the fault point once, then behave.
                let keep = (self.fault_at.saturating_sub(self.pos) as usize)
                    .max(1)
                    .min(buf.len());
                self.kind = None;
                let n = self.inner.read(&mut buf[..keep])?;
                self.pos += n as u64;
                Ok(n)
            }
            _ => {
                let n = self.inner.read(buf)?;
                self.pos += n as u64;
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_corruption() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            let mut x = (0u8..255).collect::<Vec<_>>();
            let mut y = x.clone();
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.corrupt(&mut x), b.corrupt(&mut y));
            assert_eq!(x, y, "seed {seed}");
        }
    }

    #[test]
    fn all_kinds_reachable() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..256u64 {
            seen.insert(FaultPlan::from_seed(seed).kind());
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn image_faults_change_bytes_reader_faults_do_not() {
        for seed in 0..256u64 {
            let plan = FaultPlan::from_seed(seed);
            let orig = (0u8..255).cycle().take(4096).collect::<Vec<_>>();
            let mut img = orig.clone();
            let applied = plan.corrupt(&mut img);
            match plan.kind() {
                FaultKind::IoError | FaultKind::ShortRead => {
                    assert!(!applied);
                    assert_eq!(img, orig);
                }
                _ => {
                    assert!(applied);
                    assert_ne!(img, orig, "seed {seed} was a no-op");
                }
            }
        }
    }

    #[test]
    fn io_error_fault_surfaces_mid_stream() {
        let data = vec![7u8; 1024];
        let plan = FaultPlan {
            kind: FaultKind::IoError,
            offset: 100,
            value: 0,
        };
        let mut r = plan.reader(&data[..], data.len() as u64);
        let mut buf = vec![0u8; 64];
        assert!(r.read_exact(&mut buf).is_ok());
        let mut rest = vec![0u8; 512];
        assert!(r.read_exact(&mut rest).is_err());
    }

    #[test]
    fn short_read_fault_is_transparent_to_read_exact() {
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        let plan = FaultPlan {
            kind: FaultKind::ShortRead,
            offset: 700,
            value: 0,
        };
        let mut r = plan.reader(&data[..], data.len() as u64);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }
}
