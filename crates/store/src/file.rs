//! Lazily loaded, disk-resident M*(k)-index.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use mrx_graph::DataGraph;
use mrx_index::{Answer, EvalStrategy, IndexGraph, MStarIndex, TrustPolicy};
use mrx_path::PathExpr;

use crate::format::{
    read_component_payload, read_graph_payload, read_section_bounded, StoreError, STAR_MAGIC,
    VERSION, VERSION_FLAT,
};
use crate::wire::le_u64;

/// An open `.mrx` index file whose components are loaded on demand.
///
/// The file keeps coarse components first, so a top-down query of length
/// `j` reads only the header, the data graph, and components `I0..Ij` — the
/// §6 "loaded into memory selectively and incrementally" behaviour.
/// [`MStarFile::bytes_read`] and [`MStarFile::loaded_components`] expose the
/// I/O actually performed.
pub struct MStarFile {
    file: BufReader<File>,
    file_len: u64,
    graph: DataGraph,
    offsets: Vec<u64>,
    /// Components loaded so far (always a prefix `I0..I(loaded-1)`).
    index: Option<MStarIndex>,
    bytes_read: u64,
}

impl MStarFile {
    /// Opens an index file, reading only the header, the directory and the
    /// embedded data graph. Declared section lengths and directory offsets
    /// are checked against the file size before anything is allocated.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut file = BufReader::new(file);
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != STAR_MAGIC {
            return Err(StoreError::Format(
                "not an mrx index file (bad magic)".into(),
            ));
        }
        let mut buf4 = [0u8; 4];
        file.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version == VERSION_FLAT {
            return Err(StoreError::Format(
                "flat (v2) snapshot; open it with FrozenFile".into(),
            ));
        }
        if version != VERSION {
            return Err(StoreError::Format(format!("unsupported version {version}")));
        }
        file.read_exact(&mut buf4)?;
        let ncomp = u32::from_le_bytes(buf4) as usize;
        if ncomp == 0 || ncomp > 4096 {
            return Err(StoreError::Format(format!(
                "implausible component count {ncomp}"
            )));
        }
        // Closure needed: a bare fn fails higher-ranked lifetime inference.
        #[allow(clippy::redundant_closure)]
        let (graph, graph_len) =
            read_section_bounded(&mut file, "graph", Some(file_len.saturating_sub(16)), |r| {
                read_graph_payload(r)
            })?;
        let mut offsets = Vec::with_capacity(ncomp);
        let mut dir = vec![0u8; 8 * ncomp];
        file.read_exact(&mut dir)?;
        let mut prev = 0u64;
        for c in dir.chunks_exact(8) {
            let o = le_u64(c);
            // 8(len) + 8(digest) is the smallest possible section.
            if o <= prev || o + 16 > file_len {
                return Err(StoreError::Format(format!(
                    "component directory offset {o} outside the file"
                )));
            }
            prev = o;
            offsets.push(o);
        }
        let bytes_read = 8 + 4 + 4 + graph_len + 8 * ncomp as u64;
        Ok(MStarFile {
            file,
            file_len,
            graph,
            offsets,
            index: None,
            bytes_read,
        })
    }

    /// The embedded data graph (always resident).
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// Total number of components in the file.
    pub fn component_count(&self) -> usize {
        self.offsets.len()
    }

    /// Indices of the components currently in memory (always a prefix).
    pub fn loaded_components(&self) -> Vec<usize> {
        (0..self.loaded()).collect()
    }

    /// Bytes read from the file so far (header + graph + loaded components).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    fn loaded(&self) -> usize {
        self.index.as_ref().map_or(0, |i| i.max_k() + 1)
    }

    /// Ensures components `I0..=Iupto` are resident.
    pub fn ensure_loaded(&mut self, upto: usize) -> Result<(), StoreError> {
        let upto = upto.min(self.offsets.len().saturating_sub(1));
        if self.loaded() > upto {
            return Ok(());
        }
        let mut components: Vec<IndexGraph> = match self.index.take() {
            Some(idx) => idx.into_components(),
            None => Vec::new(),
        };
        for i in components.len()..=upto {
            self.file.seek(SeekFrom::Start(self.offsets[i]))?;
            let budget = self.file_len.saturating_sub(self.offsets[i]);
            let (c, len) = read_section_bounded(
                &mut self.file,
                &format!("component {i}"),
                Some(budget),
                |r| read_component_payload(r, &self.graph),
            )?;
            self.bytes_read += len;
            components.push(c);
        }
        self.index = Some(MStarIndex::from_components(components));
        Ok(())
    }

    /// Answers `path` top-down, loading only the components the query
    /// needs (`I0..I(length)`), under the sound trust policy.
    pub fn query_top_down(&mut self, path: &PathExpr) -> Result<Answer, StoreError> {
        self.query(path, EvalStrategy::TopDown, TrustPolicy::Proven)
    }

    /// Answers `path` with an explicit strategy and policy, loading the
    /// components the strategy needs.
    pub fn query(
        &mut self,
        path: &PathExpr,
        strategy: EvalStrategy,
        policy: TrustPolicy,
    ) -> Result<Answer, StoreError> {
        let len = path.steps().len().saturating_sub(1);
        self.ensure_loaded(len)?;
        match self.index.as_ref() {
            Some(idx) => Ok(idx.query_with_policy(&self.graph, path, strategy, policy)),
            None => Err(StoreError::Format(
                "index file has no loadable components".into(),
            )),
        }
    }

    /// Loads everything and returns the full in-memory index.
    pub fn into_index(mut self) -> Result<(DataGraph, MStarIndex), StoreError> {
        self.ensure_loaded(self.offsets.len().saturating_sub(1))?;
        match self.index {
            Some(idx) => Ok((self.graph, idx)),
            None => Err(StoreError::Format(
                "index file has no loadable components".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::save_mstar;
    use mrx_path::eval_data;

    fn setup(dir: &std::path::Path) -> (DataGraph, std::path::PathBuf) {
        let g = mrx_datagen::nasa_like(2_000, 4);
        let mut idx = MStarIndex::new(&g);
        for expr in [
            "//dataset/reference/source",
            "//reference/source/journal/author/lastname",
            "//dataset/history/ingest",
        ] {
            idx.refine_for(&g, &PathExpr::parse(expr).unwrap());
        }
        let path = dir.join("nasa.mrx");
        save_mstar(&path, &g, &idx).unwrap();
        (g, path)
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mrx-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lazy_loading_touches_only_needed_components() {
        let dir = tempdir();
        let (g, path) = setup(&dir);
        let mut f = MStarFile::open(&path).unwrap();
        assert_eq!(f.component_count(), 5); // I0..I4 (longest FUP has length 4)
        assert!(f.loaded_components().is_empty());
        let after_open = f.bytes_read();

        // A single-label query loads only I0.
        let q0 = PathExpr::parse("//lastname").unwrap();
        let a0 = f.query_top_down(&q0).unwrap();
        assert_eq!(a0.nodes, eval_data(&g, &q0.compile(&g)));
        assert_eq!(f.loaded_components(), vec![0]);
        let after_q0 = f.bytes_read();
        assert!(after_q0 > after_open);

        // A length-2 query extends to I0..I2 but not beyond.
        let q2 = PathExpr::parse("//dataset/reference/source").unwrap();
        let a2 = f.query_top_down(&q2).unwrap();
        assert_eq!(a2.nodes, eval_data(&g, &q2.compile(&g)));
        assert_eq!(f.loaded_components(), vec![0, 1, 2]);
        assert!(f.bytes_read() > after_q0);

        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_answers_match_in_memory_index() {
        let dir = tempdir();
        let (g, path) = setup(&dir);
        let mut f = MStarFile::open(&path).unwrap();
        for expr in [
            "//source/journal",
            "//reference/source/journal/author/lastname",
            "//dataset/history/ingest",
            "//author",
        ] {
            let q = PathExpr::parse(expr).unwrap();
            let ans = f.query_top_down(&q).unwrap();
            assert_eq!(ans.nodes, eval_data(&g, &q.compile(&g)), "{expr}");
        }
        // Full load round-trips to a valid index.
        let (g2, idx) = MStarFile::open(&path).unwrap().into_index().unwrap();
        idx.check_invariants(&g2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_rejects_graph_files() {
        let dir = tempdir();
        let g = mrx_datagen::nasa_like(200, 1);
        let path = dir.join("plain-graph.mrx");
        crate::save_graph(&path, &g).unwrap();
        assert!(matches!(MStarFile::open(&path), Err(StoreError::Format(_))));
        std::fs::remove_file(path).ok();
    }
}
