//! The `.mrx` binary format.
//!
//! ```text
//! graph file     := "MRXGRAPH" u32(version=1) graph-payload u64(fnv64)
//! graph-payload  := u32(nlabels) string* u32(nnodes) node* u32(nrefs) (u32 u32)*
//! node           := u32(label) u32(tree_parent | u32::MAX)
//!
//! index file     := "MRXSTAR1" u32(version=1) u32(ncomponents)
//!                   section(graph-payload) dir section(component)*
//! dir            := u64(absolute offset of each component section)*
//! section(p)     := u64(len(p)) p u64(fnv64(p))
//! component      := u32(nnodes) (u32(k) u32(genuine) u32(len) u32(extent)*)*
//! ```
//!
//! Index edges and node labels are derived on load (edges are induced by
//! extents; the label is the label of any extent member).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mrx_graph::{DataGraph, GraphBuilder, NodeId};
use mrx_index::{IndexGraph, MStarIndex};

use crate::wire::{Fnv64, HashingReader, HashingWriter};

pub(crate) const GRAPH_MAGIC: &[u8; 8] = b"MRXGRAPH";
pub(crate) const STAR_MAGIC: &[u8; 8] = b"MRXSTAR1";
pub(crate) const VERSION: u32 = 1;
/// Version tag of the flat (frozen-snapshot) index layout — see
/// [`crate::flat`].
pub(crate) const VERSION_FLAT: u32 = 2;
/// Version tag of the compressed flat layout with pre-tag (varint-only)
/// posting arenas — still readable; see [`crate::flat`].
pub(crate) const VERSION_FLAT_C: u32 = 3;
/// Version tag of the demand-paged layout with pre-tag posting arenas —
/// still readable; eager graph + per-component meta sections + a
/// page-checksummed paged region served through a cache.
pub(crate) const VERSION_PAGED: u32 = 4;
/// Version tag of the compressed flat layout with encoding-tagged posting
/// blocks (varint / bit-packed / run, chosen per block) — what the
/// compressed writer emits.
pub(crate) const VERSION_FLAT_C_TAGGED: u32 = 5;
/// Version tag of the demand-paged layout with encoding-tagged posting
/// blocks — what the paged writer emits.
pub(crate) const VERSION_PAGED_TAGGED: u32 = 6;
const MAX_LABEL_LEN: usize = 64 * 1024;

pub use mrx_error::StoreError;

pub(crate) fn format_err(m: impl Into<String>) -> StoreError {
    StoreError::Format(m.into())
}

// ---------------------------------------------------------------------
// Graph payload
// ---------------------------------------------------------------------

pub(crate) fn write_graph_payload<W: Write>(
    w: &mut HashingWriter<W>,
    g: &DataGraph,
) -> io::Result<()> {
    w.write_u32(g.labels().len() as u32)?;
    for (_, name) in g.labels().iter() {
        w.write_str(name)?;
    }
    w.write_u32(g.node_count() as u32)?;
    for v in g.nodes() {
        w.write_u32(g.label(v).0)?;
        w.write_u32(g.tree_parent(v).map_or(u32::MAX, |p| p.0))?;
    }
    w.write_u32(g.ref_edge_count() as u32)?;
    for &(from, to) in g.ref_edges() {
        w.write_u32(from.0)?;
        w.write_u32(to.0)?;
    }
    Ok(())
}

pub(crate) fn read_graph_payload<R: Read>(
    r: &mut HashingReader<R>,
) -> Result<DataGraph, StoreError> {
    let nlabels = r.read_u32()? as usize;
    if nlabels > 10_000_000 {
        return Err(format_err(format!("implausible label count {nlabels}")));
    }
    let mut b = GraphBuilder::new();
    let mut labels = Vec::with_capacity(nlabels);
    for _ in 0..nlabels {
        let name = r.read_str(MAX_LABEL_LEN)?;
        labels.push(b.intern(&name));
    }
    let nnodes = r.read_u32()? as usize;
    if nnodes == 0 {
        return Err(format_err("graph has no nodes"));
    }
    let mut parents = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        let label = r.read_u32()? as usize;
        let label = *labels
            .get(label)
            .ok_or_else(|| format_err(format!("label id {label} out of range")))?;
        b.add_node_with(label);
        parents.push(r.read_u32()?);
    }
    for (child, &parent) in parents.iter().enumerate() {
        if parent == u32::MAX {
            continue;
        }
        if parent as usize >= nnodes || parent as usize == child {
            return Err(format_err(format!("invalid tree parent {parent}")));
        }
        b.add_tree_edge(NodeId(parent), NodeId(child as u32));
    }
    let nrefs = r.read_u32()? as usize;
    for _ in 0..nrefs {
        let from = r.read_u32()?;
        let to = r.read_u32()?;
        if from as usize >= nnodes || to as usize >= nnodes {
            return Err(format_err("reference edge endpoint out of range"));
        }
        b.add_ref(NodeId(from), NodeId(to));
    }
    Ok(b.freeze())
}

// ---------------------------------------------------------------------
// Component payload
// ---------------------------------------------------------------------

pub(crate) fn write_component_payload<W: Write>(
    w: &mut HashingWriter<W>,
    ig: &IndexGraph,
) -> io::Result<()> {
    let parts = ig.export_extents();
    w.write_u32(parts.len() as u32)?;
    for (extent, k, genuine) in parts {
        w.write_u32(k)?;
        w.write_u32(genuine)?;
        w.write_u32(extent.len() as u32)?;
        for o in extent {
            w.write_u32(o.0)?;
        }
    }
    Ok(())
}

pub(crate) fn read_component_payload<R: Read>(
    r: &mut HashingReader<R>,
    g: &DataGraph,
) -> Result<IndexGraph, StoreError> {
    let nnodes = r.read_u32()? as usize;
    if nnodes == 0 || nnodes > g.node_count() {
        return Err(format_err(format!("implausible index node count {nnodes}")));
    }
    let mut parts = Vec::with_capacity(nnodes);
    let mut total = 0usize;
    for _ in 0..nnodes {
        let k = r.read_u32()?;
        let genuine = r.read_u32()?;
        let len = r.read_u32()? as usize;
        total += len;
        if total > g.node_count() {
            return Err(format_err("extents exceed the data graph"));
        }
        let mut extent = Vec::with_capacity(len);
        for _ in 0..len {
            let o = r.read_u32()?;
            if o as usize >= g.node_count() {
                return Err(format_err(format!("extent member {o} out of range")));
            }
            extent.push(NodeId(o));
        }
        if !extent.windows(2).all(|w| w[0] < w[1]) {
            return Err(format_err("extent not sorted"));
        }
        parts.push((extent, k, genuine));
    }
    if total != g.node_count() {
        return Err(format_err(format!(
            "extents cover {total} of {} data nodes",
            g.node_count()
        )));
    }
    Ok(IndexGraph::from_extents(g, parts))
}

/// Writes `[len][payload][digest]` and returns bytes written.
pub(crate) fn write_section<W: Write>(out: &mut W, payload: &[u8]) -> io::Result<u64> {
    out.write_all(&(payload.len() as u64).to_le_bytes())?;
    out.write_all(payload)?;
    let mut h = Fnv64::new();
    h.update(payload);
    out.write_all(&h.finish().to_le_bytes())?;
    Ok(8 + payload.len() as u64 + 8)
}

/// Serializes a value into an in-memory payload via a hashing writer.
pub(crate) fn to_payload(
    f: impl FnOnce(&mut HashingWriter<&mut Vec<u8>>) -> io::Result<()>,
) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    let mut w = HashingWriter::new(&mut buf);
    f(&mut w)?;
    Ok(buf)
}

// ---------------------------------------------------------------------
// Public save/load
// ---------------------------------------------------------------------

/// Saves a data graph to `path`.
pub fn save_graph(path: impl AsRef<Path>, g: &DataGraph) -> Result<(), StoreError> {
    let file = File::create(path)?;
    save_graph_to(BufWriter::new(file), g)
}

/// Saves a data graph to an arbitrary writer.
pub fn save_graph_to<W: Write>(mut out: W, g: &DataGraph) -> Result<(), StoreError> {
    out.write_all(GRAPH_MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    let payload = to_payload(|w| write_graph_payload(w, g))?;
    write_section(&mut out, &payload)?;
    out.flush()?;
    Ok(())
}

/// Loads a data graph from `path`.
///
/// Knowing the file size up front lets every declared section length be
/// checked against the bytes actually present *before* any allocation or
/// streaming happens — a corrupted or hostile length prefix fails fast.
pub fn load_graph(path: impl AsRef<Path>) -> Result<DataGraph, StoreError> {
    let file = File::open(path)?;
    let size = file.metadata()?.len();
    load_graph_impl(BufReader::new(file), Some(size))
}

/// Loads a data graph from an arbitrary reader (unknown total size; section
/// lengths are still capped and truncation still detected, just after
/// streaming rather than up front).
pub fn load_graph_from<R: Read>(input: R) -> Result<DataGraph, StoreError> {
    load_graph_impl(input, None)
}

fn load_graph_impl<R: Read>(mut input: R, size: Option<u64>) -> Result<DataGraph, StoreError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != GRAPH_MAGIC {
        return Err(format_err("not an mrx graph file (bad magic)"));
    }
    let mut vbuf = [0u8; 4];
    input.read_exact(&mut vbuf)?;
    let version = u32::from_le_bytes(vbuf);
    if version != VERSION {
        return Err(format_err(format!("unsupported version {version}")));
    }
    let remaining = size.map(|s| s.saturating_sub(12));
    // The closure is not redundant: a bare fn pointer fails higher-ranked
    // lifetime inference for the generic decode parameter.
    #[allow(clippy::redundant_closure)]
    let (g, _) = read_section_bounded(&mut input, "graph", remaining, |r| read_graph_payload(r))?;
    Ok(g)
}

/// Reads `[len][payload][digest]`, verifying the checksum, with an optional
/// byte budget: when the caller knows how many bytes remain in the file, a
/// declared length that overflows them is rejected *before* anything is
/// allocated or streamed. Returns the decoded value and the section's total
/// length in bytes.
pub(crate) fn read_section_bounded<R: Read, T>(
    input: &mut R,
    name: &str,
    remaining: Option<u64>,
    decode: impl FnOnce(&mut HashingReader<&[u8]>) -> Result<T, StoreError>,
) -> Result<(T, u64), StoreError> {
    let mut lbuf = [0u8; 8];
    input.read_exact(&mut lbuf)?;
    let len = u64::from_le_bytes(lbuf) as usize;
    if len > 1 << 40 {
        return Err(format_err(format!("section `{name}` implausibly large")));
    }
    if let Some(rem) = remaining {
        if 8 + len as u64 + 8 > rem {
            return Err(format_err(format!(
                "section `{name}` declares {len} bytes but only {} remain in the file",
                rem.saturating_sub(16)
            )));
        }
    }
    // Stream rather than preallocate: a corrupted length prefix must fail
    // with a clean error (short read -> here, bit flip -> checksum), never
    // abort the process on a giant allocation.
    let mut payload = Vec::with_capacity(len.min(1 << 20));
    input.take(len as u64).read_to_end(&mut payload)?;
    if payload.len() != len {
        return Err(format_err(format!(
            "section `{name}` truncated: expected {len} bytes, got {}",
            payload.len()
        )));
    }
    let mut dbuf = [0u8; 8];
    input.read_exact(&mut dbuf)?;
    let expected = u64::from_le_bytes(dbuf);
    let mut h = Fnv64::new();
    h.update(&payload);
    if h.finish() != expected {
        return Err(StoreError::Checksum {
            section: name.to_string(),
        });
    }
    // String allocations while decoding are bounded by the section's own
    // size: even a loop of individually-valid string lengths cannot
    // allocate more than the bytes that are supposed to contain them.
    let mut r = HashingReader::with_str_budget(&payload[..], len as u64);
    let value = decode(&mut r)?;
    if r.bytes_read() != len as u64 {
        return Err(format_err(format!(
            "section `{name}` has {} trailing bytes",
            len as u64 - r.bytes_read()
        )));
    }
    Ok((value, 8 + len as u64 + 8))
}

/// Saves a data graph plus its M*(k)-index to `path`.
pub fn save_mstar(
    path: impl AsRef<Path>,
    g: &DataGraph,
    idx: &MStarIndex,
) -> Result<(), StoreError> {
    let file = File::create(path)?;
    save_mstar_to(BufWriter::new(file), g, idx)
}

/// Saves a data graph plus its M*(k)-index to an arbitrary writer.
pub fn save_mstar_to<W: Write>(
    mut out: W,
    g: &DataGraph,
    idx: &MStarIndex,
) -> Result<(), StoreError> {
    let ncomp = idx.max_k() + 1;
    out.write_all(STAR_MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(ncomp as u32).to_le_bytes())?;

    let graph_payload = to_payload(|w| write_graph_payload(w, g))?;
    let component_payloads: Vec<Vec<u8>> = (0..ncomp)
        .map(|i| to_payload(|w| write_component_payload(w, idx.component(i))))
        .collect::<io::Result<_>>()?;

    // Directory of absolute component offsets.
    let header_len = 8 + 4 + 4;
    let graph_section_len = 8 + graph_payload.len() as u64 + 8;
    let dir_len = 8 * ncomp as u64;
    let mut offset = header_len + graph_section_len + dir_len;
    let mut dir = Vec::with_capacity(ncomp);
    for p in &component_payloads {
        dir.push(offset);
        offset += 8 + p.len() as u64 + 8;
    }

    write_section(&mut out, &graph_payload)?;
    for o in &dir {
        out.write_all(&o.to_le_bytes())?;
    }
    for p in &component_payloads {
        write_section(&mut out, p)?;
    }
    out.flush()?;
    Ok(())
}

/// Loads a complete `(graph, index)` pair from `path` (eager; use
/// [`crate::MStarFile`] for lazy loading).
///
/// Section lengths are checked against the file size before any section is
/// allocated or streamed (see [`load_graph`]).
pub fn load_mstar(path: impl AsRef<Path>) -> Result<(DataGraph, MStarIndex), StoreError> {
    let file = File::open(path)?;
    let size = file.metadata()?.len();
    load_mstar_impl(BufReader::new(file), Some(size))
}

/// Loads a complete `(graph, index)` pair from an arbitrary reader.
pub fn load_mstar_from<R: Read>(input: R) -> Result<(DataGraph, MStarIndex), StoreError> {
    load_mstar_impl(input, None)
}

fn load_mstar_impl<R: Read>(
    mut input: R,
    size: Option<u64>,
) -> Result<(DataGraph, MStarIndex), StoreError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != STAR_MAGIC {
        return Err(format_err("not an mrx index file (bad magic)"));
    }
    let mut buf4 = [0u8; 4];
    input.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version == VERSION_FLAT || version == VERSION_FLAT_C || version == VERSION_FLAT_C_TAGGED {
        return Err(format_err(format!(
            "flat (v{version}) snapshot; load it with the frozen reader",
        )));
    }
    if version == VERSION_PAGED || version == VERSION_PAGED_TAGGED {
        return Err(format_err(format!(
            "paged (v{version}) snapshot; open it with the paged reader",
        )));
    }
    if version != VERSION {
        return Err(format_err(format!("unsupported version {version}")));
    }
    input.read_exact(&mut buf4)?;
    let ncomp = u32::from_le_bytes(buf4) as usize;
    if ncomp == 0 || ncomp > 4096 {
        return Err(format_err(format!("implausible component count {ncomp}")));
    }
    let mut remaining = size.map(|s| s.saturating_sub(16));
    // The closure is not redundant: a bare fn pointer fails higher-ranked
    // lifetime inference for the generic decode parameter.
    #[allow(clippy::redundant_closure)]
    let (g, glen) =
        read_section_bounded(&mut input, "graph", remaining, |r| read_graph_payload(r))?;
    if let Some(rem) = remaining.as_mut() {
        *rem = rem.saturating_sub(glen + 8 * ncomp as u64);
    }
    // Skip the directory (sequential read needs no seeking).
    let mut dir = vec![0u8; 8 * ncomp];
    input.read_exact(&mut dir)?;
    let mut components = Vec::with_capacity(ncomp);
    for i in 0..ncomp {
        let (c, clen) =
            read_section_bounded(&mut input, &format!("component {i}"), remaining, |r| {
                read_component_payload(r, &g)
            })?;
        if let Some(rem) = remaining.as_mut() {
            *rem = rem.saturating_sub(clen);
        }
        components.push(c);
    }
    Ok((g, MStarIndex::from_components(components)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_graph::xml::parse;
    use mrx_index::EvalStrategy;
    use mrx_path::{eval_data, PathExpr};

    fn sample() -> DataGraph {
        parse(
            r#"<site><people><person id="p"><name/></person></people>
               <auction><seller person="p"/></auction></site>"#,
        )
        .unwrap()
    }

    #[test]
    fn graph_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph_to(&mut buf, &g).unwrap();
        let g2 = load_graph_from(&buf[..]).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.ref_edge_count(), g.ref_edge_count());
        for v in g.nodes() {
            assert_eq!(g.label_str(g.label(v)), g2.label_str(g2.label(v)));
            assert_eq!(g.children(v), g2.children(v));
        }
    }

    #[test]
    fn mstar_roundtrip_preserves_answers_and_sizes() {
        let g = sample();
        let mut idx = mrx_index::MStarIndex::new(&g);
        idx.refine_for(&g, &PathExpr::parse("//auction/seller/person").unwrap());
        let mut buf = Vec::new();
        save_mstar_to(&mut buf, &g, &idx).unwrap();
        let (g2, idx2) = load_mstar_from(&buf[..]).unwrap();
        idx2.check_invariants(&g2);
        assert_eq!(idx2.max_k(), idx.max_k());
        assert_eq!(idx2.node_count(), idx.node_count());
        assert_eq!(idx2.edge_count(), idx.edge_count());
        for expr in ["//person", "//seller/person", "//auction/seller/person"] {
            let q = PathExpr::parse(expr).unwrap();
            let ans = idx2.query(&g2, &q, EvalStrategy::TopDown);
            assert_eq!(ans.nodes, eval_data(&g2, &q.compile(&g2)), "{expr}");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph_to(&mut buf, &g).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        match load_graph_from(&buf[..]) {
            Err(StoreError::Checksum { section }) => assert_eq!(section, "graph"),
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let g = sample();
        let mut buf = Vec::new();
        save_graph_to(&mut buf, &g).unwrap();
        // graph file fed to the index loader
        assert!(matches!(
            load_mstar_from(&buf[..]),
            Err(StoreError::Format(_))
        ));
        // truncated file
        assert!(load_graph_from(&buf[..6]).is_err());
        // bumped version
        let mut v = buf.clone();
        v[8] = 99;
        assert!(matches!(
            load_graph_from(&v[..]),
            Err(StoreError::Format(_))
        ));
    }

    #[test]
    fn error_display_formats() {
        let e = StoreError::Checksum {
            section: "graph".into(),
        };
        assert!(e.to_string().contains("graph"));
        let e = format_err("boom");
        assert!(e.to_string().contains("boom"));
        let e: StoreError = io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
    }
}
