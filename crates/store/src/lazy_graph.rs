//! The lazily-loaded data graph behind the demand-paged (v4) snapshot.
//!
//! [`GraphView`] hands out borrowed slices (`children(v) -> &[NodeId]`),
//! so the graph cannot be served through an evicting page cache directly —
//! a borrow must stay valid for as long as the caller holds it. What *can*
//! be deferred is the load itself: [`LazyGraph`] keeps only the label-name
//! arena and the counts resident (everything `PathExpr::compile` needs)
//! and splits the four big arrays into independently checksummed **unit
//! sections** that materialize on first access:
//!
//! * `labels` — per-node label ids,
//! * `children` — forward CSR (offsets + targets),
//! * `parents` — backward CSR,
//! * `labelext` — the label→nodes CSR.
//!
//! A top-down query under [`TrustPolicy::Proven`] touches only `labels`
//! and `parents` (the backward validator); `children` and `labelext`
//! stay on disk. That asymmetry is most of the v4 cold-start win: the
//! eager v2/v3 loaders deserialize and validate every array element
//! through a byte-hashing reader before the first answer, while the lazy
//! units load as single bulk reads verified with the word-folded FNV-64
//! ([`fnv64_words`]) and validated with the same structural checks
//! [`FrozenGraph::validate`] runs — just per unit, on first touch.
//!
//! # Failure model
//!
//! Accessors are infallible by trait contract, so a unit that fails its
//! checksum or structural validation **poisons the shared
//! [`PageCache`]** and falls back to a structurally-safe empty shape
//! (no rows, label 0). The serving layer checks the poison slot after
//! every query and returns the typed error instead of the answer — the
//! same always-caught-before-serving contract the paged region has.
//!
//! [`TrustPolicy::Proven`]: mrx_index::TrustPolicy

use std::cell::{Cell, OnceCell};
use std::io::{self, Write};
use std::rc::Rc;

use mrx_graph::{FrozenGraph, GraphView, LabelId, NodeId};
use mrx_pagecache::{fnv64_words, PageCache};

use crate::format::{format_err, StoreError};
use crate::wire::{HashingReader, HashingWriter};

/// Number of lazily-loaded unit sections.
pub(crate) const GRAPH_UNITS: usize = 4;

/// The eagerly-loaded core of a v4 graph: counts, root, and the validated
/// label-name arena. Everything query compilation touches, nothing sized
/// by the corpus.
pub(crate) struct GraphCore {
    pub n: usize,
    pub root: NodeId,
    pub nedges: usize,
    pub npedges: usize,
    pub name_off: Vec<u32>,
    pub name_bytes: Vec<u8>,
    pub name_order: Vec<u32>,
}

impl GraphCore {
    pub fn num_labels(&self) -> usize {
        self.name_order.len()
    }

    /// Payload byte length of unit `i`, derived from the core counts (the
    /// unit frames repeat it, and the reader cross-checks).
    pub fn unit_len(&self, i: usize) -> u64 {
        let (rows, tgts) = match i {
            0 => return 4 * self.n as u64,
            1 => (self.n + 1, self.nedges),
            2 => (self.n + 1, self.npedges),
            _ => (self.num_labels() + 1, self.n),
        };
        4 * (rows as u64 + tgts as u64)
    }
}

/// Serializes the eager graph core (standard byte-hashed section payload).
pub(crate) fn write_graph_core<W: Write>(
    w: &mut HashingWriter<W>,
    g: &FrozenGraph,
) -> io::Result<()> {
    w.write_u32(g.node_count() as u32)?;
    w.write_u32(g.root().0)?;
    w.write_u32(g.child_tgt.len() as u32)?;
    w.write_u32(g.parent_tgt.len() as u32)?;
    crate::flat::write_arr(w, g.name_off.iter().copied())?;
    crate::flat::write_bytes(w, &g.name_bytes)?;
    crate::flat::write_arr(w, g.name_order.iter().copied())
}

/// Deserializes and validates the eager core: name arena shape, UTF-8,
/// sorted `name_order` permutation, root in range. The unit arrays are
/// *not* read here — only their lengths become computable.
pub(crate) fn read_graph_core(r: &mut HashingReader<&[u8]>) -> Result<GraphCore, StoreError> {
    let n = r.read_u32()? as usize;
    if n == 0 {
        return Err(format_err("paged graph has no nodes"));
    }
    let root = NodeId(r.read_u32()?);
    if root.index() >= n {
        return Err(format_err(format!("root {} out of range", root.0)));
    }
    let nedges = r.read_u32()? as usize;
    let npedges = r.read_u32()? as usize;
    let name_off = crate::flat::read_arr(r, "name_off", |v| v)?;
    let name_bytes = crate::flat::read_bytes(r, "name_bytes")?;
    let name_order = crate::flat::read_arr(r, "name_order", |v| v)?;
    let nl = name_order.len();
    if nl == 0 {
        return Err(format_err("paged graph has no labels"));
    }
    if name_off.len() != nl + 1 {
        return Err(format_err(format!(
            "name offsets: {} entries for {nl} labels",
            name_off.len()
        )));
    }
    if name_off[0] != 0 || name_off[nl] as usize != name_bytes.len() {
        return Err(format_err("name offsets do not span the arena"));
    }
    if name_off.windows(2).any(|w| w[0] > w[1]) {
        return Err(format_err("name offsets not monotone"));
    }
    for l in 0..nl {
        let (lo, hi) = (name_off[l] as usize, name_off[l + 1] as usize);
        if std::str::from_utf8(&name_bytes[lo..hi]).is_err() {
            return Err(format_err(format!("label {l} name is not UTF-8")));
        }
    }
    let mut seen = vec![false; nl];
    for &l in &name_order {
        if l as usize >= nl || std::mem::replace(&mut seen[l as usize], true) {
            return Err(format_err("name_order is not a permutation of label ids"));
        }
    }
    let name_at =
        |l: u32| &name_bytes[name_off[l as usize] as usize..name_off[l as usize + 1] as usize];
    if name_order.windows(2).any(|w| name_at(w[0]) > name_at(w[1])) {
        return Err(format_err("name_order not sorted by name"));
    }
    Ok(GraphCore {
        n,
        root,
        nedges,
        npedges,
        name_off,
        name_bytes,
        name_order,
    })
}

/// The raw little-endian payloads of the four unit sections, in unit
/// order. The writer frames each as `u64(len) payload u64(fnv64_words)`.
pub(crate) fn graph_unit_payloads(g: &FrozenGraph) -> [Vec<u8>; GRAPH_UNITS] {
    fn push_u32s(out: &mut Vec<u8>, it: impl Iterator<Item = u32>) {
        for v in it {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut labels = Vec::with_capacity(4 * g.node_count());
    push_u32s(&mut labels, g.node_labels.iter().map(|l| l.0));
    let mut children = Vec::with_capacity(4 * (g.child_off.len() + g.child_tgt.len()));
    push_u32s(&mut children, g.child_off.iter().copied());
    push_u32s(&mut children, g.child_tgt.iter().map(|v| v.0));
    let mut parents = Vec::with_capacity(4 * (g.parent_off.len() + g.parent_tgt.len()));
    push_u32s(&mut parents, g.parent_off.iter().copied());
    push_u32s(&mut parents, g.parent_tgt.iter().map(|v| v.0));
    let mut labelext = Vec::with_capacity(4 * (g.label_off.len() + g.label_tgt.len()));
    push_u32s(&mut labelext, g.label_off.iter().copied());
    push_u32s(&mut labelext, g.label_tgt.iter().map(|v| v.0));
    [labels, children, parents, labelext]
}

/// Little-endian `u32` lanes of `bytes` (sub-word tail ignored; unit
/// payload lengths are exact multiples of four by construction).
fn decode_u32s(bytes: &[u8]) -> impl Iterator<Item = u32> + '_ {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
}

const UNIT_NAMES: [&str; GRAPH_UNITS] = [
    "graph labels",
    "graph children",
    "graph parents",
    "graph label extents",
];

/// One direction of CSR adjacency (or the label→nodes CSR).
struct Csr {
    off: Vec<u32>,
    tgt: Vec<NodeId>,
}

impl Csr {
    fn row(&self, i: usize) -> &[NodeId] {
        &self.tgt[self.off[i] as usize..self.off[i + 1] as usize]
    }

    /// The structurally-safe fallback installed when a unit fails to load:
    /// every row empty. Slicing can never go out of bounds, so evaluation
    /// runs to completion and the poisoned cache discards the answer.
    fn empty(rows: usize) -> Csr {
        Csr {
            off: vec![0; rows + 1],
            tgt: Vec::new(),
        }
    }
}

/// A [`GraphView`] whose adjacency loads on first touch — see the module
/// docs. Create via the v4 reader ([`crate::PagedFile`]); hand it to any
/// evaluator generic over [`GraphView`].
pub struct LazyGraph {
    cache: Rc<PageCache>,
    core: GraphCore,
    /// Absolute file offset of each unit section frame.
    unit_off: [u64; GRAPH_UNITS],
    labels: OnceCell<Vec<LabelId>>,
    children: OnceCell<Csr>,
    parents: OnceCell<Csr>,
    labelext: OnceCell<Csr>,
    lazy_bytes: Cell<u64>,
}

impl LazyGraph {
    pub(crate) fn new(core: GraphCore, unit_off: [u64; GRAPH_UNITS], cache: Rc<PageCache>) -> Self {
        LazyGraph {
            cache,
            core,
            unit_off,
            labels: OnceCell::new(),
            children: OnceCell::new(),
            parents: OnceCell::new(),
            labelext: OnceCell::new(),
            lazy_bytes: Cell::new(0),
        }
    }

    /// Reads and digest-checks unit `i`'s payload (one bulk positioned
    /// read; no per-element hashing).
    fn unit_bytes(&self, i: usize) -> Result<Vec<u8>, StoreError> {
        let expect = self.core.unit_len(i);
        let off = self.unit_off[i];
        let mut word = [0u8; 8];
        self.cache.read_unpaged(off, &mut word)?;
        if u64::from_le_bytes(word) != expect {
            return Err(format_err(format!(
                "{} frame declares {} bytes, core counts say {expect}",
                UNIT_NAMES[i],
                u64::from_le_bytes(word)
            )));
        }
        let mut buf = vec![0u8; expect as usize];
        self.cache.read_unpaged(off + 8, &mut buf)?;
        self.cache.read_unpaged(off + 8 + expect, &mut word)?;
        if fnv64_words(&buf) != u64::from_le_bytes(word) {
            return Err(StoreError::Checksum {
                section: UNIT_NAMES[i].into(),
            });
        }
        self.lazy_bytes.set(self.lazy_bytes.get() + 16 + expect);
        Ok(buf)
    }

    fn load_labels(&self) -> Result<Vec<LabelId>, StoreError> {
        let buf = self.unit_bytes(0)?;
        let nl = self.core.num_labels() as u32;
        // Bulk-convert, then range-check in a separate pass: both loops
        // vectorize, where a fused check-as-you-push loop does not — this
        // load is on the time-to-first-answer critical path.
        let out: Vec<LabelId> = decode_u32s(&buf).map(LabelId).collect();
        if let Some(bad) = out.iter().map(|l| l.0).max().filter(|&m| m >= nl) {
            return Err(format_err(format!("node label {bad} out of range")));
        }
        Ok(out)
    }

    /// Loads one CSR unit and runs the same structural checks the eager
    /// loader's `FrozenGraph::validate` applies: offset shape/monotonicity
    /// and target ids in range.
    fn load_csr(&self, i: usize, rows: usize, id_bound: u32) -> Result<Csr, StoreError> {
        let buf = self.unit_bytes(i)?;
        let err = |m: String| format_err(format!("{}: {m}", UNIT_NAMES[i]));
        // Same split as `load_labels`: bulk conversion first, then whole-
        // array validation scans that run at memory bandwidth.
        let (off_bytes, tgt_bytes) = buf.split_at(4 * (rows + 1));
        let off: Vec<u32> = decode_u32s(off_bytes).collect();
        let tgt: Vec<NodeId> = decode_u32s(tgt_bytes).map(NodeId).collect();
        if off[0] != 0 || off[rows] as usize != tgt.len() {
            return Err(err("offsets do not span the target array".into()));
        }
        if off.windows(2).any(|w| w[0] > w[1]) {
            return Err(err("offsets not monotone".into()));
        }
        if let Some(bad) = tgt.iter().map(|v| v.0).max().filter(|&m| m >= id_bound) {
            return Err(err(format!("target id {bad} out of range")));
        }
        Ok(Csr { off, tgt })
    }

    /// Loads the label→nodes CSR with its cross-checks against the label
    /// array (which this may itself fault in).
    fn load_labelext(&self) -> Result<Csr, StoreError> {
        let nl = self.core.num_labels();
        let csr = self.load_csr(3, nl, self.core.n as u32)?;
        if csr.tgt.len() != self.core.n {
            return Err(format_err("label CSR does not cover every node"));
        }
        let labels = self.labels_arr();
        for l in 0..nl {
            let nodes = csr.row(l);
            if nodes.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format_err(format!(
                    "label {l} extent not strictly ascending"
                )));
            }
            if nodes.iter().any(|&v| labels[v.index()].index() != l) {
                return Err(format_err(format!(
                    "label {l} extent disagrees with node labels"
                )));
            }
        }
        Ok(csr)
    }

    fn labels_arr(&self) -> &[LabelId] {
        self.labels.get_or_init(|| match self.load_labels() {
            Ok(v) => v,
            Err(e) => {
                self.cache.poison(e);
                vec![LabelId(0); self.core.n]
            }
        })
    }

    fn children_csr(&self) -> &Csr {
        self.children
            .get_or_init(|| match self.load_csr(1, self.core.n, self.core.n as u32) {
                Ok(c) => c,
                Err(e) => {
                    self.cache.poison(e);
                    Csr::empty(self.core.n)
                }
            })
    }

    fn parents_csr(&self) -> &Csr {
        self.parents
            .get_or_init(|| match self.load_csr(2, self.core.n, self.core.n as u32) {
                Ok(c) => c,
                Err(e) => {
                    self.cache.poison(e);
                    Csr::empty(self.core.n)
                }
            })
    }

    fn labelext_csr(&self) -> &Csr {
        self.labelext.get_or_init(|| match self.load_labelext() {
            Ok(c) => c,
            Err(e) => {
                self.cache.poison(e);
                Csr::empty(self.core.num_labels())
            }
        })
    }

    /// Number of nodes (eager; ids are dense in `0..node_count()`).
    pub fn node_count(&self) -> usize {
        self.core.n
    }

    /// Number of directed edges (eager count; the arrays may be cold).
    pub fn edge_count(&self) -> usize {
        self.core.nedges
    }

    /// Number of distinct labels (eager).
    pub fn num_labels(&self) -> usize {
        self.core.num_labels()
    }

    /// The root node (eager).
    pub fn root(&self) -> NodeId {
        self.core.root
    }

    /// Bytes of unit sections materialized so far (frames included) —
    /// the lazy complement of the reader's eager `bytes_read`.
    pub fn lazy_bytes_loaded(&self) -> u64 {
        self.lazy_bytes.get()
    }

    /// Digest-checks all four unit sections straight from the source
    /// without materializing or caching them — the offline integrity pass
    /// behind [`crate::PagedFile::verify`]. Serving instead verifies each
    /// unit lazily on first touch.
    pub fn verify_units(&self) -> Result<(), StoreError> {
        for i in 0..GRAPH_UNITS {
            self.unit_bytes(i)?;
        }
        Ok(())
    }

    /// Forces every unit resident, propagating the first load error
    /// instead of poisoning — the fallible bulk counterpart of the
    /// accessors.
    pub fn ensure_all(&self) -> Result<(), StoreError> {
        if self.labels.get().is_none() {
            let v = self.load_labels()?;
            let _ = self.labels.set(v);
        }
        if self.children.get().is_none() {
            let v = self.load_csr(1, self.core.n, self.core.n as u32)?;
            let _ = self.children.set(v);
        }
        if self.parents.get().is_none() {
            let v = self.load_csr(2, self.core.n, self.core.n as u32)?;
            let _ = self.parents.set(v);
        }
        if self.labelext.get().is_none() {
            let v = self.load_labelext()?;
            let _ = self.labelext.set(v);
        }
        Ok(())
    }

    /// Materializes everything into an owned [`FrozenGraph`] (with its
    /// full structural validation) — the round-trip/diagnostic exit, not
    /// a serving path.
    pub fn to_frozen(&self) -> Result<FrozenGraph, StoreError> {
        self.ensure_all()?;
        let children = self.children_csr();
        let parents = self.parents_csr();
        let labelext = self.labelext_csr();
        let g = FrozenGraph {
            node_labels: self.labels_arr().to_vec(),
            child_off: children.off.clone(),
            child_tgt: children.tgt.clone(),
            parent_off: parents.off.clone(),
            parent_tgt: parents.tgt.clone(),
            label_off: labelext.off.clone(),
            label_tgt: labelext.tgt.clone(),
            name_off: self.core.name_off.clone(),
            name_bytes: self.core.name_bytes.clone(),
            name_order: self.core.name_order.clone(),
            root: self.core.root,
        };
        g.validate().map_err(format_err)?;
        Ok(g)
    }
}

impl GraphView for LazyGraph {
    fn node_count(&self) -> usize {
        self.core.n
    }

    fn root(&self) -> NodeId {
        self.core.root
    }

    fn label(&self, v: NodeId) -> LabelId {
        self.labels_arr()[v.index()]
    }

    fn children(&self, v: NodeId) -> &[NodeId] {
        self.children_csr().row(v.index())
    }

    fn parents(&self, v: NodeId) -> &[NodeId] {
        self.parents_csr().row(v.index())
    }

    fn label_nodes(&self, l: LabelId) -> &[NodeId] {
        self.labelext_csr().row(l.index())
    }

    fn label_lookup(&self, name: &str) -> Option<LabelId> {
        self.core
            .name_order
            .binary_search_by(|&l| self.label_str(LabelId(l)).cmp(name))
            .ok()
            .map(|pos| LabelId(self.core.name_order[pos]))
    }

    fn label_str(&self, l: LabelId) -> &str {
        let i = l.index();
        let bytes = &self.core.name_bytes
            [self.core.name_off[i] as usize..self.core.name_off[i + 1] as usize];
        // The name arena was UTF-8-validated when the core section loaded;
        // the fallback keeps this surface panic-free regardless.
        std::str::from_utf8(bytes).unwrap_or("")
    }

    fn num_labels(&self) -> usize {
        self.core.num_labels()
    }
}
