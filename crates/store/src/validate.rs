//! Swap-safe snapshot opening: one entry point that loads **and fully
//! validates** any `.mrx` snapshot version before a byte of it is served.
//!
//! A long-running server that hot-swaps snapshots must never fence in a
//! file it has not proven sound: a torn write, a truncated upload, or a
//! bit flip discovered *after* the swap would take down every tenant at
//! once. [`open_validated`] therefore front-loads every check the lazy
//! readers normally spread over the file's lifetime:
//!
//! * **framing + checksums** — every section is read and verified (for the
//!   demand-paged layouts this means faulting and verifying every page via
//!   [`PagedFile::verify`], plus materializing every lazy graph unit);
//! * **structural validation** — the decoded graph and index pass the same
//!   invariant sweeps the freezers run (`FrozenGraph::validate`,
//!   `FrozenMStar::validate`, `CompressedMStar::validate`);
//! * **degradation policy** — the eager flat readers can rebuild an
//!   unreadable component as live `A(i)`; `strict` mode refuses such a
//!   file outright (a replacement snapshot should be *pristine*), while
//!   lenient mode accepts it and reports which components were rebuilt.

use std::path::Path;

use mrx_graph::FrozenGraph;
use mrx_index::{CompressedMStar, FrozenMStar};

use crate::file::MStarFile;
use crate::flat::{snapshot_version, CompressedFile, FrozenFile};
use crate::format::StoreError;
use crate::paged::PagedFile;

/// A snapshot that passed every check in [`open_validated`], ready to
/// serve.
pub struct ValidatedSnapshot {
    /// The on-disk layout version (1, 2, 3/5, or 4/6).
    pub version: u32,
    /// Components rebuilt as live `A(i)` during a lenient load (always
    /// empty under `strict`, and always empty for the paged layouts,
    /// which have no degradation path).
    pub degraded: Vec<usize>,
    /// The loaded payload.
    pub payload: SnapshotPayload,
}

/// The serving form a validated snapshot loads into.
pub enum SnapshotPayload {
    /// Raw frozen arrays (v1 indexes are frozen on load, v2 verbatim).
    Frozen(FrozenGraph, FrozenMStar),
    /// Compressed posting arenas (v3/v5), served without decompression.
    Compressed(FrozenGraph, CompressedMStar),
    /// Demand-paged file (v4/v6): every page and graph unit has been
    /// faulted and verified, then released back to the cache budget — the
    /// handle serves through its own page cache.
    Paged(Box<PagedFile>),
}

impl SnapshotPayload {
    /// Short human name for logs and stats.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotPayload::Frozen(..) => "frozen",
            SnapshotPayload::Compressed(..) => "compressed",
            SnapshotPayload::Paged(_) => "paged",
        }
    }
}

fn structural(r: Result<(), String>, what: &str) -> Result<(), StoreError> {
    r.map_err(|e| StoreError::Format(format!("{what} failed structural validation: {e}")))
}

/// Opens `path`, dispatching on [`snapshot_version`], and validates the
/// whole file (checksums + structure) before returning it. With `strict`
/// set, a file that would only load by degrading components to live
/// `A(i)` is refused — the caller keeps serving whatever it already has.
/// `cache_bytes` is the page-cache budget for the paged layouts (`None`
/// for the default).
pub fn open_validated(
    path: impl AsRef<Path>,
    strict: bool,
    cache_bytes: Option<u64>,
) -> Result<ValidatedSnapshot, StoreError> {
    let path = path.as_ref();
    let version = snapshot_version(path)?;
    match version {
        crate::format::VERSION => {
            let file = MStarFile::open(path)?;
            let (graph, index) = file.into_index()?;
            let fg = FrozenGraph::freeze(&graph);
            let star = index.freeze();
            structural(fg.validate(), "graph")?;
            structural(star.validate(), "index")?;
            Ok(ValidatedSnapshot {
                version,
                degraded: Vec::new(),
                payload: SnapshotPayload::Frozen(fg, star),
            })
        }
        crate::format::VERSION_FLAT => {
            let mut file = FrozenFile::open(path)?;
            file.ensure_loaded(file.component_count().saturating_sub(1))?;
            let degraded = file.degraded_components().to_vec();
            refuse_degraded(strict, &degraded)?;
            let (graph, star) = file.into_frozen()?;
            structural(graph.validate(), "graph")?;
            structural(star.validate(), "index")?;
            Ok(ValidatedSnapshot {
                version,
                degraded,
                payload: SnapshotPayload::Frozen(graph, star),
            })
        }
        crate::format::VERSION_FLAT_C | crate::format::VERSION_FLAT_C_TAGGED => {
            let mut file = CompressedFile::open(path)?;
            file.ensure_loaded(file.component_count().saturating_sub(1))?;
            let degraded = file.degraded_components().to_vec();
            refuse_degraded(strict, &degraded)?;
            let (graph, star) = file.into_compressed()?;
            structural(graph.validate(), "graph")?;
            structural(star.validate(), "index")?;
            Ok(ValidatedSnapshot {
                version,
                degraded,
                payload: SnapshotPayload::Compressed(graph, star),
            })
        }
        crate::format::VERSION_PAGED | crate::format::VERSION_PAGED_TAGGED => {
            let mut file = match cache_bytes {
                Some(b) => PagedFile::open_with(path, b)?,
                None => PagedFile::open(path)?,
            };
            // Materialize every component's meta and every lazy graph
            // unit, then sweep every page against its checksum. The paged
            // layout has no degradation path: any failure is a refusal.
            file.ensure_loaded(file.component_count().saturating_sub(1))?;
            file.verify()?;
            Ok(ValidatedSnapshot {
                version,
                degraded: Vec::new(),
                payload: SnapshotPayload::Paged(Box::new(file)),
            })
        }
        other => Err(StoreError::Format(format!(
            "unknown snapshot version {other}"
        ))),
    }
}

fn refuse_degraded(strict: bool, degraded: &[usize]) -> Result<(), StoreError> {
    if strict && !degraded.is_empty() {
        return Err(StoreError::Format(format!(
            "strict validation refused: components {degraded:?} are unreadable \
             (loadable only by degrading to live A(i))"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_graph::xml::parse;
    use mrx_index::MStarIndex;
    use mrx_path::PathExpr;

    fn setup() -> (mrx_graph::DataGraph, MStarIndex) {
        let g = parse(
            "<site><people><person><name><last/></name></person></people>
             <forum><poster><name/></poster></forum></site>",
        )
        .unwrap();
        let mut idx = MStarIndex::new(&g);
        idx.refine_for(&g, &PathExpr::parse("//person/name").unwrap());
        (g, idx)
    }

    #[test]
    fn validates_every_snapshot_version() {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let fz = idx.freeze();
        let cz = idx.freeze_compressed();
        let dir = std::env::temp_dir().join(format!("mrx-validate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("v1.mrx");
        let p2 = dir.join("v2.mrx");
        let p5 = dir.join("v5.mrx");
        let p6 = dir.join("v6.mrx");
        crate::save_mstar(&p1, &g, &idx).unwrap();
        crate::save_frozen(&p2, &fg, &fz).unwrap();
        crate::save_compressed(&p5, &fg, &cz).unwrap();
        crate::save_paged_with(&p6, &fg, &cz, 1024).unwrap();
        for (p, kind) in [
            (&p1, "frozen"),
            (&p2, "frozen"),
            (&p5, "compressed"),
            (&p6, "paged"),
        ] {
            let snap = open_validated(p, true, None).unwrap();
            assert_eq!(snap.payload.kind(), kind);
            assert!(snap.degraded.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_refuses_what_lenient_degrades() {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let fz = idx.freeze();
        let dir = std::env::temp_dir().join(format!("mrx-validate-deg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("v2.mrx");
        crate::save_frozen(&p, &fg, &fz).unwrap();
        // Flip one byte near the end of the file: lands in the last
        // component's payload, leaving the header/graph intact.
        let mut bytes = std::fs::read(&p).unwrap();
        let off = bytes.len() - 9;
        bytes[off] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let err = match open_validated(&p, true, None) {
            Err(e) => e,
            Ok(_) => panic!("strict load of a corrupt snapshot must fail"),
        };
        assert!(
            format!("{err}").contains("strict validation refused"),
            "unexpected error: {err}"
        );
        let snap = open_validated(&p, false, None).unwrap();
        assert!(!snap.degraded.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_garbage_are_refused() {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let cz = idx.freeze_compressed();
        let dir = std::env::temp_dir().join(format!("mrx-validate-tr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("v6.mrx");
        crate::save_paged_with(&p, &fg, &cz, 1024).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        let torn = dir.join("torn.mrx");
        std::fs::write(&torn, &bytes[..bytes.len() * 3 / 5]).unwrap();
        assert!(open_validated(&torn, true, None).is_err());
        let garbage = dir.join("garbage.mrx");
        std::fs::write(&garbage, b"this is not an mrx snapshot at all").unwrap();
        assert!(open_validated(&garbage, true, None).is_err());
        // A stale/unknown version number is refused before anything loads.
        let mut stale_bytes = bytes.clone();
        stale_bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let stale = dir.join("stale.mrx");
        std::fs::write(&stale, &stale_bytes).unwrap();
        assert!(open_validated(&stale, true, None).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
