//! The demand-paged (v4) `.mrx` snapshot layout.
//!
//! v2/v3 serve fast but pay their whole cost up front: every component
//! section is read, checksummed, and validated before the first answer.
//! The v4 layout splits a snapshot into a small **eagerly loaded** part
//! and a large **paged region** that is only ever touched through a
//! fixed-page [`PageCache`], so cold start reads a few kilobytes and the
//! resident set is bounded by the cache budget, not the corpus size:
//!
//! ```text
//! paged file   := "MRXSTAR1" u32(version=4) u32(ncomponents) ext
//!                 section(graph-core) gunit* dir section(meta)*
//!                 region section(pagetab)
//! ext          := u64(paged_off) u64(paged_len) u64(pagetab_off)
//!                 u32(page_size) u32(npages) u64(star_epoch)
//!                 u64(fnv64 of the preceding 40 ext bytes)
//! graph-core   := u32(n) u32(root) u32(nedges) u32(npedges)
//!                 arr(name_off) bytes(name_bytes) arr(name_order)
//! gunit        := u64(len) raw-LE-u32s u64(fnv64_words) — four of them:
//!                 labels [n], children [n+1 off | nedges tgt],
//!                 parents [n+1 off | npedges tgt],
//!                 labelext [nlabels+1 off | n tgt]
//! dir          := u64(absolute offset of each meta section)*
//! meta         := u32(n) u32(lemma2) u64(epoch)
//!                 arr(labels) arr(k) arr(genuine) arr(extent_len)
//!                 arr(child_off) arr(child_tgt) arr(parent_off) arr(parent_tgt)
//!                 u64(data_off) u64(data_len) u64(bf_off) u64(bo_off)
//!                 u32(nblocks) u64(node_of_off) u32(node_of_len)
//! region       := per component: extent varint payload,
//!                 [u32; nblocks] block_first, [u32; nblocks+1] block_off,
//!                 [u32; node_of_len] node_of      (offsets region-relative)
//! pagetab      := u64(fnv64_words of each page_size-byte page)*
//! section(p)   := u64(len(p)) p u64(fnv64(p))
//! ```
//!
//! **What loads eagerly** (at [`PagedFile::open`]): the 64-byte header,
//! the graph core (counts, root, label names — all query compilation
//! needs), the meta directory, and the page table — a few kilobytes
//! regardless of corpus size. **What loads on first touch**: the four
//! graph unit sections, each one bulk read digest-checked with the
//! word-folded FNV-64 and structurally validated as it materializes into
//! [`LazyGraph`] (a top-down Proven query touches only `labels` and
//! `parents`; see `lazy_graph`), and the per-component meta sections (a
//! prefix `I0..Ij` exactly like [`crate::FrozenFile`]). **What never
//! loads whole**: the extent payload and the `node_of` inverse map, which
//! dominate the file. They are served page-by-page through
//! [`PagedArena`]/[`PagedU32`], with each 64 KiB page verified against
//! its checksum the first time it faults in — integrity checking becomes
//! lazy and incremental instead of a whole-file pass at load.
//!
//! # Failure model: typed errors, no degradation
//!
//! v2/v3 readers rebuild an unreadable component from the embedded graph,
//! which is sound because the damage is discovered *before* the component
//! serves. Under demand paging a flipped bit may only surface mid-query,
//! after the evaluator has partially consumed the structure, so rebuilding
//! is no longer a sound drop-in. The v4 reader therefore fails hard: any
//! page-checksum mismatch or payload-validation failure poisons the cache,
//! and [`PagedFile::query`] checks the poison slot after evaluation and
//! returns the typed error *instead of* the answer. The fault harness
//! (`fault_bench --paged`) sweeps seeded page corruptions to prove nothing
//! escapes this net.

use std::fs::File;
use std::io::{BufReader, Cursor, Read, Seek, SeekFrom};
use std::path::Path;
use std::rc::Rc;

use mrx_error::MrxError;
use mrx_graph::{FrozenGraph, LabelId};
use mrx_index::{
    Answer, CompressedMStar, IdxId, IndexView, PagedIndex, PagedIndexParts, PagedMStar,
    QueryScratch, TrustPolicy,
};
use mrx_pagecache::{
    fnv64, fnv64_words, page_checksums, ArenaLayout, BytesSource, FileSource, PageCache,
    PageSource, PageStats, PagedArena, PagedU32, DEFAULT_CACHE_BYTES, DEFAULT_PAGE_SIZE,
    MAX_PAGE_SIZE, MIN_PAGE_SIZE,
};
use mrx_path::{PathExpr, QueryBudget};

use crate::flat::{read_arr, read_flat_prelude, write_arr};
use crate::format::{
    format_err, read_section_bounded, to_payload, write_section, StoreError, STAR_MAGIC,
    VERSION_PAGED, VERSION_PAGED_TAGGED,
};
use crate::lazy_graph::{
    graph_unit_payloads, read_graph_core, write_graph_core, LazyGraph, GRAPH_UNITS,
};
use crate::wire::{le_u64, HashingReader};

/// Fixed byte length of the paged (v4/v6) header: the 16-byte shared
/// prelude plus the 48-byte paged extension.
const HEADER_LEN_PAGED: u64 = 64;

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Serializes a paged snapshot in the current tagged-block layout (v6)
/// into an in-memory image. Exposed so the fault harness and benches can
/// corrupt or open images without a file; [`save_paged`] is the
/// file-writing entry point.
pub fn paged_image(
    g: &FrozenGraph,
    idx: &CompressedMStar,
    page_size: u32,
) -> Result<Vec<u8>, StoreError> {
    paged_image_impl(g, idx, page_size, true)
}

/// [`paged_image`] in the pre-tag v4 layout. Kept for back-compat
/// coverage: tests use it to prove v4 files still load byte-identically
/// through the v6 reader path.
#[cfg(test)]
pub(crate) fn paged_image_legacy(
    g: &FrozenGraph,
    idx: &CompressedMStar,
    page_size: u32,
) -> Result<Vec<u8>, StoreError> {
    paged_image_impl(g, idx, page_size, false)
}

fn paged_image_impl(
    g: &FrozenGraph,
    idx: &CompressedMStar,
    page_size: u32,
    tagged: bool,
) -> Result<Vec<u8>, StoreError> {
    if idx.components.is_empty() {
        return Err(format_err("paged M* has no components"));
    }
    if idx.components.len() > 4096 {
        return Err(format_err(format!(
            "implausible component count {}",
            idx.components.len()
        )));
    }
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
        return Err(format_err(format!(
            "page size {page_size} outside [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]"
        )));
    }
    if g.node_count() == 0 || g.num_labels() == 0 {
        return Err(format_err("paged graph has no nodes or no labels"));
    }
    let ncomp = idx.components.len();
    let gcore_payload = to_payload(|w| write_graph_core(w, g))?;
    let gunits = graph_unit_payloads(g);

    // The paged region and, per component, a meta payload carrying the
    // resident arrays plus region-relative offsets of the paged ones.
    let mut region: Vec<u8> = Vec::new();
    let mut metas: Vec<Vec<u8>> = Vec::with_capacity(ncomp);
    for c in &idx.components {
        // Borrow the arena's wire arrays directly for tagged output;
        // re-encode into owned pre-tag arrays for the legacy layout.
        let legacy = if tagged {
            None
        } else {
            Some(c.extents.legacy_parts())
        };
        let (data, bf, bo, ll): (&[u8], &[u32], &[u32], &[u32]) = match &legacy {
            Some((d, f, o, l)) => (d, f, o, l),
            None => c.extents.parts(),
        };
        let data_off = region.len() as u64;
        region.extend_from_slice(data);
        let bf_off = region.len() as u64;
        for &v in bf {
            region.extend_from_slice(&v.to_le_bytes());
        }
        let bo_off = region.len() as u64;
        for &v in bo {
            region.extend_from_slice(&v.to_le_bytes());
        }
        let node_of_off = region.len() as u64;
        for v in &c.node_of_data {
            region.extend_from_slice(&v.0.to_le_bytes());
        }
        let nblocks = u32::try_from(bf.len())
            .map_err(|_| format_err("extent arena exceeds u32 block count"))?;
        let node_of_len = u32::try_from(c.node_of_data.len())
            .map_err(|_| format_err("inverse map exceeds u32 length"))?;
        let meta = to_payload(|w| {
            w.write_u32(c.labels.len() as u32)?;
            w.write_u32(u32::from(c.lemma2))?;
            w.write_u64(c.epoch)?;
            write_arr(w, c.labels.iter().map(|l| l.0))?;
            write_arr(w, c.k.iter().copied())?;
            write_arr(w, c.genuine.iter().copied())?;
            write_arr(w, ll.iter().copied())?;
            write_arr(w, c.child_off.iter().copied())?;
            write_arr(w, c.child_tgt.iter().map(|v| v.0))?;
            write_arr(w, c.parent_off.iter().copied())?;
            write_arr(w, c.parent_tgt.iter().map(|v| v.0))?;
            w.write_u64(data_off)?;
            w.write_u64(data.len() as u64)?;
            w.write_u64(bf_off)?;
            w.write_u64(bo_off)?;
            w.write_u32(nblocks)?;
            w.write_u64(node_of_off)?;
            w.write_u32(node_of_len)
        })?;
        metas.push(meta);
    }

    let graph_sec = 8 + gcore_payload.len() as u64 + 8;
    let gunits_sec: u64 = gunits.iter().map(|u| 16 + u.len() as u64).sum();
    let dir_at = HEADER_LEN_PAGED + graph_sec + gunits_sec;
    let mut meta_at = dir_at + 8 * ncomp as u64;
    let mut dir = Vec::with_capacity(ncomp);
    for m in &metas {
        dir.push(meta_at);
        meta_at += 8 + m.len() as u64 + 8;
    }
    let paged_off = meta_at;
    let paged_len = region.len() as u64;
    let pagetab_off = paged_off + paged_len;
    let sums = page_checksums(&region, page_size);
    let npages =
        u32::try_from(sums.len()).map_err(|_| format_err("paged region has too many pages"))?;
    let mut pagetab = Vec::with_capacity(sums.len() * 8);
    for s in &sums {
        pagetab.extend_from_slice(&s.to_le_bytes());
    }

    let mut out = Vec::with_capacity((pagetab_off as usize) + pagetab.len() + 16);
    out.extend_from_slice(STAR_MAGIC);
    let version = if tagged {
        VERSION_PAGED_TAGGED
    } else {
        VERSION_PAGED
    };
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(ncomp as u32).to_le_bytes());
    out.extend_from_slice(&paged_off.to_le_bytes());
    out.extend_from_slice(&paged_len.to_le_bytes());
    out.extend_from_slice(&pagetab_off.to_le_bytes());
    out.extend_from_slice(&page_size.to_le_bytes());
    out.extend_from_slice(&npages.to_le_bytes());
    out.extend_from_slice(&idx.epoch.to_le_bytes());
    let ext_fnv = fnv64(&out[16..]);
    out.extend_from_slice(&ext_fnv.to_le_bytes());
    write_section(&mut out, &gcore_payload)?;
    for u in &gunits {
        out.extend_from_slice(&(u.len() as u64).to_le_bytes());
        out.extend_from_slice(u);
        out.extend_from_slice(&fnv64_words(u).to_le_bytes());
    }
    for o in &dir {
        out.extend_from_slice(&o.to_le_bytes());
    }
    for m in &metas {
        write_section(&mut out, m)?;
    }
    if out.len() as u64 != paged_off {
        return Err(format_err("paged writer offset accounting is inconsistent"));
    }
    out.extend_from_slice(&region);
    write_section(&mut out, &pagetab)?;
    Ok(out)
}

/// Saves a paged (v6) snapshot with the default 64 KiB page size.
pub fn save_paged(
    path: impl AsRef<Path>,
    g: &FrozenGraph,
    idx: &CompressedMStar,
) -> Result<(), StoreError> {
    save_paged_with(path, g, idx, DEFAULT_PAGE_SIZE)
}

/// [`save_paged`] with an explicit page size (tests use tiny pages to
/// force seam crossings and eviction churn at small scale).
pub fn save_paged_with(
    path: impl AsRef<Path>,
    g: &FrozenGraph,
    idx: &CompressedMStar,
    page_size: u32,
) -> Result<(), StoreError> {
    let image = paged_image(g, idx, page_size)?;
    std::fs::write(path, image)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Combined bound for the eager-side reader (meta sections, graph, page
/// table); the paged region goes through the cache's [`PageSource`].
trait ReadSeek: Read + Seek {}
impl<T: Read + Seek> ReadSeek for T {}

/// Decodes a meta section into the resident parts plus the region offsets
/// of the paged structures. Shape validation happens in
/// [`PagedIndex::assemble`] / [`PagedArena::new`]; this only reads.
#[allow(clippy::type_complexity)]
fn read_paged_meta(
    r: &mut HashingReader<&[u8]>,
) -> Result<(PagedIndexParts, ArenaLayout, u64, u32), StoreError> {
    let n = r.read_u32()? as usize;
    if n == 0 {
        return Err(format_err("paged component has no nodes"));
    }
    let lemma2 = r.read_u32()? != 0;
    let epoch = r.read_u64()?;
    let labels = read_arr(r, "labels", LabelId)?;
    let k = read_arr(r, "k", |v| v)?;
    let genuine = read_arr(r, "genuine", |v| v)?;
    let extent_len = read_arr(r, "extent_len", |v| v)?;
    let child_off = read_arr(r, "child_off", |v| v)?;
    let child_tgt = read_arr(r, "child_tgt", IdxId)?;
    let parent_off = read_arr(r, "parent_off", |v| v)?;
    let parent_tgt = read_arr(r, "parent_tgt", IdxId)?;
    if labels.len() != n {
        return Err(format_err(format!(
            "paged component declares {n} nodes but carries {}",
            labels.len()
        )));
    }
    let data_off = r.read_u64()?;
    let data_len = r.read_u64()?;
    let block_first_off = r.read_u64()?;
    let block_off_off = r.read_u64()?;
    let nblocks = r.read_u32()?;
    let node_of_off = r.read_u64()?;
    let node_of_len = r.read_u32()?;
    Ok((
        PagedIndexParts {
            labels,
            k,
            genuine,
            child_off,
            child_tgt,
            parent_off,
            parent_tgt,
            extent_len,
            lemma2,
            epoch,
        },
        ArenaLayout {
            data_off,
            data_len,
            block_first_off,
            block_off_off,
            nblocks,
        },
        node_of_off,
        node_of_len,
    ))
}

/// An open paged (v4) snapshot: eager graph core, lazily-materialized
/// graph units, lazy component meta prefix, and extents/`node_of` served
/// through a budgeted [`PageCache`].
///
/// Like [`crate::FrozenFile`], a top-down query of length `j` activates
/// only components `I0..Ij`; unlike it, activation reads just the meta
/// section (kilobytes) — the extent payload stays on disk until cursors
/// fault its pages in. There is **no degradation path**: see the module
/// docs for why corruption is a typed error here.
pub struct PagedFile {
    reader: Box<dyn ReadSeek>,
    graph: LazyGraph,
    /// Absolute offsets of the per-component meta sections.
    offsets: Vec<u64>,
    /// Always a prefix `I0..I(len-1)` of the file's components.
    components: Vec<PagedIndex>,
    cache: Rc<PageCache>,
    /// The full hierarchy's mutation epoch from the header — reported even
    /// when only a prefix is active, and cross-checked once all components
    /// have loaded.
    star_epoch: u64,
    paged_off: u64,
    bytes_read: u64,
    epoch_checked: bool,
    /// Whether the paged region uses tagged block payloads (v6) or the
    /// pre-tag varint-only form (v4).
    tagged: bool,
    scratch: QueryScratch,
}

impl PagedFile {
    /// Opens a paged snapshot with the default cache budget.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(path, DEFAULT_CACHE_BYTES)
    }

    /// Opens a paged snapshot with an explicit cache byte budget.
    pub fn open_with(path: impl AsRef<Path>, cache_bytes: u64) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let source = FileSource::new(file.try_clone()?)?;
        Self::open_impl(
            Box::new(BufReader::new(file)),
            Box::new(source),
            file_len,
            cache_bytes,
        )
    }

    /// Opens a paged snapshot from an in-memory image — the fault-harness
    /// and test entry point (no temp files per corruption seed).
    pub fn open_bytes(image: Vec<u8>, cache_bytes: u64) -> Result<Self, StoreError> {
        let file_len = image.len() as u64;
        let source = BytesSource(image.clone());
        Self::open_impl(
            Box::new(Cursor::new(image)),
            Box::new(source),
            file_len,
            cache_bytes,
        )
    }

    fn open_impl(
        mut reader: Box<dyn ReadSeek>,
        source: Box<dyn PageSource>,
        file_len: u64,
        cache_bytes: u64,
    ) -> Result<Self, StoreError> {
        let (version, ncomp, _) = read_flat_prelude(
            &mut reader,
            Some(file_len),
            &[VERSION_PAGED, VERSION_PAGED_TAGGED],
        )?;
        let tagged = version == VERSION_PAGED_TAGGED;
        let mut ext = [0u8; 48];
        reader.read_exact(&mut ext)?;
        let paged_off = le_u64(&ext[0..8]);
        let paged_len = le_u64(&ext[8..16]);
        let pagetab_off = le_u64(&ext[16..24]);
        let page_size = u32::from_le_bytes([ext[24], ext[25], ext[26], ext[27]]);
        let npages = u32::from_le_bytes([ext[28], ext[29], ext[30], ext[31]]);
        let star_epoch = le_u64(&ext[32..40]);
        if fnv64(&ext[..40]) != le_u64(&ext[40..48]) {
            return Err(StoreError::Checksum {
                section: "paged header".into(),
            });
        }
        let region_end = paged_off
            .checked_add(paged_len)
            .ok_or_else(|| format_err("paged region overflows"))?;
        if paged_off < HEADER_LEN_PAGED
            || region_end > file_len
            || pagetab_off < region_end
            || pagetab_off + 16 > file_len
        {
            return Err(format_err(format!(
                "paged layout [{paged_off}, {region_end}) + table at {pagetab_off} \
                 outside the file ({file_len} bytes)"
            )));
        }
        let (core, glen) = read_section_bounded(
            &mut reader,
            "graph core",
            Some(paged_off - HEADER_LEN_PAGED),
            read_graph_core,
        )?;
        // Unit sections sit back to back after the core; their lengths are
        // derived from the core counts, so only offsets need computing.
        let mut unit_off = [0u64; GRAPH_UNITS];
        let mut at = HEADER_LEN_PAGED + glen;
        for (i, slot) in unit_off.iter_mut().enumerate() {
            *slot = at;
            at += 16 + core.unit_len(i);
        }
        if at + 8 * ncomp as u64 > paged_off {
            return Err(format_err(format!(
                "graph units [{}, {at}) leave no room for the directory",
                unit_off[0]
            )));
        }
        reader.seek(SeekFrom::Start(at))?;
        let mut dirbuf = vec![0u8; 8 * ncomp];
        reader.read_exact(&mut dirbuf)?;
        let mut offsets = Vec::with_capacity(ncomp);
        let mut prev = 0u64;
        for c in dirbuf.chunks_exact(8) {
            let o = le_u64(c);
            // 8(len) + 8(digest) is the smallest possible section, and meta
            // sections all live before the paged region.
            if o <= prev || o + 16 > paged_off {
                return Err(format_err(format!(
                    "component directory offset {o} outside the meta area"
                )));
            }
            prev = o;
            offsets.push(o);
        }
        reader.seek(SeekFrom::Start(pagetab_off))?;
        let (sums, tlen) = read_section_bounded(
            &mut reader,
            "page table",
            Some(file_len - pagetab_off),
            |r| {
                if r.remaining() != u64::from(npages) * 8 {
                    return Err(format_err(format!(
                        "page table carries {} bytes for {npages} pages",
                        r.remaining()
                    )));
                }
                let mut v = Vec::with_capacity(npages as usize);
                for _ in 0..npages {
                    v.push(r.read_u64()?);
                }
                Ok(v)
            },
        )?;
        let cache = PageCache::new(source, paged_off, paged_len, page_size, sums, cache_bytes)?;
        let graph = LazyGraph::new(core, unit_off, cache.clone());
        let bytes_read = HEADER_LEN_PAGED + glen + 8 * ncomp as u64 + tlen;
        Ok(PagedFile {
            reader,
            graph,
            offsets,
            components: Vec::new(),
            cache,
            star_epoch,
            paged_off,
            bytes_read,
            epoch_checked: false,
            tagged,
            scratch: QueryScratch::new(),
        })
    }

    /// The embedded data graph: counts, root, and label names are eager;
    /// the label/CSR arrays materialize on first touch (see [`LazyGraph`]).
    pub fn graph(&self) -> &LazyGraph {
        &self.graph
    }

    /// Total number of components in the file.
    pub fn component_count(&self) -> usize {
        self.offsets.len()
    }

    /// Indices of the components currently activated (always a prefix).
    pub fn loaded_components(&self) -> Vec<usize> {
        (0..self.components.len()).collect()
    }

    /// Bytes read *eagerly* so far: header, graph, directory, page table,
    /// and activated meta sections. Paged-region traffic is accounted
    /// separately in [`PagedFile::page_stats`].
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// The full hierarchy's mutation epoch (from the header; valid even
    /// when only a prefix is active).
    pub fn mutation_epoch(&self) -> u64 {
        self.star_epoch
    }

    /// Page size of the paged region.
    pub fn page_size(&self) -> u32 {
        self.cache.page_size()
    }

    /// Bytes in the paged region (on disk; residency is bounded by the
    /// cache budget, not this).
    pub fn paged_bytes(&self) -> u64 {
        self.cache.region_len()
    }

    /// Cache counters: faults, hits, evictions, checksum failures, and
    /// the resident/pinned footprint.
    pub fn page_stats(&self) -> PageStats {
        self.cache.stats()
    }

    /// Re-targets the cache's eviction budget, reclaiming immediately if
    /// the new budget is smaller.
    pub fn set_cache_budget(&self, bytes: u64) {
        self.cache.set_budget(bytes)
    }

    /// Verifies every page of the paged region against the page table in
    /// one sequential pass (bypassing the cache), then digest-checks the
    /// four graph unit sections — the offline integrity check; serving
    /// verifies lazily per faulted page / per touched unit.
    pub fn verify(&self) -> Result<(), StoreError> {
        self.cache.verify_all()?;
        self.graph.verify_units()
    }

    /// Ensures components `I0..=Iupto` are activated. Unlike the v2/v3
    /// readers there is no rebuild fallback — an unreadable meta section
    /// or invalid paged directory is a typed error.
    pub fn ensure_loaded(&mut self, upto: usize) -> Result<(), StoreError> {
        let upto = upto.min(self.offsets.len().saturating_sub(1));
        for i in self.components.len()..=upto {
            let c = self.read_component(i)?;
            self.components.push(c);
        }
        if !self.epoch_checked && self.components.len() == self.offsets.len() {
            let derived = self
                .components
                .iter()
                .map(|c| c.mutation_epoch())
                .sum::<u64>()
                + self.components.len() as u64;
            if derived != self.star_epoch {
                return Err(format_err(format!(
                    "component epochs sum to {derived}, header claims {}",
                    self.star_epoch
                )));
            }
            self.epoch_checked = true;
        }
        Ok(())
    }

    /// Reads and activates component `Ii`: decode its meta section, then
    /// pin the paged arena's skip directories and validate their shape.
    fn read_component(&mut self, i: usize) -> Result<PagedIndex, StoreError> {
        self.reader.seek(SeekFrom::Start(self.offsets[i]))?;
        let budget = self.paged_off.saturating_sub(self.offsets[i]);
        let ((parts, layout, node_of_off, node_of_len), len) = read_section_bounded(
            &mut self.reader,
            &format!("component {i}"),
            Some(budget),
            read_paged_meta,
        )?;
        self.bytes_read += len;
        if node_of_len as usize != self.graph.node_count() {
            return Err(format_err(format!(
                "component {i} inverse map covers {node_of_len} of {} data nodes",
                self.graph.node_count()
            )));
        }
        let arena = PagedArena::new(
            self.cache.clone(),
            layout,
            parts.extent_len.clone(),
            self.graph.node_count() as u32,
            self.tagged,
        )?;
        let node_of = PagedU32::new(self.cache.clone(), node_of_off, node_of_len)?;
        PagedIndex::assemble(parts, arena, node_of, self.graph.num_labels())
            .map_err(|e| format_err(format!("component {i}: {e}")))
    }

    /// Answers `path` top-down under the sound trust policy.
    pub fn query_top_down(&mut self, path: &PathExpr) -> Result<Answer, StoreError> {
        self.query(path, TrustPolicy::Proven)
    }

    /// Answers `path` top-down with an explicit trust policy. The answer
    /// is returned only if the page cache is clean afterwards: a checksum
    /// or payload failure discovered mid-evaluation surfaces as the typed
    /// error instead.
    pub fn query(&mut self, path: &PathExpr, policy: TrustPolicy) -> Result<Answer, StoreError> {
        let len = path.steps().len().saturating_sub(1);
        self.ensure_loaded(len)?;
        if let Some(e) = self.cache.take_poison() {
            return Err(e);
        }
        let star = PagedMStar {
            components: std::mem::take(&mut self.components),
            epoch: self.star_epoch,
        };
        let cp = path.compile(&self.graph);
        let ans = star.query_top_down_with_scratch(&self.graph, &cp, policy, &mut self.scratch);
        self.components = star.components;
        if let Some(e) = self.cache.take_poison() {
            return Err(e);
        }
        Ok(ans)
    }

    /// [`PagedFile::query`] under a [`QueryBudget`] — the governed paged
    /// serving path.
    pub fn query_budgeted(
        &mut self,
        path: &PathExpr,
        policy: TrustPolicy,
        budget: &QueryBudget,
    ) -> Result<Answer, MrxError> {
        let len = path.steps().len().saturating_sub(1);
        self.ensure_loaded(len)?;
        if let Some(e) = self.cache.take_poison() {
            return Err(e.into());
        }
        let star = PagedMStar {
            components: std::mem::take(&mut self.components),
            epoch: self.star_epoch,
        };
        let cp = path.compile(&self.graph);
        let mut meter = budget.meter();
        let r =
            star.query_top_down_budgeted(&self.graph, &cp, policy, &mut self.scratch, &mut meter);
        self.components = star.components;
        if let Some(e) = self.cache.take_poison() {
            return Err(e.into());
        }
        r.map_err(MrxError::Budget)
    }

    /// Activates everything and hands out the parts for session-style
    /// serving (replay loops that want the star, graph, and cache — the
    /// cache for poison checks and page stats — without the file wrapper).
    #[allow(clippy::type_complexity)]
    pub fn into_parts(mut self) -> Result<(LazyGraph, PagedMStar, Rc<PageCache>), StoreError> {
        self.ensure_loaded(self.offsets.len().saturating_sub(1))?;
        if let Some(e) = self.cache.take_poison() {
            return Err(e);
        }
        let star = PagedMStar {
            components: self.components,
            epoch: self.star_epoch,
        };
        Ok((self.graph, star, self.cache))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_graph::DataGraph;
    use mrx_index::MStarIndex;
    use mrx_path::eval_data;

    fn setup() -> (DataGraph, MStarIndex) {
        let g = mrx_datagen::nasa_like(2_000, 4);
        let mut idx = MStarIndex::new(&g);
        for expr in [
            "//dataset/reference/source",
            "//reference/source/journal/author/lastname",
            "//dataset/history/ingest",
        ] {
            idx.refine_for(&g, &PathExpr::parse(expr).unwrap());
        }
        (g, idx)
    }

    const EXPRS: [&str; 6] = [
        "//lastname",
        "//source/journal",
        "//reference/source/journal/author/lastname",
        "//dataset/history/ingest",
        "//author",
        "/dataset/title",
    ];

    fn image(page_size: u32) -> (DataGraph, CompressedMStar, FrozenGraph, Vec<u8>) {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let cz = idx.freeze_compressed();
        let img = paged_image(&fg, &cz, page_size).unwrap();
        (g, cz, fg, img)
    }

    #[test]
    fn paged_answers_match_compressed_under_tiny_pages_and_budget() {
        let (g, cz, fg, img) = image(64);
        // Budget of four tiny pages: every query runs under heavy eviction.
        let mut f = PagedFile::open_bytes(img, 4 * 64).unwrap();
        assert_eq!(f.component_count(), cz.components.len());
        assert!(f.loaded_components().is_empty());
        for expr in EXPRS {
            let q = PathExpr::parse(expr).unwrap();
            for policy in [TrustPolicy::Proven, TrustPolicy::Claimed] {
                let want = cz.query_top_down(&fg, &q, policy);
                let got = f.query(&q, policy).unwrap();
                assert_eq!(got.nodes, want.nodes, "{expr}");
                assert_eq!(got.cost, want.cost, "{expr}");
                assert_eq!(got.validated, want.validated, "{expr}");
            }
            assert_eq!(
                f.query(&q, TrustPolicy::Proven).unwrap().nodes,
                eval_data(&g, &q.compile(&g)),
                "{expr}"
            );
        }
        let s = f.page_stats();
        assert!(s.evictions > 0, "tiny budget must evict: {s:?}");
        // Pinned skip-directory pages are exempt from the budget; the
        // evictable residency must respect it.
        let evictable = (s.resident_pages - s.pinned_pages) * 64;
        assert!(evictable <= 4 * 64, "budget overrun: {s:?}");
    }

    #[test]
    fn activation_is_a_prefix_and_reads_stay_small() {
        let (_g, _cz, _fg, img) = image(256);
        let total = img.len() as u64;
        let mut f = PagedFile::open_bytes(img, DEFAULT_CACHE_BYTES).unwrap();
        let after_open = f.bytes_read();
        assert!(after_open < total, "open must not read the whole file");
        let q = PathExpr::parse("//lastname").unwrap();
        f.query_top_down(&q).unwrap();
        assert_eq!(f.loaded_components(), vec![0]);
        let q = PathExpr::parse("//dataset/reference/source").unwrap();
        f.query_top_down(&q).unwrap();
        assert_eq!(f.loaded_components(), vec![0, 1, 2]);
        // Eager reads cover metas but never the paged region, which is
        // accounted through the cache instead.
        assert!(f.bytes_read() < total - f.paged_bytes() + 1);
        assert!(f.page_stats().faults > 0);
    }

    #[test]
    fn file_roundtrip_and_epoch_cross_check() {
        let dir = std::env::temp_dir().join(format!(
            "mrx-paged-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let cz = idx.freeze_compressed();
        let path = dir.join("nasa-paged.mrx");
        save_paged_with(&path, &fg, &cz, 256).unwrap();
        assert_eq!(
            crate::flat::snapshot_version(&path).unwrap(),
            VERSION_PAGED_TAGGED
        );

        let mut f = PagedFile::open_with(&path, 64 * 1024).unwrap();
        assert_eq!(f.mutation_epoch(), idx.mutation_epoch());
        f.verify().unwrap();
        // Load everything: the epoch cross-check runs and must pass.
        f.ensure_loaded(usize::MAX).unwrap();
        for expr in EXPRS {
            let q = PathExpr::parse(expr).unwrap();
            let want = cz.query_top_down(&fg, &q, TrustPolicy::Proven);
            let got = f.query_top_down(&q).unwrap();
            assert_eq!(got.nodes, want.nodes, "{expr}");
            assert_eq!(got.cost, want.cost, "{expr}");
        }
        let (lg, star, _cache) = f.into_parts().unwrap();
        assert_eq!(lg.to_frozen().unwrap(), fg);
        assert_eq!(star.mutation_epoch(), idx.mutation_epoch());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn region_corruption_is_a_typed_page_checksum_error() {
        let (_g, _cz, _fg, img) = image(64);
        let paged_off = le_u64(&img[16..24]) as usize;
        let paged_len = le_u64(&img[24..32]) as usize;
        // A single flipped bit is caught by the offline sweep...
        let mut one = img.clone();
        one[paged_off] ^= 0x40;
        let f = PagedFile::open_bytes(one, DEFAULT_CACHE_BYTES).unwrap();
        match f.verify() {
            Err(StoreError::Checksum { section }) => {
                assert!(section.starts_with("page "), "{section}")
            }
            other => panic!("expected page checksum error, got {other:?}"),
        }
        // ...and a query that faults any damaged page gets the typed error
        // instead of an answer (flip one bit per page so every fault hits).
        let mut bad = img.clone();
        for p in (0..paged_len).step_by(64) {
            bad[paged_off + p] ^= 0x40;
        }
        let mut f = PagedFile::open_bytes(bad, DEFAULT_CACHE_BYTES).unwrap();
        let q = PathExpr::parse("//lastname").unwrap();
        match f.query_top_down(&q) {
            Err(StoreError::Checksum { section }) => {
                assert!(section.starts_with("page "), "{section}")
            }
            other => panic!("corrupt page served: {other:?}"),
        }
        // The clean image still verifies end to end.
        PagedFile::open_bytes(img, DEFAULT_CACHE_BYTES)
            .unwrap()
            .verify()
            .unwrap();
    }

    #[test]
    fn graph_unit_corruption_poisons_instead_of_answering() {
        let (_g, _cz, _fg, img) = image(64);
        // The labels unit payload starts 8 bytes into the first unit
        // frame, which follows the graph core section at 64.
        let gcore_len = le_u64(&img[64..72]) as usize;
        let unit0 = 64 + 16 + gcore_len;
        let mut bad = img.clone();
        bad[unit0 + 8] ^= 0x04;
        // The offline sweep names the damaged unit...
        let f = PagedFile::open_bytes(bad.clone(), DEFAULT_CACHE_BYTES).unwrap();
        match f.verify() {
            Err(StoreError::Checksum { section }) => assert_eq!(section, "graph labels"),
            other => panic!("expected graph unit checksum error, got {other:?}"),
        }
        // ...and a query that touches the unit gets the typed error
        // instead of an answer. The query must actually need backward
        // validation: an anchored path with a short-k component forces
        // `check_backward` onto the lazy labels array.
        let mut f = PagedFile::open_bytes(bad, DEFAULT_CACHE_BYTES).unwrap();
        let q = PathExpr::parse("/dataset/title").unwrap();
        match f.query_top_down(&q) {
            Err(StoreError::Checksum { section }) => assert_eq!(section, "graph labels"),
            other => panic!("corrupt graph unit served: {other:?}"),
        }
        // The clean image's lazy graph round-trips to the eager one.
        let f = PagedFile::open_bytes(img, DEFAULT_CACHE_BYTES).unwrap();
        f.verify().unwrap();
        assert_eq!(f.graph().to_frozen().unwrap(), _fg);
    }

    #[test]
    fn meta_corruption_is_a_typed_error_not_degradation() {
        let (_g, _cz, _fg, img) = image(64);
        // First meta section offset is the first directory entry; the
        // directory follows the graph core section and the four unit
        // frames, each of which leads with a u64 payload length.
        let mut dir_at = 64usize;
        for _ in 0..(1 + GRAPH_UNITS) {
            let len = le_u64(&img[dir_at..dir_at + 8]) as usize;
            dir_at += 16 + len;
        }
        let meta0 = le_u64(&img[dir_at..dir_at + 8]) as usize;
        let mut bad = img;
        bad[meta0 + 12] ^= 0x01; // inside the payload, past the length word
        let mut f = PagedFile::open_bytes(bad, DEFAULT_CACHE_BYTES).unwrap();
        let q = PathExpr::parse("//lastname").unwrap();
        match f.query_top_down(&q) {
            Err(StoreError::Checksum { section }) => assert!(section.contains("component 0")),
            other => panic!("expected component checksum error, got {other:?}"),
        }
    }

    #[test]
    fn header_and_truncation_are_rejected() {
        let (_g, _cz, _fg, img) = image(64);
        let mut bad = img.clone();
        bad[20] ^= 0x01; // paged_off byte: ext checksum must catch it
        match PagedFile::open_bytes(bad, DEFAULT_CACHE_BYTES).map(|_| ()) {
            Err(StoreError::Checksum { section }) => assert_eq!(section, "paged header"),
            other => panic!("expected header checksum error, got {other:?}"),
        }
        let cut = img[..img.len() - 9].to_vec();
        assert!(PagedFile::open_bytes(cut, DEFAULT_CACHE_BYTES).is_err());
        // v4 is rejected by the v1 logical reader with a pointer to the
        // paged reader, not a generic version error.
        let e = crate::load_mstar_from(&img[..]).unwrap_err();
        assert!(e.to_string().contains("paged"), "{e}");
    }

    #[test]
    fn budgeted_queries_work_and_shrunk_cache_reclaims() {
        let (_g, cz, fg, img) = image(64);
        let mut f = PagedFile::open_bytes(img, DEFAULT_CACHE_BYTES).unwrap();
        let q = PathExpr::parse("//source/journal").unwrap();
        let want = cz.query_top_down(&fg, &q, TrustPolicy::Proven);
        let a = f
            .query_budgeted(&q, TrustPolicy::Proven, &QueryBudget::unlimited())
            .unwrap();
        assert_eq!(a.nodes, want.nodes);
        let resident_before = f.page_stats().resident_bytes;
        assert!(resident_before > 0);
        f.set_cache_budget(64);
        assert!(f.page_stats().resident_bytes <= resident_before);
        // Serving still works (and still matches) at one-page budget.
        let a2 = f.query_top_down(&q).unwrap();
        assert_eq!(a2.nodes, want.nodes);
    }

    #[test]
    fn legacy_v4_images_still_serve_identical_answers() {
        let (_g, idx) = setup();
        let fg = FrozenGraph::freeze(&_g);
        let cz = idx.freeze_compressed();
        let legacy = paged_image_legacy(&fg, &cz, 64).unwrap();
        let current = paged_image(&fg, &cz, 64).unwrap();
        assert_eq!(
            u32::from_le_bytes([legacy[8], legacy[9], legacy[10], legacy[11]]),
            VERSION_PAGED
        );
        assert_ne!(legacy, current, "legacy image must use the pre-tag wire");
        let mut old = PagedFile::open_bytes(legacy, DEFAULT_CACHE_BYTES).unwrap();
        old.verify().unwrap();
        let mut new = PagedFile::open_bytes(current, DEFAULT_CACHE_BYTES).unwrap();
        for expr in EXPRS {
            let q = PathExpr::parse(expr).unwrap();
            let want = cz.query_top_down(&fg, &q, TrustPolicy::Proven);
            let a_old = old.query_top_down(&q).unwrap();
            let a_new = new.query_top_down(&q).unwrap();
            assert_eq!(a_old.nodes, want.nodes, "{expr}");
            assert_eq!(a_old.cost, want.cost, "{expr}");
            assert_eq!(a_new.nodes, want.nodes, "{expr}");
            assert_eq!(a_new.cost, want.cost, "{expr}");
        }
    }
}
