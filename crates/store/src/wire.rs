//! Little-endian wire primitives and the FNV-1a checksum.

use std::io::{self, Read, Write};

/// FNV-1a 64-bit, the format's integrity checksum (fast, dependency-free;
/// this is corruption detection, not cryptography).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Little-endian `u64` from an 8-byte chunk — the infallible companion of
/// `chunks_exact(8)`, avoiding a panicking `try_into` on the load path.
pub fn le_u64(c: &[u8]) -> u64 {
    c.iter().rev().fold(0, |acc, &b| (acc << 8) | u64::from(b))
}

/// A counting writer with length-prefixed primitive helpers.
pub struct HashingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> HashingWriter<W> {
    pub fn new(inner: W) -> Self {
        HashingWriter { inner, written: 0 }
    }

    /// Bytes written so far.
    #[cfg(test)]
    pub fn written(&self) -> u64 {
        self.written
    }

    pub fn write_u32(&mut self, v: u32) -> io::Result<()> {
        self.write_all(&v.to_le_bytes())
    }

    pub fn write_u64(&mut self, v: u64) -> io::Result<()> {
        self.write_all(&v.to_le_bytes())
    }

    pub fn write_str(&mut self, s: &str) -> io::Result<()> {
        let len = u32::try_from(s.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("string of {} bytes exceeds the u32 wire limit", s.len()),
            )
        })?;
        self.write_u32(len)?;
        self.write_all(s.as_bytes())
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Fallback cumulative string-allocation budget for readers whose input
/// length is unknown. Section-scoped readers lower this to the section's
/// byte length.
#[cfg(test)]
const DEFAULT_STR_BUDGET: u64 = 256 * 1024 * 1024;

/// A counting reader with length-prefixed primitive helpers.
pub struct HashingReader<R: Read> {
    inner: R,
    read: u64,
    /// Cumulative bytes allocated for strings so far.
    str_bytes: u64,
    /// Cap on `str_bytes`: a *loop* of individually valid string lengths
    /// cannot allocate more than this in total, so a hostile length pattern
    /// is bounded by the input size, not by `loop count × max_len`.
    str_budget: u64,
}

impl<R: Read> HashingReader<R> {
    #[cfg(test)]
    pub fn new(inner: R) -> Self {
        Self::with_str_budget(inner, DEFAULT_STR_BUDGET)
    }

    /// A reader whose cumulative string allocation is capped at `budget`
    /// bytes. Section decoders pass the section's payload length: honest
    /// strings can never sum past the bytes that contain them.
    pub fn with_str_budget(inner: R, budget: u64) -> Self {
        HashingReader {
            inner,
            read: 0,
            str_bytes: 0,
            str_budget: budget,
        }
    }

    pub fn bytes_read(&self) -> u64 {
        self.read
    }

    pub fn read_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    pub fn read_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a length-prefixed string, rejecting absurd lengths — both per
    /// string (`max_len`) and cumulatively (the reader's string budget).
    pub fn read_str(&mut self, max_len: usize) -> io::Result<String> {
        let len = self.read_u32()? as usize;
        if len > max_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("string length {len} exceeds limit {max_len}"),
            ));
        }
        self.str_bytes += len as u64;
        if self.str_bytes > self.str_budget {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "cumulative string allocation {} exceeds budget {}",
                    self.str_bytes, self.str_budget
                ),
            ));
        }
        let mut buf = vec![0u8; len];
        self.read_exact(&mut buf)?;
        String::from_utf8(buf)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8 string"))
    }
}

impl HashingReader<&[u8]> {
    /// Bytes left in the underlying payload slice. Lets decoders reject a
    /// declared element count that overflows the section before allocating.
    pub fn remaining(&self) -> u64 {
        self.inner.len() as u64
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.read += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        let mut h = Fnv64::new();
        h.update(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut bytes = Vec::new();
        {
            let mut w = HashingWriter::new(&mut bytes);
            w.write_u32(0xDEAD_BEEF).unwrap();
            w.write_str("multiresolution").unwrap();
            assert_eq!(w.written(), 4 + 4 + 15);
        }
        let mut r = HashingReader::new(&bytes[..]);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_str(1024).unwrap(), "multiresolution");
        assert_eq!(r.bytes_read(), bytes.len() as u64);
    }

    #[test]
    fn oversized_string_rejected() {
        let mut bytes = Vec::new();
        {
            let mut w = HashingWriter::new(&mut bytes);
            w.write_str("hello").unwrap();
        }
        let mut r = HashingReader::new(&bytes[..]);
        assert!(r.read_str(3).is_err());
    }

    #[test]
    fn cumulative_string_budget_bounds_valid_length_loops() {
        // Each string passes the per-string check; the loop must still be
        // stopped by the cumulative budget.
        let mut bytes = Vec::new();
        {
            let mut w = HashingWriter::new(&mut bytes);
            for _ in 0..8 {
                w.write_str("0123456789").unwrap();
            }
        }
        let mut r = HashingReader::with_str_budget(&bytes[..], 25);
        assert!(r.read_str(64).is_ok());
        assert!(r.read_str(64).is_ok());
        let e = r.read_str(64).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("cumulative"));
    }
}
