//! The flat (v2) and compressed (v3) `.mrx` snapshot layouts.
//!
//! ```text
//! flat file      := "MRXSTAR1" u32(version=2) u32(ncomponents)
//!                   section(frozen-graph) dir section(frozen-component)*
//! dir            := u64(absolute offset of each component section)*
//! section(p)     := u64(len(p)) p u64(fnv64(p))
//! frozen-graph   := u32(n) u32(root) arr(node_labels)
//!                   arr(child_off) arr(child_tgt) arr(parent_off) arr(parent_tgt)
//!                   arr(label_off) arr(label_tgt)
//!                   arr(name_off) bytes(name_bytes) arr(name_order)
//! frozen-comp    := u32(n) u32(lemma2) u64(epoch)
//!                   arr(labels) arr(k) arr(genuine)
//!                   arr(extent_off) arr(extent_arena)
//!                   arr(child_off) arr(child_tgt) arr(parent_off) arr(parent_tgt)
//! arr(a)         := u32(len(a)) u32*          (little-endian words)
//! bytes(b)       := u32(len(b)) u8*
//! ```
//!
//! The payload bytes *are* the in-memory [`FrozenGraph`]/[`FrozenIndex`]
//! arrays: loading a section is one length check, one contiguous read, one
//! checksum pass, and a handful of whole-array allocations — never a
//! per-node allocation or any edge recomputation, which is what makes the
//! v2 load fast. Two derived arrays (`node_of_data`, `by_label`) are
//! reconstructed by a single counting pass over data already in memory, so
//! they are not stored.
//!
//! The **compressed (v3)** layout keeps the same framing — magic,
//! directory, checksummed sections — but stores every sorted id list as a
//! delta-varint [`PostingArena`] instead of raw words:
//!
//! ```text
//! packed file    := "MRXSTAR1" u32(version=3) u32(ncomponents)
//!                   section(packed-graph) dir section(packed-component)*
//! packed-graph   := u32(n) u32(root) arr(node_labels)
//!                   arena(children) arena(parents) arena(label rows)
//!                   arr(name_off) bytes(name_bytes) arr(name_order)
//! packed-comp    := u32(n) u32(lemma2) u64(epoch)
//!                   arr(labels) arr(k) arr(genuine)
//!                   arena(extents) arena(children) arena(parents)
//! arena(a)       := bytes(data) arr(block_first) arr(block_off) arr(list_len)
//! ```
//!
//! On load the graph and index adjacency decode back to raw CSR (serving
//! walks them as slices), while component **extents stay compressed**: a v3
//! component loads into a [`CompressedIndex`] and is served through seeking
//! cursors without ever materializing the extent arrays. Section checksums
//! are verified before any varint is decoded, so a bit flip in a block is
//! caught by FNV-64 first and by [`PostingArena::from_parts`] payload
//! validation second — never by a panic mid-decode.
//!
//! Every declared length — section and per-array — is validated against the
//! bytes actually available *before* the corresponding buffer is allocated,
//! and every loaded structure passes its full `validate()` before it is
//! returned.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use mrx_error::MrxError;
use mrx_graph::{FrozenGraph, LabelId, NodeId, PackedGraphCsr};
use mrx_index::{
    Answer, CompressedIndex, CompressedMStar, FrozenIndex, FrozenMStar, IdxId, QueryScratch,
    TrustPolicy,
};
use mrx_path::{PathExpr, QueryBudget};
use mrx_postings::{PostingArena, SeekingIterator};

use crate::format::{
    format_err, read_section_bounded, to_payload, write_section, StoreError, STAR_MAGIC,
    VERSION_FLAT, VERSION_FLAT_C, VERSION_FLAT_C_TAGGED,
};
use crate::wire::{le_u64, HashingReader, HashingWriter};

// ---------------------------------------------------------------------
// Array codec
// ---------------------------------------------------------------------

/// `u32(count)` with a typed error instead of a panic when a count cannot
/// be represented on the wire.
fn write_count<W: Write>(w: &mut HashingWriter<W>, len: usize, what: &str) -> io::Result<()> {
    let count = u32::try_from(len).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what} of {len} elements exceeds the u32 wire limit"),
        )
    })?;
    w.write_u32(count)
}

/// Writes `u32(count)` followed by the raw little-endian words.
pub(crate) fn write_arr<W: Write>(
    w: &mut HashingWriter<W>,
    it: impl ExactSizeIterator<Item = u32>,
) -> io::Result<()> {
    write_count(w, it.len(), "array")?;
    let mut bytes = Vec::with_capacity(it.len() * 4);
    for v in it {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&bytes)
}

pub(crate) fn write_bytes<W: Write>(w: &mut HashingWriter<W>, b: &[u8]) -> io::Result<()> {
    write_count(w, b.len(), "byte array")?;
    w.write_all(b)
}

/// Reads a word array, rejecting a count that overflows the rest of the
/// section *before* allocating the buffer.
pub(crate) fn read_arr<T>(
    r: &mut HashingReader<&[u8]>,
    name: &str,
    f: impl Fn(u32) -> T,
) -> Result<Vec<T>, StoreError> {
    let count = r.read_u32()? as usize;
    if count as u64 * 4 > r.remaining() {
        return Err(format_err(format!(
            "array `{name}` declares {count} elements beyond the section end"
        )));
    }
    let mut buf = vec![0u8; count * 4];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(4)
        .map(|c| f(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect())
}

pub(crate) fn read_bytes(r: &mut HashingReader<&[u8]>, name: &str) -> Result<Vec<u8>, StoreError> {
    let count = r.read_u32()? as usize;
    if count as u64 > r.remaining() {
        return Err(format_err(format!(
            "byte array `{name}` declares {count} bytes beyond the section end"
        )));
    }
    let mut buf = vec![0u8; count];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Writes a posting arena as its four wire arrays (`list_block` is derived
/// on read). `tagged` selects the wire form: the current tagged-block
/// payload (v5/v6) or, for back-compat round-trip tests, the pre-tag
/// varint-only payload (v3/v4) via re-encoding.
fn write_arena<W: Write>(
    w: &mut HashingWriter<W>,
    a: &PostingArena,
    tagged: bool,
) -> io::Result<()> {
    if tagged {
        let (data, block_first, block_off, list_len) = a.parts();
        write_bytes(w, data)?;
        write_arr(w, block_first.iter().copied())?;
        write_arr(w, block_off.iter().copied())?;
        write_arr(w, list_len.iter().copied())
    } else {
        let (data, block_first, block_off, list_len) = a.legacy_parts();
        write_bytes(w, &data)?;
        write_arr(w, block_first.iter().copied())?;
        write_arr(w, block_off.iter().copied())?;
        write_arr(w, list_len.iter().copied())
    }
}

/// Reads a posting arena in the wire form `tagged` names, running the full
/// payload validation of [`PostingArena::from_parts`] /
/// [`PostingArena::from_parts_legacy`] so every later cursor traversal is
/// in-bounds by construction. A legacy arena is re-encoded into tagged
/// blocks on load, so everything downstream sees one format.
fn read_arena(
    r: &mut HashingReader<&[u8]>,
    name: &str,
    tagged: bool,
) -> Result<PostingArena, StoreError> {
    let data = read_bytes(r, name)?;
    let block_first = read_arr(r, name, |v| v)?;
    let block_off = read_arr(r, name, |v| v)?;
    let list_len = read_arr(r, name, |v| v)?;
    let parsed = if tagged {
        PostingArena::from_parts(data, block_first, block_off, list_len)
    } else {
        PostingArena::from_parts_legacy(data, block_first, block_off, list_len)
    };
    parsed.map_err(|e| format_err(format!("posting arena `{name}`: {e}")))
}

/// Derives the by-label CSR from per-node labels via the shared
/// counting-sort builder, pre-validating every label id (the builder
/// indexes its key range unchecked).
fn derive_by_label(
    labels: &[LabelId],
    num_labels: usize,
) -> Result<(Vec<u32>, Vec<IdxId>), StoreError> {
    if let Some(l) = labels.iter().find(|l| l.index() >= num_labels) {
        return Err(format_err(format!("index label {} out of range", l.0)));
    }
    let (off, ids) = mrx_postings::group_by_key(labels.len(), num_labels, |i| labels[i].0);
    Ok((off, ids.into_iter().map(IdxId).collect()))
}

// ---------------------------------------------------------------------
// Frozen graph payload
// ---------------------------------------------------------------------

pub(crate) fn write_frozen_graph_payload<W: Write>(
    w: &mut HashingWriter<W>,
    g: &FrozenGraph,
) -> io::Result<()> {
    w.write_u32(g.node_count() as u32)?;
    w.write_u32(g.root().0)?;
    write_arr(w, g.node_labels.iter().map(|l| l.0))?;
    write_arr(w, g.child_off.iter().copied())?;
    write_arr(w, g.child_tgt.iter().map(|v| v.0))?;
    write_arr(w, g.parent_off.iter().copied())?;
    write_arr(w, g.parent_tgt.iter().map(|v| v.0))?;
    write_arr(w, g.label_off.iter().copied())?;
    write_arr(w, g.label_tgt.iter().map(|v| v.0))?;
    write_arr(w, g.name_off.iter().copied())?;
    write_bytes(w, &g.name_bytes)?;
    write_arr(w, g.name_order.iter().copied())
}

pub(crate) fn read_frozen_graph_payload(
    r: &mut HashingReader<&[u8]>,
) -> Result<FrozenGraph, StoreError> {
    let n = r.read_u32()? as usize;
    if n == 0 {
        return Err(format_err("frozen graph has no nodes"));
    }
    let root = NodeId(r.read_u32()?);
    let g = FrozenGraph {
        node_labels: read_arr(r, "node_labels", LabelId)?,
        child_off: read_arr(r, "child_off", |v| v)?,
        child_tgt: read_arr(r, "child_tgt", NodeId)?,
        parent_off: read_arr(r, "parent_off", |v| v)?,
        parent_tgt: read_arr(r, "parent_tgt", NodeId)?,
        label_off: read_arr(r, "label_off", |v| v)?,
        label_tgt: read_arr(r, "label_tgt", NodeId)?,
        name_off: read_arr(r, "name_off", |v| v)?,
        name_bytes: read_bytes(r, "name_bytes")?,
        name_order: read_arr(r, "name_order", |v| v)?,
        root,
    };
    if g.node_count() != n {
        return Err(format_err(format!(
            "frozen graph declares {n} nodes but carries {}",
            g.node_count()
        )));
    }
    g.validate().map_err(format_err)?;
    Ok(g)
}

// ---------------------------------------------------------------------
// Frozen component payload
// ---------------------------------------------------------------------

fn write_frozen_component_payload<W: Write>(
    w: &mut HashingWriter<W>,
    c: &FrozenIndex,
) -> io::Result<()> {
    w.write_u32(c.node_count() as u32)?;
    w.write_u32(u32::from(c.lemma2))?;
    w.write_u64(c.epoch)?;
    write_arr(w, c.labels.iter().map(|l| l.0))?;
    write_arr(w, c.k.iter().copied())?;
    write_arr(w, c.genuine.iter().copied())?;
    write_arr(w, c.extent_off.iter().copied())?;
    write_arr(w, c.extent_arena.iter().map(|v| v.0))?;
    write_arr(w, c.child_off.iter().copied())?;
    write_arr(w, c.child_tgt.iter().map(|v| v.0))?;
    write_arr(w, c.parent_off.iter().copied())?;
    write_arr(w, c.parent_tgt.iter().map(|v| v.0))
}

/// Reads one frozen component. `num_labels` and `data_nodes` come from the
/// already-loaded frozen graph; the stored arrays are taken verbatim while
/// `node_of_data` and `by_label` are derived by one counting pass each —
/// O(1) allocations regardless of node count.
fn read_frozen_component_payload(
    r: &mut HashingReader<&[u8]>,
    num_labels: usize,
    data_nodes: usize,
) -> Result<FrozenIndex, StoreError> {
    let n = r.read_u32()? as usize;
    if n == 0 || n > data_nodes {
        return Err(format_err(format!("implausible index node count {n}")));
    }
    let lemma2 = match r.read_u32()? {
        0 => false,
        1 => true,
        other => return Err(format_err(format!("invalid lemma2 flag {other}"))),
    };
    let epoch = r.read_u64()?;
    let labels = read_arr(r, "labels", LabelId)?;
    let k = read_arr(r, "k", |v| v)?;
    let genuine = read_arr(r, "genuine", |v| v)?;
    let extent_off = read_arr(r, "extent_off", |v| v)?;
    let extent_arena = read_arr(r, "extent_arena", NodeId)?;
    let child_off = read_arr(r, "child_off", |v| v)?;
    let child_tgt = read_arr(r, "child_tgt", IdxId)?;
    let parent_off = read_arr(r, "parent_off", |v| v)?;
    let parent_tgt = read_arr(r, "parent_tgt", IdxId)?;

    if labels.len() != n {
        return Err(format_err("label array does not match node count"));
    }
    if extent_off.len() != n + 1
        || extent_off.first() != Some(&0)
        || extent_off.last().map(|&v| v as usize) != Some(extent_arena.len())
        || extent_off.windows(2).any(|w| w[0] > w[1])
    {
        return Err(format_err("extent offsets malformed"));
    }
    if extent_arena.len() != data_nodes {
        return Err(format_err(format!(
            "extents cover {} of {data_nodes} data nodes",
            extent_arena.len()
        )));
    }

    // Derive node_of_data by inverting the extent partition.
    let mut node_of_data = vec![IdxId(u32::MAX); data_nodes];
    for v in 0..n {
        let (lo, hi) = (extent_off[v] as usize, extent_off[v + 1] as usize);
        for &o in &extent_arena[lo..hi] {
            let slot = node_of_data
                .get_mut(o.index())
                .ok_or_else(|| format_err(format!("extent member {} out of range", o.0)))?;
            if *slot != IdxId(u32::MAX) {
                return Err(format_err(format!("data node {} in two extents", o.0)));
            }
            *slot = IdxId(v as u32);
        }
    }

    // Derive by_label via the shared counting-sort builder (ascending ids
    // within each label, exactly the frozen enumeration order).
    let (by_label_off, by_label_ids) = derive_by_label(&labels, num_labels)?;

    let c = FrozenIndex {
        labels,
        k,
        genuine,
        extent_off,
        extent_arena,
        child_off,
        child_tgt,
        parent_off,
        parent_tgt,
        node_of_data,
        by_label_off,
        by_label_ids,
        lemma2,
        epoch,
    };
    c.validate().map_err(format_err)?;
    Ok(c)
}

// ---------------------------------------------------------------------
// Compressed (v3) payloads
// ---------------------------------------------------------------------

fn write_compressed_graph_payload<W: Write>(
    w: &mut HashingWriter<W>,
    g: &FrozenGraph,
    tagged: bool,
) -> io::Result<()> {
    let packed = g.pack_csr();
    w.write_u32(g.node_count() as u32)?;
    w.write_u32(g.root().0)?;
    write_arr(w, g.node_labels.iter().map(|l| l.0))?;
    write_arena(w, &packed.children, tagged)?;
    write_arena(w, &packed.parents, tagged)?;
    write_arena(w, &packed.labels, tagged)?;
    write_arr(w, g.name_off.iter().copied())?;
    write_bytes(w, &g.name_bytes)?;
    write_arr(w, g.name_order.iter().copied())
}

/// Reads a packed graph payload, decoding the three CSR arenas back into
/// the raw [`FrozenGraph`] serving form (adjacency is compressed on disk
/// only; queries walk it as slices).
fn read_compressed_graph_payload(
    r: &mut HashingReader<&[u8]>,
    tagged: bool,
) -> Result<FrozenGraph, StoreError> {
    let n = r.read_u32()? as usize;
    if n == 0 {
        return Err(format_err("frozen graph has no nodes"));
    }
    let root = NodeId(r.read_u32()?);
    let node_labels = read_arr(r, "node_labels", LabelId)?;
    let csr = PackedGraphCsr {
        children: read_arena(r, "graph children", tagged)?,
        parents: read_arena(r, "graph parents", tagged)?,
        labels: read_arena(r, "graph labels", tagged)?,
    };
    let name_off = read_arr(r, "name_off", |v| v)?;
    let name_bytes = read_bytes(r, "name_bytes")?;
    let name_order = read_arr(r, "name_order", |v| v)?;
    let g = FrozenGraph::from_packed_csr(node_labels, &csr, name_off, name_bytes, name_order, root)
        .map_err(format_err)?;
    if g.node_count() != n {
        return Err(format_err(format!(
            "frozen graph declares {n} nodes but carries {}",
            g.node_count()
        )));
    }
    Ok(g)
}

fn write_compressed_component_payload<W: Write>(
    w: &mut HashingWriter<W>,
    c: &CompressedIndex,
    tagged: bool,
) -> io::Result<()> {
    w.write_u32(c.node_count() as u32)?;
    w.write_u32(u32::from(c.lemma2))?;
    w.write_u64(c.epoch)?;
    write_arr(w, c.labels.iter().map(|l| l.0))?;
    write_arr(w, c.k.iter().copied())?;
    write_arr(w, c.genuine.iter().copied())?;
    write_arena(w, &c.extents, tagged)?;
    // Index adjacency rows are sorted and deduplicated, so they pack the
    // same way the extents do.
    let mut child = PostingArena::new();
    let mut parent = PostingArena::new();
    for v in 0..c.node_count() {
        let v = IdxId(v as u32);
        child.push_list(c.children(v));
        parent.push_list(c.parents(v));
    }
    write_arena(w, &child, tagged)?;
    write_arena(w, &parent, tagged)
}

/// Reads one packed component straight into its [`CompressedIndex`]
/// serving form: adjacency decodes back to raw CSR, the extent arena stays
/// compressed, and `node_of_data` / `by_label` are derived exactly as the
/// v2 reader derives them.
fn read_compressed_component_payload(
    r: &mut HashingReader<&[u8]>,
    num_labels: usize,
    data_nodes: usize,
    tagged: bool,
) -> Result<CompressedIndex, StoreError> {
    let n = r.read_u32()? as usize;
    if n == 0 || n > data_nodes {
        return Err(format_err(format!("implausible index node count {n}")));
    }
    let lemma2 = match r.read_u32()? {
        0 => false,
        1 => true,
        other => return Err(format_err(format!("invalid lemma2 flag {other}"))),
    };
    let epoch = r.read_u64()?;
    let labels = read_arr(r, "labels", LabelId)?;
    let k = read_arr(r, "k", |v| v)?;
    let genuine = read_arr(r, "genuine", |v| v)?;
    let extents = read_arena(r, "extents", tagged)?;
    let child = read_arena(r, "child adjacency", tagged)?;
    let parent = read_arena(r, "parent adjacency", tagged)?;

    if labels.len() != n {
        return Err(format_err("label array does not match node count"));
    }
    if extents.num_lists() != n {
        return Err(format_err("extent arena list count disagrees with nodes"));
    }

    // Derive node_of_data by inverting the extent partition through the
    // cursors — the only full decode pass a v3 load pays for extents.
    let mut node_of_data = vec![IdxId(u32::MAX); data_nodes];
    let mut covered = 0usize;
    for v in 0..n {
        let mut cur = extents.cursor(v);
        while let Some(o) = cur.next() {
            let slot = node_of_data
                .get_mut(o as usize)
                .ok_or_else(|| format_err(format!("extent member {o} out of range")))?;
            if *slot != IdxId(u32::MAX) {
                return Err(format_err(format!("data node {o} in two extents")));
            }
            *slot = IdxId(v as u32);
            covered += 1;
        }
    }
    if covered != data_nodes {
        return Err(format_err(format!(
            "extents cover {covered} of {data_nodes} data nodes"
        )));
    }

    let (by_label_off, by_label_ids) = derive_by_label(&labels, num_labels)?;
    let (child_off, child_tgt) = child.decode_csr::<IdxId>();
    let (parent_off, parent_tgt) = parent.decode_csr::<IdxId>();

    let c = CompressedIndex {
        labels,
        k,
        genuine,
        extents,
        child_off,
        child_tgt,
        parent_off,
        parent_tgt,
        node_of_data,
        by_label_off,
        by_label_ids,
        lemma2,
        epoch,
    };
    c.validate().map_err(format_err)?;
    Ok(c)
}

// ---------------------------------------------------------------------
// Save / eager load
// ---------------------------------------------------------------------

/// Saves a frozen snapshot (`graph` + every component of `idx`) to `path`
/// in the flat v2 layout.
pub fn save_frozen(
    path: impl AsRef<Path>,
    g: &FrozenGraph,
    idx: &FrozenMStar,
) -> Result<(), StoreError> {
    let file = File::create(path)?;
    save_frozen_to(BufWriter::new(file), g, idx)
}

/// Saves a frozen snapshot to an arbitrary writer.
pub fn save_frozen_to<W: Write>(
    out: W,
    g: &FrozenGraph,
    idx: &FrozenMStar,
) -> Result<(), StoreError> {
    if idx.components.is_empty() {
        return Err(format_err("frozen M* has no components"));
    }
    let graph_payload = to_payload(|w| write_frozen_graph_payload(w, g))?;
    let component_payloads: Vec<Vec<u8>> = idx
        .components
        .iter()
        .map(|c| to_payload(|w| write_frozen_component_payload(w, c)))
        .collect::<io::Result<_>>()?;
    write_flat_file(out, VERSION_FLAT, &graph_payload, &component_payloads)
}

/// Saves a compressed snapshot (`graph` + every component of `idx`) to
/// `path` in the packed v3 layout.
pub fn save_compressed(
    path: impl AsRef<Path>,
    g: &FrozenGraph,
    idx: &CompressedMStar,
) -> Result<(), StoreError> {
    let file = File::create(path)?;
    save_compressed_to(BufWriter::new(file), g, idx)
}

/// Saves a compressed snapshot to an arbitrary writer in the current
/// tagged-block layout (v5).
pub fn save_compressed_to<W: Write>(
    out: W,
    g: &FrozenGraph,
    idx: &CompressedMStar,
) -> Result<(), StoreError> {
    save_compressed_to_impl(out, g, idx, true)
}

/// Saves a compressed snapshot in the pre-tag v3 layout. Kept for
/// back-compat coverage: tests use it to prove v3 files still load
/// byte-identically through the v5 reader path.
#[cfg(test)]
pub(crate) fn save_compressed_to_legacy<W: Write>(
    out: W,
    g: &FrozenGraph,
    idx: &CompressedMStar,
) -> Result<(), StoreError> {
    save_compressed_to_impl(out, g, idx, false)
}

fn save_compressed_to_impl<W: Write>(
    out: W,
    g: &FrozenGraph,
    idx: &CompressedMStar,
    tagged: bool,
) -> Result<(), StoreError> {
    if idx.components.is_empty() {
        return Err(format_err("compressed M* has no components"));
    }
    let graph_payload = to_payload(|w| write_compressed_graph_payload(w, g, tagged))?;
    let component_payloads: Vec<Vec<u8>> = idx
        .components
        .iter()
        .map(|c| to_payload(|w| write_compressed_component_payload(w, c, tagged)))
        .collect::<io::Result<_>>()?;
    let version = if tagged {
        VERSION_FLAT_C_TAGGED
    } else {
        VERSION_FLAT_C
    };
    write_flat_file(out, version, &graph_payload, &component_payloads)
}

/// Writes the shared v2/v3 framing: header, graph section, component
/// directory, component sections.
fn write_flat_file<W: Write>(
    mut out: W,
    version: u32,
    graph_payload: &[u8],
    component_payloads: &[Vec<u8>],
) -> Result<(), StoreError> {
    let ncomp = component_payloads.len();
    out.write_all(STAR_MAGIC)?;
    out.write_all(&version.to_le_bytes())?;
    out.write_all(&(ncomp as u32).to_le_bytes())?;

    let header_len = 8 + 4 + 4;
    let graph_section_len = 8 + graph_payload.len() as u64 + 8;
    let dir_len = 8 * ncomp as u64;
    let mut offset = header_len + graph_section_len + dir_len;
    let mut dir = Vec::with_capacity(ncomp);
    for p in component_payloads {
        dir.push(offset);
        offset += 8 + p.len() as u64 + 8;
    }

    write_section(&mut out, graph_payload)?;
    for o in &dir {
        out.write_all(&o.to_le_bytes())?;
    }
    for p in component_payloads {
        write_section(&mut out, p)?;
    }
    out.flush()?;
    Ok(())
}

/// Loads a complete frozen snapshot from `path` (eager; use [`FrozenFile`]
/// for lazy prefix loading). Every declared length is checked against the
/// file size before allocation.
pub fn load_frozen(path: impl AsRef<Path>) -> Result<(FrozenGraph, FrozenMStar), StoreError> {
    let file = File::open(path)?;
    let size = file.metadata()?.len();
    load_frozen_impl(BufReader::new(file), Some(size))
}

/// Loads a complete frozen snapshot from an arbitrary reader.
pub fn load_frozen_from<R: Read>(input: R) -> Result<(FrozenGraph, FrozenMStar), StoreError> {
    load_frozen_impl(input, None)
}

fn load_frozen_impl<R: Read>(
    mut input: R,
    size: Option<u64>,
) -> Result<(FrozenGraph, FrozenMStar), StoreError> {
    let (graph, ncomp, mut remaining) = read_flat_header(&mut input, size)?;
    // Skip the directory (sequential read needs no seeking).
    let mut dir = vec![0u8; 8 * ncomp];
    input.read_exact(&mut dir)?;
    let mut components = Vec::with_capacity(ncomp);
    for i in 0..ncomp {
        let (c, clen) =
            read_section_bounded(&mut input, &format!("component {i}"), remaining, |r| {
                read_frozen_component_payload(r, graph.num_labels(), graph.node_count())
            })?;
        if let Some(rem) = remaining.as_mut() {
            *rem = rem.saturating_sub(clen);
        }
        components.push(c);
    }
    let star = assemble_star(components);
    Ok((graph, star))
}

/// Loads a complete compressed (v3) snapshot from `path` (eager; use
/// [`CompressedFile`] for lazy prefix loading).
pub fn load_compressed(
    path: impl AsRef<Path>,
) -> Result<(FrozenGraph, CompressedMStar), StoreError> {
    let file = File::open(path)?;
    let size = file.metadata()?.len();
    load_compressed_impl(BufReader::new(file), Some(size))
}

/// Loads a complete compressed snapshot from an arbitrary reader.
pub fn load_compressed_from<R: Read>(
    input: R,
) -> Result<(FrozenGraph, CompressedMStar), StoreError> {
    load_compressed_impl(input, None)
}

fn load_compressed_impl<R: Read>(
    mut input: R,
    size: Option<u64>,
) -> Result<(FrozenGraph, CompressedMStar), StoreError> {
    let (graph, ncomp, mut remaining, tagged) = read_flat_header_c(&mut input, size)?;
    let mut dir = vec![0u8; 8 * ncomp];
    input.read_exact(&mut dir)?;
    let mut components = Vec::with_capacity(ncomp);
    for i in 0..ncomp {
        let (c, clen) =
            read_section_bounded(&mut input, &format!("component {i}"), remaining, |r| {
                read_compressed_component_payload(r, graph.num_labels(), graph.node_count(), tagged)
            })?;
        if let Some(rem) = remaining.as_mut() {
            *rem = rem.saturating_sub(clen);
        }
        components.push(c);
    }
    let star = assemble_compressed(components);
    Ok((graph, star))
}

/// Peeks the layout version of an `.mrx` index snapshot
/// ([`VERSION_FLAT`] = flat v2, [`VERSION_FLAT_C`] = compressed v3,
/// [`crate::format::VERSION_PAGED`] = demand-paged v4,
/// [`VERSION_FLAT_C_TAGGED`] = tagged compressed v5,
/// [`crate::format::VERSION_PAGED_TAGGED`] = tagged demand-paged v6,
/// `1` = the logical v1 layout) without loading any section. Rejects
/// files that do not carry the index magic.
pub fn snapshot_version(path: impl AsRef<Path>) -> Result<u32, StoreError> {
    let mut f = File::open(path)?;
    let mut hdr = [0u8; 12];
    f.read_exact(&mut hdr)?;
    if hdr[..8] != *STAR_MAGIC {
        return Err(format_err("not an mrx index file (bad magic)"));
    }
    Ok(u32::from_le_bytes([hdr[8], hdr[9], hdr[10], hdr[11]]))
}

/// Reads the flat-file header and the embedded frozen graph. Returns the
/// graph, the component count, and the byte budget left after the graph
/// section and the directory (when the total size is known).
fn read_flat_header<R: Read>(
    input: &mut R,
    size: Option<u64>,
) -> Result<(FrozenGraph, usize, Option<u64>), StoreError> {
    let (_, ncomp, mut remaining) = read_flat_prelude(input, size, &[VERSION_FLAT])?;
    let (graph, glen) = read_section_bounded(input, "graph", remaining, read_frozen_graph_payload)?;
    if let Some(rem) = remaining.as_mut() {
        *rem = rem.saturating_sub(glen + 8 * ncomp as u64);
    }
    Ok((graph, ncomp, remaining))
}

/// [`read_flat_header`] for the compressed layouts (tagged v5 and the
/// pre-tag v3): same prelude, the graph section decodes from packed CSR
/// arenas. The extra `bool` reports whether the file uses tagged block
/// payloads so component reads decode the right wire form.
fn read_flat_header_c<R: Read>(
    input: &mut R,
    size: Option<u64>,
) -> Result<(FrozenGraph, usize, Option<u64>, bool), StoreError> {
    let (version, ncomp, mut remaining) =
        read_flat_prelude(input, size, &[VERSION_FLAT_C, VERSION_FLAT_C_TAGGED])?;
    let tagged = version == VERSION_FLAT_C_TAGGED;
    let (graph, glen) = read_section_bounded(input, "graph", remaining, |r| {
        read_compressed_graph_payload(r, tagged)
    })?;
    if let Some(rem) = remaining.as_mut() {
        *rem = rem.saturating_sub(glen + 8 * ncomp as u64);
    }
    Ok((graph, ncomp, remaining, tagged))
}

/// Checks magic, version, and component count; returns the matched
/// version, the component count, and the byte budget left after the
/// 16-byte header. `accepted` lists every on-disk version this reader can
/// decode (e.g. a pre-tag layout next to its tagged successor).
pub(crate) fn read_flat_prelude<R: Read>(
    input: &mut R,
    size: Option<u64>,
    accepted: &[u32],
) -> Result<(u32, usize, Option<u64>), StoreError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != STAR_MAGIC {
        return Err(format_err("not an mrx index file (bad magic)"));
    }
    let mut buf4 = [0u8; 4];
    input.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if !accepted.contains(&version) {
        let expect = accepted
            .iter()
            .map(|v| format!("v{v}"))
            .collect::<Vec<_>>()
            .join("/");
        return Err(format_err(format!(
            "not a flat ({expect}) snapshot: version {version}"
        )));
    }
    input.read_exact(&mut buf4)?;
    let ncomp = u32::from_le_bytes(buf4) as usize;
    if ncomp == 0 || ncomp > 4096 {
        return Err(format_err(format!("implausible component count {ncomp}")));
    }
    Ok((version, ncomp, size.map(|s| s.saturating_sub(16))))
}

/// Rebuilds a [`FrozenMStar`] from loaded components. The combined epoch is
/// recomputed exactly as [`mrx_index::MStarIndex::mutation_epoch`] defines
/// it (sum of component epochs plus the component count), so a freeze →
/// save → load round trip is `==` to the original snapshot.
fn assemble_star(components: Vec<FrozenIndex>) -> FrozenMStar {
    let epoch = components.iter().map(|c| c.epoch).sum::<u64>() + components.len() as u64;
    FrozenMStar { components, epoch }
}

/// [`assemble_star`] for compressed components — the same epoch
/// recomputation, so a freeze → save → load round trip is `==`.
fn assemble_compressed(components: Vec<CompressedIndex>) -> CompressedMStar {
    let epoch = components.iter().map(|c| c.epoch).sum::<u64>() + components.len() as u64;
    CompressedMStar { components, epoch }
}

// ---------------------------------------------------------------------
// Lazy frozen file
// ---------------------------------------------------------------------

/// An open flat (v2) snapshot whose components load lazily, straight into
/// frozen form — the zero-copy counterpart of [`crate::MStarFile`].
///
/// A top-down query of length `j` touches only `I0..Ij`: evaluating
/// top-down over the loaded prefix is *identical* to evaluating over the
/// full hierarchy, because descent from component `i` targets component
/// `min(i + 1, j)` and the query never looks past `Ij`.
///
/// # Graceful degradation
///
/// A component section that fails to read — corrupt payload, bad checksum,
/// truncation — does **not** fail the query: the component is rebuilt live
/// from the embedded frozen graph as the exact `A(i)` partition, which is a
/// sound drop-in (every block is a genuine `i`-bisimulation class, so
/// answers are unchanged; only the one-time load cost is). Rebuilt
/// components are reported by [`FrozenFile::degraded_components`]. Only the
/// graph section itself is unrecoverable, since it is the rebuild source.
pub struct FrozenFile {
    file: BufReader<File>,
    file_len: u64,
    graph: FrozenGraph,
    offsets: Vec<u64>,
    /// Always a prefix `I0..I(len-1)` of the file's components.
    components: Vec<FrozenIndex>,
    /// Components rebuilt from the graph after a failed section read
    /// (ascending, each listed once).
    degraded: Vec<usize>,
    bytes_read: u64,
}

impl FrozenFile {
    /// Opens a flat snapshot, reading only the header, the embedded frozen
    /// graph and the directory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut file = BufReader::new(file);
        let (graph, ncomp, _) = read_flat_header(&mut file, Some(file_len))?;
        let mut dir = vec![0u8; 8 * ncomp];
        file.read_exact(&mut dir)?;
        let mut offsets = Vec::with_capacity(ncomp);
        let mut prev = 0u64;
        for c in dir.chunks_exact(8) {
            let o = le_u64(c);
            // 8(len) + 8(digest) is the smallest possible section.
            if o <= prev || o + 16 > file_len {
                return Err(format_err(format!(
                    "component directory offset {o} outside the file"
                )));
            }
            prev = o;
            offsets.push(o);
        }
        let bytes_read = file.stream_position()?;
        Ok(FrozenFile {
            file,
            file_len,
            graph,
            offsets,
            components: Vec::new(),
            degraded: Vec::new(),
            bytes_read,
        })
    }

    /// The embedded frozen data graph (always resident).
    pub fn graph(&self) -> &FrozenGraph {
        &self.graph
    }

    /// Total number of components in the file.
    pub fn component_count(&self) -> usize {
        self.offsets.len()
    }

    /// Indices of the components currently in memory (always a prefix).
    pub fn loaded_components(&self) -> Vec<usize> {
        (0..self.components.len()).collect()
    }

    /// Bytes read from the file so far (header + graph + dir + loaded
    /// components).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Components that failed their section read and were rebuilt live
    /// from the embedded frozen graph (ascending, each listed once).
    pub fn degraded_components(&self) -> &[usize] {
        &self.degraded
    }

    /// Ensures components `I0..=Iupto` are resident, rebuilding any whose
    /// section cannot be read.
    pub fn ensure_loaded(&mut self, upto: usize) -> Result<(), StoreError> {
        let upto = upto.min(self.offsets.len().saturating_sub(1));
        for i in self.components.len()..=upto {
            let c = match self.read_component(i) {
                Ok(c) => c,
                Err(e) => self.rebuild_component(i, &e),
            };
            self.components.push(c);
        }
        Ok(())
    }

    /// Reads component `Ii` from its directory offset.
    fn read_component(&mut self, i: usize) -> Result<FrozenIndex, StoreError> {
        self.file.seek(SeekFrom::Start(self.offsets[i]))?;
        let budget = self.file_len.saturating_sub(self.offsets[i]);
        let (c, len) = read_section_bounded(
            &mut self.file,
            &format!("component {i}"),
            Some(budget),
            |r| read_frozen_component_payload(r, self.graph.num_labels(), self.graph.node_count()),
        )?;
        self.bytes_read += len;
        Ok(c)
    }

    /// Fallback for an unreadable component section: rebuild `Ii` as the
    /// exact `A(i)` partition of the embedded graph. Sound because every
    /// rebuilt block is a genuine `i`-bisimulation class, so top-down
    /// answers under any trust policy are unchanged; only the one-time
    /// rebuild cost (and the index's size/cost profile) differs from the
    /// workload-refined component the file carried.
    fn rebuild_component(&mut self, i: usize, cause: &StoreError) -> FrozenIndex {
        eprintln!(
            "mrx-store: component {i} unreadable ({cause}); rebuilding it from the data graph"
        );
        let dg = thaw_graph(&self.graph);
        let ak = mrx_index::AkIndex::build(&dg, i as u32);
        self.degraded.push(i);
        FrozenIndex::freeze(ak.graph())
    }

    /// Answers `path` top-down under the sound trust policy, loading only
    /// the components the query needs (`I0..I(length)`).
    pub fn query_top_down(&mut self, path: &PathExpr) -> Result<Answer, StoreError> {
        self.query(path, TrustPolicy::Proven)
    }

    /// Answers `path` top-down with an explicit trust policy.
    pub fn query(&mut self, path: &PathExpr, policy: TrustPolicy) -> Result<Answer, StoreError> {
        let len = path.steps().len().saturating_sub(1);
        self.ensure_loaded(len)?;
        let star = assemble_star(std::mem::take(&mut self.components));
        let ans = star.query_top_down(&self.graph, path, policy);
        self.components = star.components;
        Ok(ans)
    }

    /// [`FrozenFile::query`] under a [`QueryBudget`] — the governed lazy
    /// serving path. Budget exhaustion surfaces as [`MrxError::Budget`]
    /// with the partial cost attached; load failures as
    /// [`MrxError::Store`]. The query still loads only the components its
    /// length requires.
    pub fn query_budgeted(
        &mut self,
        path: &PathExpr,
        policy: TrustPolicy,
        budget: &QueryBudget,
    ) -> Result<Answer, MrxError> {
        let len = path.steps().len().saturating_sub(1);
        self.ensure_loaded(len)?;
        let star = assemble_star(std::mem::take(&mut self.components));
        let mut meter = budget.meter();
        let r = star.query_top_down_budgeted(
            &self.graph,
            &path.compile(&self.graph),
            policy,
            &mut QueryScratch::new(),
            &mut meter,
        );
        self.components = star.components;
        r.map_err(MrxError::Budget)
    }

    /// Loads everything and returns the full in-memory snapshot.
    pub fn into_frozen(mut self) -> Result<(FrozenGraph, FrozenMStar), StoreError> {
        self.ensure_loaded(self.offsets.len().saturating_sub(1))?;
        Ok((self.graph, assemble_star(self.components)))
    }
}

// ---------------------------------------------------------------------
// Lazy compressed file
// ---------------------------------------------------------------------

/// An open compressed (v3) snapshot whose components load lazily into
/// [`CompressedIndex`] serving form — extents stay delta-compressed in
/// memory and are served through seeking cursors.
///
/// Mirrors [`FrozenFile`] exactly: the same prefix-loading rule (a
/// top-down query of length `j` touches only `I0..Ij`) and the same
/// graceful degradation — an unreadable component section is rebuilt live
/// from the embedded graph as the exact `A(i)` partition and then
/// compressed, so answers are unchanged. Only the graph section itself is
/// unrecoverable.
pub struct CompressedFile {
    file: BufReader<File>,
    file_len: u64,
    graph: FrozenGraph,
    offsets: Vec<u64>,
    /// Always a prefix `I0..I(len-1)` of the file's components.
    components: Vec<CompressedIndex>,
    /// Components rebuilt from the graph after a failed section read
    /// (ascending, each listed once).
    degraded: Vec<usize>,
    bytes_read: u64,
    /// Whether component sections use tagged block payloads (v5) or the
    /// pre-tag varint-only form (v3).
    tagged: bool,
}

impl CompressedFile {
    /// Opens a compressed snapshot, reading only the header, the embedded
    /// graph and the directory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut file = BufReader::new(file);
        let (graph, ncomp, _, tagged) = read_flat_header_c(&mut file, Some(file_len))?;
        let mut dir = vec![0u8; 8 * ncomp];
        file.read_exact(&mut dir)?;
        let mut offsets = Vec::with_capacity(ncomp);
        let mut prev = 0u64;
        for c in dir.chunks_exact(8) {
            let o = le_u64(c);
            // 8(len) + 8(digest) is the smallest possible section.
            if o <= prev || o + 16 > file_len {
                return Err(format_err(format!(
                    "component directory offset {o} outside the file"
                )));
            }
            prev = o;
            offsets.push(o);
        }
        let bytes_read = file.stream_position()?;
        Ok(CompressedFile {
            file,
            file_len,
            graph,
            offsets,
            components: Vec::new(),
            degraded: Vec::new(),
            bytes_read,
            tagged,
        })
    }

    /// The embedded frozen data graph (always resident, decoded to raw
    /// CSR at open time).
    pub fn graph(&self) -> &FrozenGraph {
        &self.graph
    }

    /// Total number of components in the file.
    pub fn component_count(&self) -> usize {
        self.offsets.len()
    }

    /// Indices of the components currently in memory (always a prefix).
    pub fn loaded_components(&self) -> Vec<usize> {
        (0..self.components.len()).collect()
    }

    /// Bytes read from the file so far (header + graph + dir + loaded
    /// components).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Components that failed their section read and were rebuilt live
    /// from the embedded graph (ascending, each listed once).
    pub fn degraded_components(&self) -> &[usize] {
        &self.degraded
    }

    /// Heap bytes the loaded components' extent representations hold —
    /// the serving-footprint side of the compression trade.
    pub fn extent_bytes(&self) -> usize {
        self.components.iter().map(|c| c.extent_bytes()).sum()
    }

    /// Ensures components `I0..=Iupto` are resident, rebuilding any whose
    /// section cannot be read.
    pub fn ensure_loaded(&mut self, upto: usize) -> Result<(), StoreError> {
        let upto = upto.min(self.offsets.len().saturating_sub(1));
        for i in self.components.len()..=upto {
            let c = match self.read_component(i) {
                Ok(c) => c,
                Err(e) => self.rebuild_component(i, &e),
            };
            self.components.push(c);
        }
        Ok(())
    }

    /// Reads component `Ii` from its directory offset.
    fn read_component(&mut self, i: usize) -> Result<CompressedIndex, StoreError> {
        self.file.seek(SeekFrom::Start(self.offsets[i]))?;
        let budget = self.file_len.saturating_sub(self.offsets[i]);
        let (c, len) = read_section_bounded(
            &mut self.file,
            &format!("component {i}"),
            Some(budget),
            |r| {
                read_compressed_component_payload(
                    r,
                    self.graph.num_labels(),
                    self.graph.node_count(),
                    self.tagged,
                )
            },
        )?;
        self.bytes_read += len;
        Ok(c)
    }

    /// Fallback for an unreadable component section: rebuild `Ii` as the
    /// exact `A(i)` partition of the embedded graph and compress it —
    /// sound for the same reason as [`FrozenFile`]'s rebuild (every block
    /// is a genuine `i`-bisimulation class).
    fn rebuild_component(&mut self, i: usize, cause: &StoreError) -> CompressedIndex {
        eprintln!(
            "mrx-store: component {i} unreadable ({cause}); rebuilding it from the data graph"
        );
        let dg = thaw_graph(&self.graph);
        let ak = mrx_index::AkIndex::build(&dg, i as u32);
        self.degraded.push(i);
        CompressedIndex::from_frozen(&FrozenIndex::freeze(ak.graph()))
    }

    /// Answers `path` top-down under the sound trust policy, loading only
    /// the components the query needs (`I0..I(length)`).
    pub fn query_top_down(&mut self, path: &PathExpr) -> Result<Answer, StoreError> {
        self.query(path, TrustPolicy::Proven)
    }

    /// Answers `path` top-down with an explicit trust policy.
    pub fn query(&mut self, path: &PathExpr, policy: TrustPolicy) -> Result<Answer, StoreError> {
        let len = path.steps().len().saturating_sub(1);
        self.ensure_loaded(len)?;
        let star = assemble_compressed(std::mem::take(&mut self.components));
        let ans = star.query_top_down(&self.graph, path, policy);
        self.components = star.components;
        Ok(ans)
    }

    /// [`CompressedFile::query`] under a [`QueryBudget`] — the governed
    /// lazy serving path, mirroring [`FrozenFile::query_budgeted`].
    pub fn query_budgeted(
        &mut self,
        path: &PathExpr,
        policy: TrustPolicy,
        budget: &QueryBudget,
    ) -> Result<Answer, MrxError> {
        let len = path.steps().len().saturating_sub(1);
        self.ensure_loaded(len)?;
        let star = assemble_compressed(std::mem::take(&mut self.components));
        let mut meter = budget.meter();
        let r = star.query_top_down_budgeted(
            &self.graph,
            &path.compile(&self.graph),
            policy,
            &mut QueryScratch::new(),
            &mut meter,
        );
        self.components = star.components;
        r.map_err(MrxError::Budget)
    }

    /// Loads everything and returns the full in-memory snapshot.
    pub fn into_compressed(mut self) -> Result<(FrozenGraph, CompressedMStar), StoreError> {
        self.ensure_loaded(self.offsets.len().saturating_sub(1))?;
        Ok((self.graph, assemble_compressed(self.components)))
    }
}

/// Reconstructs a live [`DataGraph`](mrx_graph::DataGraph) from a frozen
/// one, preserving node and label ids. Merged adjacency is replayed as
/// reference edges: k-bisimulation sees only the merged child/parent
/// relation, so indexes built on the thawed graph partition data nodes
/// exactly as ones built on the original would.
fn thaw_graph(g: &FrozenGraph) -> mrx_graph::DataGraph {
    let mut b = mrx_graph::GraphBuilder::with_capacity(g.node_count());
    for l in 0..g.num_labels() {
        b.intern(g.label_str(LabelId(l as u32)));
    }
    for v in 0..g.node_count() {
        b.add_node_with(g.label(NodeId(v as u32)));
    }
    for v in 0..g.node_count() {
        let v = NodeId(v as u32);
        for &c in g.children(v) {
            b.add_ref(v, c);
        }
    }
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::save_mstar_to;
    use mrx_graph::DataGraph;
    use mrx_index::MStarIndex;
    use mrx_path::eval_data;

    fn setup() -> (DataGraph, MStarIndex) {
        let g = mrx_datagen::nasa_like(2_000, 4);
        let mut idx = MStarIndex::new(&g);
        for expr in [
            "//dataset/reference/source",
            "//reference/source/journal/author/lastname",
            "//dataset/history/ingest",
        ] {
            idx.refine_for(&g, &PathExpr::parse(expr).unwrap());
        }
        (g, idx)
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mrx-flat-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn frozen_roundtrip_is_bit_identical() {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let fz = idx.freeze();
        let mut buf = Vec::new();
        save_frozen_to(&mut buf, &fg, &fz).unwrap();
        let (fg2, fz2) = load_frozen_from(&buf[..]).unwrap();
        assert_eq!(fg, fg2);
        assert_eq!(fz, fz2);
        assert_eq!(fz2.mutation_epoch(), idx.mutation_epoch());
    }

    #[test]
    fn frozen_file_lazy_loading_and_answers() {
        let dir = tempdir();
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let path = dir.join("nasa-flat.mrx");
        save_frozen(&path, &fg, &idx.freeze()).unwrap();

        let mut f = FrozenFile::open(&path).unwrap();
        assert_eq!(f.component_count(), 5);
        assert!(f.loaded_components().is_empty());
        let after_open = f.bytes_read();

        let q0 = PathExpr::parse("//lastname").unwrap();
        let a0 = f.query_top_down(&q0).unwrap();
        assert_eq!(a0.nodes, eval_data(&g, &q0.compile(&g)));
        assert_eq!(f.loaded_components(), vec![0]);
        assert!(f.bytes_read() > after_open);

        let q2 = PathExpr::parse("//dataset/reference/source").unwrap();
        let a2 = f.query_top_down(&q2).unwrap();
        assert_eq!(a2.nodes, eval_data(&g, &q2.compile(&g)));
        assert_eq!(f.loaded_components(), vec![0, 1, 2]);

        // Lazy prefix answers (and costs) match the fully loaded snapshot.
        let (fg2, fz2) = FrozenFile::open(&path).unwrap().into_frozen().unwrap();
        for expr in ["//lastname", "//dataset/reference/source", "//author"] {
            let q = PathExpr::parse(expr).unwrap();
            let full = fz2.query_top_down(&fg2, &q, TrustPolicy::Proven);
            let mut lazy_file = FrozenFile::open(&path).unwrap();
            let lazy = lazy_file.query_top_down(&q).unwrap();
            assert_eq!(lazy.nodes, full.nodes, "{expr}");
            assert_eq!(lazy.cost, full.cost, "{expr}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn frozen_file_matches_live_index_and_costs() {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let mut buf = Vec::new();
        save_frozen_to(&mut buf, &fg, &idx.freeze()).unwrap();
        let (fg2, fz2) = load_frozen_from(&buf[..]).unwrap();
        for expr in [
            "//source/journal",
            "//reference/source/journal/author/lastname",
            "//dataset/history/ingest",
            "//author",
            "/dataset/title",
        ] {
            let q = PathExpr::parse(expr).unwrap();
            let live = idx.query_with_policy(
                &g,
                &q,
                mrx_index::EvalStrategy::TopDown,
                TrustPolicy::Proven,
            );
            let frozen = fz2.query_top_down(&fg2, &q, TrustPolicy::Proven);
            assert_eq!(frozen.nodes, live.nodes, "{expr}");
            assert_eq!(frozen.cost, live.cost, "{expr}");
        }
    }

    #[test]
    fn compressed_roundtrip_is_bit_identical() {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let cz = idx.freeze_compressed();
        let mut buf = Vec::new();
        save_compressed_to(&mut buf, &fg, &cz).unwrap();
        let (fg2, cz2) = load_compressed_from(&buf[..]).unwrap();
        assert_eq!(fg, fg2);
        assert_eq!(cz, cz2);
        assert_eq!(cz2.mutation_epoch(), idx.mutation_epoch());
    }

    #[test]
    fn legacy_v3_snapshots_still_load_identically() {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let cz = idx.freeze_compressed();
        let mut v3 = Vec::new();
        save_compressed_to_legacy(&mut v3, &fg, &cz).unwrap();
        let mut v5 = Vec::new();
        save_compressed_to(&mut v5, &fg, &cz).unwrap();
        assert_eq!(
            u32::from_le_bytes(v3[8..12].try_into().unwrap()),
            VERSION_FLAT_C
        );
        assert_ne!(v3, v5, "legacy file must use the pre-tag wire");
        // A pre-tag file re-encodes into tagged arenas on load and is
        // `==` to the original snapshot — same answers, same Cost.
        let (fg3, cz3) = load_compressed_from(&v3[..]).unwrap();
        assert_eq!(fg3, fg);
        assert_eq!(cz3, cz);
        let (fg5, cz5) = load_compressed_from(&v5[..]).unwrap();
        assert_eq!(fg5, fg);
        assert_eq!(cz5, cz);
    }

    #[test]
    fn compressed_snapshot_is_smaller_than_flat() {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let mut v2 = Vec::new();
        save_frozen_to(&mut v2, &fg, &idx.freeze()).unwrap();
        let mut v3 = Vec::new();
        save_compressed_to(&mut v3, &fg, &idx.freeze_compressed()).unwrap();
        assert!(
            v3.len() < v2.len(),
            "v3 ({}) should undercut v2 ({})",
            v3.len(),
            v2.len()
        );
    }

    #[test]
    fn compressed_file_lazy_loading_matches_frozen_answers_and_costs() {
        let dir = tempdir();
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let flat = dir.join("nasa-flat-ref.mrx");
        let packed = dir.join("nasa-packed.mrx");
        save_frozen(&flat, &fg, &idx.freeze()).unwrap();
        save_compressed(&packed, &fg, &idx.freeze_compressed()).unwrap();
        assert_eq!(snapshot_version(&flat).unwrap(), 2);
        assert_eq!(snapshot_version(&packed).unwrap(), 5);

        let mut cf = CompressedFile::open(&packed).unwrap();
        assert_eq!(cf.component_count(), 5);
        assert!(cf.loaded_components().is_empty());
        assert_eq!(cf.extent_bytes(), 0);

        for expr in [
            "//lastname",
            "//dataset/reference/source",
            "//author",
            "/dataset/title",
        ] {
            let q = PathExpr::parse(expr).unwrap();
            let mut ff = FrozenFile::open(&flat).unwrap();
            let frozen = ff.query_top_down(&q).unwrap();
            let compressed = cf.query_top_down(&q).unwrap();
            assert_eq!(compressed.nodes, frozen.nodes, "{expr}");
            assert_eq!(compressed.cost, frozen.cost, "{expr}");
            assert_eq!(compressed.nodes, eval_data(&g, &q.compile(&g)), "{expr}");
        }
        assert_eq!(cf.loaded_components(), vec![0, 1, 2]);
        assert!(cf.extent_bytes() > 0);

        // The packed file costs fewer bytes of I/O for the same prefix.
        let mut ff = FrozenFile::open(&flat).unwrap();
        ff.query_top_down(&PathExpr::parse("//dataset/reference/source").unwrap())
            .unwrap();
        assert!(cf.bytes_read() < ff.bytes_read());

        std::fs::remove_file(flat).ok();
        std::fs::remove_file(packed).ok();
    }

    #[test]
    fn corrupt_compressed_component_degrades_to_live_rebuild() {
        let dir = tempdir();
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let path = dir.join("degraded-packed.mrx");
        save_compressed(&path, &fg, &idx.freeze_compressed()).unwrap();

        // Flip one byte inside component I2's section: the checksum (or the
        // arena payload validation) must catch it before any varint decode
        // can run wild, and the query must still answer correctly.
        let c2_start = {
            let bytes = std::fs::read(&path).unwrap();
            let glen = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
            let dir_at = 24 + glen as usize + 8;
            u64::from_le_bytes(bytes[dir_at + 16..dir_at + 24].try_into().unwrap()) as usize
        };
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[c2_start + 64] ^= 0x41;
        std::fs::write(&path, &bytes).unwrap();

        let mut f = CompressedFile::open(&path).unwrap();
        let q = PathExpr::parse("//dataset/reference/source").unwrap();
        let ans = f.query_top_down(&q).unwrap();
        assert_eq!(ans.nodes, eval_data(&g, &q.compile(&g)));
        assert_eq!(f.degraded_components(), &[2]);

        let q4 = PathExpr::parse("//reference/source/journal/author/lastname").unwrap();
        let ans4 = f.query_top_down(&q4).unwrap();
        assert_eq!(ans4.nodes, eval_data(&g, &q4.compile(&g)));
        assert_eq!(f.degraded_components(), &[2]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v2_and_v3_readers_reject_each_other() {
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let mut v2 = Vec::new();
        save_frozen_to(&mut v2, &fg, &idx.freeze()).unwrap();
        let mut v3 = Vec::new();
        save_compressed_to(&mut v3, &fg, &idx.freeze_compressed()).unwrap();

        match load_compressed_from(&v2[..]) {
            Err(StoreError::Format(m)) => assert!(m.contains("version 2"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
        match load_frozen_from(&v3[..]) {
            Err(StoreError::Format(m)) => assert!(m.contains("version 5"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
        match crate::load_mstar_from(&v3[..]) {
            Err(StoreError::Format(m)) => assert!(m.contains("frozen"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_compressed_file_rejected() {
        let (g, idx) = setup();
        let mut bytes = Vec::new();
        save_compressed_to(
            &mut bytes,
            &FrozenGraph::freeze(&g),
            &idx.freeze_compressed(),
        )
        .unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(load_compressed_from(&bytes[..]).is_err());
        let mut flipped = Vec::new();
        save_compressed_to(
            &mut flipped,
            &FrozenGraph::freeze(&g),
            &idx.freeze_compressed(),
        )
        .unwrap();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            load_compressed_from(&flipped[..]),
            Err(StoreError::Checksum { .. }) | Err(StoreError::Format(_))
        ));
    }

    #[test]
    fn v1_and_v2_readers_reject_each_other() {
        let (g, idx) = setup();
        let mut v1 = Vec::new();
        save_mstar_to(&mut v1, &g, &idx).unwrap();
        let mut v2 = Vec::new();
        save_frozen_to(&mut v2, &FrozenGraph::freeze(&g), &idx.freeze()).unwrap();

        match load_frozen_from(&v1[..]) {
            Err(StoreError::Format(m)) => assert!(m.contains("version"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
        match crate::load_mstar_from(&v2[..]) {
            Err(StoreError::Format(m)) => assert!(m.contains("frozen"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_section_length_rejected_before_allocation() {
        let dir = tempdir();
        let (g, idx) = setup();
        let path = dir.join("patched.mrx");
        save_frozen(&path, &FrozenGraph::freeze(&g), &idx.freeze()).unwrap();

        // Patch the graph section's declared length (at offset 16) to claim
        // vastly more bytes than the file holds.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16..24].copy_from_slice(&(1u64 << 39).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match FrozenFile::open(&path) {
            Err(StoreError::Format(m)) => assert!(m.contains("remain in the file"), "{m}"),
            Err(other) => panic!("expected format error, got {other:?}"),
            Ok(_) => panic!("expected format error, got a loaded file"),
        }
        match load_frozen(&path) {
            Err(StoreError::Format(m)) => assert!(m.contains("remain in the file"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn hostile_array_count_rejected_before_allocation() {
        let (g, idx) = setup();
        let mut bytes = Vec::new();
        save_frozen_to(&mut bytes, &FrozenGraph::freeze(&g), &idx.freeze()).unwrap();

        // The graph payload starts at 16 + 8 (section length prefix); its
        // first array count (node_labels) sits 8 bytes in (after n + root).
        let payload_start = 24usize;
        let len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let count_at = payload_start + 8;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        // Recompute the checksum so only the per-array bound check can
        // reject the hostile count.
        let mut h = crate::wire::Fnv64::new();
        h.update(&bytes[payload_start..payload_start + len]);
        let digest_at = payload_start + len;
        bytes[digest_at..digest_at + 8].copy_from_slice(&h.finish().to_le_bytes());

        match load_frozen_from(&bytes[..]) {
            Err(StoreError::Format(m)) => assert!(m.contains("beyond the section end"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_component_degrades_to_live_rebuild() {
        let dir = tempdir();
        let (g, idx) = setup();
        let fg = FrozenGraph::freeze(&g);
        let path = dir.join("degraded.mrx");
        save_frozen(&path, &fg, &idx.freeze()).unwrap();

        // Flip one byte in the middle of component I2's section so its
        // checksum (or payload validation) fails, leaving the graph, the
        // directory and the other components intact.
        let c2_start = {
            // Re-derive the directory offsets by reading the raw file.
            let bytes = std::fs::read(&path).unwrap();
            let glen = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
            let dir_at = 24 + glen as usize + 8;
            u64::from_le_bytes(bytes[dir_at + 16..dir_at + 24].try_into().unwrap()) as usize
        };
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[c2_start + 64] ^= 0x41;
        std::fs::write(&path, &bytes).unwrap();

        let mut f = FrozenFile::open(&path).unwrap();
        let q = PathExpr::parse("//dataset/reference/source").unwrap();
        let ans = f.query_top_down(&q).unwrap();
        assert_eq!(ans.nodes, eval_data(&g, &q.compile(&g)));
        assert_eq!(f.degraded_components(), &[2]);
        assert_eq!(f.loaded_components(), vec![0, 1, 2]);

        // Later components past the corrupt one still load from the file.
        let q4 = PathExpr::parse("//reference/source/journal/author/lastname").unwrap();
        let ans4 = f.query_top_down(&q4).unwrap();
        assert_eq!(ans4.nodes, eval_data(&g, &q4.compile(&g)));
        assert_eq!(f.degraded_components(), &[2]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let (g, idx) = setup();
        let mut bytes = Vec::new();
        save_frozen_to(&mut bytes, &FrozenGraph::freeze(&g), &idx.freeze()).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(load_frozen_from(&bytes[..]).is_err());
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let (g, idx) = setup();
        let mut bytes = Vec::new();
        save_frozen_to(&mut bytes, &FrozenGraph::freeze(&g), &idx.freeze()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            load_frozen_from(&bytes[..]),
            Err(StoreError::Checksum { .. }) | Err(StoreError::Format(_))
        ));
    }
}
