//! Compressed posting lists and seeking-iterator set algebra.
//!
//! Every structural index in this workspace ultimately stores *sorted id
//! lists* — partition extents, CSR adjacency rows, label buckets — and
//! spends its query time intersecting, uniting, and probing them. This
//! crate is the single home for both concerns:
//!
//! * [`SeekingIterator`]: the one iteration contract all representations
//!   implement — `next()` plus `next_seek(target)`, which skips forward to
//!   the first id `>= target` in sublinear time. [`SliceSeeker`] covers raw
//!   `&[id]` slices (live and frozen indexes) with galloping search;
//!   [`PostingCursor`] covers compressed blocks with skip-directory jumps.
//! * [`PostingArena`]: the compressed representation itself — many lists
//!   packed into one arena as blocks of [`BLOCK_LEN`] ids, each block
//!   written in whichever encoding is smallest for its deltas (delta-varint,
//!   frame-of-reference bit-packed, or a pure run of consecutive ids — see
//!   the tag constants [`TAG_VARINT`]/[`TAG_RUN`]) and fronted by its first
//!   id in a per-arena skip directory, so a seek costs `O(log B)` blocks
//!   plus at most one block decode.
//! * Set algebra ([`intersect_seeking`], [`union_seeking`],
//!   [`difference_seeking`], [`contains_seeking`]): galloping merges written
//!   once, generic over the trait, so live slices, frozen arenas, and
//!   compressed blocks all run the *same* algorithm and produce bit-identical
//!   answers and cost accounting.
//! * [`group_by_key`]: the shared counting-sort CSR builder used by every
//!   layer that groups ids by a key (label buckets in frozen indexes and
//!   the store's load path), deduplicating what used to be parallel
//!   implementations.
//!
//! The crate is dependency-free and knows nothing about graphs or indexes;
//! callers adapt their id newtypes via [`PostingId`].

mod block;
mod csr;
mod seek;

pub use block::{
    decode_legacy_block, decode_tagged_block, ArenaError, PostingArena, PostingCursor, BLOCK_LEN,
    MAX_BLOCK_PAYLOAD, TAG_RUN, TAG_VARINT,
};
pub use csr::group_by_key;
pub use seek::{
    contains_seeking, difference_seeking, intersect_seeking, union_seeking, PostingId,
    SeekingIterator, SliceSeeker,
};
