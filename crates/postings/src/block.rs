//! Delta-encoded varint posting blocks with a per-arena skip directory.
//!
//! Many sorted lists pack into one [`PostingArena`]. Each list is split into
//! blocks of [`BLOCK_LEN`] ids; a block's *first* id lives only in the skip
//! directory (`block_first`), and its payload holds the LEB128 varint deltas
//! of the remaining ids. Layout, for `L` lists and `B` blocks total:
//!
//! ```text
//! data        [u8]        concatenated varint delta payloads
//! block_first [u32; B]    first id of each block (the skip directory)
//! block_off   [u32; B+1]  payload byte range of block b = data[off[b]..off[b+1]]
//! list_block  [u32; L+1]  block range of list l = blocks[lb[l]..lb[l+1]]
//! list_len    [u32; L]    id count of list l
//! ```
//!
//! `list_block` is fully determined by `list_len` (`ceil(len/BLOCK_LEN)`
//! blocks per list), so the store serializes only the other four arrays and
//! [`PostingArena::from_parts`] re-derives it while validating the payload
//! byte-for-byte — a cursor over an arena that passed `from_parts` never
//! reads out of bounds and never sees a non-ascending id.
//!
//! A [`PostingCursor`] implements [`SeekingIterator`]: `next_seek` binary
//! searches the skip directory to land on the one block that can contain the
//! target (`O(log B)`), then scans at most one block of varints.

use crate::seek::{PostingId, SeekingIterator};

/// Ids per block. 128 keeps the per-block directory overhead at 8 bytes
/// (first id + payload offset) — 0.0625 bytes/id — while bounding a seek's
/// linear tail to one cache-friendly varint run.
pub const BLOCK_LEN: usize = 128;
const BLOCK_LEN32: u32 = BLOCK_LEN as u32;

/// Validation failure rebuilding an arena from untrusted parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaError(pub &'static str);

impl core::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "posting arena: {}", self.0)
    }
}

impl std::error::Error for ArenaError {}

#[inline]
fn write_varint(data: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        data.push((v as u8) | 0x80);
        v >>= 7;
    }
    data.push(v as u8);
}

/// Bounded LEB128 decode. On truncated or over-long input it stops early and
/// returns what it has — [`PostingArena::from_parts`] rejects such payloads
/// up front, so cursors over validated arenas never take those exits.
/// Public so alternative block stores (the demand-paged arena) decode the
/// identical wire form without re-implementing the bounds discipline.
#[inline]
pub fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0u32;
    while let Some(&b) = data.get(*pos) {
        *pos += 1;
        v |= u32::from(b & 0x7f) << shift.min(31);
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 28 {
            break;
        }
    }
    v
}

fn blocks_of(len: u32) -> u32 {
    len.div_ceil(BLOCK_LEN32)
}

/// Many compressed sorted id lists in one arena. See the module docs for the
/// physical layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingArena {
    data: Vec<u8>,
    block_first: Vec<u32>,
    block_off: Vec<u32>,
    list_block: Vec<u32>,
    list_len: Vec<u32>,
}

impl PostingArena {
    /// An empty arena ready for [`PostingArena::push_list`].
    pub fn new() -> Self {
        PostingArena {
            data: Vec::new(),
            block_first: Vec::new(),
            block_off: vec![0],
            list_block: vec![0],
            list_len: Vec::new(),
        }
    }

    /// Appends one sorted, strictly ascending list and returns its index.
    pub fn push_list<T: PostingId>(&mut self, ids: &[T]) -> usize {
        for chunk in ids.chunks(BLOCK_LEN) {
            let mut prev = chunk[0].to_u32();
            self.block_first.push(prev);
            for x in &chunk[1..] {
                let v = x.to_u32();
                debug_assert!(v > prev, "posting lists must be strictly ascending");
                write_varint(&mut self.data, v.wrapping_sub(prev));
                prev = v;
            }
            self.block_off.push(self.data.len() as u32);
        }
        self.list_len.push(ids.len() as u32);
        self.list_block.push(self.block_first.len() as u32);
        self.list_len.len() - 1
    }

    /// Number of lists in the arena.
    pub fn num_lists(&self) -> usize {
        self.list_len.len()
    }

    /// Number of blocks in the arena.
    pub fn num_blocks(&self) -> usize {
        self.block_first.len()
    }

    /// Length of list `i`.
    #[inline]
    pub fn len_of(&self, i: usize) -> usize {
        self.list_len[i] as usize
    }

    /// First id of list `i`, straight from the skip directory.
    #[inline]
    pub fn first_of(&self, i: usize) -> Option<u32> {
        if self.list_len[i] == 0 {
            return None;
        }
        Some(self.block_first[self.list_block[i] as usize])
    }

    /// A seeking cursor over list `i`.
    #[inline]
    pub fn cursor(&self, i: usize) -> PostingCursor<'_> {
        PostingCursor {
            arena: self,
            blk_lo: self.list_block[i],
            blk_hi: self.list_block[i + 1],
            len: self.list_len[i],
            idx: 0,
            byte: 0,
            prev: 0,
        }
    }

    /// Calls `f` with every id of list `i`, in ascending order — the bulk
    /// traversal. One skip-directory read per block anchors the prefix sum,
    /// then the block's varints decode in a tight run without the
    /// per-element position bookkeeping a [`PostingCursor`] keeps for
    /// seeking. Visit order is identical to draining
    /// [`cursor`](Self::cursor).
    #[inline]
    pub fn for_each(&self, i: usize, mut f: impl FnMut(u32)) {
        let mut remaining = self.list_len[i];
        for b in self.list_block[i]..self.list_block[i + 1] {
            let b = b as usize;
            let in_block = remaining.min(BLOCK_LEN32);
            let mut cur = self.block_first[b];
            f(cur);
            let mut pos = self.block_off[b] as usize;
            for _ in 1..in_block {
                // Extent deltas average about one byte, so peel the
                // single-byte case off the generic LEB128 loop.
                let delta = match self.data.get(pos) {
                    Some(&byte) if byte < 0x80 => {
                        pos += 1;
                        u32::from(byte)
                    }
                    _ => read_varint(&self.data, &mut pos),
                };
                cur = cur.wrapping_add(delta);
                f(cur);
            }
            remaining -= in_block;
        }
    }

    /// Decodes list `i`, appending every id to `out`.
    pub fn decode_into<T: PostingId>(&self, i: usize, out: &mut Vec<T>) {
        out.reserve(self.len_of(i));
        self.for_each(i, |v| out.push(T::from_u32(v)));
    }

    /// Decodes every list back into one CSR pair: `off[i]..off[i + 1]`
    /// indexes list `i`'s ids in `tgt`. The inverse of building an arena by
    /// [`push_list`](Self::push_list)-ing each CSR row in order.
    pub fn decode_csr<T: PostingId>(&self) -> (Vec<u32>, Vec<T>) {
        let total: usize = self.list_len.iter().map(|&l| l as usize).sum();
        let mut off = Vec::with_capacity(self.num_lists() + 1);
        let mut tgt = Vec::with_capacity(total);
        off.push(0u32);
        for i in 0..self.num_lists() {
            self.decode_into(i, &mut tgt);
            off.push(tgt.len() as u32);
        }
        (off, tgt)
    }

    /// Bytes of heap memory held by the arena (payload plus directories).
    pub fn heap_bytes(&self) -> usize {
        self.data.len()
            + 4 * (self.block_first.len()
                + self.block_off.len()
                + self.list_block.len()
                + self.list_len.len())
    }

    /// The four serialized arrays: `(data, block_first, block_off,
    /// list_len)`. `list_block` is derivable and not part of the wire form.
    pub fn parts(&self) -> (&[u8], &[u32], &[u32], &[u32]) {
        (
            &self.data,
            &self.block_first,
            &self.block_off,
            &self.list_len,
        )
    }

    /// Rebuilds an arena from untrusted serialized parts, re-deriving
    /// `list_block` and validating every byte: directory shapes, monotone
    /// offsets, exact payload consumption per block, and strict ascent
    /// within every list. After this check, cursor traversal is in-bounds
    /// by construction.
    pub fn from_parts(
        data: Vec<u8>,
        block_first: Vec<u32>,
        block_off: Vec<u32>,
        list_len: Vec<u32>,
    ) -> Result<Self, ArenaError> {
        let mut list_block = Vec::with_capacity(list_len.len() + 1);
        list_block.push(0u32);
        let mut total: u64 = 0;
        for &len in &list_len {
            total += u64::from(blocks_of(len));
            if total > u64::from(u32::MAX) {
                return Err(ArenaError("block count overflow"));
            }
            list_block.push(total as u32);
        }
        let nblocks = total as usize;
        if block_first.len() != nblocks {
            return Err(ArenaError("skip directory length mismatch"));
        }
        if block_off.len() != nblocks + 1 || block_off.first() != Some(&0) {
            return Err(ArenaError("block offset table malformed"));
        }
        if block_off.windows(2).any(|w| w[0] > w[1]) {
            return Err(ArenaError("block offsets not monotone"));
        }
        if block_off.last().copied().unwrap_or(0) as usize != data.len() {
            return Err(ArenaError("payload length mismatch"));
        }
        let arena = PostingArena {
            data,
            block_first,
            block_off,
            list_block,
            list_len,
        };
        arena.validate_payload()?;
        Ok(arena)
    }

    /// Full decode pass: every block's payload must parse to exactly its id
    /// count, consume exactly its byte range, and ascend strictly across the
    /// whole list.
    fn validate_payload(&self) -> Result<(), ArenaError> {
        for l in 0..self.num_lists() {
            let mut remaining = self.list_len[l];
            let mut prev: Option<u32> = None;
            for b in self.list_block[l]..self.list_block[l + 1] {
                let b = b as usize;
                if remaining == 0 {
                    return Err(ArenaError("block beyond list length"));
                }
                let in_block = remaining.min(BLOCK_LEN32);
                let first = self.block_first[b];
                if let Some(p) = prev {
                    if first <= p {
                        return Err(ArenaError("ids not strictly ascending"));
                    }
                }
                let mut cur = first;
                let end = self.block_off[b + 1] as usize;
                let mut pos = self.block_off[b] as usize;
                for _ in 1..in_block {
                    if pos >= end {
                        return Err(ArenaError("block payload truncated"));
                    }
                    let delta = read_varint(&self.data, &mut pos);
                    let Some(next) = cur.checked_add(delta) else {
                        return Err(ArenaError("id overflow"));
                    };
                    if delta == 0 {
                        return Err(ArenaError("ids not strictly ascending"));
                    }
                    cur = next;
                }
                if pos != end {
                    return Err(ArenaError("block payload has trailing bytes"));
                }
                prev = Some(cur);
                remaining -= in_block;
            }
            if remaining != 0 {
                return Err(ArenaError("list shorter than its length"));
            }
        }
        Ok(())
    }
}

/// [`SeekingIterator`] over one list of a [`PostingArena`].
///
/// State: `idx` is the next position within the list; at each block boundary
/// (`idx % BLOCK_LEN == 0`) the cursor reads the block's first id from the
/// skip directory and re-anchors `byte` at the block's payload start, so a
/// directory jump only has to reposition `idx`.
pub struct PostingCursor<'a> {
    arena: &'a PostingArena,
    blk_lo: u32,
    blk_hi: u32,
    len: u32,
    idx: u32,
    byte: usize,
    prev: u32,
}

impl SeekingIterator for PostingCursor<'_> {
    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.idx >= self.len {
            return None;
        }
        let v = if self.idx.is_multiple_of(BLOCK_LEN32) {
            let b = (self.blk_lo + self.idx / BLOCK_LEN32) as usize;
            self.byte = self.arena.block_off[b] as usize;
            self.arena.block_first[b]
        } else {
            self.prev
                .wrapping_add(read_varint(&self.arena.data, &mut self.byte))
        };
        self.prev = v;
        self.idx += 1;
        Some(v)
    }

    fn next_seek(&mut self, target: u32) -> Option<u32> {
        if self.idx >= self.len {
            return None;
        }
        // Skip-directory jump: among the blocks strictly after the current
        // one, the last whose first id is <= target is the only block that
        // can hold the first remaining id >= target.
        let cur = (self.blk_lo + self.idx / BLOCK_LEN32) as usize;
        let after = &self.arena.block_first[cur + 1..self.blk_hi as usize];
        let skip = after.partition_point(|&f| f <= target);
        if skip > 0 {
            let blk = cur + skip;
            self.idx = (blk as u32 - self.blk_lo) * BLOCK_LEN32;
        }
        // Linear tail: at most one block of varints, then at most the first
        // id of the following block.
        while let Some(v) = self.next() {
            if v >= target {
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seek::SliceSeeker;

    fn arena_of(lists: &[&[u32]]) -> PostingArena {
        let mut a = PostingArena::new();
        for l in lists {
            a.push_list(l);
        }
        a
    }

    fn decode(a: &PostingArena, i: usize) -> Vec<u32> {
        let mut out = Vec::new();
        a.decode_into(i, &mut out);
        out
    }

    #[test]
    fn round_trip_across_blocks() {
        let big: Vec<u32> = (0..1000).map(|i| i * 3 + 7).collect();
        let a = arena_of(&[&[], &[42], &big, &[1, 2, 3]]);
        assert_eq!(a.num_lists(), 4);
        assert_eq!(decode(&a, 0), Vec::<u32>::new());
        assert_eq!(decode(&a, 1), [42]);
        assert_eq!(decode(&a, 2), big);
        assert_eq!(decode(&a, 3), [1, 2, 3]);
        assert_eq!(a.len_of(2), 1000);
        assert_eq!(a.first_of(2), Some(7));
        assert_eq!(a.first_of(0), None);
    }

    #[test]
    fn cursor_seek_matches_slice_seek() {
        let ids: Vec<u32> = (0..700).map(|i| i * i / 4 + i).collect();
        let a = arena_of(&[&ids]);
        for targets in [
            vec![0u32, 1, 5, 1000, 100_000],
            vec![ids[0], ids[ids.len() - 1], u32::MAX],
            (0..50).map(|i| i * 977).collect(),
        ] {
            let mut c = a.cursor(0);
            let mut s = SliceSeeker::new(&ids);
            for &t in &targets {
                assert_eq!(c.next_seek(t), s.next_seek(t), "target {t}");
            }
        }
    }

    #[test]
    fn decode_csr_inverts_row_pushes() {
        let big: Vec<u32> = (0..400).map(|i| i * 2 + 1).collect();
        let rows: &[&[u32]] = &[&[], &[7, 9], &big, &[], &[0]];
        let a = arena_of(rows);
        let (off, tgt) = a.decode_csr::<u32>();
        assert_eq!(off.len(), rows.len() + 1);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&tgt[off[i] as usize..off[i + 1] as usize], *row);
        }
    }

    #[test]
    fn wire_round_trip_and_validation() {
        let big: Vec<u32> = (0..300).map(|i| i * 5).collect();
        let a = arena_of(&[&[], &[9], &big]);
        let (data, bf, bo, ll) = a.parts();
        let b = PostingArena::from_parts(data.to_vec(), bf.to_vec(), bo.to_vec(), ll.to_vec())
            .expect("valid parts");
        assert_eq!(a, b);

        // Corruptions must be rejected, never panic.
        let bad = PostingArena::from_parts(data.to_vec(), bf.to_vec(), bo.to_vec(), vec![1]);
        assert!(bad.is_err());
        let mut data2 = data.to_vec();
        data2.pop();
        assert!(PostingArena::from_parts(data2, bf.to_vec(), bo.to_vec(), ll.to_vec()).is_err());
        // Second block of `big`: its first id must exceed the previous
        // block's last, so zeroing it breaks strict ascent.
        let mut bf2 = bf.to_vec();
        bf2[2] = 0;
        assert!(PostingArena::from_parts(data.to_vec(), bf2, bo.to_vec(), ll.to_vec()).is_err());
    }

    #[test]
    fn heap_bytes_counts_everything() {
        let a = arena_of(&[&[1, 2, 3]]);
        assert!(a.heap_bytes() > 0);
        assert!(a.heap_bytes() < 64);
    }
}
