//! Encoding-adaptive posting blocks with a per-arena skip directory.
//!
//! Many sorted lists pack into one [`PostingArena`]. Each list is split into
//! blocks of [`BLOCK_LEN`] ids; a block's *first* id lives only in the skip
//! directory (`block_first`), and its payload opens with a one-byte tag
//! naming how the remaining ids are encoded. Layout, for `L` lists and `B`
//! blocks total:
//!
//! ```text
//! data        [u8]        concatenated tagged block payloads
//! block_first [u32; B]    first id of each block (the skip directory)
//! block_off   [u32; B+1]  payload byte range of block b = data[off[b]..off[b+1]]
//! list_block  [u32; L+1]  block range of list l = blocks[lb[l]..lb[l+1]]
//! list_len    [u32; L]    id count of list l
//! ```
//!
//! The three block encodings, selected per block by whichever is smallest:
//!
//! * **Delta-varint** ([`TAG_VARINT`]): LEB128 varints of the id deltas —
//!   the fallback that handles any delta distribution.
//! * **Frame-of-reference bit-packed** (tag `w` in `1..=32`): every
//!   `delta - 1` packed into exactly `w` bits, LSB-first in little-endian
//!   byte order, final byte zero-padded. Fixed width makes the decode a
//!   branch-free bit-buffer loop with word-sized refills.
//! * **Run** ([`TAG_RUN`]): the ids are exactly
//!   `first .. first + in_block` — consecutive, so the tag byte *is* the
//!   whole payload and membership/seek inside the block is arithmetic.
//!
//! `list_block` is fully determined by `list_len` (`ceil(len/BLOCK_LEN)`
//! blocks per list), so the store serializes only the other four arrays and
//! [`PostingArena::from_parts`] re-derives it while validating every block
//! of every encoding byte-for-byte — a cursor over an arena that passed
//! `from_parts` never reads out of bounds and never sees a non-ascending
//! id. The pre-tag wire form (varint-only payloads, store versions 3/4) is
//! still readable through [`PostingArena::from_parts_legacy`] and
//! [`decode_legacy_block`].
//!
//! A [`PostingCursor`] implements [`SeekingIterator`]: `next_seek` binary
//! searches the skip directory to land on the one block that can contain
//! the target (`O(log B)`), then decodes at most one block — or, for run
//! blocks, lands by arithmetic without decoding at all.

use crate::seek::{PostingId, SeekingIterator};

/// Ids per block. 128 keeps the per-block directory overhead at 8 bytes
/// (first id + payload offset) — 0.0625 bytes/id — while bounding a seek's
/// linear tail to one cache-friendly block decode.
pub const BLOCK_LEN: usize = 128;
const BLOCK_LEN32: u32 = BLOCK_LEN as u32;

/// Block tag: payload body is LEB128 varints of the id deltas.
pub const TAG_VARINT: u8 = 0;
/// Block tag: the block's ids are consecutive (`first..first + in_block`);
/// the payload is the tag byte alone.
pub const TAG_RUN: u8 = 33;
/// Largest frame-of-reference bit width; tags `1..=MAX_TAG_WIDTH` mean
/// "bit-packed at width = tag".
pub const MAX_TAG_WIDTH: u8 = 32;

/// Largest payload a valid block can occupy: the tag byte plus
/// `BLOCK_LEN - 1` deltas of at most five LEB128 bytes each (bit-packed and
/// run payloads are always smaller). Lets block decode use a stack buffer.
pub const MAX_BLOCK_PAYLOAD: usize = 1 + (BLOCK_LEN - 1) * 5;

/// Validation failure rebuilding an arena from untrusted parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaError(pub &'static str);

impl core::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "posting arena: {}", self.0)
    }
}

impl std::error::Error for ArenaError {}

#[inline]
fn write_varint(data: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        data.push((v as u8) | 0x80);
        v >>= 7;
    }
    data.push(v as u8);
}

/// Encoded LEB128 length of `v` (for `v >= 1`; `v = 0` never occurs in a
/// strictly ascending delta stream).
#[inline]
fn varint_len_of(v: u32) -> usize {
    let bits = 32 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Bounded LEB128 decode. On truncated or over-long input it stops early and
/// returns what it has — the checked block decoders reject such payloads, so
/// traversal of validated arenas never takes those exits.
#[inline]
pub(crate) fn read_varint(data: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0u32;
    while let Some(&b) = data.get(*pos) {
        *pos += 1;
        v |= u32::from(b & 0x7f) << shift.min(31);
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 28 {
            break;
        }
    }
    v
}

/// Bit-buffer refill for the fixed-width decode loops: ensure at least `w`
/// valid low bits in `acc`, splicing a whole little-endian word when the
/// body has one left (the common case — one branch per value), else byte by
/// byte over the tail. A truncated body (impossible after validation)
/// degrades to zero bits instead of reading out of bounds.
#[inline(always)]
fn refill(body: &[u8], pos: &mut usize, acc: &mut u64, avail: &mut u32, w: u32) {
    if *avail >= w {
        return;
    }
    if *pos + 4 <= body.len() {
        let word = u32::from_le_bytes([body[*pos], body[*pos + 1], body[*pos + 2], body[*pos + 3]]);
        *acc |= u64::from(word) << *avail;
        *pos += 4;
        *avail += 32;
    } else {
        while *avail < w && *pos < body.len() {
            *acc |= u64::from(body[*pos]) << *avail;
            *pos += 1;
            *avail += 8;
        }
        if *avail < w {
            *avail = w;
        }
    }
}

/// Encodes one block (`1..=BLOCK_LEN` strictly ascending ids whose first id
/// the caller has already written to the skip directory) into `data`,
/// choosing the smallest of the three encodings. Ties prefer bit-packed,
/// which decodes fastest.
fn encode_block(data: &mut Vec<u8>, chunk: &[u32]) {
    let mut max_dm1 = 0u32;
    let mut varint_len = 0usize;
    let mut prev = chunk[0];
    for &v in &chunk[1..] {
        debug_assert!(v > prev, "posting lists must be strictly ascending");
        let d = v.wrapping_sub(prev);
        // OR-accumulating `delta - 1` has the same bit width as the max.
        max_dm1 |= d.wrapping_sub(1);
        varint_len += varint_len_of(d);
        prev = v;
    }
    if max_dm1 == 0 {
        // Every delta is 1 (or the block is a singleton): a pure run.
        data.push(TAG_RUN);
        return;
    }
    let w = 32 - max_dm1.leading_zeros();
    let packed_len = ((chunk.len() - 1) * w as usize).div_ceil(8);
    if packed_len <= varint_len {
        data.push(w as u8);
        let (mut acc, mut avail) = (0u64, 0u32);
        let mut prev = chunk[0];
        for &v in &chunk[1..] {
            acc |= u64::from(v.wrapping_sub(prev).wrapping_sub(1)) << avail;
            avail += w;
            while avail >= 8 {
                data.push(acc as u8);
                acc >>= 8;
                avail -= 8;
            }
            prev = v;
        }
        if avail > 0 {
            data.push(acc as u8);
        }
    } else {
        data.push(TAG_VARINT);
        let mut prev = chunk[0];
        for &v in &chunk[1..] {
            write_varint(data, v.wrapping_sub(prev));
            prev = v;
        }
    }
}

/// Shared checked decode of an (untagged) varint delta body.
fn decode_varint_body(
    body: &[u8],
    first: u32,
    n: usize,
    out: &mut [u32; BLOCK_LEN],
) -> Result<(), ArenaError> {
    let mut cur = first;
    let mut pos = 0usize;
    for slot in out[..n].iter_mut().skip(1) {
        if pos >= body.len() {
            return Err(ArenaError("block payload truncated"));
        }
        let delta = read_varint(body, &mut pos);
        if delta == 0 {
            return Err(ArenaError("ids not strictly ascending"));
        }
        let Some(next) = cur.checked_add(delta) else {
            return Err(ArenaError("id overflow"));
        };
        cur = next;
        *slot = cur;
    }
    if pos != body.len() {
        return Err(ArenaError("block payload has trailing bytes"));
    }
    Ok(())
}

/// Decodes and validates one **tagged** block payload into `out[..n]`:
/// known tag, exactly-sized and fully-consumed body, zero padding bits,
/// strictly ascending ids, no overflow. `first` is the block's head from
/// the skip directory; `n` its id count (`1..=BLOCK_LEN`). This is the one
/// checked decoder behind both [`PostingArena::from_parts`] and the
/// demand-paged arena's lazy per-block validation, so eager and paged
/// serving enforce identical invariants.
pub fn decode_tagged_block(
    payload: &[u8],
    first: u32,
    n: u32,
    out: &mut [u32; BLOCK_LEN],
) -> Result<(), ArenaError> {
    if n == 0 || n > BLOCK_LEN32 {
        return Err(ArenaError("block id count out of range"));
    }
    let Some((&tag, body)) = payload.split_first() else {
        return Err(ArenaError("block payload missing its tag"));
    };
    let n = n as usize;
    out[0] = first;
    match tag {
        TAG_RUN => {
            if !body.is_empty() {
                return Err(ArenaError("run block payload has trailing bytes"));
            }
            if first.checked_add(n as u32 - 1).is_none() {
                return Err(ArenaError("id overflow"));
            }
            for (k, slot) in out[..n].iter_mut().enumerate() {
                *slot = first + k as u32;
            }
        }
        TAG_VARINT => decode_varint_body(body, first, n, out)?,
        w if w <= MAX_TAG_WIDTH => {
            let w = u32::from(w);
            if body.len() != ((n - 1) * w as usize).div_ceil(8) {
                return Err(ArenaError("bit-packed payload length mismatch"));
            }
            let mask = (1u64 << w) - 1;
            let (mut acc, mut avail) = (0u64, 0u32);
            let mut pos = 0usize;
            let mut cur = u64::from(first);
            for slot in out[..n].iter_mut().skip(1) {
                refill(body, &mut pos, &mut acc, &mut avail, w);
                cur += (acc & mask) + 1;
                acc >>= w;
                avail -= w;
                if cur > u64::from(u32::MAX) {
                    return Err(ArenaError("id overflow"));
                }
                *slot = cur as u32;
            }
            // The body length is exact, so whatever is left in the buffer
            // is the final byte's padding — it must be zero.
            if acc != 0 {
                return Err(ArenaError("bit-packed padding bits not zero"));
            }
        }
        _ => return Err(ArenaError("unknown block tag")),
    }
    Ok(())
}

/// Decodes and validates one **pre-tag** block payload (store versions 3/4:
/// the whole payload is varint deltas, no tag byte) into `out[..n]`. The
/// back-compat twin of [`decode_tagged_block`], with identical guarantees.
pub fn decode_legacy_block(
    payload: &[u8],
    first: u32,
    n: u32,
    out: &mut [u32; BLOCK_LEN],
) -> Result<(), ArenaError> {
    if n == 0 || n > BLOCK_LEN32 {
        return Err(ArenaError("block id count out of range"));
    }
    out[0] = first;
    decode_varint_body(payload, first, n as usize, out)
}

/// Decodes a block payload that already passed validation (built by
/// [`PostingArena::push_list`] or checked by `from_parts`) into
/// `out[..n]`, skipping the structural checks. Garbage input yields
/// unspecified ids but never reads out of bounds.
#[inline]
fn decode_block_trusted(payload: &[u8], first: u32, n: u32, out: &mut [u32; BLOCK_LEN]) {
    let n = n as usize;
    out[0] = first;
    let Some((&tag, body)) = payload.split_first() else {
        return;
    };
    match tag {
        TAG_RUN => {
            for (k, slot) in out[..n].iter_mut().enumerate() {
                *slot = first.wrapping_add(k as u32);
            }
        }
        TAG_VARINT => {
            let mut cur = first;
            let mut pos = 0usize;
            for slot in out[..n].iter_mut().skip(1) {
                // Extent deltas average about one byte, so peel the
                // single-byte case off the generic LEB128 loop.
                let delta = match body.get(pos) {
                    Some(&byte) if byte < 0x80 => {
                        pos += 1;
                        u32::from(byte)
                    }
                    _ => read_varint(body, &mut pos),
                };
                cur = cur.wrapping_add(delta);
                *slot = cur;
            }
        }
        w => unpack_fixed_width(u32::from(w).min(32), body, first, n, out),
    }
}

/// Fixed-width delta unpack with the width monomorphized: the refill
/// condition and shift amounts are compile-time constants, so the decode
/// loop unrolls into straight-line shifts — the branch-free bulk path the
/// block format is built around.
/// Largest possible bit-packed body: `BLOCK_LEN - 1` fields of 32 bits.
const PACKED_BODY_MAX: usize = (BLOCK_LEN - 1) * 4;

#[inline(always)]
fn unpack_width<const W: u32>(body: &[u8], first: u32, n: usize, out: &mut [u32; BLOCK_LEN]) {
    // Field `i` starts at bit `i*W`, so for `W <= 32` it always fits in the
    // unaligned 64-bit word at its base byte: one load + shift + mask per
    // id, no refill branch and no loop-carried bit-buffer state. The copy
    // into a zero-padded stack buffer makes the 8-byte loads near the end
    // of the body safe, and costs well under the per-element savings.
    let mut padded = [0u8; PACKED_BODY_MAX + 8];
    let take = body.len().min(PACKED_BODY_MAX);
    padded[..take].copy_from_slice(&body[..take]);
    let mask = (1u64 << W) - 1;
    let mut cur = first;
    let mut bit = 0u64;
    for slot in out[..n].iter_mut().skip(1) {
        let byte = (bit >> 3) as usize;
        let shift = (bit & 7) as u32;
        let word = u64::from_le_bytes(padded[byte..byte + 8].try_into().unwrap());
        cur = cur
            .wrapping_add(((word >> shift) & mask) as u32)
            .wrapping_add(1);
        *slot = cur;
        bit += u64::from(W);
    }
}

/// Width dispatch for the trusted bit-packed decode: one indirect-free
/// match onto the 32 monomorphized unpack loops.
fn unpack_fixed_width(w: u32, body: &[u8], first: u32, n: usize, out: &mut [u32; BLOCK_LEN]) {
    macro_rules! dispatch {
        ($($width:literal)*) => {
            match w {
                $($width => unpack_width::<$width>(body, first, n, out),)*
                _ => unpack_width::<32>(body, first, n, out),
            }
        };
    }
    dispatch!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31)
}

fn blocks_of(len: u32) -> u32 {
    len.div_ceil(BLOCK_LEN32)
}

/// Many compressed sorted id lists in one arena. See the module docs for the
/// physical layout and the per-block encodings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingArena {
    data: Vec<u8>,
    block_first: Vec<u32>,
    block_off: Vec<u32>,
    list_block: Vec<u32>,
    list_len: Vec<u32>,
}

impl PostingArena {
    /// An empty arena ready for [`PostingArena::push_list`].
    pub fn new() -> Self {
        PostingArena {
            data: Vec::new(),
            block_first: Vec::new(),
            block_off: vec![0],
            list_block: vec![0],
            list_len: Vec::new(),
        }
    }

    /// Appends one sorted, strictly ascending list and returns its index.
    /// Each block is written as whichever encoding is smallest for its
    /// deltas (see [`encode_block`]).
    pub fn push_list<T: PostingId>(&mut self, ids: &[T]) -> usize {
        let mut chunk_buf = [0u32; BLOCK_LEN];
        for chunk in ids.chunks(BLOCK_LEN) {
            for (slot, x) in chunk_buf.iter_mut().zip(chunk) {
                *slot = x.to_u32();
            }
            self.block_first.push(chunk_buf[0]);
            encode_block(&mut self.data, &chunk_buf[..chunk.len()]);
            self.block_off.push(self.data.len() as u32);
        }
        self.list_len.push(ids.len() as u32);
        self.list_block.push(self.block_first.len() as u32);
        self.list_len.len() - 1
    }

    /// Number of lists in the arena.
    pub fn num_lists(&self) -> usize {
        self.list_len.len()
    }

    /// Number of blocks in the arena.
    pub fn num_blocks(&self) -> usize {
        self.block_first.len()
    }

    /// Block counts per encoding as `[varint, bit_packed, run]` — the
    /// observability hook behind the bench's encoding-mix report.
    pub fn encoding_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for b in 0..self.num_blocks() {
            match self.payload(b).first() {
                Some(&TAG_VARINT) => counts[0] += 1,
                Some(&TAG_RUN) | None => counts[2] += 1,
                Some(_) => counts[1] += 1,
            }
        }
        counts
    }

    /// Length of list `i`.
    #[inline]
    pub fn len_of(&self, i: usize) -> usize {
        self.list_len[i] as usize
    }

    /// First id of list `i`, straight from the skip directory.
    #[inline]
    pub fn first_of(&self, i: usize) -> Option<u32> {
        if self.list_len[i] == 0 {
            return None;
        }
        Some(self.block_first[self.list_block[i] as usize])
    }

    /// The payload bytes of block `b` (tag byte included).
    #[inline]
    fn payload(&self, b: usize) -> &[u8] {
        &self.data[self.block_off[b] as usize..self.block_off[b + 1] as usize]
    }

    /// A seeking cursor over list `i`.
    #[inline]
    pub fn cursor(&self, i: usize) -> PostingCursor<'_> {
        PostingCursor {
            arena: self,
            blk_lo: self.list_block[i],
            blk_hi: self.list_block[i + 1],
            len: self.list_len[i],
            idx: 0,
            buf_blk: u32::MAX,
            buf: [0; BLOCK_LEN],
        }
    }

    /// Calls `f` with every id of list `i`, in ascending order — the bulk
    /// traversal, with a dedicated tight loop per block encoding: runs emit
    /// by pure arithmetic, bit-packed blocks unpack through the word-refill
    /// bit buffer, varint blocks keep the single-byte-delta fast path.
    /// Visit order is identical to draining [`cursor`](Self::cursor).
    #[inline]
    pub fn for_each(&self, i: usize, mut f: impl FnMut(u32)) {
        let mut buf = [0u32; BLOCK_LEN];
        let mut remaining = self.list_len[i];
        for b in self.list_block[i]..self.list_block[i + 1] {
            let b = b as usize;
            let in_block = remaining.min(BLOCK_LEN32);
            let first = self.block_first[b];
            let Some((&tag, body)) = self.payload(b).split_first() else {
                // Unreachable on validated arenas: every block has a tag.
                f(first);
                remaining -= in_block;
                continue;
            };
            match tag {
                TAG_RUN => {
                    for k in 0..in_block {
                        f(first.wrapping_add(k));
                    }
                }
                TAG_VARINT => {
                    f(first);
                    let mut cur = first;
                    let mut pos = 0usize;
                    for _ in 1..in_block {
                        let delta = match body.get(pos) {
                            Some(&byte) if byte < 0x80 => {
                                pos += 1;
                                u32::from(byte)
                            }
                            _ => read_varint(body, &mut pos),
                        };
                        cur = cur.wrapping_add(delta);
                        f(cur);
                    }
                }
                w => {
                    buf[0] = first;
                    unpack_fixed_width(
                        u32::from(w).min(32),
                        body,
                        first,
                        in_block as usize,
                        &mut buf,
                    );
                    for &v in &buf[..in_block as usize] {
                        f(v);
                    }
                }
            }
            remaining -= in_block;
        }
    }

    /// Decodes list `i`, appending every id to `out` — the answer
    /// materialization path. Whole blocks decode into a stack buffer and
    /// append through the slice-backed `extend`, so the per-id cost is the
    /// block decode plus a bulk copy, never a checked `push`.
    pub fn decode_into<T: PostingId>(&self, i: usize, out: &mut Vec<T>) {
        out.reserve(self.len_of(i));
        let mut buf = [0u32; BLOCK_LEN];
        let mut remaining = self.list_len[i];
        for b in self.list_block[i]..self.list_block[i + 1] {
            let b = b as usize;
            let n = remaining.min(BLOCK_LEN32);
            decode_block_trusted(self.payload(b), self.block_first[b], n, &mut buf);
            out.extend(buf[..n as usize].iter().map(|&v| T::from_u32(v)));
            remaining -= n;
        }
    }

    /// Decodes every list back into one CSR pair: `off[i]..off[i + 1]`
    /// indexes list `i`'s ids in `tgt`. The inverse of building an arena by
    /// [`push_list`](Self::push_list)-ing each CSR row in order.
    pub fn decode_csr<T: PostingId>(&self) -> (Vec<u32>, Vec<T>) {
        let total: usize = self.list_len.iter().map(|&l| l as usize).sum();
        let mut off = Vec::with_capacity(self.num_lists() + 1);
        let mut tgt = Vec::with_capacity(total);
        off.push(0u32);
        for i in 0..self.num_lists() {
            self.decode_into(i, &mut tgt);
            off.push(tgt.len() as u32);
        }
        (off, tgt)
    }

    /// Bytes of heap memory held by the arena (payload plus directories).
    pub fn heap_bytes(&self) -> usize {
        self.data.len()
            + 4 * (self.block_first.len()
                + self.block_off.len()
                + self.list_block.len()
                + self.list_len.len())
    }

    /// The four serialized arrays: `(data, block_first, block_off,
    /// list_len)`. `list_block` is derivable and not part of the wire form.
    pub fn parts(&self) -> (&[u8], &[u32], &[u32], &[u32]) {
        (
            &self.data,
            &self.block_first,
            &self.block_off,
            &self.list_len,
        )
    }

    /// Re-encodes every list into the pre-tag wire form (untagged varint
    /// payloads — store versions 3/4), returning the four legacy arrays in
    /// [`parts`](Self::parts) order. Back-compat tests and writers use this
    /// to produce images old readers (and the legacy read path) accept.
    pub fn legacy_parts(&self) -> (Vec<u8>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut data = Vec::new();
        let mut block_first = Vec::new();
        let mut block_off = vec![0u32];
        let mut ids: Vec<u32> = Vec::new();
        for l in 0..self.num_lists() {
            ids.clear();
            self.decode_into(l, &mut ids);
            for chunk in ids.chunks(BLOCK_LEN) {
                block_first.push(chunk[0]);
                let mut prev = chunk[0];
                for &v in &chunk[1..] {
                    write_varint(&mut data, v.wrapping_sub(prev));
                    prev = v;
                }
                block_off.push(data.len() as u32);
            }
        }
        (data, block_first, block_off, self.list_len.clone())
    }

    /// Shared shape validation for both wire forms: derives `list_block`
    /// from `list_len` and checks the directory arrays against it and the
    /// payload length.
    fn derive_list_block(
        data_len: usize,
        block_first: &[u32],
        block_off: &[u32],
        list_len: &[u32],
    ) -> Result<Vec<u32>, ArenaError> {
        let mut list_block = Vec::with_capacity(list_len.len() + 1);
        list_block.push(0u32);
        let mut total: u64 = 0;
        for &len in list_len {
            total += u64::from(blocks_of(len));
            if total > u64::from(u32::MAX) {
                return Err(ArenaError("block count overflow"));
            }
            list_block.push(total as u32);
        }
        let nblocks = total as usize;
        if block_first.len() != nblocks {
            return Err(ArenaError("skip directory length mismatch"));
        }
        if block_off.len() != nblocks + 1 || block_off.first() != Some(&0) {
            return Err(ArenaError("block offset table malformed"));
        }
        if block_off.windows(2).any(|w| w[0] > w[1]) {
            return Err(ArenaError("block offsets not monotone"));
        }
        if block_off.last().copied().unwrap_or(0) as usize != data_len {
            return Err(ArenaError("payload length mismatch"));
        }
        Ok(list_block)
    }

    /// Rebuilds an arena from untrusted serialized parts, re-deriving
    /// `list_block` and validating every byte: directory shapes, monotone
    /// offsets, and a full checked decode of every block in whichever
    /// encoding its tag names. After this check, cursor traversal is
    /// in-bounds by construction.
    pub fn from_parts(
        data: Vec<u8>,
        block_first: Vec<u32>,
        block_off: Vec<u32>,
        list_len: Vec<u32>,
    ) -> Result<Self, ArenaError> {
        let list_block = Self::derive_list_block(data.len(), &block_first, &block_off, &list_len)?;
        let arena = PostingArena {
            data,
            block_first,
            block_off,
            list_block,
            list_len,
        };
        arena.validate_payload()?;
        Ok(arena)
    }

    /// Rebuilds an arena from **pre-tag** serialized parts (store versions
    /// 3/4, untagged varint payloads), validating them with the same rigor
    /// as [`from_parts`](Self::from_parts) and re-encoding every list into
    /// the tagged form. Loading an old file costs one extra encode pass;
    /// everything downstream (cursors, re-saves) then sees only the current
    /// format.
    pub fn from_parts_legacy(
        data: Vec<u8>,
        block_first: Vec<u32>,
        block_off: Vec<u32>,
        list_len: Vec<u32>,
    ) -> Result<Self, ArenaError> {
        let list_block = Self::derive_list_block(data.len(), &block_first, &block_off, &list_len)?;
        let mut out = PostingArena::new();
        let mut buf = [0u32; BLOCK_LEN];
        let mut ids: Vec<u32> = Vec::new();
        for l in 0..list_len.len() {
            ids.clear();
            let mut remaining = list_len[l];
            let mut prev: Option<u32> = None;
            for b in list_block[l]..list_block[l + 1] {
                let b = b as usize;
                if remaining == 0 {
                    return Err(ArenaError("block beyond list length"));
                }
                let in_block = remaining.min(BLOCK_LEN32);
                let first = block_first[b];
                if prev.is_some_and(|p| first <= p) {
                    return Err(ArenaError("ids not strictly ascending"));
                }
                let payload = &data[block_off[b] as usize..block_off[b + 1] as usize];
                decode_legacy_block(payload, first, in_block, &mut buf)?;
                ids.extend_from_slice(&buf[..in_block as usize]);
                prev = Some(buf[in_block as usize - 1]);
                remaining -= in_block;
            }
            if remaining != 0 {
                return Err(ArenaError("list shorter than its length"));
            }
            out.push_list(&ids);
        }
        Ok(out)
    }

    /// Full decode pass: every block's payload must carry a known tag,
    /// parse to exactly its id count, consume exactly its byte range, and
    /// ascend strictly across the whole list.
    fn validate_payload(&self) -> Result<(), ArenaError> {
        let mut buf = [0u32; BLOCK_LEN];
        for l in 0..self.num_lists() {
            let mut remaining = self.list_len[l];
            let mut prev: Option<u32> = None;
            for b in self.list_block[l]..self.list_block[l + 1] {
                let b = b as usize;
                if remaining == 0 {
                    return Err(ArenaError("block beyond list length"));
                }
                let in_block = remaining.min(BLOCK_LEN32);
                let first = self.block_first[b];
                if prev.is_some_and(|p| first <= p) {
                    return Err(ArenaError("ids not strictly ascending"));
                }
                decode_tagged_block(self.payload(b), first, in_block, &mut buf)?;
                prev = Some(buf[in_block as usize - 1]);
                remaining -= in_block;
            }
            if remaining != 0 {
                return Err(ArenaError("list shorter than its length"));
            }
        }
        Ok(())
    }
}

/// [`SeekingIterator`] over one list of a [`PostingArena`].
///
/// The cursor decodes whole blocks into a stack buffer (`buf`, tagged by
/// `buf_blk`) and serves from it; crossing into a new block re-decodes.
/// `next_seek` binary searches the skip directory to reposition `idx`, and
/// when the landing block is a run it computes the landing *within* the
/// block arithmetically too — a seek or membership probe inside a run
/// touches no payload bytes beyond the tag.
pub struct PostingCursor<'a> {
    arena: &'a PostingArena,
    blk_lo: u32,
    blk_hi: u32,
    len: u32,
    idx: u32,
    /// Absolute block index currently in `buf`, or `u32::MAX` for none.
    buf_blk: u32,
    buf: [u32; BLOCK_LEN],
}

impl SeekingIterator for PostingCursor<'_> {
    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.idx >= self.len {
            return None;
        }
        let rel = self.idx / BLOCK_LEN32;
        let blk = self.blk_lo + rel;
        if blk != self.buf_blk {
            let b = blk as usize;
            let in_block = (self.len - rel * BLOCK_LEN32).min(BLOCK_LEN32);
            decode_block_trusted(
                self.arena.payload(b),
                self.arena.block_first[b],
                in_block,
                &mut self.buf,
            );
            self.buf_blk = blk;
        }
        let v = self.buf[(self.idx % BLOCK_LEN32) as usize];
        self.idx += 1;
        Some(v)
    }

    fn next_seek(&mut self, target: u32) -> Option<u32> {
        if self.idx >= self.len {
            return None;
        }
        // Skip-directory jump: among the blocks strictly after the current
        // one, the last whose first id is <= target is the only block that
        // can hold the first remaining id >= target.
        let cur = self.blk_lo + self.idx / BLOCK_LEN32;
        let after = &self.arena.block_first[(cur + 1) as usize..self.blk_hi as usize];
        let skip = after.partition_point(|&f| f <= target) as u32;
        if skip > 0 {
            self.idx = (cur + skip - self.blk_lo) * BLOCK_LEN32;
        }
        // O(1) landing inside a run block: its ids are first..first + n,
        // so the position of the first id >= target is arithmetic and the
        // value needs no decode at all.
        let blk = self.blk_lo + self.idx / BLOCK_LEN32;
        let b = blk as usize;
        if self.arena.payload(b).first() == Some(&TAG_RUN) {
            let start = (blk - self.blk_lo) * BLOCK_LEN32;
            let in_block = (self.len - start).min(BLOCK_LEN32);
            let first = self.arena.block_first[b];
            let jump = if target > first {
                (target - first).min(in_block)
            } else {
                0
            };
            let land = self.idx.max(start + jump);
            if land < start + in_block {
                self.idx = land + 1;
                return Some(first + (land - start));
            }
            // Target is past this run: consume it and let the loop take
            // the next block's head.
            self.idx = start + in_block;
        }
        // Linear tail: at most one decoded block, then at most the first
        // id of the following block.
        while let Some(v) = self.next() {
            if v >= target {
                return Some(v);
            }
        }
        None
    }

    #[inline]
    fn remaining(&self) -> usize {
        (self.len - self.idx) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seek::SliceSeeker;

    /// Local PRNG so tests stay dependency-free and reproducible.
    struct SplitMix64(u64);
    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn arena_of(lists: &[&[u32]]) -> PostingArena {
        let mut a = PostingArena::new();
        for l in lists {
            a.push_list(l);
        }
        a
    }

    fn decode(a: &PostingArena, i: usize) -> Vec<u32> {
        let mut out = Vec::new();
        a.decode_into(i, &mut out);
        out
    }

    fn tag_of(a: &PostingArena, b: usize) -> u8 {
        a.data[a.block_off[b] as usize]
    }

    /// A strictly ascending list whose delta distribution is steered by
    /// `style`: 0 = consecutive runs (run blocks), 1 = small bounded deltas
    /// (bit-packed blocks), 2 = mixed tiny/huge deltas (varint blocks),
    /// 3 = everything interleaved (mixed-encoding arenas).
    fn styled_list(rng: &mut SplitMix64, style: u32, max_len: u64) -> Option<Vec<u32>> {
        let len = rng.below(max_len + 1) as usize;
        let mut out = Vec::with_capacity(len);
        let mut cur = rng.below(1000) as u32;
        while out.len() < len {
            let s = if style == 3 {
                rng.below(3) as u32
            } else {
                style
            };
            match s {
                0 => {
                    // A consecutive run, then a gap.
                    let run = 1 + rng.below(300) as usize;
                    for _ in 0..run.min(len - out.len()) {
                        out.push(cur);
                        cur = cur.checked_add(1)?;
                    }
                    cur = cur.checked_add(rng.below(5000) as u32 + 1)?;
                }
                1 => {
                    out.push(cur);
                    cur = cur.checked_add(1 + rng.below(13) as u32)?;
                }
                _ => {
                    out.push(cur);
                    let d = if rng.below(10) == 0 {
                        1 + rng.below(1 << 20)
                    } else {
                        1 + rng.below(3)
                    };
                    cur = cur.checked_add(d as u32)?;
                }
            }
        }
        Some(out)
    }

    #[test]
    fn round_trip_across_blocks() {
        let big: Vec<u32> = (0..1000).map(|i| i * 3 + 7).collect();
        let a = arena_of(&[&[], &[42], &big, &[1, 2, 3]]);
        assert_eq!(a.num_lists(), 4);
        assert_eq!(decode(&a, 0), Vec::<u32>::new());
        assert_eq!(decode(&a, 1), [42]);
        assert_eq!(decode(&a, 2), big);
        assert_eq!(decode(&a, 3), [1, 2, 3]);
        assert_eq!(a.len_of(2), 1000);
        assert_eq!(a.first_of(2), Some(7));
        assert_eq!(a.first_of(0), None);
    }

    #[test]
    fn encoder_picks_the_expected_tags() {
        // Consecutive ids: run blocks, tag-only payloads.
        let run: Vec<u32> = (500..500 + 300).collect();
        // Constant stride 3: bit-packed at width 2 (delta - 1 = 2).
        let packed: Vec<u32> = (0..300).map(|i| i * 3).collect();
        // One huge delta per block amid tiny ones: varint wins.
        let mut wild = Vec::new();
        let mut cur = 0u32;
        for i in 0..300u32 {
            wild.push(cur);
            cur += if i % 40 == 20 { 1 << 24 } else { 2 };
        }
        let a = arena_of(&[&run, &packed, &wild, &[77]]);
        for b in 0..3 {
            assert_eq!(tag_of(&a, b), TAG_RUN, "run list block {b}");
            // Run payload is the tag byte alone.
            assert_eq!(a.block_off[b + 1] - a.block_off[b], 1);
        }
        for b in 3..6 {
            assert_eq!(tag_of(&a, b), 2, "packed list block {b}");
        }
        for b in 6..9 {
            assert_eq!(tag_of(&a, b), TAG_VARINT, "wild list block {b}");
        }
        // A singleton block is a (vacuous) run.
        assert_eq!(tag_of(&a, 9), TAG_RUN);
        for (i, l) in [&run, &packed, &wild].iter().enumerate() {
            assert_eq!(&decode(&a, i), *l);
        }
        assert_eq!(decode(&a, 3), [77]);
    }

    #[test]
    fn per_encoding_property_round_trip_and_seek_oracle() {
        let mut rng = SplitMix64(0xB10C_0DE5);
        for round in 0..40 {
            let style = round % 4;
            let Some(ids) = styled_list(&mut rng, style, 1200) else {
                continue;
            };
            let a = arena_of(&[&ids]);
            assert_eq!(decode(&a, 0), ids, "style {style} round {round}");
            // next_seek against the slice oracle, interleaved with next().
            let mut c = a.cursor(0);
            let mut s = SliceSeeker::new(&ids);
            assert_eq!(c.remaining(), s.remaining());
            for _ in 0..300 {
                if rng.below(3) == 0 {
                    assert_eq!(c.next(), s.next(), "style {style} round {round}");
                } else {
                    let hi = ids.last().map_or(100, |&l| u64::from(l) + 1000);
                    let t = rng.below(hi) as u32;
                    assert_eq!(
                        c.next_seek(t),
                        s.next_seek(t),
                        "style {style} round {round} target {t}"
                    );
                }
                assert_eq!(c.remaining(), s.remaining());
            }
        }
    }

    #[test]
    fn run_boundary_and_block_seam_seeks() {
        // A run spanning several blocks, ending mid-block, then a gap and a
        // short tail — every boundary a run seek can land on.
        let mut ids: Vec<u32> = (100..100 + 300).collect();
        ids.extend([1000, 1003, 1009]);
        let a = arena_of(&[&ids]);
        for t in [
            0, 99, 100, 101, 227, 228, 229, 255, 256, 355, 356, 357, 399, 400, 999, 1000, 1001,
            1009, 1010,
        ] {
            let mut c = a.cursor(0);
            let mut s = SliceSeeker::new(&ids);
            assert_eq!(c.next_seek(t), s.next_seek(t), "fresh seek to {t}");
        }
        // Monotone seek sweeps across the seams.
        let mut c = a.cursor(0);
        let mut s = SliceSeeker::new(&ids);
        for t in (0..1100).step_by(7) {
            assert_eq!(c.next_seek(t), s.next_seek(t), "sweep target {t}");
        }
    }

    #[test]
    fn empty_singleton_and_all_consecutive_lists() {
        let all: Vec<u32> = (0..BLOCK_LEN as u32 * 3).collect();
        let a = arena_of(&[&[], &[9], &all]);
        assert_eq!(decode(&a, 0), Vec::<u32>::new());
        assert_eq!(decode(&a, 1), [9]);
        assert_eq!(decode(&a, 2), all);
        assert_eq!(a.cursor(0).next(), None);
        assert_eq!(a.cursor(0).next_seek(0), None);
        assert_eq!(a.cursor(1).next_seek(9), Some(9));
        assert_eq!(a.cursor(1).next_seek(10), None);
        // O(1) membership inside the run: every probe lands exactly.
        for t in [0u32, 1, 127, 128, 129, 200, 383] {
            let mut c = a.cursor(2);
            assert_eq!(c.next_seek(t), Some(t), "run membership {t}");
        }
        assert_eq!(a.cursor(2).next_seek(384), None);
    }

    #[test]
    fn cursor_seek_matches_slice_seek() {
        let ids: Vec<u32> = (0..700).map(|i| i * i / 4 + i).collect();
        let a = arena_of(&[&ids]);
        for targets in [
            vec![0u32, 1, 5, 1000, 100_000],
            vec![ids[0], ids[ids.len() - 1], u32::MAX],
            (0..50).map(|i| i * 977).collect(),
        ] {
            let mut c = a.cursor(0);
            let mut s = SliceSeeker::new(&ids);
            for &t in &targets {
                assert_eq!(c.next_seek(t), s.next_seek(t), "target {t}");
            }
        }
    }

    #[test]
    fn decode_csr_inverts_row_pushes() {
        let big: Vec<u32> = (0..400).map(|i| i * 2 + 1).collect();
        let rows: &[&[u32]] = &[&[], &[7, 9], &big, &[], &[0]];
        let a = arena_of(rows);
        let (off, tgt) = a.decode_csr::<u32>();
        assert_eq!(off.len(), rows.len() + 1);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&tgt[off[i] as usize..off[i + 1] as usize], *row);
        }
    }

    #[test]
    fn wire_round_trip_and_validation() {
        let big: Vec<u32> = (0..300).map(|i| i * 5).collect();
        let a = arena_of(&[&[], &[9], &big]);
        let (data, bf, bo, ll) = a.parts();
        let b = PostingArena::from_parts(data.to_vec(), bf.to_vec(), bo.to_vec(), ll.to_vec())
            .expect("valid parts");
        assert_eq!(a, b);

        // Corruptions must be rejected, never panic.
        let bad = PostingArena::from_parts(data.to_vec(), bf.to_vec(), bo.to_vec(), vec![1]);
        assert!(bad.is_err());
        let mut data2 = data.to_vec();
        data2.pop();
        assert!(PostingArena::from_parts(data2, bf.to_vec(), bo.to_vec(), ll.to_vec()).is_err());
        // Second block of `big`: its first id must exceed the previous
        // block's last, so zeroing it breaks strict ascent.
        let mut bf2 = bf.to_vec();
        bf2[2] = 0;
        assert!(PostingArena::from_parts(data.to_vec(), bf2, bo.to_vec(), ll.to_vec()).is_err());
    }

    #[test]
    fn tagged_corruptions_are_rejected() {
        let stride: Vec<u32> = (0..300).map(|i| i * 3).collect(); // bit-packed
        let run: Vec<u32> = (0..200).collect(); // run
        let a = arena_of(&[&stride, &run]);
        let (data, bf, bo, ll) = a.parts();
        let fresh =
            |data: Vec<u8>| PostingArena::from_parts(data, bf.to_vec(), bo.to_vec(), ll.to_vec());
        assert!(fresh(data.to_vec()).is_ok());

        // Unknown tag.
        let mut d = data.to_vec();
        d[bo[0] as usize] = 200;
        assert_eq!(fresh(d).unwrap_err(), ArenaError("unknown block tag"));
        // Bit-packed block re-tagged as a run: trailing body bytes.
        let mut d = data.to_vec();
        d[bo[0] as usize] = TAG_RUN;
        assert_eq!(
            fresh(d).unwrap_err(),
            ArenaError("run block payload has trailing bytes")
        );
        // Width tampered: body length no longer matches.
        let mut d = data.to_vec();
        d[bo[0] as usize] = 7;
        assert_eq!(
            fresh(d).unwrap_err(),
            ArenaError("bit-packed payload length mismatch")
        );
        // Nonzero padding bits in the final byte of a packed body. Width 2
        // over 127 deltas = 254 bits: 6 pad bits in the last byte.
        let mut d = data.to_vec();
        let last = bo[1] as usize - 1;
        d[last] |= 0xC0;
        assert_eq!(
            fresh(d).unwrap_err(),
            ArenaError("bit-packed padding bits not zero")
        );
        // A run block cannot be grown past the end of the id space.
        let mut buf = [0u32; BLOCK_LEN];
        assert_eq!(
            decode_tagged_block(&[TAG_RUN], u32::MAX, 2, &mut buf),
            Err(ArenaError("id overflow"))
        );
        assert_eq!(
            decode_tagged_block(&[], 0, 1, &mut buf),
            Err(ArenaError("block payload missing its tag"))
        );
    }

    #[test]
    fn legacy_wire_round_trips_through_reencode() {
        let mut rng = SplitMix64(0x1e6a_c1e5);
        for round in 0..20 {
            let Some(ids) = styled_list(&mut rng, round % 4, 900) else {
                continue;
            };
            let a = arena_of(&[&[], &ids, &[5]]);
            let (data, bf, bo, ll) = a.legacy_parts();
            // Legacy payloads are untagged varints: re-reading them through
            // the legacy path must reproduce the arena exactly (same lists,
            // same — freshly chosen — tagged encodings).
            let b =
                PostingArena::from_parts_legacy(data.clone(), bf.clone(), bo.clone(), ll.clone())
                    .expect("valid legacy parts");
            assert_eq!(a, b, "round {round}");
            // And the tagged reader must reject the untagged bytes (the
            // version gate in the store is what routes to the right one).
            if !ids.is_empty() {
                assert!(PostingArena::from_parts(data, bf, bo, ll).is_err());
            }
        }
    }

    #[test]
    fn heap_bytes_counts_everything() {
        let a = arena_of(&[&[1, 2, 3]]);
        assert!(a.heap_bytes() > 0);
        assert!(a.heap_bytes() < 64);
    }
}
