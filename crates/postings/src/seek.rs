//! The [`SeekingIterator`] contract, its raw-slice implementation, and the
//! galloping set algebra written once over the trait.
//!
//! A seeking iterator yields a strictly ascending id sequence and supports
//! `next_seek(t)`: advance to the first remaining id `>= t` without visiting
//! every id in between. On slices that is galloping (exponential probe +
//! binary search) so an intersection of a small list against a large one
//! costs `O(small · log large)` instead of `O(small + large)`; on compressed
//! blocks it is a skip-directory jump (see [`crate::PostingCursor`]). The
//! merge loops below only ever talk to the trait, which is what makes raw
//! and compressed serving paths bit-identical.

/// Conversion between a caller's id newtype and the `u32` ids this crate
/// stores. Implemented here for `u32`; index and graph crates implement it
/// for their `NodeId`/`IdxId` newtypes.
pub trait PostingId: Copy {
    /// The raw posting value.
    fn to_u32(self) -> u32;
    /// Rebuilds the newtype from a raw posting value.
    fn from_u32(v: u32) -> Self;
}

impl PostingId for u32 {
    #[inline]
    fn to_u32(self) -> u32 {
        self
    }
    #[inline]
    fn from_u32(v: u32) -> Self {
        v
    }
}

/// An iterator over a strictly ascending sorted id list that can skip
/// forward. The two methods are the entire serving contract of a posting
/// list, whatever its physical representation.
pub trait SeekingIterator {
    /// The next id, or `None` when exhausted.
    fn next(&mut self) -> Option<u32>;

    /// Advances to (and returns) the first remaining id `>= target`,
    /// consuming everything before it. Ids already returned are never
    /// revisited: if the iterator has passed `target`, this behaves like
    /// [`SeekingIterator::next`].
    fn next_seek(&mut self, target: u32) -> Option<u32>;

    /// Exact number of ids left, in `O(1)`. Every physical representation
    /// knows its length up front, and [`intersect_seeking`] uses the two
    /// sides' remainders to choose between galloping and linear stepping.
    fn remaining(&self) -> usize;
}

/// [`SeekingIterator`] over a raw sorted slice — the representation used by
/// live `IndexGraph` extents and frozen CSR arenas.
///
/// `next_seek` first checks the very next element (the dense fast path: on
/// heavily interleaved lists galloping must not be slower than a linear
/// merge), then gallops — exponential probe to bracket the target, binary
/// search inside the bracket.
pub struct SliceSeeker<'a, T: PostingId> {
    s: &'a [T],
    pos: usize,
}

impl<'a, T: PostingId> SliceSeeker<'a, T> {
    /// Wraps a sorted, strictly ascending slice.
    pub fn new(s: &'a [T]) -> Self {
        SliceSeeker { s, pos: 0 }
    }
}

impl<T: PostingId> SeekingIterator for SliceSeeker<'_, T> {
    #[inline]
    fn next(&mut self) -> Option<u32> {
        let v = self.s.get(self.pos)?.to_u32();
        self.pos += 1;
        Some(v)
    }

    fn next_seek(&mut self, target: u32) -> Option<u32> {
        let n = self.s.len();
        if self.pos >= n {
            return None;
        }
        // Dense fast path: the target is often the very next element.
        if self.s[self.pos].to_u32() >= target {
            return self.next();
        }
        // Gallop: after the loop `s[lo] < target` and the first element
        // `>= target` (if any) lies in `s[lo+1 .. hi]`.
        let mut lo = self.pos;
        let mut step = 1usize;
        while lo + step < n && self.s[lo + step].to_u32() < target {
            lo += step;
            step <<= 1;
        }
        let hi = (lo + step + 1).min(n);
        let off = self.s[lo + 1..hi].partition_point(|x| x.to_u32() < target);
        self.pos = lo + 1 + off;
        self.next()
    }

    #[inline]
    fn remaining(&self) -> usize {
        self.s.len() - self.pos
    }
}

/// Sides whose lengths are within this factor of each other intersect by
/// linear stepping; beyond it, galloping wins. With comparable dense lists a
/// gallop degenerates to "probe the immediate neighbour, then fall into a
/// bracketed binary search" on nearly every step — strictly more work per
/// element than a merge — while the gallop's `O(small · log large)` payoff
/// needs the lists to be lopsided.
const GALLOP_RATIO: usize = 8;

/// Intersection of two seeking iterators.
///
/// When one side is much shorter than the other (by [`GALLOP_RATIO`]), the
/// shorter side drives and the longer side seeks — runs of misses are
/// skipped in logarithmic time. When the sides are comparable, seeking
/// cannot skip anything and the loop degrades to a plain linear merge, so
/// comparable inputs take a stepping loop that never seeks.
pub fn intersect_seeking(a: impl SeekingIterator, b: impl SeekingIterator, emit: impl FnMut(u32)) {
    let (ra, rb) = (a.remaining(), b.remaining());
    if ra.max(rb) < GALLOP_RATIO * ra.min(rb).max(1) {
        intersect_stepping(a, b, emit);
    } else {
        intersect_galloping(a, b, emit);
    }
}

fn intersect_galloping(
    mut a: impl SeekingIterator,
    mut b: impl SeekingIterator,
    mut emit: impl FnMut(u32),
) {
    let (Some(mut x), Some(mut y)) = (a.next(), b.next()) else {
        return;
    };
    loop {
        match x.cmp(&y) {
            core::cmp::Ordering::Equal => {
                emit(x);
                let (Some(nx), Some(ny)) = (a.next(), b.next()) else {
                    return;
                };
                x = nx;
                y = ny;
            }
            core::cmp::Ordering::Less => {
                let Some(nx) = a.next_seek(y) else { return };
                x = nx;
            }
            core::cmp::Ordering::Greater => {
                let Some(ny) = b.next_seek(x) else { return };
                y = ny;
            }
        }
    }
}

/// Linear-stepping intersection: both sides advance by `next()` only.
/// Equivalent output to the galloping loop, better constant factor when
/// neither side can skip far.
fn intersect_stepping(
    mut a: impl SeekingIterator,
    mut b: impl SeekingIterator,
    mut emit: impl FnMut(u32),
) {
    let (Some(mut x), Some(mut y)) = (a.next(), b.next()) else {
        return;
    };
    loop {
        match x.cmp(&y) {
            core::cmp::Ordering::Equal => {
                emit(x);
                let (Some(nx), Some(ny)) = (a.next(), b.next()) else {
                    return;
                };
                x = nx;
                y = ny;
            }
            core::cmp::Ordering::Less => {
                let Some(nx) = a.next() else { return };
                x = nx;
            }
            core::cmp::Ordering::Greater => {
                let Some(ny) = b.next() else { return };
                y = ny;
            }
        }
    }
}

/// Difference `a \ b` over seeking iterators: every id of `a` is emitted
/// unless `b` (which only ever seeks forward) produces it.
pub fn difference_seeking(
    mut a: impl SeekingIterator,
    mut b: impl SeekingIterator,
    mut emit: impl FnMut(u32),
) {
    let mut y = b.next();
    while let Some(x) = a.next() {
        if let Some(cur) = y {
            if cur < x {
                y = b.next_seek(x);
            }
        }
        if y != Some(x) {
            emit(x);
        }
    }
}

/// Union of two seeking iterators — a plain two-way merge (every element of
/// both inputs is emitted, so seeking cannot skip work here).
pub fn union_seeking(
    mut a: impl SeekingIterator,
    mut b: impl SeekingIterator,
    mut emit: impl FnMut(u32),
) {
    let mut x = a.next();
    let mut y = b.next();
    loop {
        match (x, y) {
            (Some(u), Some(v)) => match u.cmp(&v) {
                core::cmp::Ordering::Equal => {
                    emit(u);
                    x = a.next();
                    y = b.next();
                }
                core::cmp::Ordering::Less => {
                    emit(u);
                    x = a.next();
                }
                core::cmp::Ordering::Greater => {
                    emit(v);
                    y = b.next();
                }
            },
            (Some(u), None) => {
                emit(u);
                x = a.next();
            }
            (None, Some(v)) => {
                emit(v);
                y = b.next();
            }
            (None, None) => return,
        }
    }
}

/// Membership probe: does the iterator's remaining sequence contain
/// `target`? A single seek — `O(log n)` on slices, one skip-directory jump
/// plus a block scan on compressed lists.
#[inline]
pub fn contains_seeking(mut it: impl SeekingIterator, target: u32) -> bool {
    it.next_seek(target) == Some(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seek_all(s: &[u32], targets: &[u32]) -> Vec<Option<u32>> {
        let mut it = SliceSeeker::new(s);
        targets.iter().map(|&t| it.next_seek(t)).collect()
    }

    #[test]
    fn slice_next_yields_all() {
        let s = [1u32, 4, 9, 100];
        let mut it = SliceSeeker::new(&s);
        let mut out = Vec::new();
        while let Some(v) = it.next() {
            out.push(v);
        }
        assert_eq!(out, s);
    }

    #[test]
    fn slice_seek_finds_first_geq() {
        let s = [2u32, 3, 5, 8, 13, 21, 34, 55, 89];
        assert_eq!(seek_all(&s, &[0]), [Some(2)]);
        assert_eq!(seek_all(&s, &[5]), [Some(5)]);
        assert_eq!(seek_all(&s, &[6]), [Some(8)]);
        assert_eq!(seek_all(&s, &[90]), [None]);
        // monotone seeks
        assert_eq!(
            seek_all(&s, &[4, 4, 22, 55, 100]),
            [Some(5), Some(8), Some(34), Some(55), None]
        );
    }

    #[test]
    fn slice_seek_empty_and_singleton() {
        assert_eq!(seek_all(&[], &[7]), [None]);
        assert_eq!(seek_all(&[7], &[7]), [Some(7)]);
        assert_eq!(seek_all(&[7], &[8]), [None]);
        assert_eq!(seek_all(&[7], &[0]), [Some(7)]);
    }

    #[test]
    fn intersect_matches_naive() {
        let a = [1u32, 3, 5, 7, 9, 11, 500, 501];
        let b = [2u32, 3, 4, 9, 500, 502];
        let mut out = Vec::new();
        intersect_seeking(SliceSeeker::new(&a), SliceSeeker::new(&b), |v| out.push(v));
        assert_eq!(out, [3, 9, 500]);
    }

    #[test]
    fn difference_matches_naive() {
        let a = [1u32, 3, 5, 7, 9];
        let b = [0u32, 3, 4, 9, 10];
        let mut out = Vec::new();
        difference_seeking(SliceSeeker::new(&a), SliceSeeker::new(&b), |v| out.push(v));
        assert_eq!(out, [1, 5, 7]);
    }

    #[test]
    fn union_merges_and_dedups() {
        let a = [1u32, 3, 5];
        let b = [2u32, 3, 6];
        let mut out = Vec::new();
        union_seeking(SliceSeeker::new(&a), SliceSeeker::new(&b), |v| out.push(v));
        assert_eq!(out, [1, 2, 3, 5, 6]);
    }

    #[test]
    fn intersect_cutoff_paths_agree() {
        // Comparable dense lists take the stepping path, lopsided ones
        // gallop; both must match the naive set intersection, and the two
        // loops must agree with each other on any input.
        let dense_a: Vec<u32> = (0..2000).map(|i| i * 2).collect();
        let dense_b: Vec<u32> = (0..1900).map(|i| i * 2 + i % 3).collect();
        let sparse: Vec<u32> = (0..40).map(|i| i * 97).collect();
        for (a, b) in [
            (&dense_a, &dense_b),
            (&sparse, &dense_a),
            (&dense_a, &sparse),
        ] {
            let naive: Vec<u32> = a
                .iter()
                .filter(|x| b.binary_search(x).is_ok())
                .copied()
                .collect();
            let mut via_cutoff = Vec::new();
            intersect_seeking(SliceSeeker::new(a), SliceSeeker::new(b), |v| {
                via_cutoff.push(v)
            });
            assert_eq!(via_cutoff, naive);
            let mut stepped = Vec::new();
            intersect_stepping(SliceSeeker::new(a), SliceSeeker::new(b), |v| {
                stepped.push(v)
            });
            let mut galloped = Vec::new();
            intersect_galloping(SliceSeeker::new(a), SliceSeeker::new(b), |v| {
                galloped.push(v)
            });
            assert_eq!(stepped, naive);
            assert_eq!(galloped, naive);
        }
    }

    #[test]
    fn remaining_tracks_consumption() {
        let s = [2u32, 3, 5, 8, 13];
        let mut it = SliceSeeker::new(&s);
        assert_eq!(it.remaining(), 5);
        it.next();
        assert_eq!(it.remaining(), 4);
        assert_eq!(it.next_seek(6), Some(8));
        assert_eq!(it.remaining(), 1);
        assert_eq!(it.next(), Some(13));
        assert_eq!(it.remaining(), 0);
        assert_eq!(it.next(), None);
        assert_eq!(it.remaining(), 0);
    }

    #[test]
    fn contains_probes() {
        let s = [10u32, 20, 30];
        assert!(contains_seeking(SliceSeeker::new(&s), 20));
        assert!(!contains_seeking(SliceSeeker::new(&s), 25));
        assert!(!contains_seeking(SliceSeeker::<u32>::new(&[]), 0));
    }
}
