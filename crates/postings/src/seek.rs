//! The [`SeekingIterator`] contract, its raw-slice implementation, and the
//! galloping set algebra written once over the trait.
//!
//! A seeking iterator yields a strictly ascending id sequence and supports
//! `next_seek(t)`: advance to the first remaining id `>= t` without visiting
//! every id in between. On slices that is galloping (exponential probe +
//! binary search) so an intersection of a small list against a large one
//! costs `O(small · log large)` instead of `O(small + large)`; on compressed
//! blocks it is a skip-directory jump (see [`crate::PostingCursor`]). The
//! merge loops below only ever talk to the trait, which is what makes raw
//! and compressed serving paths bit-identical.

/// Conversion between a caller's id newtype and the `u32` ids this crate
/// stores. Implemented here for `u32`; index and graph crates implement it
/// for their `NodeId`/`IdxId` newtypes.
pub trait PostingId: Copy {
    /// The raw posting value.
    fn to_u32(self) -> u32;
    /// Rebuilds the newtype from a raw posting value.
    fn from_u32(v: u32) -> Self;
}

impl PostingId for u32 {
    #[inline]
    fn to_u32(self) -> u32 {
        self
    }
    #[inline]
    fn from_u32(v: u32) -> Self {
        v
    }
}

/// An iterator over a strictly ascending sorted id list that can skip
/// forward. The two methods are the entire serving contract of a posting
/// list, whatever its physical representation.
pub trait SeekingIterator {
    /// The next id, or `None` when exhausted.
    fn next(&mut self) -> Option<u32>;

    /// Advances to (and returns) the first remaining id `>= target`,
    /// consuming everything before it. Ids already returned are never
    /// revisited: if the iterator has passed `target`, this behaves like
    /// [`SeekingIterator::next`].
    fn next_seek(&mut self, target: u32) -> Option<u32>;
}

/// [`SeekingIterator`] over a raw sorted slice — the representation used by
/// live `IndexGraph` extents and frozen CSR arenas.
///
/// `next_seek` first checks the very next element (the dense fast path: on
/// heavily interleaved lists galloping must not be slower than a linear
/// merge), then gallops — exponential probe to bracket the target, binary
/// search inside the bracket.
pub struct SliceSeeker<'a, T: PostingId> {
    s: &'a [T],
    pos: usize,
}

impl<'a, T: PostingId> SliceSeeker<'a, T> {
    /// Wraps a sorted, strictly ascending slice.
    pub fn new(s: &'a [T]) -> Self {
        SliceSeeker { s, pos: 0 }
    }
}

impl<T: PostingId> SeekingIterator for SliceSeeker<'_, T> {
    #[inline]
    fn next(&mut self) -> Option<u32> {
        let v = self.s.get(self.pos)?.to_u32();
        self.pos += 1;
        Some(v)
    }

    fn next_seek(&mut self, target: u32) -> Option<u32> {
        let n = self.s.len();
        if self.pos >= n {
            return None;
        }
        // Dense fast path: the target is often the very next element.
        if self.s[self.pos].to_u32() >= target {
            return self.next();
        }
        // Gallop: after the loop `s[lo] < target` and the first element
        // `>= target` (if any) lies in `s[lo+1 .. hi]`.
        let mut lo = self.pos;
        let mut step = 1usize;
        while lo + step < n && self.s[lo + step].to_u32() < target {
            lo += step;
            step <<= 1;
        }
        let hi = (lo + step + 1).min(n);
        let off = self.s[lo + 1..hi].partition_point(|x| x.to_u32() < target);
        self.pos = lo + 1 + off;
        self.next()
    }
}

/// Intersection of two seeking iterators, galloping both sides: whichever
/// list is behind seeks to the other's current id, so runs of misses are
/// skipped in logarithmic time.
pub fn intersect_seeking(
    mut a: impl SeekingIterator,
    mut b: impl SeekingIterator,
    mut emit: impl FnMut(u32),
) {
    let (Some(mut x), Some(mut y)) = (a.next(), b.next()) else {
        return;
    };
    loop {
        match x.cmp(&y) {
            core::cmp::Ordering::Equal => {
                emit(x);
                let (Some(nx), Some(ny)) = (a.next(), b.next()) else {
                    return;
                };
                x = nx;
                y = ny;
            }
            core::cmp::Ordering::Less => {
                let Some(nx) = a.next_seek(y) else { return };
                x = nx;
            }
            core::cmp::Ordering::Greater => {
                let Some(ny) = b.next_seek(x) else { return };
                y = ny;
            }
        }
    }
}

/// Difference `a \ b` over seeking iterators: every id of `a` is emitted
/// unless `b` (which only ever seeks forward) produces it.
pub fn difference_seeking(
    mut a: impl SeekingIterator,
    mut b: impl SeekingIterator,
    mut emit: impl FnMut(u32),
) {
    let mut y = b.next();
    while let Some(x) = a.next() {
        if let Some(cur) = y {
            if cur < x {
                y = b.next_seek(x);
            }
        }
        if y != Some(x) {
            emit(x);
        }
    }
}

/// Union of two seeking iterators — a plain two-way merge (every element of
/// both inputs is emitted, so seeking cannot skip work here).
pub fn union_seeking(
    mut a: impl SeekingIterator,
    mut b: impl SeekingIterator,
    mut emit: impl FnMut(u32),
) {
    let mut x = a.next();
    let mut y = b.next();
    loop {
        match (x, y) {
            (Some(u), Some(v)) => match u.cmp(&v) {
                core::cmp::Ordering::Equal => {
                    emit(u);
                    x = a.next();
                    y = b.next();
                }
                core::cmp::Ordering::Less => {
                    emit(u);
                    x = a.next();
                }
                core::cmp::Ordering::Greater => {
                    emit(v);
                    y = b.next();
                }
            },
            (Some(u), None) => {
                emit(u);
                x = a.next();
            }
            (None, Some(v)) => {
                emit(v);
                y = b.next();
            }
            (None, None) => return,
        }
    }
}

/// Membership probe: does the iterator's remaining sequence contain
/// `target`? A single seek — `O(log n)` on slices, one skip-directory jump
/// plus a block scan on compressed lists.
#[inline]
pub fn contains_seeking(mut it: impl SeekingIterator, target: u32) -> bool {
    it.next_seek(target) == Some(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seek_all(s: &[u32], targets: &[u32]) -> Vec<Option<u32>> {
        let mut it = SliceSeeker::new(s);
        targets.iter().map(|&t| it.next_seek(t)).collect()
    }

    #[test]
    fn slice_next_yields_all() {
        let s = [1u32, 4, 9, 100];
        let mut it = SliceSeeker::new(&s);
        let mut out = Vec::new();
        while let Some(v) = it.next() {
            out.push(v);
        }
        assert_eq!(out, s);
    }

    #[test]
    fn slice_seek_finds_first_geq() {
        let s = [2u32, 3, 5, 8, 13, 21, 34, 55, 89];
        assert_eq!(seek_all(&s, &[0]), [Some(2)]);
        assert_eq!(seek_all(&s, &[5]), [Some(5)]);
        assert_eq!(seek_all(&s, &[6]), [Some(8)]);
        assert_eq!(seek_all(&s, &[90]), [None]);
        // monotone seeks
        assert_eq!(
            seek_all(&s, &[4, 4, 22, 55, 100]),
            [Some(5), Some(8), Some(34), Some(55), None]
        );
    }

    #[test]
    fn slice_seek_empty_and_singleton() {
        assert_eq!(seek_all(&[], &[7]), [None]);
        assert_eq!(seek_all(&[7], &[7]), [Some(7)]);
        assert_eq!(seek_all(&[7], &[8]), [None]);
        assert_eq!(seek_all(&[7], &[0]), [Some(7)]);
    }

    #[test]
    fn intersect_matches_naive() {
        let a = [1u32, 3, 5, 7, 9, 11, 500, 501];
        let b = [2u32, 3, 4, 9, 500, 502];
        let mut out = Vec::new();
        intersect_seeking(SliceSeeker::new(&a), SliceSeeker::new(&b), |v| out.push(v));
        assert_eq!(out, [3, 9, 500]);
    }

    #[test]
    fn difference_matches_naive() {
        let a = [1u32, 3, 5, 7, 9];
        let b = [0u32, 3, 4, 9, 10];
        let mut out = Vec::new();
        difference_seeking(SliceSeeker::new(&a), SliceSeeker::new(&b), |v| out.push(v));
        assert_eq!(out, [1, 5, 7]);
    }

    #[test]
    fn union_merges_and_dedups() {
        let a = [1u32, 3, 5];
        let b = [2u32, 3, 6];
        let mut out = Vec::new();
        union_seeking(SliceSeeker::new(&a), SliceSeeker::new(&b), |v| out.push(v));
        assert_eq!(out, [1, 2, 3, 5, 6]);
    }

    #[test]
    fn contains_probes() {
        let s = [10u32, 20, 30];
        assert!(contains_seeking(SliceSeeker::new(&s), 20));
        assert!(!contains_seeking(SliceSeeker::new(&s), 25));
        assert!(!contains_seeking(SliceSeeker::<u32>::new(&[]), 0));
    }
}
