//! Shared counting-sort CSR builder.
//!
//! Grouping `n` items by a small integer key into offset + id arrays is done
//! in several places (frozen label buckets, the store's load path); this is
//! the one implementation. Two passes: count per key, prefix-sum into
//! offsets, then scatter item indices with a moving cursor per key. The
//! scatter preserves item order within each bucket, so bucket contents come
//! out sorted whenever items are scanned in ascending id order — which is
//! what makes the buckets valid posting lists.

/// Groups items `0..n` by `key(i)` into a CSR pair `(offsets, ids)`:
/// `ids[offsets[k] .. offsets[k+1]]` lists (in ascending order) the items
/// with key `k`. Every `key(i)` must be `< num_keys`; callers validate
/// untrusted keys first.
pub fn group_by_key(n: usize, num_keys: usize, key: impl Fn(usize) -> u32) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = vec![0u32; num_keys + 1];
    for i in 0..n {
        offsets[key(i) as usize + 1] += 1;
    }
    for k in 0..num_keys {
        offsets[k + 1] += offsets[k];
    }
    let mut cursor: Vec<u32> = offsets[..num_keys].to_vec();
    let mut ids = vec![0u32; n];
    for i in 0..n {
        let k = key(i) as usize;
        ids[cursor[k] as usize] = i as u32;
        cursor[k] += 1;
    }
    (offsets, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_in_order() {
        let keys = [2u32, 0, 2, 1, 0];
        let (off, ids) = group_by_key(keys.len(), 3, |i| keys[i]);
        assert_eq!(off, [0, 2, 3, 5]);
        assert_eq!(ids, [1, 4, 3, 0, 2]);
    }

    #[test]
    fn empty_input() {
        let (off, ids) = group_by_key(0, 4, |_| 0);
        assert_eq!(off, [0, 0, 0, 0, 0]);
        assert!(ids.is_empty());
    }
}
