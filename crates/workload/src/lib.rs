//! Synthetic query-workload generation (§5 of the paper, "Query workload").
//!
//! The paper's recipe, reproduced here:
//!
//! 1. Generate all label paths of length up to `max_path_len` in the data
//!    graph (the length limit keeps cyclic documents finite). We enumerate
//!    on the A(max_path_len)-index, which represents exactly the same label
//!    paths as the data graph up to that length but is far smaller.
//! 2. For each query, pick a label path at random, extract a subsequence
//!    with random start position and random length, and prefix it with the
//!    self-or-descendant axis `//`.
//!
//! Because the start position is uniform, short queries are more likely than
//! long ones — matching the observation that short path expressions dominate
//! real workloads (the distributions of Figures 8 and 9 fall out of this
//! process; [`Workload::length_histogram`] regenerates them).

use std::collections::HashSet;

use mrx_datagen::Prng;
use mrx_graph::{DataGraph, LabelId};
use mrx_index::AkIndex;
use mrx_path::PathExpr;

mod fup;
pub use fup::FupExtractor;

/// Parameters for workload generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Maximum label-path length in **edges** (the paper uses 9 and 4).
    pub max_path_len: usize,
    /// Number of queries to sample (the paper uses 500).
    pub num_queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Safety cap on the number of enumerated label paths.
    pub max_enumerated_paths: usize,
}

impl WorkloadConfig {
    /// The paper's primary setting: 500 queries, max length 9.
    pub fn paper_long(seed: u64) -> Self {
        WorkloadConfig {
            max_path_len: 9,
            num_queries: 500,
            seed,
            max_enumerated_paths: 400_000,
        }
    }

    /// The paper's secondary setting: 500 queries, max length 4.
    pub fn paper_short(seed: u64) -> Self {
        WorkloadConfig {
            max_path_len: 4,
            num_queries: 500,
            seed,
            max_enumerated_paths: 400_000,
        }
    }
}

/// A generated workload of `//`-prefixed simple path expressions.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The sampled queries, in generation order (duplicates possible — a
    /// frequently sampled expression really is a *frequently used* path).
    pub queries: Vec<PathExpr>,
    /// The config that produced them.
    pub config: WorkloadConfig,
}

impl Workload {
    /// Generates a workload for `g` per the paper's recipe.
    pub fn generate(g: &DataGraph, config: &WorkloadConfig) -> Workload {
        let paths = enumerate_label_paths(g, config.max_path_len, config.max_enumerated_paths);
        assert!(!paths.is_empty(), "graph has no label paths");
        let mut rng = Prng::seed_from_u64(config.seed);
        let mut queries = Vec::with_capacity(config.num_queries);
        for _ in 0..config.num_queries {
            let path = &paths[rng.gen_range(0..paths.len())];
            let start = rng.gen_range(0..path.len());
            let len = rng.gen_range(1..=path.len() - start);
            let labels: Vec<&str> = path[start..start + len]
                .iter()
                .map(|&l| g.label_str(l))
                .collect();
            queries.push(PathExpr::descendant(labels));
        }
        Workload {
            queries,
            config: config.clone(),
        }
    }

    /// Fraction of queries per length `0..=max_path_len` (Figures 8 and 9).
    pub fn length_histogram(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.config.max_path_len + 1];
        for q in &self.queries {
            counts[q.length()] += 1;
        }
        let n = self.queries.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }
}

/// Enumerates the distinct root-originated label paths of `g` with at most
/// `max_len` edges (i.e. up to `max_len + 1` labels), capped at `cap` paths.
///
/// Enumeration runs on the A(max_len)-index: its label paths of length up to
/// `max_len` coincide with the data graph's (A(k) property 2), and the index
/// is typically orders of magnitude smaller.
pub fn enumerate_label_paths(g: &DataGraph, max_len: usize, cap: usize) -> Vec<Vec<LabelId>> {
    let idx = AkIndex::build(g, max_len as u32);
    let ig = idx.graph();
    let root_node = ig.node_of(g.root());
    let mut out: Vec<Vec<LabelId>> = Vec::new();
    let mut seen: HashSet<Vec<LabelId>> = HashSet::new();
    // DFS over (index node, depth); the label path is carried on a stack.
    let mut label_stack: Vec<LabelId> = vec![ig.label(root_node)];
    dfs(
        ig,
        root_node,
        max_len,
        cap,
        &mut label_stack,
        &mut seen,
        &mut out,
    );
    out
}

fn dfs(
    ig: &mrx_index::IndexGraph,
    v: mrx_index::IdxId,
    remaining: usize,
    cap: usize,
    label_stack: &mut Vec<LabelId>,
    seen: &mut HashSet<Vec<LabelId>>,
    out: &mut Vec<Vec<LabelId>>,
) {
    if out.len() >= cap {
        return;
    }
    if seen.insert(label_stack.clone()) {
        out.push(label_stack.clone());
    }
    if remaining == 0 {
        return;
    }
    for &c in ig.children(v) {
        label_stack.push(ig.label(c));
        dfs(ig, c, remaining - 1, cap, label_stack, seen, out);
        label_stack.pop();
        if out.len() >= cap {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_datagen::{nasa_like, random_graph, RandomGraphConfig};
    use mrx_graph::xml::parse;
    use mrx_path::eval_data;

    fn doc() -> DataGraph {
        parse("<r><a><b><c/></b></a><d><b><e/></b></d></r>").unwrap()
    }

    #[test]
    fn enumeration_finds_all_root_paths() {
        let g = doc();
        let paths = enumerate_label_paths(&g, 3, 1000);
        let rendered: HashSet<String> = paths
            .iter()
            .map(|p| {
                p.iter()
                    .map(|&l| g.label_str(l))
                    .collect::<Vec<_>>()
                    .join("/")
            })
            .collect();
        let expected: HashSet<String> = ["r", "r/a", "r/d", "r/a/b", "r/d/b", "r/a/b/c", "r/d/b/e"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(rendered, expected);
    }

    #[test]
    fn enumeration_respects_length_limit_on_cycles() {
        let mut b = mrx_graph::GraphBuilder::new();
        let r = b.add_node("r");
        let a = b.add_child(r, "a");
        b.add_ref(a, a); // self-loop: unbounded paths without the limit
        let g = b.freeze();
        let paths = enumerate_label_paths(&g, 5, 1000);
        assert_eq!(paths.len(), 6); // r, r/a, r/a/a, ..., r/a/a/a/a/a
        assert!(paths.iter().all(|p| p.len() <= 6));
    }

    #[test]
    fn cap_is_honoured() {
        let g = nasa_like(5_000, 2);
        let paths = enumerate_label_paths(&g, 9, 50);
        assert_eq!(paths.len(), 50);
    }

    #[test]
    fn workload_queries_are_descendant_subsequences() {
        let g = doc();
        let w = Workload::generate(
            &g,
            &WorkloadConfig {
                max_path_len: 3,
                num_queries: 100,
                seed: 5,
                max_enumerated_paths: 1000,
            },
        );
        assert_eq!(w.queries.len(), 100);
        for q in &w.queries {
            assert!(!q.is_anchored());
            assert!(q.length() <= 3);
            // every query has at least one instance in the data graph:
            // it is a subsequence of an existing root path
            assert!(
                !eval_data(&g, &q.compile(&g)).is_empty(),
                "query {q} has no answers"
            );
        }
    }

    #[test]
    fn length_distribution_is_skewed_short() {
        let g = nasa_like(8_000, 7);
        let w = Workload::generate(&g, &WorkloadConfig::paper_long(1));
        let h = w.length_histogram();
        assert_eq!(h.len(), 10);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // short queries dominate (Figure 8's shape)
        assert!(h[0] > h[5], "histogram {h:?}");
        assert!(h[0] + h[1] + h[2] > 0.4, "histogram {h:?}");
        // monotone-ish decrease over the tail
        assert!(h[9] < h[2], "histogram {h:?}");
    }

    #[test]
    fn deterministic_in_seed() {
        let g = doc();
        let cfg = WorkloadConfig {
            max_path_len: 3,
            num_queries: 20,
            seed: 9,
            max_enumerated_paths: 100,
        };
        let w1 = Workload::generate(&g, &cfg);
        let w2 = Workload::generate(&g, &cfg);
        assert_eq!(w1.queries, w2.queries);
        let w3 = Workload::generate(&g, &WorkloadConfig { seed: 10, ..cfg });
        assert_ne!(w1.queries, w3.queries);
    }

    #[test]
    fn works_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(&RandomGraphConfig::default(), seed);
            let w = Workload::generate(
                &g,
                &WorkloadConfig {
                    max_path_len: 4,
                    num_queries: 30,
                    seed,
                    max_enumerated_paths: 10_000,
                },
            );
            assert_eq!(w.queries.len(), 30);
        }
    }
}
