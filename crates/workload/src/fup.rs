//! Frequently-used-path extraction (step 3 of the paper's Figure 5 loop).
//!
//! The paper feeds every workload query to the refinement algorithm; real
//! deployments would refine only for expressions seen often enough. The
//! [`FupExtractor`] tracks query frequencies and surfaces an expression as a
//! FUP once it crosses a threshold, exactly once.

use std::collections::HashMap;

use mrx_path::PathExpr;

/// Frequency-threshold FUP extractor.
#[derive(Debug, Clone)]
pub struct FupExtractor {
    threshold: usize,
    counts: HashMap<PathExpr, usize>,
    promoted: Vec<PathExpr>,
    /// How many of `promoted` have already been handed to an adaptation
    /// batch via [`FupExtractor::take_pending`].
    adapted: usize,
}

impl FupExtractor {
    /// Creates an extractor that promotes an expression to FUP status the
    /// moment it has been observed `threshold` times (≥ 1).
    pub fn new(threshold: usize) -> Self {
        FupExtractor {
            threshold: threshold.max(1),
            counts: HashMap::new(),
            promoted: Vec::new(),
            adapted: 0,
        }
    }

    /// Records one observation of `query`; returns `Some(fup)` if this
    /// observation promotes it (exactly once per expression).
    pub fn observe(&mut self, query: &PathExpr) -> Option<PathExpr> {
        let count = self.counts.entry(query.clone()).or_insert(0);
        *count += 1;
        if *count == self.threshold {
            self.promoted.push(query.clone());
            Some(query.clone())
        } else {
            None
        }
    }

    /// How often `query` has been observed.
    pub fn count(&self, query: &PathExpr) -> usize {
        self.counts.get(query).copied().unwrap_or(0)
    }

    /// All expressions promoted so far, in promotion order.
    pub fn fups(&self) -> &[PathExpr] {
        &self.promoted
    }

    /// FUPs promoted since the last [`FupExtractor::take_pending`] — the
    /// next adaptation batch, in promotion order.
    pub fn pending(&self) -> &[PathExpr] {
        &self.promoted[self.adapted..]
    }

    /// Returns the pending batch and marks it adapted, so the next call
    /// only surfaces FUPs promoted after this one. The batching handshake
    /// for `mrx_index::AdaptEngine`: observe a window of queries, then
    /// adapt once for everything the window promoted.
    pub fn take_pending(&mut self) -> &[PathExpr] {
        let start = self.adapted;
        self.adapted = self.promoted.len();
        &self.promoted[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    #[test]
    fn threshold_one_promotes_immediately() {
        let mut x = FupExtractor::new(1);
        assert_eq!(x.observe(&q("//a/b")), Some(q("//a/b")));
        assert_eq!(x.observe(&q("//a/b")), None, "promotes only once");
        assert_eq!(x.fups(), &[q("//a/b")]);
    }

    #[test]
    fn threshold_three() {
        let mut x = FupExtractor::new(3);
        assert_eq!(x.observe(&q("//a")), None);
        assert_eq!(x.observe(&q("//b")), None);
        assert_eq!(x.observe(&q("//a")), None);
        assert_eq!(x.observe(&q("//a")), Some(q("//a")));
        assert_eq!(x.observe(&q("//a")), None);
        assert_eq!(x.count(&q("//a")), 4);
        assert_eq!(x.count(&q("//b")), 1);
        assert_eq!(x.count(&q("//zzz")), 0);
        assert_eq!(x.fups().len(), 1);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let mut x = FupExtractor::new(0);
        assert!(x.observe(&q("//a")).is_some());
    }

    #[test]
    fn promotion_order_is_stable() {
        let mut x = FupExtractor::new(2);
        for s in ["//a", "//b", "//a", "//c", "//c", "//b"] {
            x.observe(&q(s));
        }
        assert_eq!(x.fups(), &[q("//a"), q("//c"), q("//b")]);
    }

    #[test]
    fn pending_batches_drain_in_promotion_order() {
        let mut x = FupExtractor::new(2);
        for s in ["//a", "//a", "//b", "//b"] {
            x.observe(&q(s));
        }
        assert_eq!(x.pending(), &[q("//a"), q("//b")]);
        assert_eq!(x.take_pending(), &[q("//a"), q("//b")]);
        assert!(x.pending().is_empty());
        assert!(x.take_pending().is_empty());
        for s in ["//c", "//c"] {
            x.observe(&q(s));
        }
        assert_eq!(x.take_pending(), &[q("//c")]);
        // the full history stays available
        assert_eq!(x.fups().len(), 3);
    }
}
