//! The serving snapshot: an epoch-stamped, fully-validated `.mrx` file,
//! hot-swappable without downtime.
//!
//! A [`Snapshot`] is built through [`mrx_store::open_validated`], so by
//! construction every byte of it passed checksum and structural
//! validation before it became visible to any worker. Swaps are
//! epoch-fenced: the active snapshot lives in a `RwLock<Arc<Snapshot>>`
//! ([`SnapshotSlot`]); each query clones the `Arc` once up front and
//! evaluates entirely against that clone, so a RELOAD mid-query can never
//! tear an answer across two snapshots. After a swap the reloader waits
//! for the old `Arc`'s strong count to drain back to one — the classic
//! epoch-based reclamation fence, with the refcount as the epoch counter.
//!
//! Eager layouts (frozen/compressed) are shared read-only across all
//! workers. The demand-paged layouts serve through an `Rc`-based page
//! cache that is deliberately single-threaded, so the slot holds only the
//! validated *identity* (path + cache budget) and each worker keeps its
//! own [`PagedFile`] handle, re-opened when it observes a new epoch.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mrx_graph::FrozenGraph;
use mrx_index::{CompressedMStar, FrozenMStar};
use mrx_store::{open_validated, SnapshotPayload, StoreError};

/// The in-memory serving form of one validated snapshot.
pub(crate) enum SnapData {
    /// Raw frozen arrays, shared read-only by every worker.
    Frozen(FrozenGraph, FrozenMStar),
    /// Compressed posting arenas, shared read-only by every worker.
    Compressed(FrozenGraph, CompressedMStar),
    /// Demand-paged layout: validated here, but each worker opens its own
    /// handle (the page cache is single-threaded by design).
    Paged { cache_bytes: Option<u64> },
}

/// One fully-validated snapshot, stamped with the serving epoch it was
/// installed under.
pub(crate) struct Snapshot {
    /// Serving epoch: 1 for the boot snapshot, +1 per successful RELOAD.
    pub epoch: u64,
    /// On-disk layout version (1..=6).
    pub version: u32,
    /// `"frozen" | "compressed" | "paged"`.
    pub kind: &'static str,
    /// Where the file lives (paged workers re-open from here).
    pub path: PathBuf,
    /// Components degraded to live `A(i)` at load time (lenient boot
    /// loads only; RELOAD validates strictly and never degrades).
    pub degraded: Vec<usize>,
    /// The index mutation epoch recorded in the file — the second half of
    /// the shared answer cache key.
    pub index_epoch: u64,
    pub data: SnapData,
}

impl Snapshot {
    /// Loads and validates `path`, stamping the result with `epoch`.
    /// `strict` refuses files that would only load by degrading.
    pub fn load(
        path: PathBuf,
        epoch: u64,
        strict: bool,
        cache_bytes: Option<u64>,
    ) -> Result<Snapshot, StoreError> {
        let v = open_validated(&path, strict, cache_bytes)?;
        let kind = v.payload.kind();
        let (index_epoch, data) = match v.payload {
            SnapshotPayload::Frozen(g, star) => (star.epoch, SnapData::Frozen(g, star)),
            SnapshotPayload::Compressed(g, star) => (star.epoch, SnapData::Compressed(g, star)),
            SnapshotPayload::Paged(file) => {
                let e = file.mutation_epoch();
                // Drop the validation handle; workers open their own.
                drop(file);
                (e, SnapData::Paged { cache_bytes })
            }
        };
        Ok(Snapshot {
            epoch,
            version: v.version,
            kind,
            path,
            degraded: v.degraded,
            index_epoch,
            data,
        })
    }
}

/// The epoch-fenced slot the server serves from.
pub(crate) struct SnapshotSlot {
    current: RwLock<Arc<Snapshot>>,
    /// Mirrors `current.epoch` for lock-free reads in stats paths.
    epoch: AtomicU64,
}

impl SnapshotSlot {
    pub fn new(snap: Snapshot) -> Self {
        let epoch = snap.epoch;
        SnapshotSlot {
            current: RwLock::new(Arc::new(snap)),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// Clones the active snapshot. The clone pins the snapshot for the
    /// whole query: a concurrent swap cannot free it or change what this
    /// query sees.
    pub fn pin(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Atomically installs `next` and returns the displaced snapshot so
    /// the caller can drain it.
    pub fn swap(&self, next: Snapshot) -> Arc<Snapshot> {
        let epoch = next.epoch;
        let mut w = self.current.write().unwrap_or_else(|e| e.into_inner());
        let old = std::mem::replace(&mut *w, Arc::new(next));
        self.epoch.store(epoch, Ordering::SeqCst);
        old
    }

    /// The current serving epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}
