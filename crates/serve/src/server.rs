//! The `mrx serve` daemon: a thread-per-connection acceptor, a bounded
//! DRR work queue, and a worker pool evaluating against an epoch-fenced
//! snapshot slot.
//!
//! # Life of a query
//!
//! 1. The acceptor admits the connection (or sheds it typed when
//!    `max_conns` is reached) and hands it to a connection thread.
//! 2. The connection thread reads one bounded frame at a time (idle
//!    connections are reaped; stalled partial frames — the slow-loris
//!    shape — are rejected typed), decodes it, and for QUERY verbs runs
//!    admission: token bucket first (`RateLimited`), then the bounded DRR
//!    queue (`Overloaded`). Each rejection carries a retry-after hint.
//! 3. A worker pops the query in deficit-round-robin order, pins the
//!    current snapshot `Arc`, probes the shared answer cache, and
//!    otherwise evaluates under the tenant's [`QueryBudget`] — with a
//!    disconnect probe wired in, so a vanished client cancels its own
//!    query at the next budget poll instead of burning a worker.
//! 4. The worker replies through a rendezvous channel; the connection
//!    thread writes the response frame. One outstanding request per
//!    connection, by construction — which is also what makes the
//!    worker-side socket peek in the disconnect probe race-free.
//!
//! # Failure containment
//!
//! Every failure an individual request can provoke — malformed frame,
//! unparsable path, budget trip, page-checksum poison — is answered as a
//! typed error on that request alone; the server never sends a partial
//! answer and never dies on tenant input. Snapshot-level failures are
//! contained by validation: RELOAD refuses any file that does not pass
//! full checksum + structural validation *before* the swap, so the old
//! epoch keeps serving through torn, truncated, or bit-flipped
//! replacement files.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use mrx_error::BudgetKind;
use mrx_index::{
    Answer, PagedMStar, QueryScratch, SharedAnswerCache, SharedCacheConfig, TrustPolicy,
};
use mrx_pagecache::PageCache;
use mrx_path::{CancelProbe, PathExpr, QueryBudget};
use mrx_store::{LazyGraph, PagedFile, StoreError};

use crate::proto::{
    decode_request, encode_response, write_frame, Request, Response, ServeError, MAX_REQUEST_FRAME,
};
use crate::shed::{BucketSet, DrrQueue, Popped, Shed, TenantRate};
use crate::snapshot::{SnapData, Snapshot, SnapshotSlot};

/// Per-tenant query resource limits, enforced by the budget meter inside
/// the evaluators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantBudget {
    /// Cap on total node visits.
    pub max_steps: Option<u64>,
    /// Cap on result-set size.
    pub max_result_nodes: Option<u64>,
    /// Per-query wall-clock deadline.
    pub deadline_ms: Option<u64>,
}

/// Everything the daemon needs to start. `ServeConfig::new` fills in
/// defaults tuned for the chaos harness; real deployments override.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7171"` (port 0 picks a free port).
    pub addr: String,
    /// The boot snapshot.
    pub snapshot: PathBuf,
    /// Worker threads evaluating queries.
    pub workers: usize,
    /// Concurrent-connection cap; excess connections are shed typed.
    pub max_conns: usize,
    /// Global queued-request cap.
    pub queue_cap: usize,
    /// Per-tenant queued-request cap.
    pub tenant_backlog: usize,
    /// DRR quantum: consecutive requests one tenant may serve.
    pub quantum: u32,
    /// Extent trust policy for evaluation.
    pub policy: TrustPolicy,
    /// Token-bucket limit applied to tenants without an override
    /// (`None` disables rate limiting for them).
    pub default_rate: Option<TenantRate>,
    /// Per-tenant token-bucket overrides.
    pub tenant_rates: HashMap<String, TenantRate>,
    /// Budget applied to tenants without an override.
    pub default_budget: TenantBudget,
    /// Per-tenant budget overrides.
    pub tenant_budgets: HashMap<String, TenantBudget>,
    /// Reap a connection that sends nothing for this long.
    pub idle_timeout: Duration,
    /// Reject a connection whose frame stalls mid-send for this long.
    pub frame_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// How long a connection thread waits for its worker reply before
    /// declaring the request lost and closing the connection.
    pub reply_timeout: Duration,
    /// Drain window: RELOAD waits this long for the old epoch to quiesce,
    /// and shutdown waits this long before cancelling in-flight queries.
    pub drain_timeout: Duration,
    /// Poll granularity for connection reads and shutdown checks.
    pub tick: Duration,
    /// Shared answer-cache geometry (capacity, byte cap, admission).
    pub cache: SharedCacheConfig,
    /// Page-cache budget for paged snapshots (per worker), `None` for the
    /// format default.
    pub paged_cache_bytes: Option<u64>,
    /// Refuse a boot snapshot that would degrade components (RELOAD is
    /// always strict; boot defaults to lenient so a partially damaged
    /// file can still come up serving, reported through STATS).
    pub strict_boot: bool,
}

impl ServeConfig {
    pub fn new(addr: impl Into<String>, snapshot: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: addr.into(),
            snapshot: snapshot.into(),
            workers: 4,
            max_conns: 256,
            queue_cap: 256,
            tenant_backlog: 32,
            quantum: 4,
            policy: TrustPolicy::Proven,
            default_rate: None,
            tenant_rates: HashMap::new(),
            default_budget: TenantBudget::default(),
            tenant_budgets: HashMap::new(),
            idle_timeout: Duration::from_secs(30),
            frame_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            reply_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(5),
            tick: Duration::from_millis(50),
            cache: SharedCacheConfig::default(),
            paged_cache_bytes: None,
            strict_boot: false,
        }
    }
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum StartError {
    /// Bind/listen failure.
    Io(io::Error),
    /// The boot snapshot failed validation.
    Snapshot(StoreError),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Io(e) => write!(f, "serve bind failed: {e}"),
            StartError::Snapshot(e) => write!(f, "boot snapshot failed validation: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Monotonic serve-side counters, all relaxed (`--stats` is
        /// advisory, not a synchronization point).
        #[derive(Default)]
        pub(crate) struct Counters {
            $($(#[$doc])* pub $name: AtomicU64,)*
        }

        impl Counters {
            fn render_json(&self) -> String {
                let mut s = String::new();
                $(
                    if !s.is_empty() { s.push(','); }
                    s.push_str(concat!("\"", stringify!($name), "\":"));
                    s.push_str(&self.$name.load(Ordering::Relaxed).to_string());
                )*
                s
            }
        }
    };
}

counters! {
    /// Connections accepted.
    accepted,
    /// Connections shed at accept (`max_conns`).
    conn_shed,
    /// Well-framed requests decoded (all verbs).
    requests,
    /// QUERY verbs admitted for evaluation.
    queries,
    /// Successful answers returned (cache hits included).
    answers,
    /// Queries shed by queue caps (`Overloaded`).
    shed_overload,
    /// Queries shed by token buckets (`RateLimited`).
    shed_rate,
    /// Budget trips (steps / result nodes / deadline).
    budget_trips,
    /// Queries cancelled by client disconnect or shutdown.
    cancelled,
    /// Malformed frames / verbs / fields.
    protocol_errors,
    /// Unparsable path expressions.
    path_errors,
    /// Store-level failures answered typed (open/read errors).
    store_errors,
    /// Page-integrity poison events surfaced as typed errors.
    poison_trips,
    /// Successful hot swaps.
    reloads_ok,
    /// RELOADs refused by validation (old epoch kept serving).
    reloads_rejected,
    /// Idle connections reaped.
    idle_reaped,
    /// Stalled partial frames rejected (slow-loris shape).
    slow_frames,
    /// Worker replies that missed `reply_timeout`.
    reply_timeouts,
}

fn inc(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// One admitted query travelling from connection thread to worker.
struct Job {
    tenant: String,
    expr: String,
    reply: mpsc::SyncSender<Response>,
    probe: CancelProbe,
}

/// A worker's private handle onto a paged snapshot (the page cache is
/// single-threaded by design, so each worker opens its own).
struct PagedView {
    snap_epoch: u64,
    graph: LazyGraph,
    star: PagedMStar,
    cache: Rc<PageCache>,
}

pub(crate) struct Shared {
    cfg: ServeConfig,
    slot: SnapshotSlot,
    queue: DrrQueue<Job>,
    buckets: BucketSet,
    cache: Arc<SharedAnswerCache>,
    stats: Counters,
    shutdown: AtomicBool,
    /// Raised only if the drain deadline passes with queries still
    /// running: trips every in-flight budget at its next poll.
    cancel_all: Arc<AtomicBool>,
    conns: AtomicUsize,
    in_flight: AtomicUsize,
    reload_lock: Mutex<()>,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for job in self.queue.close() {
            let _ = job.reply.send(Response::Error(ServeError::ShuttingDown));
        }
    }

    fn rate_for(&self, tenant: &str) -> Option<TenantRate> {
        self.cfg
            .tenant_rates
            .get(tenant)
            .copied()
            .or(self.cfg.default_rate)
    }

    fn budget_for(&self, tenant: &str, probe: CancelProbe) -> QueryBudget {
        let tb = self
            .cfg
            .tenant_budgets
            .get(tenant)
            .copied()
            .unwrap_or(self.cfg.default_budget);
        QueryBudget {
            max_steps: tb.max_steps,
            max_result_nodes: tb.max_result_nodes,
            deadline: tb
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            cancel: Some(Arc::clone(&self.cancel_all)),
            probe: Some(probe),
        }
    }

    fn stats_json(&self) -> String {
        let snap = self.slot.pin();
        let degraded: Vec<String> = snap.degraded.iter().map(|d| d.to_string()).collect();
        let c = self.cache.stats();
        format!(
            "{{\"epoch\":{},\"kind\":\"{}\",\"version\":{},\"degraded_components\":[{}],\
             \"healthy\":{},\"conns\":{},\"queue\":{},\"counters\":{{{}}},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"bypass_large\":{},\
             \"bypass_cheap\":{},\"evictions\":{},\"entries\":{},\"bytes\":{}}}}}",
            snap.epoch,
            snap.kind,
            snap.version,
            degraded.join(","),
            snap.degraded.is_empty(),
            self.conns.load(Ordering::SeqCst),
            self.queue.len(),
            self.stats.render_json(),
            c.hits,
            c.misses,
            c.insertions,
            c.bypass_large,
            c.bypass_cheap,
            c.evictions,
            c.entries,
            c.bytes,
        )
    }
}

/// A running daemon. Dropping it without [`Server::stop`] begins a
/// shutdown but does not wait for it.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Final statistics from a stopped server.
pub struct ServerReport {
    /// The same JSON the STATS verb serves, snapshotted at exit.
    pub stats_json: String,
}

impl Server {
    /// Validates the boot snapshot, binds, and spawns the acceptor and
    /// worker pool. Returns once the socket is accepting.
    pub fn start(cfg: ServeConfig) -> Result<Server, StartError> {
        let snap = Snapshot::load(
            cfg.snapshot.clone(),
            1,
            cfg.strict_boot,
            cfg.paged_cache_bytes,
        )
        .map_err(StartError::Snapshot)?;
        let listener = TcpListener::bind(&cfg.addr).map_err(StartError::Io)?;
        listener.set_nonblocking(true).map_err(StartError::Io)?;
        let addr = listener.local_addr().map_err(StartError::Io)?;
        let shared = Arc::new(Shared {
            queue: DrrQueue::new(cfg.queue_cap, cfg.tenant_backlog, cfg.quantum),
            buckets: BucketSet::new(),
            cache: Arc::new(SharedAnswerCache::new(cfg.cache.clone())),
            stats: Counters::default(),
            shutdown: AtomicBool::new(false),
            cancel_all: Arc::new(AtomicBool::new(false)),
            conns: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            reload_lock: Mutex::new(()),
            slot: SnapshotSlot::new(snap),
            cfg,
        });
        let mut workers = Vec::with_capacity(shared.cfg.workers.max(1));
        for i in 0..shared.cfg.workers.max(1) {
            let sh = Arc::clone(&shared);
            let h = thread::Builder::new()
                .name(format!("mrx-worker-{i}"))
                .spawn(move || worker_loop(sh))
                .map_err(StartError::Io)?;
            workers.push(h);
        }
        let sh = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("mrx-acceptor".into())
            .spawn(move || acceptor_loop(sh, listener))
            .map_err(StartError::Io)?;
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The STATS JSON, same as the wire verb.
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// Flags the server to stop accepting and begin draining. Idempotent;
    /// also reachable through the SHUTDOWN verb.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether a shutdown has been requested (verb or signal relay).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Begins shutdown and waits for the drain: in-flight queries get
    /// `drain_timeout` to finish before being cancelled, workers and the
    /// acceptor are joined, connections are reaped.
    pub fn stop(mut self) -> ServerReport {
        self.shared.begin_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let deadline = Instant::now() + self.shared.cfg.drain_timeout;
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        if self.shared.in_flight.load(Ordering::SeqCst) > 0 {
            self.shared.cancel_all.store(true, Ordering::SeqCst);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let deadline = Instant::now() + self.shared.cfg.drain_timeout;
        while self.shared.conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        ServerReport {
            stats_json: self.shared.stats_json(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
    }
}

fn acceptor_loop(sh: Arc<Shared>, listener: TcpListener) {
    loop {
        if sh.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                inc(&sh.stats.accepted);
                let _ = stream.set_nonblocking(false);
                if sh.conns.load(Ordering::SeqCst) >= sh.cfg.max_conns {
                    inc(&sh.stats.conn_shed);
                    shed_connection(stream, &sh.cfg);
                    continue;
                }
                sh.conns.fetch_add(1, Ordering::SeqCst);
                let sh2 = Arc::clone(&sh);
                let spawned = thread::Builder::new()
                    .name("mrx-conn".into())
                    .spawn(move || conn_loop(sh2, stream));
                if spawned.is_err() {
                    // Thread exhaustion is an overload condition too.
                    sh.conns.fetch_sub(1, Ordering::SeqCst);
                    inc(&sh.stats.conn_shed);
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(sh.cfg.tick.min(Duration::from_millis(10)));
            }
            Err(_) => thread::sleep(sh.cfg.tick),
        }
    }
}

/// Best-effort typed rejection for a connection shed at accept time
/// (req_id 0: the client has not spoken yet).
fn shed_connection(mut stream: TcpStream, cfg: &ServeConfig) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let payload = encode_response(
        0,
        &Response::Error(ServeError::Overloaded {
            retry_after_ms: 100,
        }),
    );
    let _ = write_frame(&mut stream, &payload);
}

/// Outcome of one bounded connection read.
enum ConnRead {
    Frame(Vec<u8>),
    /// Clean close between frames.
    Eof,
    /// Nothing arrived within `idle_timeout`.
    Idle,
    /// A partial frame stalled past `frame_timeout` (slow-loris shape).
    Slow,
    /// Declared length exceeds the request cap (rejected pre-allocation).
    TooLarge(u32),
    /// Server shutdown observed between reads.
    Shutdown,
    /// Transport error or mid-frame close.
    Broken,
}

fn read_conn_frame(stream: &mut TcpStream, sh: &Shared) -> ConnRead {
    let start = Instant::now();
    let mut got_any = false;
    let mut head = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        if sh.shutdown.load(Ordering::SeqCst) {
            return ConnRead::Shutdown;
        }
        match stream.read(&mut head[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ConnRead::Eof
                } else {
                    ConnRead::Broken
                }
            }
            Ok(n) => {
                filled += n;
                got_any = true;
            }
            Err(ref e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let elapsed = start.elapsed();
                if !got_any && elapsed >= sh.cfg.idle_timeout {
                    return ConnRead::Idle;
                }
                if got_any && elapsed >= sh.cfg.frame_timeout {
                    return ConnRead::Slow;
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ConnRead::Broken,
        }
    }
    let len = u32::from_le_bytes(head);
    if len > MAX_REQUEST_FRAME {
        return ConnRead::TooLarge(len);
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        if sh.shutdown.load(Ordering::SeqCst) {
            return ConnRead::Shutdown;
        }
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return ConnRead::Broken,
            Ok(n) => filled += n,
            Err(ref e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if start.elapsed() >= sh.cfg.frame_timeout {
                    return ConnRead::Slow;
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ConnRead::Broken,
        }
    }
    ConnRead::Frame(payload)
}

fn send(stream: &mut TcpStream, req_id: u32, resp: &Response) -> io::Result<()> {
    let payload = encode_response(req_id, resp);
    write_frame(stream, &payload)
}

fn conn_loop(sh: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(sh.cfg.tick));
    let _ = stream.set_write_timeout(Some(sh.cfg.write_timeout));
    loop {
        match read_conn_frame(&mut stream, &sh) {
            ConnRead::Frame(payload) => match decode_request(&payload) {
                Ok((req_id, req)) => {
                    inc(&sh.stats.requests);
                    if !handle_request(&sh, &mut stream, req_id, req) {
                        break;
                    }
                }
                Err((req_id, e)) => {
                    // The framing may be out of sync with the peer; answer
                    // typed, then close rather than misparse what follows.
                    inc(&sh.stats.protocol_errors);
                    let _ = send(&mut stream, req_id, &Response::Error(e));
                    break;
                }
            },
            ConnRead::Eof | ConnRead::Shutdown | ConnRead::Broken => break,
            ConnRead::Idle => {
                inc(&sh.stats.idle_reaped);
                break;
            }
            ConnRead::Slow => {
                inc(&sh.stats.slow_frames);
                inc(&sh.stats.protocol_errors);
                let _ = send(
                    &mut stream,
                    0,
                    &Response::Error(ServeError::Protocol(
                        "partial frame stalled past the frame deadline".into(),
                    )),
                );
                break;
            }
            ConnRead::TooLarge(n) => {
                inc(&sh.stats.protocol_errors);
                let _ = send(
                    &mut stream,
                    0,
                    &Response::Error(ServeError::Protocol(format!(
                        "frame of {n} bytes exceeds the {MAX_REQUEST_FRAME}-byte request cap"
                    ))),
                );
                break;
            }
        }
    }
    sh.conns.fetch_sub(1, Ordering::SeqCst);
}

/// Handles one decoded request; returns whether to keep the connection.
fn handle_request(sh: &Arc<Shared>, stream: &mut TcpStream, req_id: u32, req: Request) -> bool {
    match req {
        Request::Ping => send(stream, req_id, &Response::Text("pong".into())).is_ok(),
        Request::Stats => send(stream, req_id, &Response::Text(sh.stats_json())).is_ok(),
        Request::Shutdown => {
            let _ = send(
                stream,
                req_id,
                &Response::Text("{\"draining\":true}".into()),
            );
            sh.begin_shutdown();
            false
        }
        Request::Reload { path } => {
            let resp = do_reload(sh, &path);
            send(stream, req_id, &resp).is_ok()
        }
        Request::Query { tenant, expr } => {
            let (resp, keep) = admit_query(sh, stream, tenant, expr);
            send(stream, req_id, &resp).is_ok() && keep
        }
    }
}

/// Runs the admission pipeline for one query and waits for its answer.
/// Returns the response plus whether the connection is still coherent.
fn admit_query(
    sh: &Arc<Shared>,
    stream: &TcpStream,
    tenant: String,
    expr: String,
) -> (Response, bool) {
    if sh.shutdown.load(Ordering::SeqCst) {
        return (Response::Error(ServeError::ShuttingDown), false);
    }
    if let Some(limit) = sh.rate_for(&tenant) {
        if let Err(retry_after_ms) = sh.buckets.take(&tenant, limit, Instant::now()) {
            inc(&sh.stats.shed_rate);
            return (
                Response::Error(ServeError::RateLimited { retry_after_ms }),
                true,
            );
        }
    }
    inc(&sh.stats.queries);
    let probe = match stream.try_clone() {
        Ok(s) => disconnect_probe(s),
        Err(_) => CancelProbe::new(|| true),
    };
    let (reply, rx) = mpsc::sync_channel(1);
    let job = Job {
        tenant: tenant.clone(),
        expr,
        reply,
        probe,
    };
    match sh.queue.push(&tenant, job) {
        Ok(()) => match rx.recv_timeout(sh.cfg.reply_timeout) {
            Ok(resp) => (resp, true),
            Err(_) => {
                // The worker still holds the reply sender; closing the
                // connection (keep = false) makes its disconnect probe
                // cancel the stuck query.
                inc(&sh.stats.reply_timeouts);
                (
                    Response::Error(ServeError::Server(
                        "query did not complete within the reply window".into(),
                    )),
                    false,
                )
            }
        },
        Err((Shed::Closed, _)) => (Response::Error(ServeError::ShuttingDown), false),
        Err((_, _)) => {
            inc(&sh.stats.shed_overload);
            // Scale the hint with backlog so clients back off harder the
            // deeper the overload.
            let retry_after_ms = 20 + (sh.queue.len() as u32) * 5 / (sh.cfg.workers.max(1) as u32);
            (
                Response::Error(ServeError::Overloaded { retry_after_ms }),
                true,
            )
        }
    }
}

/// Detects a vanished client from the worker side. Safe because each
/// connection has at most one outstanding request: while the worker
/// evaluates, the connection thread is parked on the reply channel and
/// nobody else touches the socket.
fn disconnect_probe(stream: TcpStream) -> CancelProbe {
    CancelProbe::new(move || {
        if stream.set_nonblocking(true).is_err() {
            return true;
        }
        let mut byte = [0u8; 1];
        let r = stream.peek(&mut byte);
        let _ = stream.set_nonblocking(false);
        match r {
            Ok(0) => true,  // orderly close
            Ok(_) => false, // pipelined bytes waiting: alive
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => false,
            Err(_) => true, // reset / transport gone
        }
    })
}

/// Validates `path` fully, then hot-swaps. Serialized so concurrent
/// RELOADs cannot interleave epochs; queries are never blocked by the
/// validation (they run against the old epoch until the instant of the
/// swap).
fn do_reload(sh: &Arc<Shared>, path: &str) -> Response {
    let _guard = sh.reload_lock.lock().unwrap_or_else(|e| e.into_inner());
    if sh.shutdown.load(Ordering::SeqCst) {
        return Response::Error(ServeError::ShuttingDown);
    }
    let next_epoch = sh.slot.epoch() + 1;
    let t0 = Instant::now();
    match Snapshot::load(
        PathBuf::from(path),
        next_epoch,
        true, // RELOAD is always strict: a replacement must be pristine
        sh.cfg.paged_cache_bytes,
    ) {
        Err(e) => {
            inc(&sh.stats.reloads_rejected);
            Response::Error(ServeError::ReloadRejected(e.to_string()))
        }
        Ok(snap) => {
            let (version, kind) = (snap.version, snap.kind);
            let validate_ms = t0.elapsed().as_millis();
            let old = sh.slot.swap(snap);
            // Epoch fence: wait for every query pinning the old snapshot
            // to finish before reporting the swap complete.
            let deadline = Instant::now() + sh.cfg.drain_timeout;
            let mut drained = true;
            while Arc::strong_count(&old) > 1 {
                if Instant::now() >= deadline {
                    drained = false;
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
            let purged = sh.cache.purge_other_generations(next_epoch);
            inc(&sh.stats.reloads_ok);
            Response::Text(format!(
                "{{\"epoch\":{next_epoch},\"version\":{version},\"kind\":\"{kind}\",\
                 \"drained\":{drained},\"purged_answers\":{purged},\"validate_ms\":{validate_ms}}}"
            ))
        }
    }
}

fn worker_loop(sh: Arc<Shared>) {
    let mut scratch = QueryScratch::new();
    let mut view: Option<PagedView> = None;
    loop {
        match sh.queue.pop(sh.cfg.tick) {
            Popped::Item(job) => {
                sh.in_flight.fetch_add(1, Ordering::SeqCst);
                let resp = eval_job(&sh, &mut scratch, &mut view, &job);
                if matches!(resp, Response::Answer { .. }) {
                    inc(&sh.stats.answers);
                }
                let _ = job.reply.send(resp);
                sh.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            Popped::Timeout => {}
            Popped::Closed => return,
        }
    }
}

fn answer_response(serving_epoch: u64, a: &Answer) -> Response {
    Response::Answer {
        epoch: serving_epoch,
        index_nodes: a.cost.index_nodes,
        data_nodes: a.cost.data_nodes,
        validated: a.validated,
        nodes: a.nodes.iter().map(|n| n.0).collect(),
    }
}

fn open_view(snap: &Snapshot, cache_bytes: Option<u64>) -> Result<PagedView, StoreError> {
    let file = match cache_bytes {
        Some(b) => PagedFile::open_with(&snap.path, b)?,
        None => PagedFile::open(&snap.path)?,
    };
    let (graph, star, cache) = file.into_parts()?;
    Ok(PagedView {
        snap_epoch: snap.epoch,
        graph,
        star,
        cache,
    })
}

/// Evaluates one admitted query against the pinned snapshot. Every
/// failure mode returns a typed error; partial answers are impossible
/// (an error discards the whole evaluation).
fn eval_job(
    sh: &Arc<Shared>,
    scratch: &mut QueryScratch,
    view: &mut Option<PagedView>,
    job: &Job,
) -> Response {
    let snap = sh.slot.pin();
    let expr = match PathExpr::parse(&job.expr) {
        Ok(e) => e,
        Err(e) => {
            inc(&sh.stats.path_errors);
            return Response::Error(ServeError::Path(e.to_string()));
        }
    };
    // Shared answer cache: keyed by expression, valid only for this exact
    // (serving epoch, index epoch) pair, so a hot swap can never serve a
    // stale answer.
    if let Some((_cp, ans)) = sh.cache.get(&expr, snap.epoch, snap.index_epoch) {
        return answer_response(snap.epoch, &ans);
    }
    let budget = sh.budget_for(&job.tenant, job.probe.clone());
    let mut meter = budget.meter();
    let result = match &snap.data {
        SnapData::Frozen(g, star) => {
            let cp = expr.compile(g);
            star.query_top_down_budgeted(g, &cp, sh.cfg.policy, scratch, &mut meter)
                .map(|a| (cp, a))
        }
        SnapData::Compressed(g, star) => {
            let cp = expr.compile(g);
            star.query_top_down_budgeted(g, &cp, sh.cfg.policy, scratch, &mut meter)
                .map(|a| (cp, a))
        }
        SnapData::Paged { cache_bytes } => {
            let stale = match view {
                Some(v) => v.snap_epoch != snap.epoch,
                None => true,
            };
            if stale {
                *view = None; // drop the old epoch's handle before opening
                match open_view(&snap, *cache_bytes) {
                    Ok(v) => *view = Some(v),
                    Err(e) => {
                        inc(&sh.stats.store_errors);
                        return Response::Error(ServeError::Store(e.to_string()));
                    }
                }
            }
            match view {
                Some(v) => {
                    let cp = expr.compile(&v.graph);
                    let r = v.star.query_top_down_budgeted(
                        &v.graph,
                        &cp,
                        sh.cfg.policy,
                        scratch,
                        &mut meter,
                    );
                    // A page-integrity failure poisons the cache rather
                    // than panicking; surface it as a typed error and
                    // never admit the tainted answer.
                    if let Some(e) = v.cache.take_poison() {
                        inc(&sh.stats.poison_trips);
                        inc(&sh.stats.store_errors);
                        return Response::Error(ServeError::Store(format!(
                            "page integrity failure: {e}"
                        )));
                    }
                    r.map(|a| (cp, a))
                }
                None => {
                    return Response::Error(ServeError::Server("paged view unavailable".into()))
                }
            }
        }
    };
    match result {
        Ok((cp, ans)) => {
            sh.cache
                .admit(&expr, snap.epoch, snap.index_epoch, &cp, &ans);
            answer_response(snap.epoch, &ans)
        }
        Err(be) => {
            if be.kind == BudgetKind::Cancelled {
                inc(&sh.stats.cancelled);
            } else {
                inc(&sh.stats.budget_trips);
            }
            Response::Error(ServeError::Budget {
                kind: be.kind,
                index_nodes: be.index_nodes,
                data_nodes: be.data_nodes,
            })
        }
    }
}
