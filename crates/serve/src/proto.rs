//! The `mrx serve` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `u32 LE payload_len` followed by `payload_len` bytes of
//! payload; every payload starts with `u32 LE req_id | u8 verb_or_status`.
//! Request frames are small by construction — tenant names, path
//! expressions, and snapshot paths are all bounded — and the declared
//! length is checked against [`MAX_REQUEST_FRAME`] **before** any buffer is
//! allocated, so a hostile length prefix cannot make the server allocate.
//! Responses carry node-id lists and may be larger (bounded by
//! [`MAX_RESPONSE_FRAME`], which clients enforce symmetrically).
//!
//! Malformed input of any kind — bad verb, oversized field, truncated
//! body, non-UTF-8 text — decodes to a typed [`ServeError::Protocol`],
//! never a panic: every read is bounds-checked and every allocation is
//! capped first.

use std::fmt;
use std::io::{self, Read, Write};

use mrx_error::BudgetKind;

/// Hard cap on request payloads (a request is a verb plus bounded
/// strings; 16 KiB is ~4x the largest legal request).
pub const MAX_REQUEST_FRAME: u32 = 16 * 1024;
/// Hard cap on response payloads (a full-corpus node list plus headers).
pub const MAX_RESPONSE_FRAME: u32 = 64 * 1024 * 1024;
/// Longest accepted tenant name, in bytes.
pub const MAX_TENANT_BYTES: usize = 64;
/// Longest accepted path expression, in bytes.
pub const MAX_EXPR_BYTES: usize = 4096;
/// Longest accepted snapshot path (RELOAD), in bytes.
pub const MAX_PATH_BYTES: usize = 4096;

const VERB_QUERY: u8 = 1;
const VERB_STATS: u8 = 2;
const VERB_RELOAD: u8 = 3;
const VERB_PING: u8 = 4;
const VERB_SHUTDOWN: u8 = 5;

const STATUS_ANSWER: u8 = 0;
const STATUS_TEXT: u8 = 1;
const STATUS_PROTOCOL: u8 = 16;
const STATUS_OVERLOADED: u8 = 17;
const STATUS_RATE_LIMITED: u8 = 18;
const STATUS_BUDGET: u8 = 19;
const STATUS_STORE: u8 = 20;
const STATUS_PATH: u8 = 21;
const STATUS_SERVER: u8 = 22;
const STATUS_SHUTTING_DOWN: u8 = 23;
const STATUS_RELOAD_REJECTED: u8 = 24;

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Evaluate `expr` on behalf of `tenant`.
    Query { tenant: String, expr: String },
    /// Health/stats probe: counters, epoch, degraded components.
    Stats,
    /// Validate `path` fully and hot-swap to it (or roll back).
    Reload { path: String },
    /// Liveness probe.
    Ping,
    /// Begin a graceful drain-and-stop.
    Shutdown,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A complete answer, stamped with the *serving epoch* it was computed
    /// under (bumped by every successful RELOAD).
    Answer {
        epoch: u64,
        index_nodes: u64,
        data_nodes: u64,
        validated: bool,
        nodes: Vec<u32>,
    },
    /// Verb-specific text (STATS JSON, RELOAD summary JSON, `pong`, ...).
    Text(String),
    /// A typed failure. The server never sends partial answers: any
    /// mid-evaluation failure surfaces here instead.
    Error(ServeError),
}

/// Every way the server refuses or fails a request — the wire-level error
/// taxonomy. Refusals (`Overloaded`, `RateLimited`) carry a retry-after
/// hint; resource trips carry the partial cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request frame was malformed (bad verb, oversized or truncated
    /// field, bogus length). The connection is closed after this.
    Protocol(String),
    /// Load shed: the bounded request queue (global or per-tenant) is
    /// full. Retry after the hinted backoff.
    Overloaded { retry_after_ms: u32 },
    /// The tenant's token bucket is empty. Retry after the hinted backoff.
    RateLimited { retry_after_ms: u32 },
    /// The query tripped its tenant's resource budget (steps, result
    /// size, deadline, or disconnect cancellation).
    Budget {
        kind: BudgetKind,
        index_nodes: u64,
        data_nodes: u64,
    },
    /// The snapshot failed underneath the query (page checksum poison,
    /// unreadable section) in a way that cannot be degraded soundly.
    Store(String),
    /// The path expression failed to parse or compile.
    Path(String),
    /// Any other server-side failure.
    Server(String),
    /// The server is draining; no new queries are accepted.
    ShuttingDown,
    /// RELOAD validation failed; the previous snapshot is still serving.
    ReloadRejected(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded (retry after {retry_after_ms} ms)")
            }
            ServeError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms} ms)")
            }
            ServeError::Budget {
                kind,
                index_nodes,
                data_nodes,
            } => write!(
                f,
                "budget exhausted ({kind:?}) after {index_nodes} index + {data_nodes} data visits"
            ),
            ServeError::Store(m) => write!(f, "store error: {m}"),
            ServeError::Path(m) => write!(f, "path error: {m}"),
            ServeError::Server(m) => write!(f, "server error: {m}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::ReloadRejected(m) => write!(f, "reload rejected: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

fn budget_kind_code(k: BudgetKind) -> u8 {
    match k {
        BudgetKind::Steps => 0,
        BudgetKind::ResultNodes => 1,
        BudgetKind::Deadline => 2,
        BudgetKind::Cancelled => 3,
    }
}

fn budget_kind_from(code: u8) -> Result<BudgetKind, ServeError> {
    match code {
        0 => Ok(BudgetKind::Steps),
        1 => Ok(BudgetKind::ResultNodes),
        2 => Ok(BudgetKind::Deadline),
        3 => Ok(BudgetKind::Cancelled),
        other => Err(bad(format!("unknown budget kind {other}"))),
    }
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::Protocol(msg.into())
}

/// A bounds-checked cursor over one payload. Every accessor fails typed on
/// truncation instead of slicing out of range.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad(format!("truncated {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ServeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, ServeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ServeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ServeError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str_bounded(&mut self, len: usize, max: usize, what: &str) -> Result<String, ServeError> {
        if len > max {
            return Err(bad(format!("{what} exceeds {max} bytes ({len})")));
        }
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| bad(format!("{what} is not UTF-8")))
    }

    fn finish(&self, what: &str) -> Result<(), ServeError> {
        if self.pos != self.buf.len() {
            return Err(bad(format!(
                "{what} has {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_str_u16(out: &mut Vec<u8>, s: &str, max: usize) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(max).min(u16::MAX as usize);
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..n]);
}

/// Encodes a request payload (no length prefix — see [`write_frame`]).
pub fn encode_request(req_id: u32, req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&req_id.to_le_bytes());
    match req {
        Request::Query { tenant, expr } => {
            out.push(VERB_QUERY);
            let t = tenant.as_bytes();
            let tn = t.len().min(MAX_TENANT_BYTES).min(u8::MAX as usize);
            out.push(tn as u8);
            out.extend_from_slice(&t[..tn]);
            put_str_u16(&mut out, expr, MAX_EXPR_BYTES);
        }
        Request::Stats => out.push(VERB_STATS),
        Request::Reload { path } => {
            out.push(VERB_RELOAD);
            put_str_u16(&mut out, path, MAX_PATH_BYTES);
        }
        Request::Ping => out.push(VERB_PING),
        Request::Shutdown => out.push(VERB_SHUTDOWN),
    }
    out
}

/// Decodes a request payload. On success returns `(req_id, request)`; on
/// failure returns the request id that could be salvaged (0 if even that
/// was truncated) so the error response can still be correlated.
pub fn decode_request(payload: &[u8]) -> Result<(u32, Request), (u32, ServeError)> {
    let salvage_id = if payload.len() >= 4 {
        u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]])
    } else {
        0
    };
    decode_request_inner(payload).map_err(|e| (salvage_id, e))
}

fn decode_request_inner(payload: &[u8]) -> Result<(u32, Request), ServeError> {
    let mut c = Cursor::new(payload);
    let req_id = c.u32("request header")?;
    let verb = c.u8("verb")?;
    let req = match verb {
        VERB_QUERY => {
            let tn = c.u8("tenant length")? as usize;
            let tenant = c.str_bounded(tn, MAX_TENANT_BYTES, "tenant")?;
            let en = c.u16("expr length")? as usize;
            let expr = c.str_bounded(en, MAX_EXPR_BYTES, "expr")?;
            Request::Query { tenant, expr }
        }
        VERB_STATS => Request::Stats,
        VERB_RELOAD => {
            let pn = c.u16("path length")? as usize;
            let path = c.str_bounded(pn, MAX_PATH_BYTES, "path")?;
            Request::Reload { path }
        }
        VERB_PING => Request::Ping,
        VERB_SHUTDOWN => Request::Shutdown,
        other => return Err(bad(format!("unknown verb {other}"))),
    };
    c.finish("request")?;
    Ok((req_id, req))
}

/// Encodes a response payload (no length prefix — see [`write_frame`]).
pub fn encode_response(req_id: u32, resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&req_id.to_le_bytes());
    match resp {
        Response::Answer {
            epoch,
            index_nodes,
            data_nodes,
            validated,
            nodes,
        } => {
            out.push(STATUS_ANSWER);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&index_nodes.to_le_bytes());
            out.extend_from_slice(&data_nodes.to_le_bytes());
            out.push(u8::from(*validated));
            out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
            out.reserve(nodes.len() * 4);
            for n in nodes {
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        Response::Text(s) => {
            out.push(STATUS_TEXT);
            let bytes = s.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        Response::Error(e) => match e {
            ServeError::Protocol(m) => {
                out.push(STATUS_PROTOCOL);
                put_str_u16(&mut out, m, u16::MAX as usize);
            }
            ServeError::Overloaded { retry_after_ms } => {
                out.push(STATUS_OVERLOADED);
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            ServeError::RateLimited { retry_after_ms } => {
                out.push(STATUS_RATE_LIMITED);
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            ServeError::Budget {
                kind,
                index_nodes,
                data_nodes,
            } => {
                out.push(STATUS_BUDGET);
                out.push(budget_kind_code(*kind));
                out.extend_from_slice(&index_nodes.to_le_bytes());
                out.extend_from_slice(&data_nodes.to_le_bytes());
            }
            ServeError::Store(m) => {
                out.push(STATUS_STORE);
                put_str_u16(&mut out, m, u16::MAX as usize);
            }
            ServeError::Path(m) => {
                out.push(STATUS_PATH);
                put_str_u16(&mut out, m, u16::MAX as usize);
            }
            ServeError::Server(m) => {
                out.push(STATUS_SERVER);
                put_str_u16(&mut out, m, u16::MAX as usize);
            }
            ServeError::ShuttingDown => out.push(STATUS_SHUTTING_DOWN),
            ServeError::ReloadRejected(m) => {
                out.push(STATUS_RELOAD_REJECTED);
                put_str_u16(&mut out, m, u16::MAX as usize);
            }
        },
    }
    out
}

/// Decodes a response payload into `(req_id, response)`.
pub fn decode_response(payload: &[u8]) -> Result<(u32, Response), ServeError> {
    let mut c = Cursor::new(payload);
    let req_id = c.u32("response header")?;
    let status = c.u8("status")?;
    let resp = match status {
        STATUS_ANSWER => {
            let epoch = c.u64("epoch")?;
            let index_nodes = c.u64("index cost")?;
            let data_nodes = c.u64("data cost")?;
            let validated = c.u8("validated flag")? != 0;
            let n = c.u32("node count")? as usize;
            // Bound before allocating: the remaining payload must actually
            // contain n ids.
            let raw = c.take(n.saturating_mul(4), "node list")?;
            let mut nodes = Vec::with_capacity(n);
            for ch in raw.chunks_exact(4) {
                nodes.push(u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]));
            }
            Response::Answer {
                epoch,
                index_nodes,
                data_nodes,
                validated,
                nodes,
            }
        }
        STATUS_TEXT => {
            let n = c.u32("text length")? as usize;
            Response::Text(c.str_bounded(n, MAX_RESPONSE_FRAME as usize, "text")?)
        }
        STATUS_PROTOCOL => {
            let n = c.u16("message length")? as usize;
            Response::Error(ServeError::Protocol(c.str_bounded(
                n,
                u16::MAX as usize,
                "message",
            )?))
        }
        STATUS_OVERLOADED => Response::Error(ServeError::Overloaded {
            retry_after_ms: c.u32("retry hint")?,
        }),
        STATUS_RATE_LIMITED => Response::Error(ServeError::RateLimited {
            retry_after_ms: c.u32("retry hint")?,
        }),
        STATUS_BUDGET => {
            let kind = budget_kind_from(c.u8("budget kind")?)?;
            Response::Error(ServeError::Budget {
                kind,
                index_nodes: c.u64("index cost")?,
                data_nodes: c.u64("data cost")?,
            })
        }
        STATUS_STORE => {
            let n = c.u16("message length")? as usize;
            Response::Error(ServeError::Store(c.str_bounded(
                n,
                u16::MAX as usize,
                "message",
            )?))
        }
        STATUS_PATH => {
            let n = c.u16("message length")? as usize;
            Response::Error(ServeError::Path(c.str_bounded(
                n,
                u16::MAX as usize,
                "message",
            )?))
        }
        STATUS_SERVER => {
            let n = c.u16("message length")? as usize;
            Response::Error(ServeError::Server(c.str_bounded(
                n,
                u16::MAX as usize,
                "message",
            )?))
        }
        STATUS_SHUTTING_DOWN => Response::Error(ServeError::ShuttingDown),
        STATUS_RELOAD_REJECTED => {
            let n = c.u16("message length")? as usize;
            Response::Error(ServeError::ReloadRejected(c.str_bounded(
                n,
                u16::MAX as usize,
                "message",
            )?))
        }
        other => return Err(bad(format!("unknown status {other}"))),
    };
    c.finish("response")?;
    Ok((req_id, resp))
}

/// Writes one frame: length prefix plus payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Blocking frame read (client side): length prefix, cap check **before**
/// allocation, then the payload.
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> io::Result<Vec<u8>> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4);
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_len}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Query {
                tenant: "acme".into(),
                expr: "//person/name".into(),
            },
            Request::Stats,
            Request::Reload {
                path: "/tmp/x.mrx".into(),
            },
            Request::Ping,
            Request::Shutdown,
        ];
        for (i, r) in reqs.iter().enumerate() {
            let enc = encode_request(i as u32 + 7, r);
            let (id, back) = decode_request(&enc).unwrap();
            assert_eq!(id, i as u32 + 7);
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Answer {
                epoch: 3,
                index_nodes: 10,
                data_nodes: 20,
                validated: true,
                nodes: vec![1, 5, 9],
            },
            Response::Text("pong".into()),
            Response::Error(ServeError::Protocol("bad".into())),
            Response::Error(ServeError::Overloaded { retry_after_ms: 50 }),
            Response::Error(ServeError::RateLimited {
                retry_after_ms: 120,
            }),
            Response::Error(ServeError::Budget {
                kind: BudgetKind::Deadline,
                index_nodes: 4,
                data_nodes: 2,
            }),
            Response::Error(ServeError::Store("poisoned".into())),
            Response::Error(ServeError::Path("nope".into())),
            Response::Error(ServeError::Server("oops".into())),
            Response::Error(ServeError::ShuttingDown),
            Response::Error(ServeError::ReloadRejected("torn".into())),
        ];
        for (i, r) in resps.iter().enumerate() {
            let enc = encode_response(i as u32, r);
            let (id, back) = decode_response(&enc).unwrap();
            assert_eq!(id, i as u32);
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn malformed_requests_fail_typed() {
        // Empty, truncated header, unknown verb, oversized tenant,
        // truncated expr, trailing garbage.
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![1, 2],
            {
                let mut v = 0u32.to_le_bytes().to_vec();
                v.push(99);
                v
            },
            {
                let mut v = 0u32.to_le_bytes().to_vec();
                v.push(VERB_QUERY);
                v.push(200); // tenant length > MAX_TENANT_BYTES
                v.extend(std::iter::repeat_n(b'a', 200));
                v.extend_from_slice(&1u16.to_le_bytes());
                v.push(b'x');
                v
            },
            {
                let mut v = 0u32.to_le_bytes().to_vec();
                v.push(VERB_QUERY);
                v.push(1);
                v.push(b't');
                v.extend_from_slice(&500u16.to_le_bytes()); // declared > actual
                v.push(b'x');
                v
            },
            {
                let mut v = encode_request(1, &Request::Ping);
                v.push(0xFF);
                v
            },
        ];
        for (i, c) in cases.iter().enumerate() {
            let err = decode_request(c);
            assert!(
                matches!(err, Err((_, ServeError::Protocol(_)))),
                "case {i} must fail typed, got {err:?}"
            );
        }
    }

    #[test]
    fn answer_node_list_is_bounded_by_payload() {
        // A response declaring 1M nodes but carrying none must fail typed,
        // not allocate 4 MB.
        let mut v = 0u32.to_le_bytes().to_vec();
        v.push(STATUS_ANSWER);
        v.extend_from_slice(&0u64.to_le_bytes());
        v.extend_from_slice(&0u64.to_le_bytes());
        v.extend_from_slice(&0u64.to_le_bytes());
        v.push(1);
        v.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(decode_response(&v).is_err());
    }
}
