//! A small blocking client for the serve protocol — used by the CLI
//! verbs, the integration tests, and the benches.
//!
//! One request is outstanding at a time (mirroring the server's
//! per-connection contract). Request ids increment per connection and are
//! checked on receipt; id 0 is accepted as a wildcard because the server
//! uses it for connection-level rejections (accept-time shed, slow-frame
//! kills) that precede or outrun any particular request.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, ServeError,
    MAX_RESPONSE_FRAME,
};

/// A client-side failure: transport, protocol, or a typed server error.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes read timeouts).
    Io(io::Error),
    /// The server answered with a typed error.
    Server(ServeError),
    /// The response itself was malformed or mismatched.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Server(e) => write!(f, "{e}"),
            ClientError::Protocol(m) => write!(f, "malformed response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful answer plus its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Serving epoch the answer was computed under.
    pub epoch: u64,
    /// Index nodes visited.
    pub index_nodes: u64,
    /// Data nodes visited.
    pub data_nodes: u64,
    /// Whether any extent needed validation.
    pub validated: bool,
    /// The answer set (sorted node ids).
    pub nodes: Vec<u32>,
}

/// A blocking connection to one `mrx serve` daemon.
pub struct Client {
    stream: TcpStream,
    next_id: u32,
}

impl Client {
    /// Connects with a 30-second read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_with(addr, Duration::from_secs(30))
    }

    /// Connects with an explicit read timeout (writes share it).
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Client { stream, next_id: 1 })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let payload = encode_request(id, req);
        write_frame(&mut self.stream, &payload)?;
        let resp = read_frame(&mut self.stream, MAX_RESPONSE_FRAME)?;
        let (rid, resp) =
            decode_response(&resp).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if rid != id && rid != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {rid} does not match request id {id}"
            )));
        }
        Ok(resp)
    }

    /// Evaluates `expr` as `tenant`; typed server errors surface as
    /// [`ClientError::Server`].
    pub fn query(&mut self, tenant: &str, expr: &str) -> Result<QueryReply, ClientError> {
        let resp = self.roundtrip(&Request::Query {
            tenant: tenant.to_string(),
            expr: expr.to_string(),
        })?;
        match resp {
            Response::Answer {
                epoch,
                index_nodes,
                data_nodes,
                validated,
                nodes,
            } => Ok(QueryReply {
                epoch,
                index_nodes,
                data_nodes,
                validated,
                nodes,
            }),
            Response::Error(e) => Err(ClientError::Server(e)),
            Response::Text(_) => Err(ClientError::Protocol(
                "text response to a QUERY verb".into(),
            )),
        }
    }

    fn expect_text(&mut self, req: &Request) -> Result<String, ClientError> {
        match self.roundtrip(req)? {
            Response::Text(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Server(e)),
            Response::Answer { .. } => Err(ClientError::Protocol(
                "answer response to a text verb".into(),
            )),
        }
    }

    /// Fetches the health/stats JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.expect_text(&Request::Stats)
    }

    /// Asks the server to validate and hot-swap to `path`; returns the
    /// swap summary JSON on success.
    pub fn reload(&mut self, path: &str) -> Result<String, ClientError> {
        self.expect_text(&Request::Reload {
            path: path.to_string(),
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let s = self.expect_text(&Request::Ping)?;
        if s == "pong" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "unexpected ping reply {s:?}"
            )))
        }
    }

    /// Requests a graceful drain-and-stop.
    pub fn shutdown_server(&mut self) -> Result<String, ClientError> {
        self.expect_text(&Request::Shutdown)
    }

    /// Writes raw bytes straight onto the socket — the fault bench uses
    /// this to inject malformed frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one response frame (paired with [`Client::send_raw`]).
    pub fn read_response_raw(&mut self) -> Result<(u32, Response), ClientError> {
        let payload = read_frame(&mut self.stream, MAX_RESPONSE_FRAME)?;
        decode_response(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }
}
