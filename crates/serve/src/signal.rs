//! Minimal, dependency-free signal handling for clean daemon shutdown.
//!
//! `SIGINT`/`SIGTERM` flip one global `AtomicBool` from an async-signal-safe
//! handler (a single relaxed store — nothing else is legal in a handler).
//! The serve loop polls [`triggered`] and starts its drain when it flips.
//! On non-Unix targets installation is a no-op and the flag simply never
//! fires, so callers need no platform branches.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Raises the flag by hand — lets tests and in-process harnesses exercise
/// the signal path without delivering a real signal.
pub fn raise() {
    TRIGGERED.store(true, Ordering::Relaxed);
}

/// Resets the flag (between tests / successive serve runs in one process).
pub fn reset() {
    TRIGGERED.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
mod platform {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the one thing that is async-signal-safe.
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    /// Installs the flag-setting handler for SIGINT and SIGTERM.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod platform {
    /// No signals to hook on this platform; the flag stays manual.
    pub fn install() {}
}

pub use platform::install;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_raise_and_reset() {
        reset();
        assert!(!triggered());
        raise();
        assert!(triggered());
        reset();
        assert!(!triggered());
    }
}
