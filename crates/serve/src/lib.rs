//! `mrx serve`: a fault-tolerant, multi-tenant query daemon over frozen,
//! compressed, and demand-paged `.mrx` snapshots.
//!
//! The paper's closing direction (§6) is a *disk-resident* M\*(k)-index
//! "loaded into memory selectively and incrementally during query
//! processing". This crate takes the last step from an I/O-efficient
//! structure to an operable service: a long-running daemon that serves
//! frequent path queries to many tenants at once and stays up — and
//! *correct* — through overload, bad input, partial snapshot damage, and
//! live snapshot replacement.
//!
//! Four robustness layers, composable and individually testable:
//!
//! * **Admission control & load shedding** ([`shed`]) — per-tenant token
//!   buckets, a bounded deficit-round-robin queue, and connection caps.
//!   Excess load is refused *typed* ([`ServeError::Overloaded`] /
//!   [`ServeError::RateLimited`], each with a retry-after hint), never
//!   queued unboundedly and never dropped silently. Idle connections are
//!   reaped and stalled partial frames (the slow-loris shape) rejected.
//! * **Per-tenant budgets** — every query runs under a [`QueryBudget`]
//!   (steps / result size / deadline) with a disconnect probe, so a
//!   vanished client cancels its own query instead of burning a worker.
//! * **Graceful degradation** — a boot snapshot with unreadable
//!   components may load lenient, serving those components through the
//!   live `A(i)` rebuild path, and reports them via the STATS health
//!   verb; failures with no sound fallback (page-checksum poison) are
//!   typed errors on that request only. Partial answers are impossible.
//! * **Zero-downtime hot swap** ([`snapshot`]) — RELOAD validates the
//!   replacement fully (checksums + structure, strictly) *before* an
//!   epoch-fenced atomic swap, then drains the old epoch. Torn,
//!   truncated, bit-flipped, or stale-version files are refused while the
//!   old snapshot keeps serving.
//!
//! The wire protocol ([`proto`]) is a dependency-free length-prefixed
//! binary framing with caps checked before allocation; [`client::Client`]
//! speaks it for the CLI, tests, and benches.

pub mod client;
pub mod proto;
pub mod server;
pub mod shed;
pub mod signal;
mod snapshot;

pub use client::{Client, ClientError, QueryReply};
pub use mrx_path::QueryBudget;
pub use proto::{
    Request, Response, ServeError, MAX_EXPR_BYTES, MAX_PATH_BYTES, MAX_REQUEST_FRAME,
    MAX_RESPONSE_FRAME, MAX_TENANT_BYTES,
};
pub use server::{ServeConfig, Server, ServerReport, StartError, TenantBudget};
pub use shed::TenantRate;
