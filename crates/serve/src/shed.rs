//! Admission control: per-tenant token buckets and a bounded
//! deficit-round-robin (DRR) request queue.
//!
//! Two independent gates stand between an accepted connection and a worker
//! thread:
//!
//! 1. **Token buckets** ([`BucketSet`]) bound each tenant's *rate*: a
//!    bucket refills continuously at `rate` tokens/second up to `burst`,
//!    and each query spends one token. An empty bucket yields a typed
//!    `RateLimited` rejection with a retry-after hint computed from the
//!    refill rate — clients can back off precisely instead of guessing.
//!
//! 2. **The DRR queue** ([`DrrQueue`]) bounds *backlog* and enforces
//!    *fairness*: total and per-tenant queue caps shed excess load with a
//!    typed `Overloaded` rejection (never an unbounded queue and never a
//!    silent drop), and workers pop tenants round-robin with a deficit
//!    counter so one chatty tenant cannot starve the rest — a tenant at
//!    the head of the ring serves at most `quantum` requests before the
//!    ring rotates.
//!
//! Both structures are deterministic given a fixed arrival order, which
//! the chaos harness exploits: fairness is asserted, not eyeballed.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Refill rate and burst capacity for one tenant's token bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRate {
    /// Sustained queries per second.
    pub rate: f64,
    /// Bucket capacity (maximum burst).
    pub burst: f64,
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// All tenants' token buckets behind one lock (bucket updates are a few
/// float ops; contention is negligible next to query evaluation).
pub struct BucketSet {
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl Default for BucketSet {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketSet {
    pub fn new() -> Self {
        BucketSet {
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Tries to spend one token from `tenant`'s bucket at `now`. On
    /// failure returns the suggested retry-after in milliseconds (the time
    /// until one full token has refilled).
    pub fn take(&self, tenant: &str, limit: TenantRate, now: Instant) -> Result<(), u32> {
        let mut map = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let b = map.entry(tenant.to_string()).or_insert(Bucket {
            tokens: limit.burst,
            last: now,
        });
        let dt = now.saturating_duration_since(b.last).as_secs_f64();
        b.tokens = (b.tokens + dt * limit.rate).min(limit.burst);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else if limit.rate > 0.0 {
            let ms = ((1.0 - b.tokens) / limit.rate * 1000.0).ceil();
            Err((ms as u32).clamp(1, 60_000))
        } else {
            Err(60_000)
        }
    }
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The global queue cap is reached.
    QueueFull,
    /// This tenant's backlog cap is reached (other tenants still admit).
    TenantFull,
    /// The queue is closed (server draining).
    Closed,
}

/// Result of a blocking pop.
pub enum Popped<T> {
    Item(T),
    /// Nothing arrived within the timeout; the caller should re-check its
    /// shutdown flag and pop again.
    Timeout,
    /// The queue is closed and fully drained.
    Closed,
}

struct DrrState<T> {
    /// Per-tenant FIFO backlogs; a tenant is present iff its backlog is
    /// non-empty.
    queues: HashMap<String, VecDeque<T>>,
    /// Active-tenant ring: the front tenant is being served.
    ring: VecDeque<String>,
    /// Remaining quantum for the tenant at the front of the ring.
    deficit: u32,
    len: usize,
    closed: bool,
}

/// A bounded multi-tenant queue popped in deficit-round-robin order.
pub struct DrrQueue<T> {
    state: Mutex<DrrState<T>>,
    nonempty: Condvar,
    cap: usize,
    tenant_cap: usize,
    quantum: u32,
}

impl<T> DrrQueue<T> {
    /// `cap` bounds the total backlog, `tenant_cap` each tenant's share,
    /// and `quantum` how many consecutive requests one tenant may serve
    /// before the ring rotates.
    pub fn new(cap: usize, tenant_cap: usize, quantum: u32) -> Self {
        DrrQueue {
            state: Mutex::new(DrrState {
                queues: HashMap::new(),
                ring: VecDeque::new(),
                deficit: 0,
                len: 0,
                closed: false,
            }),
            nonempty: Condvar::new(),
            cap: cap.max(1),
            tenant_cap: tenant_cap.max(1),
            quantum: quantum.max(1),
        }
    }

    /// Admits `item` under `tenant`, or returns it with the shed reason so
    /// the caller can send the typed rejection.
    pub fn push(&self, tenant: &str, item: T) -> Result<(), (Shed, T)> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err((Shed::Closed, item));
        }
        if st.len >= self.cap {
            return Err((Shed::QueueFull, item));
        }
        if let Some(q) = st.queues.get(tenant) {
            if q.len() >= self.tenant_cap {
                return Err((Shed::TenantFull, item));
            }
            // `get_mut` would borrow st mutably twice below; re-look up.
        } else {
            st.ring.push_back(tenant.to_string());
        }
        st.queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(item);
        st.len += 1;
        drop(st);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Pops the next item in DRR order, waiting up to `timeout`.
    pub fn pop(&self, timeout: Duration) -> Popped<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(item) = Self::pop_locked(&mut st, self.quantum) {
                return Popped::Item(item);
            }
            if st.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::Timeout;
            }
            let (guard, res) = self
                .nonempty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if res.timed_out() && st.len == 0 && !st.closed {
                return Popped::Timeout;
            }
        }
    }

    fn pop_locked(st: &mut DrrState<T>, quantum: u32) -> Option<T> {
        let tenant = st.ring.front()?.clone();
        if st.deficit == 0 {
            st.deficit = quantum;
        }
        let (item, empty) = {
            let q = st.queues.get_mut(&tenant)?;
            let item = q.pop_front()?;
            (item, q.is_empty())
        };
        st.len -= 1;
        st.deficit -= 1;
        if empty {
            st.queues.remove(&tenant);
            st.ring.pop_front();
            st.deficit = 0;
        } else if st.deficit == 0 {
            st.ring.rotate_left(1);
        }
        Some(item)
    }

    /// Closes the queue and returns everything still backlogged (the
    /// caller answers each with `ShuttingDown`). Waiting poppers wake with
    /// [`Popped::Closed`].
    pub fn close(&self) -> Vec<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        let mut drained = Vec::with_capacity(st.len);
        while let Some(tenant) = st.ring.pop_front() {
            if let Some(q) = st.queues.remove(&tenant) {
                drained.extend(q);
            }
        }
        st.len = 0;
        st.deficit = 0;
        drop(st);
        self.nonempty.notify_all();
        drained
    }

    /// Current backlog length (for retry-after hints and stats).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_limits_and_refills() {
        let set = BucketSet::new();
        let limit = TenantRate {
            rate: 10.0,
            burst: 2.0,
        };
        let t0 = Instant::now();
        assert!(set.take("a", limit, t0).is_ok());
        assert!(set.take("a", limit, t0).is_ok());
        let retry = set.take("a", limit, t0).unwrap_err();
        assert!((1..=200).contains(&retry), "retry hint {retry} off");
        // After 150ms at 10/s, 1.5 tokens refilled.
        assert!(set
            .take("a", limit, t0 + Duration::from_millis(150))
            .is_ok());
        // A different tenant has its own bucket.
        assert!(set.take("b", limit, t0).is_ok());
    }

    #[test]
    fn drr_interleaves_tenants() {
        let q: DrrQueue<(&str, u32)> = DrrQueue::new(100, 50, 2);
        for i in 0..8 {
            q.push("hog", ("hog", i)).unwrap();
        }
        q.push("mouse", ("mouse", 0)).unwrap();
        q.push("mouse", ("mouse", 1)).unwrap();
        let mut order = Vec::new();
        while let Popped::Item((t, _)) = q.pop(Duration::from_millis(1)) {
            order.push(t);
        }
        // With quantum 2, the mouse must be served after at most 2 hog
        // requests despite arriving behind 8 of them.
        let first_mouse = order.iter().position(|t| *t == "mouse").unwrap();
        assert!(first_mouse <= 2, "mouse starved: {order:?}");
        assert_eq!(order.len(), 10);
    }

    #[test]
    fn caps_shed_typed() {
        let q: DrrQueue<u32> = DrrQueue::new(3, 2, 1);
        q.push("a", 1).unwrap();
        q.push("a", 2).unwrap();
        assert!(matches!(q.push("a", 3), Err((Shed::TenantFull, 3))));
        q.push("b", 4).unwrap();
        assert!(matches!(q.push("c", 5), Err((Shed::QueueFull, 5))));
        let drained = q.close();
        assert_eq!(drained.len(), 3);
        assert!(matches!(q.push("a", 6), Err((Shed::Closed, 6))));
        assert!(matches!(q.pop(Duration::from_millis(1)), Popped::Closed));
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q: DrrQueue<u32> = DrrQueue::new(4, 4, 1);
        assert!(matches!(q.pop(Duration::from_millis(5)), Popped::Timeout));
    }

    #[test]
    fn concurrent_producers_consumers_preserve_items() {
        use std::sync::Arc;
        let q: Arc<DrrQueue<u64>> = Arc::new(DrrQueue::new(1024, 512, 4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let tenant = format!("t{t}");
                    while q.push(&tenant, t * 1000 + i).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut poppers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            poppers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.pop(Duration::from_millis(20)) {
                        Popped::Item(v) => got.push(v),
                        Popped::Timeout => break,
                        Popped::Closed => break,
                    }
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = Vec::new();
        for p in poppers {
            all.extend(p.join().unwrap());
        }
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|t| (0..100).map(move |i| t * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
