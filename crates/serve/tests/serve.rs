//! End-to-end daemon tests: correctness under concurrency, RELOAD storms,
//! mid-swap corruption, shedding, and shutdown.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mrx_datagen::{xmark_like, XmarkConfig};
use mrx_graph::{DataGraph, FrozenGraph};
use mrx_index::{MStarIndex, QueryScratch, TrustPolicy};
use mrx_path::{PathExpr, QueryBudget};
use mrx_serve::{Client, ClientError, ServeConfig, ServeError, Server, TenantBudget, TenantRate};
use mrx_store::{save_compressed, save_frozen, save_paged_with};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrx-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn graph_a() -> DataGraph {
    mrx_graph::xml::parse(
        "<site><people><person><name><first/><last/></name><address/></person>
          <person><name><last/></name></person></people>
          <regions><item><name/></item><item><name/></item></regions></site>",
    )
    .unwrap()
}

fn graph_b() -> DataGraph {
    mrx_graph::xml::parse(
        "<site><people><person><name><first/></name></person></people>
          <catalog><entry><name/><price/></entry><entry><name/></entry>
          <entry><name/></entry></catalog></site>",
    )
    .unwrap()
}

const EXPRS: &[&str] = &[
    "//person/name",
    "//name",
    "/site/people/person",
    "//name/last",
    "//item",
    "//entry/name",
];

/// Single-threaded oracle: exact (Proven) answers for every expression.
fn oracle(g: &DataGraph) -> HashMap<String, Vec<u32>> {
    let fg = FrozenGraph::freeze(g);
    let star = MStarIndex::new(g).freeze();
    let mut scratch = QueryScratch::new();
    EXPRS
        .iter()
        .map(|e| {
            let pe = PathExpr::parse(e).unwrap();
            let cp = pe.compile(&fg);
            let mut meter = QueryBudget::default().meter();
            let a = star
                .query_top_down_budgeted(&fg, &cp, TrustPolicy::Proven, &mut scratch, &mut meter)
                .unwrap();
            (e.to_string(), a.nodes.iter().map(|n| n.0).collect())
        })
        .collect()
}

fn save_pair(dir: &Path) -> (PathBuf, PathBuf) {
    let (ga, gb) = (graph_a(), graph_b());
    let pa = dir.join("a.mrx");
    let pb = dir.join("b.mrx");
    // Different layouts on purpose: RELOAD must swap across kinds.
    let mut ia = MStarIndex::new(&ga);
    ia.refine_for(&ga, &PathExpr::parse("//person/name").unwrap());
    save_frozen(&pa, &FrozenGraph::freeze(&ga), &ia.freeze()).unwrap();
    let ib = MStarIndex::new(&gb);
    save_compressed(&pb, &FrozenGraph::freeze(&gb), &ib.freeze_compressed()).unwrap();
    (pa, pb)
}

fn base_config(snapshot: &PathBuf) -> ServeConfig {
    let mut cfg = ServeConfig::new("127.0.0.1:0", snapshot);
    cfg.drain_timeout = Duration::from_secs(2);
    cfg
}

#[test]
fn ping_query_stats_shutdown() {
    let dir = tmp_dir("basic");
    let (pa, _) = save_pair(&dir);
    let server = Server::start(base_config(&pa)).unwrap();
    let want = oracle(&graph_a());
    let mut c = Client::connect(server.addr()).unwrap();
    c.ping().unwrap();
    for e in EXPRS {
        let r = c.query("t0", e).unwrap();
        assert_eq!(r.epoch, 1);
        assert_eq!(&r.nodes, &want[*e], "answer mismatch for {e}");
    }
    // Repeat: second round should come from the shared answer cache with
    // identical nodes.
    for e in EXPRS {
        assert_eq!(&c.query("t1", e).unwrap().nodes, &want[*e]);
    }
    let stats = c.stats().unwrap();
    assert!(stats.contains("\"epoch\":1"), "{stats}");
    assert!(stats.contains("\"healthy\":true"), "{stats}");
    assert!(stats.contains("\"answers\":"), "{stats}");
    c.shutdown_server().unwrap();
    let report = server.stop();
    assert!(report.stats_json.contains("\"answers\":"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The satellite-3 hammer: concurrent clients query while RELOADs flip
/// the snapshot between two datasets, at 2/4/8 workers. Every answer must
/// be bit-identical to the single-threaded oracle *for the epoch the
/// server stamped on it* — a torn swap or stale cache entry fails loudly.
#[test]
fn reload_hammer_matches_oracle_per_epoch() {
    let dir = tmp_dir("hammer");
    let (pa, pb) = save_pair(&dir);
    let want_a = Arc::new(oracle(&graph_a()));
    let want_b = Arc::new(oracle(&graph_b()));
    for &workers in &[2usize, 4, 8] {
        let mut cfg = base_config(&pa);
        cfg.workers = workers;
        let server = Server::start(cfg).unwrap();
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let mut clients = Vec::new();
        for t in 0..4 {
            let stop = Arc::clone(&stop);
            let (wa, wb) = (Arc::clone(&want_a), Arc::clone(&want_b));
            clients.push(std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let tenant = format!("tenant{t}");
                let mut served = 0u64;
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let expr = EXPRS[i % EXPRS.len()];
                    i += 1;
                    match c.query(&tenant, expr) {
                        Ok(r) => {
                            // Epoch 1 = A; each reload alternates B, A, ...
                            let want = if r.epoch % 2 == 1 { &wa } else { &wb };
                            assert_eq!(
                                &r.nodes, &want[expr],
                                "wrong answer for {expr} at epoch {} ({workers} workers)",
                                r.epoch
                            );
                            served += 1;
                        }
                        Err(ClientError::Server(ServeError::ShuttingDown)) => break,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                served
            }));
        }
        // Reload storm on the main thread: 12 swaps, alternating kinds.
        let mut rc = Client::connect(addr).unwrap();
        for swap in 0..12 {
            let target = if swap % 2 == 0 { &pb } else { &pa };
            let summary = rc.reload(target.to_str().unwrap()).unwrap();
            assert!(
                summary.contains(&format!("\"epoch\":{}", swap + 2)),
                "{summary}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        let mut total = 0;
        for h in clients {
            total += h.join().unwrap();
        }
        assert!(total > 0, "clients served nothing at {workers} workers");
        let stats = rc.stats().unwrap();
        assert!(stats.contains("\"reloads_ok\":12"), "{stats}");
        server.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-swap corruption: torn, truncated, bit-flipped, and stale-version
/// replacement files are each rejected typed while the old epoch keeps
/// serving correct answers.
#[test]
fn corrupt_reload_is_rejected_and_old_epoch_serves() {
    let dir = tmp_dir("corrupt");
    let (pa, pb) = save_pair(&dir);
    let want_a = oracle(&graph_a());
    // Also cover the paged layout as a corruption target.
    let gb = graph_b();
    let pv6 = dir.join("b6.mrx");
    save_paged_with(
        &pv6,
        &FrozenGraph::freeze(&gb),
        &MStarIndex::new(&gb).freeze_compressed(),
        1024,
    )
    .unwrap();

    let bytes = std::fs::read(&pb).unwrap();
    let torn = dir.join("torn.mrx");
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
    let truncated = dir.join("trunc.mrx");
    std::fs::write(&truncated, &bytes[..bytes.len() - 3]).unwrap();
    let flipped = dir.join("flip.mrx");
    let mut fb = bytes.clone();
    let off = fb.len() - 9;
    fb[off] ^= 0x20;
    std::fs::write(&flipped, &fb).unwrap();
    let stale = dir.join("stale.mrx");
    let mut sb = bytes.clone();
    sb[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&stale, &sb).unwrap();
    let paged_torn = dir.join("torn6.mrx");
    let v6bytes = std::fs::read(&pv6).unwrap();
    std::fs::write(&paged_torn, &v6bytes[..v6bytes.len() * 3 / 5]).unwrap();

    let server = Server::start(base_config(&pa)).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    for bad in [&torn, &truncated, &flipped, &stale, &paged_torn] {
        let err = c.reload(bad.to_str().unwrap()).unwrap_err();
        assert!(
            matches!(err, ClientError::Server(ServeError::ReloadRejected(_))),
            "expected typed rejection for {bad:?}, got {err:?}"
        );
        // Old epoch still serving, bit-identical.
        for e in EXPRS {
            let r = c.query("t", e).unwrap();
            assert_eq!(r.epoch, 1, "epoch must not advance on a rejected swap");
            assert_eq!(&r.nodes, &want_a[*e]);
        }
    }
    let stats = c.stats().unwrap();
    assert!(stats.contains("\"reloads_rejected\":5"), "{stats}");
    assert!(stats.contains("\"reloads_ok\":0"), "{stats}");
    // A good file still swaps after all those failures.
    let summary = c.reload(pv6.to_str().unwrap()).unwrap();
    assert!(summary.contains("\"epoch\":2"), "{summary}");
    assert!(summary.contains("\"kind\":\"paged\""), "{summary}");
    let want_b = oracle(&gb);
    for e in EXPRS {
        let r = c.query("t", e).unwrap();
        assert_eq!(r.epoch, 2);
        assert_eq!(&r.nodes, &want_b[*e]);
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rate_limit_and_budget_are_typed() {
    let dir = tmp_dir("limits");
    let (pa, _) = save_pair(&dir);
    let mut cfg = base_config(&pa);
    // "slow" tenant: one query per 100 s, burst of 2.
    cfg.tenant_rates.insert(
        "slow".into(),
        TenantRate {
            rate: 0.01,
            burst: 2.0,
        },
    );
    // "tiny" tenant: a budget no real query fits in.
    cfg.tenant_budgets.insert(
        "tiny".into(),
        TenantBudget {
            max_steps: Some(1),
            max_result_nodes: None,
            deadline_ms: None,
        },
    );
    // Disable the answer cache so the tiny tenant cannot be served a
    // cached answer admitted by someone else.
    cfg.cache.min_cost = u64::MAX;
    let server = Server::start(cfg).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(c.query("slow", "//name").is_ok());
    assert!(c.query("slow", "//name").is_ok());
    match c.query("slow", "//name") {
        Err(ClientError::Server(ServeError::RateLimited { retry_after_ms })) => {
            assert!(retry_after_ms > 0);
        }
        other => panic!("expected RateLimited, got {other:?}"),
    }
    // An unlimited tenant is unaffected by the slow tenant's bucket.
    assert!(c.query("fast", "//name").is_ok());
    match c.query("tiny", "//person/name") {
        Err(ClientError::Server(ServeError::Budget { index_nodes, .. })) => {
            assert!(index_nodes >= 1);
        }
        other => panic!("expected Budget trip, got {other:?}"),
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Queue-cap shedding: one worker pinned on an expensive query, a queue
/// of one, and a burst of concurrent queries — some must be refused with
/// a typed Overloaded carrying a retry hint, and every admitted answer
/// must still be correct.
#[test]
fn overload_sheds_typed() {
    let dir = tmp_dir("overload");
    let g = xmark_like(&XmarkConfig::with_target_nodes(60_000), 7);
    let snap = dir.join("big.mrx");
    save_frozen(
        &snap,
        &FrozenGraph::freeze(&g),
        &MStarIndex::new(&g).freeze(),
    )
    .unwrap();
    let mut cfg = base_config(&snap);
    cfg.workers = 1;
    cfg.queue_cap = 1;
    cfg.tenant_backlog = 1;
    // Bypass the cache entirely so every query really evaluates.
    cfg.cache.min_cost = u64::MAX;
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();
    // Pin the worker.
    let pin = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.query("pinner", "//*/*/*/*/*").unwrap();
    });
    std::thread::sleep(Duration::from_millis(30));
    let mut shed = 0;
    let mut served = 0;
    let mut handles = Vec::new();
    for i in 0..12 {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            match c.query(&format!("t{i}"), "//*/*/*/*") {
                Ok(_) => Ok(()),
                Err(ClientError::Server(ServeError::Overloaded { retry_after_ms })) => {
                    assert!(retry_after_ms > 0);
                    Err(())
                }
                Err(e) => panic!("expected answer or Overloaded, got {e}"),
            }
        }));
    }
    for h in handles {
        match h.join().unwrap() {
            Ok(()) => served += 1,
            Err(()) => shed += 1,
        }
    }
    pin.join().unwrap();
    assert!(shed > 0, "nothing shed (served {served})");
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.contains("\"shed_overload\":"), "{stats}");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_abuse_gets_typed_errors_and_close() {
    let dir = tmp_dir("abuse");
    let (pa, _) = save_pair(&dir);
    let mut cfg = base_config(&pa);
    cfg.frame_timeout = Duration::from_millis(150);
    cfg.idle_timeout = Duration::from_millis(400);
    cfg.tick = Duration::from_millis(20);
    let server = Server::start(cfg).unwrap();

    // Oversized declared length: typed protocol error before allocation.
    let mut c = Client::connect(server.addr()).unwrap();
    c.send_raw(&(u32::MAX).to_le_bytes()).unwrap();
    let (_, resp) = c.read_response_raw().unwrap();
    assert!(matches!(
        resp,
        mrx_serve::Response::Error(ServeError::Protocol(_))
    ));

    // Slow loris: a partial frame that stalls trips the frame deadline.
    let mut c = Client::connect(server.addr()).unwrap();
    c.send_raw(&20u32.to_le_bytes()).unwrap();
    c.send_raw(&[1, 2, 3]).unwrap();
    let (_, resp) = c.read_response_raw().unwrap();
    assert!(matches!(
        resp,
        mrx_serve::Response::Error(ServeError::Protocol(_))
    ));

    // Garbage verb inside a well-framed payload.
    let mut c = Client::connect(server.addr()).unwrap();
    let payload = [9u8, 9, 9, 9, 77];
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    c.send_raw(&frame).unwrap();
    let (_, resp) = c.read_response_raw().unwrap();
    assert!(matches!(
        resp,
        mrx_serve::Response::Error(ServeError::Protocol(_))
    ));

    // Idle connection gets reaped: the next read sees EOF/err.
    let mut c = Client::connect_with(server.addr(), Duration::from_secs(3)).unwrap();
    std::thread::sleep(Duration::from_millis(900));
    assert!(c.ping().is_err(), "idle connection must have been reaped");

    // The server is still healthy for well-behaved clients.
    let mut c = Client::connect(server.addr()).unwrap();
    c.ping().unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.contains("\"protocol_errors\":"), "{stats}");
    assert!(stats.contains("\"idle_reaped\":"), "{stats}");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_and_refuses_new_queries() {
    let dir = tmp_dir("shutdown");
    let (pa, _) = save_pair(&dir);
    let server = Server::start(base_config(&pa)).unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    c.query("t", "//name").unwrap();
    let draining = c.shutdown_server().unwrap();
    assert!(draining.contains("draining"), "{draining}");
    // New queries are refused (typed) or the socket is already closed.
    let start = Instant::now();
    let mut refused = false;
    while start.elapsed() < Duration::from_secs(2) {
        match Client::connect(addr) {
            Ok(mut c2) => match c2.query("t", "//name") {
                Err(_) => {
                    refused = true;
                    break;
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(20)),
            },
            Err(_) => {
                refused = true;
                break;
            }
        }
    }
    assert!(refused, "shutdown never started refusing queries");
    let report = server.stop();
    assert!(report.stats_json.contains("\"answers\":"));
    let _ = std::fs::remove_dir_all(&dir);
}
