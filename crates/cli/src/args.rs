//! A small, dependency-free command-line argument scanner.
//!
//! Supports `--flag value`, `--flag=value`, boolean `--flag`, and
//! positional arguments, with helpful errors for unknown or missing
//! options.

use std::collections::HashMap;

/// Parsed arguments of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// An argument error, with the message shown to the user.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Scans raw arguments. `value_options` lists the `--options` that take
    /// a value; every other `--name` is a boolean flag.
    pub fn scan<I: IntoIterator<Item = String>>(
        raw: I,
        value_options: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    if !value_options.contains(&key) {
                        return Err(ArgError(format!("option --{key} does not take a value")));
                    }
                    out.options.insert(key.to_string(), value.to_string());
                } else if value_options.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                    out.options.insert(name.to_string(), value);
                } else {
                    out.flags.push(name.to_string());
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// The `i`-th positional argument or an error naming it.
    pub fn require_positional(&self, i: usize, name: &str) -> Result<&str, ArgError> {
        self.positional(i)
            .ok_or_else(|| ArgError(format!("missing required argument <{name}>")))
    }

    /// An option's value, if present.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A parsed option value with a default.
    pub fn option_parse<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.option(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value `{v}` for --{name}"))),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Rejects any flag not in `known` (value options are checked at scan
    /// time).
    pub fn reject_unknown_flags(&self, known: &[&str]) -> Result<(), ArgError> {
        for f in &self.flags {
            if !known.contains(&f.as_str()) {
                return Err(ArgError(format!("unknown flag --{f}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(args: &[&str], opts: &[&str]) -> Result<Args, ArgError> {
        Args::scan(args.iter().map(|s| s.to_string()), opts)
    }

    #[test]
    fn positional_and_options() {
        let a = scan(
            &["file.xml", "--nodes", "500", "--seed=7", "--verbose"],
            &["nodes", "seed"],
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("file.xml"));
        assert_eq!(a.option("nodes"), Some("500"));
        assert_eq!(a.option_parse("seed", 0u64).unwrap(), 7);
        assert_eq!(a.option_parse("missing", 42u64).unwrap(), 42);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = scan(&["--nodes"], &["nodes"]).unwrap_err();
        assert!(e.0.contains("requires a value"));
    }

    #[test]
    fn equals_on_boolean_is_an_error() {
        let e = scan(&["--verbose=yes"], &[]).unwrap_err();
        assert!(e.0.contains("does not take a value"));
    }

    #[test]
    fn bad_parse_is_an_error() {
        let a = scan(&["--nodes", "many"], &["nodes"]).unwrap();
        assert!(a.option_parse("nodes", 0usize).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = scan(&["--frobnicate"], &[]).unwrap();
        assert!(a.reject_unknown_flags(&["verbose"]).is_err());
        assert!(a.reject_unknown_flags(&["frobnicate"]).is_ok());
    }

    #[test]
    fn require_positional_errors() {
        let a = scan(&[], &[]).unwrap();
        let e = a.require_positional(0, "file").unwrap_err();
        assert!(e.0.contains("<file>"));
    }
}
