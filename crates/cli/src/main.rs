//! `mrx` — command-line front end for the multiresolution XML index suite.
//!
//! ```sh
//! mrx gen xmark --nodes 20000 --out auctions.xml
//! mrx stats auctions.xml
//! mrx index auctions.xml --kind mstar --fups hot-queries.txt --save auctions.mrx
//! mrx query auctions.mrx "//open_auction/bidder/personref"
//! mrx workload auctions.xml --max-len 4 --count 50
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprint!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = argv.collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match commands::run(&cmd, rest, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
