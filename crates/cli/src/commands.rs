//! The `mrx` subcommands, factored for testability: every command takes
//! parsed [`Args`] and a writer, and returns a `Result`.

use std::error::Error;
use std::fmt::Write as _;
use std::fs;

use mrx_datagen::{nasa_like, xmark_like, XmarkConfig};
use mrx_error::MrxError;
use mrx_graph::stats::{graph_stats, label_histogram};
use mrx_graph::xml;
use mrx_graph::{DataGraph, FrozenGraph, GraphView};
use mrx_index::{
    AdaptEngine, AkIndex, DkIndex, EvalStrategy, MStarIndex, MkIndex, OneIndex, QuerySession,
    TrustPolicy, UdIndex,
};
use mrx_path::{PathExpr, QueryBudget};
use mrx_workload::{Workload, WorkloadConfig};

use crate::args::{ArgError, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
mrx — multiresolution XML indexing (He & Yang, ICDE 2004)

USAGE:
  mrx gen <xmark|nasa> [--nodes N] [--seed S] [--out FILE]
  mrx stats <file.xml> [--labels N]
  mrx index <file.xml> --kind <a0|ak|one|ud|dk-construct|dk-promote|mk|mstar>
            [--k N] [--l N] [--fups FILE] [--save FILE.mrx] [--stats] [--batch]
  mrx query <file.xml|file.mrx> <expr> [--kind KIND] [--k N] [--fups FILE] [--paper] [--stats]
            [--frozen] [--paged] [--cache-bytes N] [--max-steps N] [--max-nodes N] [--timeout-ms N]
  mrx freeze <file.xml|file.mrx> --out FILE.mrx [--fups FILE] [--compress | --paged [--page-size N]]
  mrx workload <file.xml> [--max-len N] [--count N] [--seed S]
  mrx serve <file.mrx> [--addr HOST:PORT] [--workers N] [--max-conns N]
            [--queue N] [--tenant-backlog N] [--quantum N] [--rate QPS] [--burst N]
            [--max-steps N] [--max-nodes N] [--timeout-ms N] [--cache-bytes N] [--strict]
  mrx client <HOST:PORT> <query|stats|reload|ping|shutdown> [EXPR|FILE.mrx] [--tenant T]

Path expressions: //a/b/c (descendant), /a/b (root-anchored), * wildcards.
FUP files: one path expression per line; lines starting with # are skipped.
--batch adapts dk-promote/mk/mstar to the whole FUP file in one batched
pass (deduplicated worklist, shared scratch) instead of one FUP at a time.
`freeze` compiles a v1 index file (or a fresh M*(k) build of an XML file)
into a flat v2 snapshot — or, with --compress, a v5 snapshot whose extents
and adjacency are delta-compressed posting lists served without
decompression. `query --frozen` auto-detects the snapshot version.
`freeze --paged` writes a demand-paged v6 snapshot instead: extents and
the node map stay on disk and are served through a budgeted page cache
with per-page checksums, so opening is near-instant and the resident set
is capped. `query` auto-detects paged (v4/v6) files; --paged asserts the layout,
--cache-bytes caps the cache, and --stats adds page fault/hit/eviction
counters.
Every command that reads XML accepts --strict-refs, which rejects
documents with duplicate ID declarations or dangling IDREF tokens
(otherwise those are counted and reported as a warning).
--max-steps / --max-nodes / --timeout-ms bound a query's node visits,
answer size, and wall-clock time; an exhausted budget reports the partial
cost instead of an answer (`--stats` counts such trips as budget_trips).
`serve` runs the fault-tolerant multi-tenant daemon over a snapshot of any
version: bounded queues with typed Overloaded/RateLimited shedding
(--rate/--burst arm a default per-tenant token bucket), per-tenant budgets
(--max-steps/--max-nodes/--timeout-ms apply per query), graceful
degradation reported through `client stats`, and zero-downtime hot swap
via `client reload FILE.mrx` (the file is fully validated first; a torn
or corrupt file is rejected while the old snapshot keeps serving).
SIGINT/SIGTERM drain in-flight queries, then print final stats. --strict
refuses a boot snapshot that would degrade instead of serving it.
";

type CmdResult = Result<(), Box<dyn Error>>;

/// Dispatches a subcommand by name.
pub fn run(cmd: &str, raw: Vec<String>, out: &mut impl std::io::Write) -> CmdResult {
    match cmd {
        "gen" => cmd_gen(raw, out),
        "stats" => cmd_stats(raw, out),
        "index" => cmd_index(raw, out),
        "query" => cmd_query(raw, out),
        "freeze" => cmd_freeze(raw, out),
        "workload" => cmd_workload(raw, out),
        "serve" => cmd_serve(raw, out),
        "client" => cmd_client(raw, out),
        "help" | "--help" | "-h" => {
            out.write_all(USAGE.as_bytes())?;
            Ok(())
        }
        other => Err(Box::new(ArgError(format!(
            "unknown command `{other}` (try `mrx help`)"
        )))),
    }
}

/// Loads and parses an XML document, surfacing the [`xml::ParseReport`] of
/// reference anomalies the lenient parse tolerated. With `strict_refs` the
/// parser rejects those anomalies instead.
fn load_xml(
    path: &str,
    strict_refs: bool,
    out: &mut impl std::io::Write,
) -> Result<DataGraph, Box<dyn Error>> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let opts = xml::ParseOptions {
        strict_refs,
        ..Default::default()
    };
    let (g, report) = xml::parse_with_report(&text, &opts)?;
    if !report.is_clean() {
        writeln!(
            out,
            "warning: {} duplicate ID declaration(s), {} dangling IDREF token(s) \
             (--strict-refs rejects such documents)",
            report.duplicate_ids, report.dangling_idrefs
        )?;
    }
    Ok(g)
}

/// Builds the [`QueryBudget`] described by `--max-steps`, `--max-nodes` and
/// `--timeout-ms`, or an unlimited one when none is given.
fn budget_from_args(args: &Args) -> Result<QueryBudget, Box<dyn Error>> {
    let mut b = QueryBudget::unlimited();
    if args.option("max-steps").is_some() {
        b.max_steps = Some(args.option_parse("max-steps", 0u64)?);
    }
    if args.option("max-nodes").is_some() {
        b.max_result_nodes = Some(args.option_parse("max-nodes", 0u64)?);
    }
    if args.option("timeout-ms").is_some() {
        let ms: u64 = args.option_parse("timeout-ms", 0)?;
        b.deadline = Some(std::time::Instant::now() + std::time::Duration::from_millis(ms));
    }
    Ok(b)
}

/// Renders a budget trip: what ran out, and how far the query got.
fn render_budget_trip(e: &MrxError) -> String {
    match e.as_budget() {
        Some(b) => format!(
            "budget exhausted ({:?}) after {} index + {} data node visits",
            b.kind, b.index_nodes, b.data_nodes
        ),
        None => format!("query failed: {e}"),
    }
}

fn load_fups(path: &str) -> Result<Vec<PathExpr>, Box<dyn Error>> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(PathExpr::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?);
    }
    Ok(out)
}

fn cmd_gen(raw: Vec<String>, out: &mut impl std::io::Write) -> CmdResult {
    let args = Args::scan(raw, &["nodes", "seed", "out"])?;
    args.reject_unknown_flags(&[])?;
    let which = args.require_positional(0, "dataset")?;
    let nodes: usize = args.option_parse("nodes", 10_000)?;
    let seed: u64 = args.option_parse("seed", 42)?;
    let g = match which {
        "xmark" => xmark_like(&XmarkConfig::with_target_nodes(nodes), seed),
        "nasa" => nasa_like(nodes, seed),
        other => return Err(Box::new(ArgError(format!("unknown dataset `{other}`")))),
    };
    let doc = xml::write_document(&g)?;
    match args.option("out") {
        Some(path) => {
            fs::write(path, &doc)?;
            writeln!(
                out,
                "wrote {} ({} nodes, {} reference edges)",
                path,
                g.node_count(),
                g.ref_edge_count()
            )?;
        }
        None => out.write_all(doc.as_bytes())?,
    }
    Ok(())
}

fn cmd_stats(raw: Vec<String>, out: &mut impl std::io::Write) -> CmdResult {
    let args = Args::scan(raw, &["labels"])?;
    args.reject_unknown_flags(&["strict-refs"])?;
    let path = args.require_positional(0, "file.xml")?;
    let top: usize = args.option_parse("labels", 10)?;
    let g = load_xml(path, args.flag("strict-refs"), out)?;
    let s = graph_stats(&g);
    writeln!(out, "nodes:            {}", s.nodes)?;
    writeln!(out, "edges:            {}", s.edges)?;
    writeln!(out, "reference edges:  {}", s.ref_edges)?;
    writeln!(out, "labels:           {}", s.labels)?;
    writeln!(out, "max tree depth:   {}", s.max_tree_depth)?;
    writeln!(out, "max fan-out:      {}", s.max_fanout)?;
    writeln!(out, "mean fan-out:     {:.3}", s.mean_fanout)?;
    writeln!(out, "context-reused:   {} nodes", s.reused_label_nodes)?;
    writeln!(out, "top labels:")?;
    for (name, count) in label_histogram(&g).into_iter().take(top) {
        writeln!(out, "  {count:>8}  {name}")?;
    }
    Ok(())
}

fn build_summary(name: &str, nodes: usize, edges: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{name}: {nodes} index nodes, {edges} index edges");
    s
}

fn cmd_index(raw: Vec<String>, out: &mut impl std::io::Write) -> CmdResult {
    let args = Args::scan(raw, &["kind", "k", "l", "fups", "save"])?;
    args.reject_unknown_flags(&["stats", "batch", "strict-refs"])?;
    let path = args.require_positional(0, "file.xml")?;
    let g = load_xml(path, args.flag("strict-refs"), out)?;
    let kind = args.option("kind").unwrap_or("mstar");
    let k: u32 = args.option_parse("k", 2)?;
    let l: u32 = args.option_parse("l", 2)?;
    let fups = match args.option("fups") {
        Some(f) => load_fups(f)?,
        None => Vec::new(),
    };
    let batch = args.flag("batch");
    if batch && !matches!(kind, "dk-promote" | "mk" | "mstar") {
        return Err(Box::new(ArgError(format!(
            "--batch applies only to adaptive kinds (dk-promote, mk, mstar), not `{kind}`"
        ))));
    }
    match kind {
        "a0" => {
            let (idx, rs) = AkIndex::build_with_stats(&g, 0);
            out.write_all(build_summary("A(0)", idx.node_count(), idx.edge_count()).as_bytes())?;
            if args.flag("stats") {
                out.write_all(mrx_index::stats::render_refine_stats(&rs).as_bytes())?;
            }
        }
        "ak" => {
            let (idx, rs) = AkIndex::build_with_stats(&g, k);
            out.write_all(
                build_summary(&format!("A({k})"), idx.node_count(), idx.edge_count()).as_bytes(),
            )?;
            if args.flag("stats") {
                out.write_all(mrx_index::stats::render_refine_stats(&rs).as_bytes())?;
            }
        }
        "one" => {
            let (idx, rs) = OneIndex::build_with_stats(&g);
            out.write_all(build_summary("1-index", idx.node_count(), idx.edge_count()).as_bytes())?;
            writeln!(
                out,
                "stabilized after {} refinement rounds",
                idx.stabilization_k()
            )?;
            if args.flag("stats") {
                out.write_all(mrx_index::stats::render_refine_stats(&rs).as_bytes())?;
            }
        }
        "ud" => {
            let (idx, up, down) = UdIndex::build_with_stats(&g, k, l);
            out.write_all(
                build_summary(&format!("UD({k},{l})"), idx.node_count(), idx.edge_count())
                    .as_bytes(),
            )?;
            if args.flag("stats") {
                writeln!(out, "up (≈{k}):")?;
                out.write_all(mrx_index::stats::render_refine_stats(&up).as_bytes())?;
                writeln!(out, "down (≈{l}-down):")?;
                out.write_all(mrx_index::stats::render_refine_stats(&down).as_bytes())?;
            }
        }
        "dk-construct" => {
            let idx = DkIndex::construct(&g, &fups);
            out.write_all(
                build_summary("D(k)-construct", idx.node_count(), idx.edge_count()).as_bytes(),
            )?;
        }
        "dk-promote" => {
            let mut idx = DkIndex::a0(&g);
            if batch {
                idx.promote_batch(&g, &fups, &mut AdaptEngine::new());
            } else {
                for f in &fups {
                    idx.promote_for(&g, f);
                }
            }
            out.write_all(
                build_summary("D(k)-promote", idx.node_count(), idx.edge_count()).as_bytes(),
            )?;
        }
        "mk" => {
            let mut idx = MkIndex::new(&g);
            if batch {
                idx.refine_batch(&g, &fups, &mut AdaptEngine::new());
            } else {
                for f in &fups {
                    idx.refine_for(&g, f);
                }
            }
            out.write_all(build_summary("M(k)", idx.node_count(), idx.edge_count()).as_bytes())?;
            if args.flag("stats") {
                let s = mrx_index::stats::index_stats(&g, idx.graph());
                out.write_all(mrx_index::stats::render_stats(&s).as_bytes())?;
            }
        }
        "mstar" => {
            let mut idx = MStarIndex::new(&g);
            if batch {
                idx.refine_batch(&g, &fups, &mut AdaptEngine::new());
            } else {
                for f in &fups {
                    idx.refine_for(&g, f);
                }
            }
            out.write_all(
                build_summary(
                    &format!("M*(k), {} components", idx.max_k() + 1),
                    idx.node_count(),
                    idx.edge_count(),
                )
                .as_bytes(),
            )?;
            if args.flag("stats") {
                for (i, s) in mrx_index::stats::mstar_stats(&g, &idx).iter().enumerate() {
                    writeln!(out, "component I{i}:")?;
                    out.write_all(mrx_index::stats::render_stats(s).as_bytes())?;
                }
            }
            if let Some(save) = args.option("save") {
                mrx_store::save_mstar(save, &g, &idx)?;
                writeln!(out, "saved index to {save}")?;
            }
            return Ok(());
        }
        other => return Err(Box::new(ArgError(format!("unknown index kind `{other}`")))),
    }
    if args.option("save").is_some() {
        return Err(Box::new(ArgError(
            "--save currently persists only --kind mstar indexes".into(),
        )));
    }
    Ok(())
}

fn cmd_query(raw: Vec<String>, out: &mut impl std::io::Write) -> CmdResult {
    let args = Args::scan(
        raw,
        &[
            "kind",
            "k",
            "fups",
            "cache-bytes",
            "max-steps",
            "max-nodes",
            "timeout-ms",
        ],
    )?;
    args.reject_unknown_flags(&[
        "paper",
        "show-nodes",
        "stats",
        "frozen",
        "paged",
        "strict-refs",
    ])?;
    let path = args.require_positional(0, "file")?;
    let expr = args.require_positional(1, "expr")?;
    let q = PathExpr::parse(expr)?;
    let policy = if args.flag("paper") {
        TrustPolicy::Claimed
    } else {
        TrustPolicy::Proven
    };
    let budget = budget_from_args(&args)?;

    // Demand-paged (v4/v6) snapshot: page-cache serving, auto-detected
    // from the header. --paged asserts the layout; --cache-bytes caps the
    // resident set.
    if path.ends_with(".mrx") && matches!(mrx_store::snapshot_version(path)?, 4 | 6) {
        return query_paged(out, &args, path, &q, policy, &budget);
    }
    if args.flag("paged") {
        return Err(Box::new(ArgError(
            "--paged requires a demand-paged v4/v6 snapshot (see `mrx freeze --paged`)".into(),
        )));
    }
    if args.option("cache-bytes").is_some() {
        return Err(Box::new(ArgError(
            "--cache-bytes applies only to demand-paged snapshots".into(),
        )));
    }

    // Flat (v2) or compressed (v3) snapshot: lazy frozen query, layout
    // auto-detected from the header.
    if args.flag("frozen") {
        if !path.ends_with(".mrx") {
            return Err(Box::new(ArgError(
                "--frozen requires a .mrx snapshot (see `mrx freeze`)".into(),
            )));
        }
        if matches!(mrx_store::snapshot_version(path)?, 3 | 5) {
            let mut file = mrx_store::CompressedFile::open(path)?;
            let ans = match file.query_budgeted(&q, policy, &budget) {
                Ok(ans) => ans,
                Err(e @ MrxError::Budget(_)) => {
                    writeln!(out, "{}", render_budget_trip(&e))?;
                    return Ok(());
                }
                Err(e) => return Err(Box::new(e)),
            };
            writeln!(
                out,
                "{} answers, cost {} index + {} data node visits",
                ans.nodes.len(),
                ans.cost.index_nodes,
                ans.cost.data_nodes
            )?;
            writeln!(
                out,
                "loaded {} of {} components ({} bytes; {} extent bytes resident)",
                file.loaded_components().len(),
                file.component_count(),
                file.bytes_read(),
                file.extent_bytes()
            )?;
            if !file.degraded_components().is_empty() {
                writeln!(
                    out,
                    "rebuilt {} unreadable component(s): {:?}",
                    file.degraded_components().len(),
                    file.degraded_components()
                )?;
            }
            if args.flag("show-nodes") {
                print_nodes(out, file.graph(), &ans.nodes)?;
            }
            return Ok(());
        }
        let mut file = mrx_store::FrozenFile::open(path)?;
        let ans = match file.query_budgeted(&q, policy, &budget) {
            Ok(ans) => ans,
            Err(e @ MrxError::Budget(_)) => {
                writeln!(out, "{}", render_budget_trip(&e))?;
                return Ok(());
            }
            Err(e) => return Err(Box::new(e)),
        };
        writeln!(
            out,
            "{} answers, cost {} index + {} data node visits",
            ans.nodes.len(),
            ans.cost.index_nodes,
            ans.cost.data_nodes
        )?;
        writeln!(
            out,
            "loaded {} of {} components ({} bytes)",
            file.loaded_components().len(),
            file.component_count(),
            file.bytes_read()
        )?;
        if !file.degraded_components().is_empty() {
            writeln!(
                out,
                "rebuilt {} unreadable component(s): {:?}",
                file.degraded_components().len(),
                file.degraded_components()
            )?;
        }
        if args.flag("show-nodes") {
            print_nodes(out, file.graph(), &ans.nodes)?;
        }
        return Ok(());
    }

    // Persisted index: lazy query (eager when a budget needs governing).
    if path.ends_with(".mrx") {
        let mut file = mrx_store::MStarFile::open(path)?;
        if !budget.is_unlimited() {
            // Budgeted serving goes through the governed session path,
            // which needs the in-memory index.
            let (g, idx) = file.into_index()?;
            let mut session = QuerySession::new(policy);
            session.set_budget(budget);
            return finish_session_query(out, &args, &g, &mut session, |s| {
                s.try_serve_mstar(&idx, &g, &q).cloned()
            });
        }
        let ans = file.query(&q, EvalStrategy::TopDown, policy)?;
        writeln!(
            out,
            "{} answers, cost {} index + {} data node visits",
            ans.nodes.len(),
            ans.cost.index_nodes,
            ans.cost.data_nodes
        )?;
        writeln!(
            out,
            "loaded {} of {} components ({} bytes)",
            file.loaded_components().len(),
            file.component_count(),
            file.bytes_read()
        )?;
        if args.flag("show-nodes") {
            print_nodes(out, file.graph(), &ans.nodes)?;
        }
        return Ok(());
    }

    let g = load_xml(path, args.flag("strict-refs"), out)?;
    let kind = args.option("kind").unwrap_or("mstar");
    let k: u32 = args.option_parse("k", 2)?;
    let mut fups = match args.option("fups") {
        Some(f) => load_fups(f)?,
        None => Vec::new(),
    };
    fups.push(q.clone()); // the queried expression is itself a FUP
    let mut session = QuerySession::new(policy);
    session.set_budget(budget);
    match kind {
        "ak" => {
            let idx = AkIndex::build(&g, k);
            finish_session_query(out, &args, &g, &mut session, |s| {
                s.try_serve(idx.graph(), &g, &q).cloned()
            })
        }
        "one" => {
            let idx = OneIndex::build(&g);
            finish_session_query(out, &args, &g, &mut session, |s| {
                s.try_serve(idx.graph(), &g, &q).cloned()
            })
        }
        "mk" => {
            let mut idx = MkIndex::new(&g);
            for f in &fups {
                idx.refine_for(&g, f);
            }
            finish_session_query(out, &args, &g, &mut session, |s| {
                s.try_serve(idx.graph(), &g, &q).cloned()
            })
        }
        "mstar" => {
            let mut idx = MStarIndex::new(&g);
            for f in &fups {
                idx.refine_for(&g, f);
            }
            finish_session_query(out, &args, &g, &mut session, |s| {
                s.try_serve_mstar(&idx, &g, &q).cloned()
            })
        }
        other => Err(Box::new(ArgError(format!("unknown index kind `{other}`"))) as Box<dyn Error>),
    }
}

/// Serves one query from a demand-paged (v4) snapshot: near-zero open,
/// component metadata loaded as a prefix, extents and the node map paged
/// in on demand under the cache budget.
fn query_paged(
    out: &mut impl std::io::Write,
    args: &Args,
    path: &str,
    q: &PathExpr,
    policy: TrustPolicy,
    budget: &QueryBudget,
) -> CmdResult {
    let mut file = match args.option("cache-bytes") {
        Some(_) => mrx_store::PagedFile::open_with(path, args.option_parse("cache-bytes", 0u64)?)?,
        None => mrx_store::PagedFile::open(path)?,
    };
    let ans = match file.query_budgeted(q, policy, budget) {
        Ok(ans) => ans,
        Err(e @ MrxError::Budget(_)) => {
            writeln!(out, "{}", render_budget_trip(&e))?;
            if args.flag("stats") {
                print_page_stats(out, &file)?;
            }
            return Ok(());
        }
        Err(e) => return Err(Box::new(e)),
    };
    writeln!(
        out,
        "{} answers, cost {} index + {} data node visits",
        ans.nodes.len(),
        ans.cost.index_nodes,
        ans.cost.data_nodes
    )?;
    writeln!(
        out,
        "loaded {} of {} components ({} bytes eager; {} bytes demand-paged)",
        file.loaded_components().len(),
        file.component_count(),
        file.bytes_read(),
        file.paged_bytes()
    )?;
    if args.flag("stats") {
        print_page_stats(out, &file)?;
    }
    if args.flag("show-nodes") {
        print_nodes(out, file.graph(), &ans.nodes)?;
    }
    Ok(())
}

/// The `--stats` page-cache line for paged serving.
fn print_page_stats(
    out: &mut impl std::io::Write,
    file: &mrx_store::PagedFile,
) -> std::io::Result<()> {
    let s = file.page_stats();
    writeln!(
        out,
        "pages: size={} faults={} hits={} evictions={} resident_bytes={} pinned={} \
         prefetched={} readahead_hits={} wasted_prefetches={}",
        file.page_size(),
        s.faults,
        s.hits,
        s.evictions,
        s.resident_bytes,
        s.pinned_pages,
        s.prefetched,
        s.readahead_hits,
        s.wasted_prefetches
    )
}

/// Runs a governed session query and prints the answer line, the budget
/// trip (if any), session counters under `--stats`, and the answer nodes
/// under `--show-nodes`.
fn finish_session_query<G: GraphView>(
    out: &mut impl std::io::Write,
    args: &Args,
    g: &G,
    session: &mut QuerySession,
    serve: impl FnOnce(&mut QuerySession) -> Result<mrx_index::Answer, MrxError>,
) -> CmdResult {
    match serve(session) {
        Ok(ans) => {
            writeln!(
                out,
                "{} answers, cost {} index + {} data node visits (validated: {})",
                ans.nodes.len(),
                ans.cost.index_nodes,
                ans.cost.data_nodes,
                ans.validated
            )?;
            if args.flag("stats") {
                writeln!(out, "session: {}", session.stats().render())?;
            }
            if args.flag("show-nodes") {
                print_nodes(out, g, &ans.nodes)?;
            }
            Ok(())
        }
        Err(e @ MrxError::Budget(_)) => {
            writeln!(out, "{}", render_budget_trip(&e))?;
            if args.flag("stats") {
                writeln!(out, "session: {}", session.stats().render())?;
            }
            Ok(())
        }
        Err(e) => Err(Box::new(e)),
    }
}

fn print_nodes<G: GraphView>(
    out: &mut impl std::io::Write,
    g: &G,
    nodes: &[mrx_graph::NodeId],
) -> std::io::Result<()> {
    for &n in nodes.iter().take(50) {
        writeln!(out, "  node {} <{}>", n.0, g.label_str(g.label(n)))?;
    }
    if nodes.len() > 50 {
        writeln!(out, "  ... and {} more", nodes.len() - 50)?;
    }
    Ok(())
}

/// Compiles a v1 index file (or a fresh M*(k) build of an XML document)
/// into an immutable flat v2 snapshot.
fn cmd_freeze(raw: Vec<String>, out: &mut impl std::io::Write) -> CmdResult {
    let args = Args::scan(raw, &["out", "fups", "page-size"])?;
    args.reject_unknown_flags(&["strict-refs", "compress", "paged"])?;
    let path = args.require_positional(0, "file")?;
    let dest = args
        .option("out")
        .ok_or_else(|| ArgError("freeze requires --out FILE.mrx".into()))?;
    if args.flag("paged") && args.flag("compress") {
        return Err(Box::new(ArgError(
            "--paged and --compress are mutually exclusive (a paged snapshot already \
             stores compressed extents)"
                .into(),
        )));
    }
    if args.option("page-size").is_some() && !args.flag("paged") {
        return Err(Box::new(ArgError(
            "--page-size applies only with --paged".into(),
        )));
    }
    let (g, idx) = if path.ends_with(".mrx") {
        if args.option("fups").is_some() {
            return Err(Box::new(ArgError(
                "--fups applies only when freezing from XML (a .mrx index is already adapted)"
                    .into(),
            )));
        }
        mrx_store::load_mstar(path)?
    } else {
        let g = load_xml(path, args.flag("strict-refs"), out)?;
        let mut idx = MStarIndex::new(&g);
        if let Some(f) = args.option("fups") {
            for fup in &load_fups(f)? {
                idx.refine_for(&g, fup);
            }
        }
        (g, idx)
    };
    let fg = FrozenGraph::freeze(&g);
    if args.flag("paged") {
        let cz = idx.freeze_compressed();
        match args.option("page-size") {
            Some(_) => {
                mrx_store::save_paged_with(dest, &fg, &cz, args.option_parse("page-size", 0u32)?)?
            }
            None => mrx_store::save_paged(dest, &fg, &cz)?,
        }
        writeln!(
            out,
            "froze {} components ({} data nodes, demand-paged v6) to {dest}",
            cz.components.len(),
            fg.node_count()
        )?;
        return Ok(());
    }
    if args.flag("compress") {
        let cz = idx.freeze_compressed();
        mrx_store::save_compressed(dest, &fg, &cz)?;
        writeln!(
            out,
            "froze {} components ({} data nodes, compressed v5) to {dest}",
            cz.components.len(),
            fg.node_count()
        )?;
        return Ok(());
    }
    let fz = idx.freeze();
    mrx_store::save_frozen(dest, &fg, &fz)?;
    writeln!(
        out,
        "froze {} components ({} data nodes) to {dest}",
        fz.components.len(),
        fg.node_count()
    )?;
    Ok(())
}

fn cmd_workload(raw: Vec<String>, out: &mut impl std::io::Write) -> CmdResult {
    let args = Args::scan(raw, &["max-len", "count", "seed"])?;
    args.reject_unknown_flags(&["strict-refs"])?;
    let path = args.require_positional(0, "file.xml")?;
    let g = load_xml(path, args.flag("strict-refs"), out)?;
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: args.option_parse("max-len", 4)?,
            num_queries: args.option_parse("count", 20)?,
            seed: args.option_parse("seed", 1)?,
            max_enumerated_paths: 400_000,
        },
    );
    for q in &w.queries {
        writeln!(out, "{q}")?;
    }
    writeln!(out, "# length distribution:")?;
    for (len, frac) in w.length_histogram().iter().enumerate() {
        writeln!(out, "#   {len}: {:.1}%", frac * 100.0)?;
    }
    Ok(())
}

fn cmd_serve(raw: Vec<String>, out: &mut impl std::io::Write) -> CmdResult {
    let args = Args::scan(
        raw,
        &[
            "addr",
            "workers",
            "max-conns",
            "queue",
            "tenant-backlog",
            "quantum",
            "rate",
            "burst",
            "max-steps",
            "max-nodes",
            "timeout-ms",
            "cache-bytes",
        ],
    )?;
    args.reject_unknown_flags(&["strict"])?;
    let snapshot = args.require_positional(0, "file.mrx")?;
    let addr = args.option("addr").unwrap_or("127.0.0.1:7171");
    let mut cfg = mrx_serve::ServeConfig::new(addr, snapshot);
    cfg.workers = args.option_parse("workers", cfg.workers)?;
    cfg.max_conns = args.option_parse("max-conns", cfg.max_conns)?;
    cfg.queue_cap = args.option_parse("queue", cfg.queue_cap)?;
    cfg.tenant_backlog = args.option_parse("tenant-backlog", cfg.tenant_backlog)?;
    cfg.quantum = args.option_parse("quantum", cfg.quantum)?;
    cfg.strict_boot = args.flag("strict");
    if args.option("rate").is_some() {
        let rate: f64 = args.option_parse("rate", 0.0)?;
        let burst: f64 = args.option_parse("burst", rate.max(1.0))?;
        cfg.default_rate = Some(mrx_serve::TenantRate { rate, burst });
    }
    let mut budget = mrx_serve::TenantBudget::default();
    if args.option("max-steps").is_some() {
        budget.max_steps = Some(args.option_parse("max-steps", 0u64)?);
    }
    if args.option("max-nodes").is_some() {
        budget.max_result_nodes = Some(args.option_parse("max-nodes", 0u64)?);
    }
    if args.option("timeout-ms").is_some() {
        budget.deadline_ms = Some(args.option_parse("timeout-ms", 0u64)?);
    }
    cfg.default_budget = budget;
    if args.option("cache-bytes").is_some() {
        cfg.paged_cache_bytes = Some(args.option_parse("cache-bytes", 0u64)?);
    }
    mrx_serve::signal::reset();
    mrx_serve::signal::install();
    let server = mrx_serve::Server::start(cfg)?;
    writeln!(out, "serving {snapshot} on {}", server.addr())?;
    out.flush()?;
    while !mrx_serve::signal::triggered() && !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    writeln!(out, "draining…")?;
    let report = server.stop();
    writeln!(out, "{}", report.stats_json)?;
    Ok(())
}

fn cmd_client(raw: Vec<String>, out: &mut impl std::io::Write) -> CmdResult {
    let args = Args::scan(raw, &["tenant"])?;
    args.reject_unknown_flags(&[])?;
    let addr = args.require_positional(0, "host:port")?;
    let verb = args.require_positional(1, "verb")?;
    let mut client =
        mrx_serve::Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    match verb {
        "query" => {
            let expr = args.require_positional(2, "expr")?;
            let tenant = args.option("tenant").unwrap_or("default");
            let r = client.query(tenant, expr)?;
            writeln!(
                out,
                "{} node(s), epoch {}, cost {} index + {} data visits{}",
                r.nodes.len(),
                r.epoch,
                r.index_nodes,
                r.data_nodes,
                if r.validated { " (validated)" } else { "" }
            )?;
            for n in &r.nodes {
                writeln!(out, "{n}")?;
            }
        }
        "stats" => writeln!(out, "{}", client.stats()?)?,
        "reload" => {
            let path = args.require_positional(2, "file.mrx")?;
            writeln!(out, "{}", client.reload(path)?)?;
        }
        "ping" => {
            client.ping()?;
            writeln!(out, "pong")?;
        }
        "shutdown" => writeln!(out, "{}", client.shutdown_server()?)?,
        other => {
            return Err(Box::new(ArgError(format!(
                "unknown client verb `{other}` (query|stats|reload|ping|shutdown)"
            ))))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(cmd: &str, args: &[&str]) -> Result<String, String> {
        let mut out = Vec::new();
        run(cmd, args.iter().map(|s| s.to_string()).collect(), &mut out)
            .map_err(|e| e.to_string())?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn tempfile(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mrx-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    const DOC: &str = r#"<site><people><person id="p"><name/></person></people>
        <auction><seller person="p"/></auction></site>"#;

    #[test]
    fn help_prints_usage() {
        let s = run_cmd("help", &[]).unwrap();
        assert!(s.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_cmd("frobnicate", &[])
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn stats_on_document() {
        let p = tempfile("stats.xml", DOC);
        let s = run_cmd("stats", &[p.to_str().unwrap()]).unwrap();
        assert!(s.contains("nodes:            6"), "{s}");
        assert!(s.contains("reference edges:  1"), "{s}");
    }

    #[test]
    fn gen_writes_parseable_xml() {
        let s = run_cmd("gen", &["nasa", "--nodes", "300", "--seed", "1"]).unwrap();
        let g = xml::parse(&s).unwrap();
        assert!(g.node_count() > 100);
        assert!(run_cmd("gen", &["marsbase"])
            .unwrap_err()
            .contains("unknown dataset"));
    }

    #[test]
    fn index_kinds_build() {
        let p = tempfile("idx.xml", DOC);
        let f = p.to_str().unwrap();
        for kind in [
            "a0",
            "ak",
            "one",
            "ud",
            "dk-construct",
            "dk-promote",
            "mk",
            "mstar",
        ] {
            let s = run_cmd("index", &[f, "--kind", kind]).unwrap();
            assert!(s.contains("index nodes"), "{kind}: {s}");
        }
        assert!(run_cmd("index", &[f, "--kind", "btree"]).is_err());
    }

    #[test]
    fn index_batch_matches_sequential() {
        let p = tempfile("batch.xml", DOC);
        let fups = tempfile("batch-fups.txt", "//auction/seller/person\n//person/name\n");
        let f = p.to_str().unwrap();
        let fu = fups.to_str().unwrap();
        // The batched engine is oracle-tested for bit-identical indexes; here
        // just pin that the CLI wiring reaches the same summary line.
        for kind in ["dk-promote", "mk", "mstar"] {
            let seq = run_cmd("index", &[f, "--kind", kind, "--fups", fu]).unwrap();
            let bat = run_cmd("index", &[f, "--kind", kind, "--fups", fu, "--batch"]).unwrap();
            assert_eq!(seq, bat, "{kind}: batched summary diverged");
        }
        let err = run_cmd("index", &[f, "--kind", "a0", "--batch"]).unwrap_err();
        assert!(err.contains("adaptive kinds"), "{err}");
    }

    #[test]
    fn index_stats_flag() {
        let p = tempfile("statsflag.xml", DOC);
        let fups = tempfile("sf-fups.txt", "//auction/seller/person\n");
        let s = run_cmd(
            "index",
            &[
                p.to_str().unwrap(),
                "--kind",
                "mstar",
                "--fups",
                fups.to_str().unwrap(),
                "--stats",
            ],
        )
        .unwrap();
        assert!(s.contains("component I0:"), "{s}");
        assert!(s.contains("similarity: k=0"), "{s}");
    }

    #[test]
    fn index_stats_flag_reports_refinement() {
        let p = tempfile("refstats.xml", DOC);
        let f = p.to_str().unwrap();
        let s = run_cmd("index", &[f, "--kind", "ak", "--k", "2", "--stats"]).unwrap();
        assert!(s.contains("refinement: 2 round(s)"), "{s}");
        assert!(s.contains("round  1:"), "{s}");
        let s = run_cmd("index", &[f, "--kind", "one", "--stats"]).unwrap();
        assert!(s.contains("refinement:"), "{s}");
        let s = run_cmd("index", &[f, "--kind", "ud", "--stats"]).unwrap();
        assert!(s.contains("up (≈2):"), "{s}");
        assert!(s.contains("down (≈2-down):"), "{s}");
    }

    #[test]
    fn index_with_fups_and_save_then_lazy_query() {
        let doc = tempfile("save.xml", DOC);
        let fups = tempfile(
            "fups.txt",
            "# comment\n//auction/seller/person\n\n//person/name\n",
        );
        let saved = tempfile("saved.mrx", "");
        let s = run_cmd(
            "index",
            &[
                doc.to_str().unwrap(),
                "--kind",
                "mstar",
                "--fups",
                fups.to_str().unwrap(),
                "--save",
                saved.to_str().unwrap(),
            ],
        )
        .unwrap();
        assert!(s.contains("saved index"), "{s}");
        let q = run_cmd(
            "query",
            &[saved.to_str().unwrap(), "//seller/person", "--show-nodes"],
        )
        .unwrap();
        assert!(q.contains("1 answers"), "{q}");
        assert!(q.contains("loaded 2 of 3 components"), "{q}");
        assert!(q.contains("<person>"), "{q}");
    }

    #[test]
    fn freeze_and_frozen_query_roundtrip() {
        let doc = tempfile("freeze.xml", DOC);
        let fups = tempfile(
            "freeze-fups.txt",
            "//auction/seller/person\n//person/name\n",
        );
        let v1 = tempfile("freeze-v1.mrx", "");
        let v2 = tempfile("freeze-v2.mrx", "");
        run_cmd(
            "index",
            &[
                doc.to_str().unwrap(),
                "--kind",
                "mstar",
                "--fups",
                fups.to_str().unwrap(),
                "--save",
                v1.to_str().unwrap(),
            ],
        )
        .unwrap();
        // Freeze the persisted v1 index into a flat v2 snapshot.
        let s = run_cmd(
            "freeze",
            &[v1.to_str().unwrap(), "--out", v2.to_str().unwrap()],
        )
        .unwrap();
        assert!(s.contains("froze 3 components"), "{s}");

        let live = run_cmd("query", &[v1.to_str().unwrap(), "//seller/person"]).unwrap();
        let froz = run_cmd(
            "query",
            &[v2.to_str().unwrap(), "//seller/person", "--frozen"],
        )
        .unwrap();
        assert!(froz.contains("1 answers"), "{froz}");
        assert!(froz.contains("loaded 2 of 3 components"), "{froz}");
        // Same answer count and cost line as the live lazy path.
        assert_eq!(live.lines().next(), froz.lines().next());

        // show-nodes works against the frozen graph too.
        let shown = run_cmd(
            "query",
            &[
                v2.to_str().unwrap(),
                "//seller/person",
                "--frozen",
                "--show-nodes",
            ],
        )
        .unwrap();
        assert!(shown.contains("<person>"), "{shown}");

        // The v1 reader refuses the v2 file with a pointer to the frozen path.
        let e = run_cmd("query", &[v2.to_str().unwrap(), "//person"]).unwrap_err();
        assert!(e.contains("FrozenFile"), "{e}");
    }

    #[test]
    fn freeze_compress_and_autodetected_query() {
        let doc = tempfile("freezec.xml", DOC);
        let fups = tempfile("freezec-fups.txt", "//auction/seller/person\n");
        let v2 = tempfile("freezec-v2.mrx", "");
        let v3 = tempfile("freezec-v3.mrx", "");
        let common = [doc.to_str().unwrap(), "--fups", fups.to_str().unwrap()];
        run_cmd(
            "freeze",
            &[
                common[0],
                common[1],
                common[2],
                "--out",
                v2.to_str().unwrap(),
            ],
        )
        .unwrap();
        let s = run_cmd(
            "freeze",
            &[
                common[0],
                common[1],
                common[2],
                "--out",
                v3.to_str().unwrap(),
                "--compress",
            ],
        )
        .unwrap();
        assert!(s.contains("compressed v5"), "{s}");

        // `query --frozen` auto-detects the layout; answer and cost lines
        // match the flat snapshot exactly.
        let flat = run_cmd(
            "query",
            &[v2.to_str().unwrap(), "//auction/seller/person", "--frozen"],
        )
        .unwrap();
        let packed = run_cmd(
            "query",
            &[v3.to_str().unwrap(), "//auction/seller/person", "--frozen"],
        )
        .unwrap();
        assert_eq!(flat.lines().next(), packed.lines().next());
        assert!(packed.contains("extent bytes resident"), "{packed}");

        let shown = run_cmd(
            "query",
            &[
                v3.to_str().unwrap(),
                "//auction/seller/person",
                "--frozen",
                "--show-nodes",
            ],
        )
        .unwrap();
        assert!(shown.contains("<person>"), "{shown}");
    }

    #[test]
    fn freeze_paged_and_autodetected_query() {
        let doc = tempfile("freezep.xml", DOC);
        let fups = tempfile("freezep-fups.txt", "//auction/seller/person\n");
        let v2 = tempfile("freezep-v2.mrx", "");
        let v4 = tempfile("freezep-v4.mrx", "");
        let common = [doc.to_str().unwrap(), "--fups", fups.to_str().unwrap()];
        run_cmd(
            "freeze",
            &[
                common[0],
                common[1],
                common[2],
                "--out",
                v2.to_str().unwrap(),
            ],
        )
        .unwrap();
        let s = run_cmd(
            "freeze",
            &[
                common[0],
                common[1],
                common[2],
                "--out",
                v4.to_str().unwrap(),
                "--paged",
                "--page-size",
                "64",
            ],
        )
        .unwrap();
        assert!(s.contains("demand-paged v6"), "{s}");

        // A v4 file is auto-detected — no flag needed — and serves the
        // same answer and cost line as the flat snapshot.
        let flat = run_cmd(
            "query",
            &[v2.to_str().unwrap(), "//auction/seller/person", "--frozen"],
        )
        .unwrap();
        let paged = run_cmd("query", &[v4.to_str().unwrap(), "//auction/seller/person"]).unwrap();
        assert_eq!(flat.lines().next(), paged.lines().next());
        assert!(paged.contains("bytes demand-paged"), "{paged}");

        // --paged asserts the layout, --cache-bytes caps the cache, and
        // --stats adds the page-cache counters.
        let s = run_cmd(
            "query",
            &[
                v4.to_str().unwrap(),
                "//auction/seller/person",
                "--paged",
                "--cache-bytes",
                "4096",
                "--stats",
            ],
        )
        .unwrap();
        assert!(s.contains("pages: size=64"), "{s}");
        assert!(s.contains("faults="), "{s}");

        let shown = run_cmd(
            "query",
            &[
                v4.to_str().unwrap(),
                "//auction/seller/person",
                "--show-nodes",
            ],
        )
        .unwrap();
        assert!(shown.contains("<person>"), "{shown}");

        // Budgets govern the paged path too.
        let s = run_cmd(
            "query",
            &[
                v4.to_str().unwrap(),
                "//auction/seller/person",
                "--max-steps",
                "1",
            ],
        )
        .unwrap();
        assert!(s.contains("budget exhausted"), "{s}");

        // --paged on a non-v4 snapshot (or XML) is a clear error, as is
        // --page-size without --paged or --paged with --compress.
        let e = run_cmd("query", &[v2.to_str().unwrap(), "//person", "--paged"]).unwrap_err();
        assert!(e.contains("v4"), "{e}");
        let e = run_cmd("query", &[doc.to_str().unwrap(), "//person", "--paged"]).unwrap_err();
        assert!(e.contains("v4"), "{e}");
        let e = run_cmd(
            "freeze",
            &[
                common[0],
                "--out",
                v4.to_str().unwrap(),
                "--page-size",
                "64",
            ],
        )
        .unwrap_err();
        assert!(e.contains("--paged"), "{e}");
        let e = run_cmd(
            "freeze",
            &[
                common[0],
                "--out",
                v4.to_str().unwrap(),
                "--paged",
                "--compress",
            ],
        )
        .unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn freeze_from_xml_with_fups() {
        let doc = tempfile("freeze2.xml", DOC);
        let fups = tempfile("freeze2-fups.txt", "//auction/seller/person\n");
        let v2 = tempfile("freeze2.mrx", "");
        let s = run_cmd(
            "freeze",
            &[
                doc.to_str().unwrap(),
                "--fups",
                fups.to_str().unwrap(),
                "--out",
                v2.to_str().unwrap(),
            ],
        )
        .unwrap();
        assert!(s.contains("froze 3 components"), "{s}");
        let q = run_cmd(
            "query",
            &[v2.to_str().unwrap(), "//auction/seller/person", "--frozen"],
        )
        .unwrap();
        assert!(q.contains("1 answers"), "{q}");
        // Missing --out is a clear error.
        let e = run_cmd("freeze", &[doc.to_str().unwrap()]).unwrap_err();
        assert!(e.contains("--out"), "{e}");
    }

    #[test]
    fn query_on_xml_builds_and_answers() {
        let p = tempfile("query.xml", DOC);
        for kind in ["ak", "one", "mk", "mstar"] {
            let s = run_cmd(
                "query",
                &[p.to_str().unwrap(), "//seller/person", "--kind", kind],
            )
            .unwrap();
            assert!(s.contains("1 answers"), "{kind}: {s}");
        }
        let s = run_cmd("query", &[p.to_str().unwrap(), "//person", "--paper"]).unwrap();
        assert!(s.contains("answers"));
        assert!(run_cmd("query", &[p.to_str().unwrap(), "no-slash"]).is_err());
    }

    #[test]
    fn query_stats_flag_reports_session_counters() {
        let p = tempfile("qstats.xml", DOC);
        let s = run_cmd(
            "query",
            &[
                p.to_str().unwrap(),
                "//seller/person",
                "--kind",
                "mk",
                "--stats",
            ],
        )
        .unwrap();
        assert!(
            s.contains("session: queries=1 hits=0 misses=1 evictions=0"),
            "{s}"
        );
    }

    #[test]
    fn query_budget_flags_trip_and_report() {
        let p = tempfile("budget.xml", DOC);
        let f = p.to_str().unwrap();
        // One step of visits is never enough for this query.
        let s = run_cmd(
            "query",
            &[f, "//seller/person", "--max-steps", "1", "--stats"],
        )
        .unwrap();
        assert!(s.contains("budget exhausted (Steps)"), "{s}");
        assert!(s.contains("budget_trips=1"), "{s}");
        // A generous budget answers normally and reports no trips.
        let s = run_cmd(
            "query",
            &[f, "//seller/person", "--max-steps", "100000", "--stats"],
        )
        .unwrap();
        assert!(s.contains("1 answers"), "{s}");
        assert!(s.contains("budget_trips=0"), "{s}");
        // A result cap of zero trips on the first produced node.
        let s = run_cmd("query", &[f, "//person", "--max-nodes", "0"]).unwrap();
        assert!(s.contains("budget exhausted (ResultNodes)"), "{s}");
    }

    #[test]
    fn query_budget_applies_to_persisted_and_frozen_paths() {
        let doc = tempfile("budget-save.xml", DOC);
        let fups = tempfile("budget-fups.txt", "//auction/seller/person\n");
        let v1 = tempfile("budget-v1.mrx", "");
        let v2 = tempfile("budget-v2.mrx", "");
        run_cmd(
            "index",
            &[
                doc.to_str().unwrap(),
                "--kind",
                "mstar",
                "--fups",
                fups.to_str().unwrap(),
                "--save",
                v1.to_str().unwrap(),
            ],
        )
        .unwrap();
        run_cmd(
            "freeze",
            &[v1.to_str().unwrap(), "--out", v2.to_str().unwrap()],
        )
        .unwrap();
        for (file, extra) in [(&v1, &[][..]), (&v2, &["--frozen"][..])] {
            let mut a = vec![
                file.to_str().unwrap(),
                "//seller/person",
                "--max-steps",
                "1",
            ];
            a.extend_from_slice(extra);
            let s = run_cmd("query", &a).unwrap();
            assert!(s.contains("budget exhausted"), "{extra:?}: {s}");
            let mut a = vec![
                file.to_str().unwrap(),
                "//seller/person",
                "--max-steps",
                "100000",
            ];
            a.extend_from_slice(extra);
            let s = run_cmd("query", &a).unwrap();
            assert!(s.contains("1 answers"), "{extra:?}: {s}");
        }
    }

    const MESSY_DOC: &str = r#"<r><p id="a"/><p id="a"/><q refs="a zzz"/></r>"#;

    #[test]
    fn strict_refs_flag_rejects_and_lenient_warns() {
        let p = tempfile("messy.xml", MESSY_DOC);
        let f = p.to_str().unwrap();
        let s = run_cmd("stats", &[f]).unwrap();
        assert!(
            s.contains("warning: 1 duplicate ID declaration(s), 1 dangling IDREF token(s)"),
            "{s}"
        );
        let e = run_cmd("stats", &[f, "--strict-refs"]).unwrap_err();
        assert!(e.contains("duplicate ID"), "{e}");
        // Clean documents print no warning anywhere.
        let clean = tempfile("clean.xml", DOC);
        let s = run_cmd("index", &[clean.to_str().unwrap(), "--kind", "a0"]).unwrap();
        assert!(!s.contains("warning"), "{s}");
    }

    #[test]
    fn workload_lists_queries() {
        let p = tempfile("wl.xml", DOC);
        let s = run_cmd(
            "workload",
            &[p.to_str().unwrap(), "--count", "5", "--max-len", "3"],
        )
        .unwrap();
        assert_eq!(s.lines().filter(|l| l.starts_with("//")).count(), 5, "{s}");
        assert!(s.contains("length distribution"));
    }

    #[test]
    fn client_verbs_against_a_live_daemon() {
        let xml = tempfile("daemon.xml", DOC);
        let snap = std::env::temp_dir()
            .join(format!("mrx-cli-{}", std::process::id()))
            .join("daemon.mrx");
        run_cmd(
            "freeze",
            &[xml.to_str().unwrap(), "--out", snap.to_str().unwrap()],
        )
        .unwrap();
        let server =
            mrx_serve::Server::start(mrx_serve::ServeConfig::new("127.0.0.1:0", &snap)).unwrap();
        let addr = server.addr().to_string();
        assert!(run_cmd("client", &[&addr, "ping"])
            .unwrap()
            .contains("pong"));
        let q = run_cmd(
            "client",
            &[&addr, "query", "//person/name", "--tenant", "cli"],
        )
        .unwrap();
        assert!(q.contains("node(s), epoch 1"), "{q}");
        let stats = run_cmd("client", &[&addr, "stats"]).unwrap();
        assert!(stats.contains("\"epoch\":1"), "{stats}");
        let reload = run_cmd("client", &[&addr, "reload", snap.to_str().unwrap()]).unwrap();
        assert!(reload.contains("\"epoch\":2"), "{reload}");
        let bye = run_cmd("client", &[&addr, "shutdown"]).unwrap();
        assert!(bye.contains("draining"), "{bye}");
        server.stop();
        // Connection-level failures surface as errors, not panics.
        assert!(run_cmd("client", &[&addr, "ping"]).is_err());
    }

    #[test]
    fn serve_drains_on_signal_flag() {
        let xml = tempfile("sig.xml", DOC);
        let snap = std::env::temp_dir()
            .join(format!("mrx-cli-{}", std::process::id()))
            .join("sig.mrx");
        run_cmd(
            "freeze",
            &[xml.to_str().unwrap(), "--out", snap.to_str().unwrap()],
        )
        .unwrap();
        let snap_arg = snap.to_str().unwrap().to_string();
        let h = std::thread::spawn(move || {
            run_cmd(
                "serve",
                &[&snap_arg, "--addr", "127.0.0.1:0", "--workers", "2"],
            )
        });
        std::thread::sleep(std::time::Duration::from_millis(400));
        mrx_serve::signal::raise();
        let out = h.join().unwrap().unwrap();
        assert!(out.contains("serving"), "{out}");
        assert!(out.contains("\"counters\""), "{out}");
        mrx_serve::signal::reset();
    }

    #[test]
    fn bad_fups_file_reports_line() {
        let doc = tempfile("badfups.xml", DOC);
        let fups = tempfile("bad.txt", "//ok\nnot-a-path\n");
        let e = run_cmd(
            "index",
            &[
                doc.to_str().unwrap(),
                "--kind",
                "mk",
                "--fups",
                fups.to_str().unwrap(),
            ],
        )
        .unwrap_err();
        assert!(e.contains(":2:"), "{e}");
    }
}
