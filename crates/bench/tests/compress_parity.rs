//! Raw-vs-compressed parity: the delta-varint posting representation must
//! be invisible to queries.
//!
//! For every index family × dataset × serving temperature, the compressed
//! extent form ([`CompressedIndex`] / [`CompressedMStar`]) must return
//! **bit-identical answers and Cost counters** to the raw frozen CSR form
//! it was packed from — same evaluator, same policy, different physical
//! posting lists. Alongside the end-to-end sweep, seeded property tests
//! drive the posting blocks directly: encode/decode round-trips and
//! `next_seek` against a naive scan oracle, including the empty,
//! singleton, and dense-run shapes the block format special-cases. The
//! random lists mix all three block encodings (run, frame-of-reference
//! bit-packed, delta-varint), so the wire round-trips below cover
//! mixed-encoding arenas, and the pre-tag legacy wire is checked to
//! re-encode into an identical arena.

use mrx_bench::{Dataset, Scale};
use mrx_datagen::Prng;
use mrx_graph::FrozenGraph;
use mrx_index::query::{answer_compiled, answer_with_scratch};
use mrx_index::{
    AkIndex, CompressedIndex, CompressedMStar, DkIndex, FrozenIndex, MStarIndex, MkIndex,
    QueryScratch, TrustPolicy,
};
use mrx_postings::{PostingArena, SeekingIterator, SliceSeeker, BLOCK_LEN};
use mrx_workload::{Workload, WorkloadConfig};

const POLICIES: [TrustPolicy; 2] = [TrustPolicy::Proven, TrustPolicy::Claimed];

fn workload(g: &mrx_graph::DataGraph) -> Workload {
    Workload::generate(
        g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 30,
            seed: 11,
            max_enumerated_paths: 200_000,
        },
    )
}

/// Cold (fresh scratch per query) and warm (shared scratch) parity of one
/// frozen index against its compressed packing, under both policies.
fn assert_flat_parity(
    family: &str,
    dataset: &str,
    fzi: &FrozenIndex,
    fg: &FrozenGraph,
    w: &Workload,
) {
    let czi = CompressedIndex::from_frozen(fzi);
    czi.validate()
        .unwrap_or_else(|e| panic!("{family}/{dataset}: compressed index invalid: {e}"));
    for policy in POLICIES {
        let mut warm_raw = QueryScratch::new();
        let mut warm_packed = QueryScratch::new();
        for q in &w.queries {
            let cp = q.compile(fg);
            let cold_raw = answer_compiled(fzi, fg, &cp, policy);
            let cold_packed = answer_compiled(&czi, fg, &cp, policy);
            let ctx = format!("{family}/{dataset}/{policy:?} on {q}");
            assert_eq!(
                cold_packed.nodes, cold_raw.nodes,
                "cold answer mismatch: {ctx}"
            );
            assert_eq!(cold_packed.cost, cold_raw.cost, "cold cost mismatch: {ctx}");
            let wr = answer_with_scratch(fzi, fg, &cp, policy, &mut warm_raw);
            let wp = answer_with_scratch(&czi, fg, &cp, policy, &mut warm_packed);
            assert_eq!(wp.nodes, wr.nodes, "warm answer mismatch: {ctx}");
            assert_eq!(wp.cost, wr.cost, "warm cost mismatch: {ctx}");
            assert_eq!(wr.nodes, cold_raw.nodes, "warm != cold answer: {ctx}");
            assert_eq!(wr.cost, cold_raw.cost, "warm != cold cost: {ctx}");
        }
    }
}

/// The M*(k) hierarchy goes through its own top-down entry point.
fn assert_mstar_parity(dataset: &str, idx: &MStarIndex, fg: &FrozenGraph, w: &Workload) {
    let fz = idx.freeze();
    let cz = CompressedMStar::from_frozen(&fz);
    cz.validate()
        .unwrap_or_else(|e| panic!("mstar/{dataset}: compressed hierarchy invalid: {e}"));
    assert_eq!(cz.mutation_epoch(), fz.epoch, "epoch must survive packing");
    for policy in POLICIES {
        let mut warm_raw = QueryScratch::new();
        let mut warm_packed = QueryScratch::new();
        for q in &w.queries {
            let cp = q.compile(fg);
            let cold_raw = fz.query_top_down_compiled(fg, &cp, policy);
            let cold_packed = cz.query_top_down_compiled(fg, &cp, policy);
            let ctx = format!("mstar/{dataset}/{policy:?} on {q}");
            assert_eq!(
                cold_packed.nodes, cold_raw.nodes,
                "cold answer mismatch: {ctx}"
            );
            assert_eq!(cold_packed.cost, cold_raw.cost, "cold cost mismatch: {ctx}");
            let wr = fz.query_top_down_with_scratch(fg, &cp, policy, &mut warm_raw);
            let wp = cz.query_top_down_with_scratch(fg, &cp, policy, &mut warm_packed);
            assert_eq!(wp.nodes, wr.nodes, "warm answer mismatch: {ctx}");
            assert_eq!(wp.cost, wr.cost, "warm cost mismatch: {ctx}");
            assert_eq!(wr.nodes, cold_raw.nodes, "warm != cold answer: {ctx}");
            assert_eq!(wr.cost, cold_raw.cost, "warm != cold cost: {ctx}");
        }
    }
}

/// All six families on one dataset: A(0), A(2), A(4), D(k)-promote, M(k),
/// and the M*(k) hierarchy.
fn parity_sweep(dataset: Dataset) {
    let name = dataset.name();
    let g = dataset.load(Scale::Tiny);
    let w = workload(&g);
    let fg = FrozenGraph::freeze(&g);
    fg.validate().expect("frozen graph invalid");

    for k in [0u32, 2, 4] {
        let ak = AkIndex::build(&g, k);
        let family = match k {
            0 => "a0",
            2 => "a2",
            _ => "a4",
        };
        assert_flat_parity(family, name, &FrozenIndex::freeze(ak.graph()), &fg, &w);
    }

    let mut dk = DkIndex::a0(&g);
    for q in &w.queries {
        dk.promote_for(&g, q);
    }
    assert_flat_parity("dk", name, &FrozenIndex::freeze(dk.graph()), &fg, &w);

    let mut mk = MkIndex::new(&g);
    for q in &w.queries {
        mk.refine_for(&g, q);
    }
    assert_flat_parity("mk", name, &FrozenIndex::freeze(mk.graph()), &fg, &w);

    let mut mstar = MStarIndex::new(&g);
    for q in &w.queries {
        mstar.refine_for(&g, q);
    }
    assert_mstar_parity(name, &mstar, &fg, &w);
}

#[test]
fn parity_xmark() {
    parity_sweep(Dataset::XMark);
}

#[test]
fn parity_nasa() {
    parity_sweep(Dataset::Nasa);
}

// --- Property tests over the posting blocks themselves -------------------

/// A random strictly ascending list whose shape is drawn from the cases
/// the block format treats differently: empty, singleton, shorter than one
/// block, block-aligned, multi-block, dense runs (delta 1 — whole blocks
/// become tag-only run blocks), small bounded gaps (bit-packed blocks at
/// assorted widths), and sparse jumps (delta-varint blocks). Long lists
/// switch regime every few steps, so multi-block lists mix encodings
/// block to block.
fn random_list(rng: &mut Prng) -> Vec<u32> {
    let shape = rng.gen_range(0..7usize);
    let len = match shape {
        0 => 0,
        1 => 1,
        2 => rng.gen_range(2..BLOCK_LEN),
        3 => BLOCK_LEN,
        4 => BLOCK_LEN + 1,
        _ => rng.gen_range(2..1200usize),
    };
    let mut v = Vec::with_capacity(len);
    let mut cur = rng.gen_range(0u64..64) as u32;
    // 0 = run, 1 = small bounded gaps (bit-packed), 2 = sparse (varint).
    let mut regime = rng.gen_range(0..3usize);
    for i in 0..len {
        v.push(cur);
        if i % 96 == 95 {
            regime = rng.gen_range(0..3usize);
        }
        let gap = match regime {
            0 => 1,
            1 => {
                let width = rng.gen_range(1..10u64);
                rng.gen_range(1u64..1 << width) as u32
            }
            _ => rng.gen_range(1u64..10_000) as u32,
        };
        cur = cur.saturating_add(gap);
        if cur == *v.last().unwrap() {
            break; // saturated at u32::MAX; list stays strictly ascending
        }
    }
    v
}

#[test]
fn encode_decode_round_trip() {
    let mut rng = Prng::seed_from_u64(0xB10C);
    for _ in 0..300 {
        let mut arena = PostingArena::new();
        let lists: Vec<Vec<u32>> = (0..rng.gen_range(1..12usize))
            .map(|_| random_list(&mut rng))
            .collect();
        for l in &lists {
            arena.push_list(l);
        }
        assert_eq!(arena.num_lists(), lists.len());
        let mut out: Vec<u32> = Vec::new();
        for (i, l) in lists.iter().enumerate() {
            assert_eq!(arena.len_of(i), l.len(), "len_of(list {i})");
            assert_eq!(arena.first_of(i), l.first().copied(), "first_of(list {i})");
            out.clear();
            arena.decode_into(i, &mut out);
            assert_eq!(&out, l, "decode_into(list {i}) round-trip");
        }
        // Wire round-trip: parts -> from_parts must reproduce the arena.
        let (data, block_first, block_off, list_len) = arena.parts();
        let back = PostingArena::from_parts(
            data.to_vec(),
            block_first.to_vec(),
            block_off.to_vec(),
            list_len.to_vec(),
        )
        .expect("parts of a valid arena must re-validate");
        assert_eq!(back, arena);
        // Legacy wire round-trip: the pre-tag varint-only arrays must
        // re-validate and re-encode into the identical tagged arena.
        let (ldata, lbf, lbo, lll) = arena.legacy_parts();
        let legacy = PostingArena::from_parts_legacy(ldata, lbf, lbo, lll)
            .expect("legacy parts of a valid arena must re-validate");
        assert_eq!(legacy, arena);
    }
}

#[test]
fn next_seek_matches_naive_scan_oracle() {
    let mut rng = Prng::seed_from_u64(0x5EEC);
    for round in 0..300 {
        let list = random_list(&mut rng);
        let mut arena = PostingArena::new();
        arena.push_list(&list);

        // Drive cursor and slice seeker through an interleaving of `next`
        // and `next_seek` calls, mirrored against a naive scan position.
        let mut cur = arena.cursor(0);
        let mut sli = SliceSeeker::new(&list);
        let mut pos = 0usize; // oracle: next unreturned element index
        for _ in 0..200 {
            if rng.gen_bool(0.4) {
                let want = if pos < list.len() {
                    pos += 1;
                    Some(list[pos - 1])
                } else {
                    None
                };
                assert_eq!(cur.next(), want, "round {round}: cursor next");
                assert_eq!(sli.next(), want, "round {round}: slice next");
            } else {
                let target = if list.is_empty() || rng.gen_bool(0.2) {
                    rng.gen_range(0u64..20_000) as u32
                } else {
                    // Bias targets near real elements to hit block seams.
                    let base = list[rng.gen_range(0..list.len())];
                    base.saturating_add(rng.gen_range(0u64..3) as u32)
                        .saturating_sub(1)
                };
                // Oracle: first remaining element >= target, never moving
                // backwards past already-returned ids.
                let mut p = pos;
                while p < list.len() && list[p] < target {
                    p += 1;
                }
                let want = if p < list.len() {
                    pos = p + 1;
                    Some(list[p])
                } else {
                    pos = list.len();
                    None
                };
                assert_eq!(
                    cur.next_seek(target),
                    want,
                    "round {round}: cursor seek {target}"
                );
                assert_eq!(
                    sli.next_seek(target),
                    want,
                    "round {round}: slice seek {target}"
                );
            }
        }
    }
}

#[test]
fn next_seek_edge_shapes() {
    // Empty list: everything is None.
    let mut arena = PostingArena::new();
    arena.push_list::<u32>(&[]);
    let mut c = arena.cursor(0);
    assert_eq!(c.next(), None);
    assert_eq!(c.next_seek(0), None);
    assert_eq!(SliceSeeker::<u32>::new(&[]).next_seek(7), None);

    // Singleton: seek before, at, and past the element.
    let mut arena = PostingArena::new();
    arena.push_list(&[42u32]);
    let mut c = arena.cursor(0);
    assert_eq!(c.next_seek(41), Some(42));
    assert_eq!(c.next_seek(42), None, "already consumed");
    let mut c = arena.cursor(0);
    assert_eq!(c.next_seek(43), None);

    // Dense run spanning several blocks: a seek into the middle of a later
    // block must land exactly, and seeks never rewind.
    let run: Vec<u32> = (1000..1000 + 3 * BLOCK_LEN as u32 + 17).collect();
    let mut arena = PostingArena::new();
    arena.push_list(&run);
    let mut c = arena.cursor(0);
    let mid = 1000 + 2 * BLOCK_LEN as u32 + 5;
    assert_eq!(c.next_seek(mid), Some(mid));
    assert_eq!(c.next(), Some(mid + 1));
    assert_eq!(c.next_seek(0), Some(mid + 2), "stale target acts like next");
    assert_eq!(c.next_seek(u32::MAX), None);
}
