//! Eager-vs-paged parity: the demand-paged (v4) serving path must be
//! invisible to queries.
//!
//! For every index family × dataset × serving temperature, the paged form
//! ([`PagedIndex`] / [`PagedMStar`] served through a byte-budgeted
//! [`PageCache`]) must return **bit-identical answers and Cost counters**
//! to the eager frozen and compressed forms it was written from — same
//! evaluator, same policy, but extents and the node map faulted in page
//! by page. The sweep deliberately uses tiny 64-byte pages and a cache
//! budget far below the paged region, so every query crosses page seams
//! and churns the clock hand; parity must survive eviction and re-read.
//!
//! (`PagedIndex` is spelled out in the flat-family helper through
//! `PagedMStar::components`; the type itself never needs naming.)

use mrx_bench::{Dataset, Scale};
use mrx_graph::FrozenGraph;
use mrx_index::query::{answer_compiled, answer_with_scratch};
use mrx_index::{
    AkIndex, CompressedIndex, CompressedMStar, DkIndex, FrozenIndex, MStarIndex, MkIndex,
    PagedMStar, QueryScratch, TrustPolicy,
};
use mrx_store::{paged_image, LazyGraph, PagedFile};
use mrx_workload::{Workload, WorkloadConfig};

const POLICIES: [TrustPolicy; 2] = [TrustPolicy::Proven, TrustPolicy::Claimed];

/// Tiny pages force extent runs to straddle seams; a budget of only 64
/// evictable pages forces eviction-then-reread churn mid-query.
const PAGE: u32 = 64;
const CACHE: u64 = 64 * PAGE as u64;

fn workload(g: &mrx_graph::DataGraph) -> Workload {
    Workload::generate(
        g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 30,
            seed: 11,
            max_enumerated_paths: 200_000,
        },
    )
}

/// Packs a hierarchy into an in-memory v4 image and activates it fully,
/// handing back the lazy graph, the paged star, and their shared cache
/// for poison/stat checks. The paged side of every parity comparison
/// evaluates against the [`LazyGraph`] — the exact object the v4 serving
/// path hands out — so lazy unit loading is itself under test.
fn open_paged(
    fg: &FrozenGraph,
    cz: &CompressedMStar,
    ctx: &str,
) -> (LazyGraph, PagedMStar, std::rc::Rc<mrx_pagecache::PageCache>) {
    let image = paged_image(fg, cz, PAGE).unwrap_or_else(|e| panic!("{ctx}: pack failed: {e}"));
    let file =
        PagedFile::open_bytes(image, CACHE).unwrap_or_else(|e| panic!("{ctx}: open failed: {e}"));
    let (lg, star, cache) = file
        .into_parts()
        .unwrap_or_else(|e| panic!("{ctx}: activation failed: {e}"));
    assert_eq!(lg.node_count(), fg.node_count(), "{ctx}: graph round-trip");
    (lg, star, cache)
}

/// Cold (fresh scratch per query) and warm (shared scratch) parity of one
/// frozen index against its paged packing, under both policies. The flat
/// family rides as a single-component hierarchy; the `+ 1` keeps the v4
/// header's epoch invariant (sum of component epochs plus the count).
fn assert_flat_parity(
    family: &str,
    dataset: &str,
    fzi: &FrozenIndex,
    fg: &FrozenGraph,
    w: &Workload,
) {
    let czi = CompressedIndex::from_frozen(fzi);
    let wrapper = CompressedMStar {
        epoch: czi.epoch + 1,
        components: vec![czi],
    };
    let ctx0 = format!("{family}/{dataset}");
    let (lg, star, cache) = open_paged(fg, &wrapper, &ctx0);
    let pzi = &star.components[0];
    let czi = &wrapper.components[0];
    for policy in POLICIES {
        let mut warm_raw = QueryScratch::new();
        let mut warm_paged = QueryScratch::new();
        for q in &w.queries {
            let cp = q.compile(fg);
            let cpl = q.compile(&lg);
            let cold_raw = answer_compiled(fzi, fg, &cp, policy);
            let cold_packed = answer_compiled(czi, fg, &cp, policy);
            let cold_paged = answer_compiled(pzi, &lg, &cpl, policy);
            let ctx = format!("{ctx0}/{policy:?} on {q}");
            assert_eq!(
                cold_paged.nodes, cold_raw.nodes,
                "cold answer vs raw: {ctx}"
            );
            assert_eq!(cold_paged.cost, cold_raw.cost, "cold cost vs raw: {ctx}");
            assert_eq!(
                cold_paged.nodes, cold_packed.nodes,
                "cold answer vs compressed: {ctx}"
            );
            assert_eq!(
                cold_paged.cost, cold_packed.cost,
                "cold cost vs compressed: {ctx}"
            );
            let wr = answer_with_scratch(fzi, fg, &cp, policy, &mut warm_raw);
            let wp = answer_with_scratch(pzi, &lg, &cpl, policy, &mut warm_paged);
            assert_eq!(wp.nodes, wr.nodes, "warm answer mismatch: {ctx}");
            assert_eq!(wp.cost, wr.cost, "warm cost mismatch: {ctx}");
            assert_eq!(wr.nodes, cold_raw.nodes, "warm != cold answer: {ctx}");
            assert_eq!(wr.cost, cold_raw.cost, "warm != cold cost: {ctx}");
        }
    }
    assert!(
        cache.take_poison().is_none(),
        "{ctx0}: clean sweep must not poison the cache"
    );
    let s = cache.stats();
    assert!(s.faults > 0, "{ctx0}: paged serving must actually fault");
    assert_eq!(s.checksum_failures, 0, "{ctx0}: no checksum failures");
}

/// The M*(k) hierarchy goes through its own top-down entry point.
fn assert_mstar_parity(dataset: &str, idx: &MStarIndex, fg: &FrozenGraph, w: &Workload) {
    let fz = idx.freeze();
    let cz = CompressedMStar::from_frozen(&fz);
    let ctx0 = format!("mstar/{dataset}");
    let (lg, star, cache) = open_paged(fg, &cz, &ctx0);
    assert_eq!(star.mutation_epoch(), fz.epoch, "epoch must survive paging");
    for policy in POLICIES {
        let mut warm_raw = QueryScratch::new();
        let mut warm_paged = QueryScratch::new();
        for q in &w.queries {
            let cp = q.compile(fg);
            let cpl = q.compile(&lg);
            let cold_raw = fz.query_top_down_compiled(fg, &cp, policy);
            let cold_paged =
                star.query_top_down_with_scratch(&lg, &cpl, policy, &mut QueryScratch::new());
            let ctx = format!("{ctx0}/{policy:?} on {q}");
            assert_eq!(
                cold_paged.nodes, cold_raw.nodes,
                "cold answer mismatch: {ctx}"
            );
            assert_eq!(cold_paged.cost, cold_raw.cost, "cold cost mismatch: {ctx}");
            let wr = fz.query_top_down_with_scratch(fg, &cp, policy, &mut warm_raw);
            let wp = star.query_top_down_with_scratch(&lg, &cpl, policy, &mut warm_paged);
            assert_eq!(wp.nodes, wr.nodes, "warm answer mismatch: {ctx}");
            assert_eq!(wp.cost, wr.cost, "warm cost mismatch: {ctx}");
            assert_eq!(wr.nodes, cold_raw.nodes, "warm != cold answer: {ctx}");
            assert_eq!(wr.cost, cold_raw.cost, "warm != cold cost: {ctx}");
        }
    }
    assert!(
        cache.take_poison().is_none(),
        "{ctx0}: clean sweep must not poison the cache"
    );
    let s = cache.stats();
    assert!(s.faults > 0, "{ctx0}: paged serving must actually fault");
    assert!(
        s.evictions > 0,
        "{ctx0}: the tight budget must force eviction churn"
    );
}

/// All six families on one dataset: A(0), A(2), A(4), D(k)-promote, M(k),
/// and the M*(k) hierarchy.
fn parity_sweep(dataset: Dataset) {
    let name = dataset.name();
    let g = dataset.load(Scale::Tiny);
    let w = workload(&g);
    let fg = FrozenGraph::freeze(&g);
    fg.validate().expect("frozen graph invalid");

    for k in [0u32, 2, 4] {
        let ak = AkIndex::build(&g, k);
        let family = match k {
            0 => "a0",
            2 => "a2",
            _ => "a4",
        };
        assert_flat_parity(family, name, &FrozenIndex::freeze(ak.graph()), &fg, &w);
    }

    let mut dk = DkIndex::a0(&g);
    for q in &w.queries {
        dk.promote_for(&g, q);
    }
    assert_flat_parity("dk", name, &FrozenIndex::freeze(dk.graph()), &fg, &w);

    let mut mk = MkIndex::new(&g);
    for q in &w.queries {
        mk.refine_for(&g, q);
    }
    assert_flat_parity("mk", name, &FrozenIndex::freeze(mk.graph()), &fg, &w);

    let mut mstar = MStarIndex::new(&g);
    for q in &w.queries {
        mstar.refine_for(&g, q);
    }
    assert_mstar_parity(name, &mstar, &fg, &w);
}

#[test]
fn paged_parity_xmark() {
    parity_sweep(Dataset::XMark);
}

#[test]
fn paged_parity_nasa() {
    parity_sweep(Dataset::Nasa);
}
