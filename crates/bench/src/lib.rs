//! Experiment harness reproducing §5 of He & Yang (ICDE 2004).
//!
//! Every figure in the paper's evaluation maps to a generator here:
//!
//! | Figures | Content | Entry point |
//! |---------|---------|-------------|
//! | 8, 9 | query-length distributions | [`figures::figure`] 8 / 9 |
//! | 10–13 | cost vs size, max length 9 | [`figures::figure`] 10–13 |
//! | 14–17 | index growth, max length 9 | [`figures::figure`] 14–17 |
//! | 18–22 | cost vs size, max length 4 | [`figures::figure`] 18–22 |
//! | 23–26 | index growth, max length 4 | [`figures::figure`] 23–26 |
//!
//! Experiment scale is configurable ([`Scale`], honouring the `MRX_SCALE`
//! and `MRX_QUERIES` environment variables) because the paper's full scale
//! (~120k-node XMark, ~90k-node NASA, 500 queries) takes a while under five
//! index families; the *shapes* the paper reports emerge at every scale.

pub mod datasets;
pub mod experiment;
pub mod figures;
pub mod json;
pub mod plot;
pub mod timing;

pub use datasets::{Dataset, Scale};
pub use experiment::{AdaptiveRun, AkPoint, CostSizeExperiment, GrowthPoint, IndexKind, SizedCost};
pub use figures::{figure, figure_ids, FigureData, Series};
pub use plot::render_svg;
