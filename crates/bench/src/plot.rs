//! Static SVG rendering of the paper's figures.
//!
//! Design rules follow the data-viz method this repository's tooling uses:
//!
//! * color by job: the index families are *identities* → categorical hues in
//!   a fixed, validated slot order (worst adjacent CVD ΔE 24.2 on the light
//!   surface; the aqua/yellow slots sit below 3:1 contrast, so every series
//!   is also direct-labeled and each figure ships a CSV table alongside);
//!   the single-series histograms use the sequential blue instead;
//! * color follows the entity: each index family keeps its slot in every
//!   figure, regardless of which series a figure contains;
//! * marks: 2px round-capped lines, r=4 markers with a 2px surface ring,
//!   bars ≤ 24px with a 4px rounded data-end and square baseline, hairline
//!   solid gridlines one step off the surface;
//! * text wears text tokens (primary/secondary ink), never the series color;
//! * a legend is always present for ≥ 2 series; a single series is named by
//!   the title; native `<title>` tooltips ride every mark.

use std::fmt::Write as _;

use crate::figures::FigureData;

// Reference palette (light mode, surface #fcfcfb), validated slot order.
const SURFACE: &str = "#fcfcfb";
const GRID: &str = "#e8e7e4";
const TEXT_PRIMARY: &str = "#0b0b0b";
const TEXT_SECONDARY: &str = "#52514e";
const SEQUENTIAL: &str = "#2a78d6";
const CATEGORICAL: [&str; 8] = [
    "#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948", "#e87ba4", "#eb6834",
];

/// Fixed slot per index family — identical across every figure, so a family
/// never changes hue when a figure drops series (color follows the entity).
fn slot_for(name: &str) -> usize {
    match name {
        "A(k)-index" => 0,
        "D(k)-index construct" => 1,
        "D(k)-index promote" => 2,
        "M(k)-index" => 3,
        "M*(k)-index" => 4,
        _ => 5,
    }
}

const WIDTH: f64 = 780.0;
const HEIGHT: f64 = 460.0;
const MARGIN_LEFT: f64 = 78.0;
const MARGIN_RIGHT_LEGEND: f64 = 196.0;
const MARGIN_RIGHT_PLAIN: f64 = 28.0;
const MARGIN_TOP: f64 = 56.0;
const MARGIN_BOTTOM: f64 = 64.0;

/// Renders a figure as a standalone SVG document.
pub fn render_svg(fig: &FigureData) -> String {
    match fig.id {
        8 | 9 => render_bars(fig),
        _ => render_lines(fig),
    }
}

/// "Nice" tick positions covering `0..=max`.
fn ticks(max: f64) -> (Vec<f64>, f64) {
    let max = if max <= 0.0 { 1.0 } else { max };
    let raw = max / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| max / s <= 5.5)
        .unwrap_or(10.0 * mag);
    let top = (max / step).ceil() * step;
    let mut t = Vec::new();
    let mut v = 0.0;
    while v <= top + step * 0.01 {
        t.push(v);
        v += step;
    }
    (t, top)
}

fn fmt_num(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    if v.fract().abs() > 1e-9 && v.abs() < 10.0 {
        return format!("{v:.2}");
    }
    let i = v.round() as i64;
    let mut s = i.abs().to_string();
    let mut out = String::new();
    while s.len() > 3 {
        let rest = s.split_off(s.len() - 3);
        out = format!(",{rest}{out}");
    }
    format!("{}{}{}", if i < 0 { "-" } else { "" }, s, out)
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

struct Canvas {
    svg: String,
    plot_w: f64,
    plot_h: f64,
}

impl Canvas {
    fn new(fig: &FigureData, legend: bool) -> Canvas {
        let right = if legend {
            MARGIN_RIGHT_LEGEND
        } else {
            MARGIN_RIGHT_PLAIN
        };
        let plot_w = WIDTH - MARGIN_LEFT - right;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="system-ui, -apple-system, 'Segoe UI', sans-serif">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="{SURFACE}"/>"#
        );
        // Title (primary ink) and axis labels (secondary ink).
        let _ = write!(
            svg,
            r#"<text x="{MARGIN_LEFT}" y="24" font-size="14" font-weight="600" fill="{TEXT_PRIMARY}">Figure {}: {}</text>"#,
            fig.id,
            esc(&fig.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="12" fill="{TEXT_SECONDARY}" text-anchor="middle">{}</text>"#,
            MARGIN_LEFT + plot_w / 2.0,
            HEIGHT - 16.0,
            esc(&fig.xlabel)
        );
        let _ = write!(
            svg,
            r#"<text x="18" y="{}" font-size="12" fill="{TEXT_SECONDARY}" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            esc(&fig.ylabel)
        );
        Canvas {
            svg,
            plot_w,
            plot_h,
        }
    }

    fn x(&self, frac: f64) -> f64 {
        MARGIN_LEFT + frac * self.plot_w
    }

    fn y(&self, frac: f64) -> f64 {
        MARGIN_TOP + (1.0 - frac) * self.plot_h
    }

    /// Horizontal hairline gridlines + y tick labels (tabular numerals).
    fn y_axis(&mut self, tick_vals: &[f64], top: f64, as_percent: bool) {
        for &t in tick_vals {
            let y = self.y(t / top);
            let _ = write!(
                self.svg,
                r#"<line x1="{}" y1="{y}" x2="{}" y2="{y}" stroke="{GRID}" stroke-width="1"/>"#,
                self.x(0.0),
                self.x(1.0)
            );
            let label = if as_percent {
                format!("{:.0}%", t * 100.0)
            } else {
                fmt_num(t)
            };
            let _ = write!(
                self.svg,
                r#"<text x="{}" y="{}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="end" style="font-variant-numeric: tabular-nums">{label}</text>"#,
                self.x(0.0) - 8.0,
                y + 3.5
            );
        }
    }

    fn x_tick(&mut self, frac: f64, label: &str) {
        let x = self.x(frac);
        let _ = write!(
            self.svg,
            r#"<text x="{x}" y="{}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="middle" style="font-variant-numeric: tabular-nums">{label}</text>"#,
            self.y(0.0) + 18.0
        );
    }

    /// Legend column on the right: line-key + marker + name in secondary ink.
    fn legend(&mut self, series: &[(&str, &str)]) {
        let x0 = MARGIN_LEFT + self.plot_w + 18.0;
        for (i, (name, color)) in series.iter().enumerate() {
            let y = MARGIN_TOP + 10.0 + i as f64 * 22.0;
            let _ = write!(
                self.svg,
                r#"<line x1="{x0}" y1="{y}" x2="{}" y2="{y}" stroke="{color}" stroke-width="2" stroke-linecap="round"/>"#,
                x0 + 18.0
            );
            let _ = write!(
                self.svg,
                r#"<circle cx="{}" cy="{y}" r="4" fill="{color}" stroke="{SURFACE}" stroke-width="2"/>"#,
                x0 + 9.0
            );
            let _ = write!(
                self.svg,
                r#"<text x="{}" y="{}" font-size="12" fill="{TEXT_SECONDARY}">{}</text>"#,
                x0 + 26.0,
                y + 4.0,
                esc(name)
            );
        }
    }

    fn finish(mut self) -> String {
        self.svg.push_str("</svg>");
        self.svg
    }
}

/// Figures 8/9: single-series histogram → bars, sequential hue, no legend.
fn render_bars(fig: &FigureData) -> String {
    let series = &fig.series[0];
    let mut c = Canvas::new(fig, false);
    let max = series.points.iter().map(|p| p.1).fold(0.0, f64::max);
    let (tick_vals, top) = ticks(max);
    c.y_axis(&tick_vals, top, true);
    let n = series.points.len().max(1);
    let band = c.plot_w / n as f64;
    let bar_w = (band - 2.0).min(24.0); // ≤24px thick, ≥2px gap
    let max_idx = series
        .points
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map(|(i, _)| i);
    for (i, &(x, v)) in series.points.iter().enumerate() {
        let cx = c.x((i as f64 + 0.5) / n as f64);
        let y1 = c.y(v / top);
        let y0 = c.y(0.0);
        let h = (y0 - y1).max(0.0);
        // 4px rounded data-end, square baseline.
        let r = 4.0f64.min(h).min(bar_w / 2.0);
        let x0 = cx - bar_w / 2.0;
        let _ = write!(
            c.svg,
            r#"<path d="M{x0},{y0} L{x0},{} Q{x0},{y1} {},{y1} L{},{y1} Q{},{y1} {},{} L{},{y0} Z" fill="{SEQUENTIAL}"><title>length {}: {:.1}%</title></path>"#,
            y1 + r,
            x0 + r,
            x0 + bar_w - r,
            x0 + bar_w,
            x0 + bar_w,
            y1 + r,
            x0 + bar_w,
            x,
            v * 100.0
        );
        c.x_tick((i as f64 + 0.5) / n as f64, &fmt_num(x));
        // Label the extreme only; the axis carries the rest.
        if Some(i) == max_idx {
            let _ = write!(
                c.svg,
                r#"<text x="{cx}" y="{}" font-size="11" fill="{TEXT_SECONDARY}" text-anchor="middle">{:.0}%</text>"#,
                y1 - 6.0,
                v * 100.0
            );
        }
    }
    c.finish()
}

/// Cost-vs-size scatters and growth curves: categorical multi-series.
/// Multi-point series (the A(k) sweep, ordered by k; growth curves, ordered
/// by query count) are connected; single-point series are lone markers.
fn render_lines(fig: &FigureData) -> String {
    let mut c = Canvas::new(fig, fig.series.len() >= 2);
    let xmax = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .fold(0.0, f64::max);
    let ymax = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(0.0, f64::max);
    let (ytick, ytop) = ticks(ymax);
    let (xtick, xtop) = ticks(xmax);
    c.y_axis(&ytick, ytop, false);
    for &t in &xtick {
        c.x_tick(t / xtop, &fmt_num(t));
    }
    let mut legend: Vec<(&str, &str)> = Vec::new();
    // Direct labels are placed collision-aware: a label whose box would
    // overlap an already-placed one is dropped (the legend and the native
    // tooltips still identify the series) — never stacked or nudged off
    // its mark.
    let mut placed_labels: Vec<(f64, f64, f64)> = Vec::new(); // (x, y, width)
    for s in &fig.series {
        let color = CATEGORICAL[slot_for(&s.name)];
        legend.push((s.name.as_str(), color));
        // Connect multi-point series with a 2px round-capped line.
        if s.points.len() >= 2 {
            let d: Vec<String> = s
                .points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| {
                    format!(
                        "{}{:.1},{:.1}",
                        if i == 0 { "M" } else { "L" },
                        c.x(x / xtop),
                        c.y(y / ytop)
                    )
                })
                .collect();
            let _ = write!(
                c.svg,
                r#"<path d="{}" fill="none" stroke="{color}" stroke-width="2" stroke-linecap="round" stroke-linejoin="round"/>"#,
                d.join(" ")
            );
        }
        // Markers: r=4, 2px surface ring, native tooltip.
        for &(x, y) in &s.points {
            let _ = write!(
                c.svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{color}" stroke="{SURFACE}" stroke-width="2"><title>{}: ({}, {})</title></circle>"#,
                c.x(x / xtop),
                c.y(y / ytop),
                esc(&s.name),
                fmt_num(x),
                fmt_num(y)
            );
        }
        // Direct labels (the relief rule for the low-contrast slots): label
        // single-point series beside the marker; label the line end of
        // multi-point series. Text in secondary ink, identity from the mark.
        if let Some(&(x, y)) = s.points.last() {
            let label = short_name(&s.name);
            let lx = (c.x(x / xtop) + 8.0).min(MARGIN_LEFT + c.plot_w + 6.0);
            let ly = c.y(y / ytop) - 7.0;
            let w = label.len() as f64 * 6.0;
            let collides = placed_labels.iter().any(|&(px, py, pw)| {
                (lx - px).abs() < (w + pw) / 2.0 + 4.0 && (ly - py).abs() < 12.0
            });
            if !collides {
                placed_labels.push((lx, ly, w));
                let _ = write!(
                    c.svg,
                    r#"<text x="{lx:.1}" y="{ly:.1}" font-size="10" fill="{TEXT_SECONDARY}">{}</text>"#,
                    esc(label)
                );
            }
        }
    }
    if fig.series.len() >= 2 {
        c.legend(&legend);
    }
    c.finish()
}

fn short_name(name: &str) -> &str {
    match name {
        "A(k)-index" => "A(k)",
        "D(k)-index construct" => "D(k)-con",
        "D(k)-index promote" => "D(k)-pro",
        "M(k)-index" => "M(k)",
        "M*(k)-index" => "M*(k)",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{Series, Suite};
    use crate::Scale;

    #[test]
    fn bars_render_for_distribution_figures() {
        let fig = Suite::new(Scale::Tiny).figure(9);
        let svg = render_svg(&fig);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(
            svg.contains(SEQUENTIAL),
            "single series uses the sequential hue"
        );
        assert!(!svg.contains("legend"), "no legend box for one series");
        assert!(svg.contains("<title>length 0:"), "native tooltips present");
        assert!(svg.contains("Figure 9"));
    }

    #[test]
    fn cost_size_figures_use_fixed_slots_and_legend() {
        let mut suite = Suite::new(Scale::Tiny);
        let svg = render_svg(&suite.figure(18));
        for color in &CATEGORICAL[..5] {
            assert!(svg.contains(color), "expected categorical slot {color}");
        }
        assert!(svg.contains("M*(k)-index"), "legend names every series");
        assert!(svg.contains("stroke-width=\"2\""), "2px lines");
        // Color follows the entity across figures: figure 19 drops series but
        // M*(k) keeps the violet slot.
        let svg19 = render_svg(&suite.figure(19));
        assert!(svg19.contains(CATEGORICAL[4]), "M*(k) keeps its slot");
        assert!(
            !svg19.contains(CATEGORICAL[2]),
            "dropped D(k)-promote's slot is absent"
        );
    }

    #[test]
    fn growth_figures_connect_points() {
        let fig = Suite::new(Scale::Tiny).figure(25);
        let svg = render_svg(&fig);
        assert!(
            svg.matches("<path d=\"M").count() >= 3,
            "three growth lines"
        );
        assert!(svg.contains("stroke-linecap=\"round\""));
    }

    #[test]
    fn numbers_format_cleanly() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1500.0), "1,500");
        assert_eq!(fmt_num(1234567.0), "1,234,567");
        assert_eq!(fmt_num(0.25), "0.25");
        let (t, top) = ticks(937.0);
        assert!(t.len() >= 4 && t.len() <= 7, "{t:?}");
        assert!(top >= 937.0);
        assert_eq!(t[0], 0.0);
    }

    #[test]
    fn svg_escapes_titles() {
        let fig = FigureData {
            id: 10,
            title: "a < b & c".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![Series {
                name: "s".into(),
                points: vec![(1.0, 2.0)],
            }],
        };
        let svg = render_svg(&fig);
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
