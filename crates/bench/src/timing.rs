//! A minimal std-only wall-clock timing harness (no external benchmark
//! crates; the workspace builds with no registry access).
//!
//! This is deliberately simpler than a statistical benchmark framework:
//! warm up once, run a fixed number of iterations, report mean and min.
//! The *min* is the headline number — it is the least noisy estimator of
//! the cost of the work itself on a busy machine.

use std::hint::black_box;
use std::time::Instant;

/// One measured operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Timing {
    /// Operation name, e.g. `"build/ak_k2"`.
    pub name: String,
    /// Measured iterations (excluding the warm-up run).
    pub iters: usize,
    /// Mean wall time per iteration, milliseconds.
    pub mean_ms: f64,
    /// Minimum wall time over the iterations, milliseconds.
    pub min_ms: f64,
}

impl Timing {
    /// Renders as one aligned report line.
    pub fn render(&self) -> String {
        format!(
            "{:<40} {:>10.3} ms min  {:>10.3} ms mean  ({} iters)",
            self.name, self.min_ms, self.mean_ms, self.iters
        )
    }
}

/// Times `f` over `iters` iterations after one warm-up call. The result of
/// every call is passed through [`black_box`] so the work is not optimized
/// away.
pub fn time<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> Timing {
    assert!(iters > 0, "need at least one iteration");
    black_box(f());
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        total += ms;
        min = min.min(ms);
    }
    Timing {
        name: name.to_string(),
        iters,
        mean_ms: total / iters as f64,
        min_ms: min,
    }
}

/// Times `f` once (for expensive operations where repetition is too slow).
pub fn time_once<T>(name: &str, f: impl FnOnce() -> T) -> (Timing, T) {
    let t0 = Instant::now();
    let out = f();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (
        Timing {
            name: name.to_string(),
            iters: 1,
            mean_ms: ms,
            min_ms: ms,
        },
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_positive_and_min_bounds_mean() {
        let t = time("spin", 5, || (0..1000u64).sum::<u64>());
        assert_eq!(t.iters, 5);
        assert!(t.min_ms >= 0.0);
        assert!(t.min_ms <= t.mean_ms);
        assert!(t.render().contains("spin"));
    }

    #[test]
    fn time_once_returns_the_value() {
        let (t, v) = time_once("id", || 42);
        assert_eq!(v, 42);
        assert_eq!(t.iters, 1);
    }
}
