//! Experiment runners shared by all figures.
//!
//! One [`CostSizeExperiment`] per (dataset, max query length) covers the
//! cost-vs-size scatter figures *and* the growth figures: adaptive indexes
//! record their size every `growth_step` refinements while being driven by
//! the workload, then the whole workload is rerun on the final index to
//! measure average query cost (the paper's protocol: "we rerun the workload
//! to measure the average performance, after the indexes have been refined
//! to support all workload queries").

use mrx_graph::DataGraph;
use mrx_index::{
    default_threads, replay, replay_mstar, AdaptEngine, AkIndex, DkIndex, EvalStrategy, MStarIndex,
    MkIndex, ReplayReport, TrustPolicy,
};
use mrx_workload::Workload;

/// The index families of §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// A(k) for a specific k.
    Ak(u32),
    /// D(k) built from scratch for the whole FUP set.
    DkConstruct,
    /// D(k) incrementally refined with PROMOTE.
    DkPromote,
    /// M(k) incrementally refined with REFINE.
    Mk,
    /// M*(k) incrementally refined with REFINE*, queried top-down.
    MStar,
}

impl IndexKind {
    /// Display name matching the paper's legends.
    pub fn name(self) -> String {
        match self {
            IndexKind::Ak(k) => format!("A({k})"),
            IndexKind::DkConstruct => "D(k)-construct".to_string(),
            IndexKind::DkPromote => "D(k)-promote".to_string(),
            IndexKind::Mk => "M(k)".to_string(),
            IndexKind::MStar => "M*(k)".to_string(),
        }
    }

    /// Figure-legend label, exactly as the paper prints it.
    pub fn legend(self) -> &'static str {
        match self {
            IndexKind::Ak(_) => "A(k)-index",
            IndexKind::DkConstruct => "D(k)-index construct",
            IndexKind::DkPromote => "D(k)-index promote",
            IndexKind::Mk => "M(k)-index",
            IndexKind::MStar => "M*(k)-index",
        }
    }
}

/// Size and average rerun cost of one index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizedCost {
    /// Index nodes (M*(k): with the dedup rules applied).
    pub nodes: usize,
    /// Index edges (M*(k): including cross-component links).
    pub edges: usize,
    /// Average total node-visit cost per workload query.
    pub avg_cost: f64,
    /// Average index-node component of the cost.
    pub avg_index_cost: f64,
    /// Average validation (data-node) component of the cost.
    pub avg_data_cost: f64,
}

/// One A(k) sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AkPoint {
    /// The resolution parameter.
    pub k: u32,
    /// Size and cost.
    pub cost: SizedCost,
}

/// Index size sampled during incremental refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowthPoint {
    /// Queries processed so far.
    pub queries: usize,
    /// Index nodes at that point.
    pub nodes: usize,
    /// Index edges at that point.
    pub edges: usize,
}

/// Result of driving one adaptive index through the workload.
#[derive(Debug, Clone)]
pub struct AdaptiveRun {
    /// Which index.
    pub kind: IndexKind,
    /// Size trace (one point per `growth_step` queries, plus the start and
    /// the end).
    pub growth: Vec<GrowthPoint>,
    /// Final size and rerun cost.
    pub result: SizedCost,
}

/// Everything the cost/size and growth figures need for one
/// (dataset, max-length) combination.
#[derive(Debug, Clone)]
pub struct CostSizeExperiment {
    /// A(k) sweep (k = 0..=max_ak).
    pub ak: Vec<AkPoint>,
    /// D(k)-construct (built once from the full FUP set; its growth trace is
    /// empty by construction).
    pub dk_construct: SizedCost,
    /// The incrementally refined indexes with growth traces.
    pub adaptive: Vec<AdaptiveRun>,
}

/// Per-query cost averages from a workload replay. The replayed total is a
/// sum over queries, so the averages are thread-count-independent.
fn average_cost(report: &ReplayReport) -> (f64, f64, f64) {
    let n = report.queries.max(1) as f64;
    (
        report.total.total() as f64 / n,
        report.total.index_nodes as f64 / n,
        report.total.data_nodes as f64 / n,
    )
}

fn sized(nodes: usize, edges: usize, costs: (f64, f64, f64)) -> SizedCost {
    SizedCost {
        nodes,
        edges,
        avg_cost: costs.0,
        avg_index_cost: costs.1,
        avg_data_cost: costs.2,
    }
}

/// Builds an A(k)-index and measures the workload on it (validation costs
/// included — the A(k) family cannot adapt).
pub fn run_ak(g: &DataGraph, w: &Workload, k: u32) -> AkPoint {
    let idx = AkIndex::build(g, k);
    let report = replay(
        idx.graph(),
        g,
        &w.queries,
        TrustPolicy::Claimed,
        default_threads(),
    );
    AkPoint {
        k,
        cost: sized(idx.node_count(), idx.edge_count(), average_cost(&report)),
    }
}

/// Builds D(k)-construct from the full FUP set and measures the workload.
pub fn run_dk_construct(g: &DataGraph, w: &Workload) -> SizedCost {
    let idx = DkIndex::construct(g, &w.queries);
    let report = replay(
        idx.graph(),
        g,
        &w.queries,
        TrustPolicy::Claimed,
        default_threads(),
    );
    sized(idx.node_count(), idx.edge_count(), average_cost(&report))
}

/// Drives an incremental index (D(k)-promote, M(k), or M*(k)) through the
/// workload, sampling its size every `growth_step` queries, then reruns the
/// workload for the average cost.
pub fn run_adaptive(
    g: &DataGraph,
    w: &Workload,
    kind: IndexKind,
    growth_step: usize,
) -> AdaptiveRun {
    enum Idx {
        Dk(DkIndex),
        Mk(MkIndex),
        MStar(MStarIndex),
    }
    let mut idx = match kind {
        IndexKind::DkPromote => Idx::Dk(DkIndex::a0(g)),
        IndexKind::Mk => Idx::Mk(MkIndex::new(g)),
        IndexKind::MStar => Idx::MStar(MStarIndex::new(g)),
        other => panic!("run_adaptive does not handle {other:?}"),
    };
    let size = |idx: &Idx| -> (usize, usize) {
        match idx {
            Idx::Dk(i) => (i.node_count(), i.edge_count()),
            Idx::Mk(i) => (i.node_count(), i.edge_count()),
            Idx::MStar(i) => (i.node_count(), i.edge_count()),
        }
    };
    let mut growth = Vec::new();
    let (n0, e0) = size(&idx);
    growth.push(GrowthPoint {
        queries: 0,
        nodes: n0,
        edges: e0,
    });
    // Each `growth_step`-sized window of the workload is adapted as one
    // batch through the AdaptEngine: the growth samples land on the same
    // query counts as the old per-query loop, and batched adaptation is
    // bit-identical to sequential refinement (see `mrx_index::adapt`), so
    // the sampled sizes are unchanged.
    let mut engine = AdaptEngine::new();
    let step = growth_step.max(1);
    let mut done = 0;
    while done < w.queries.len() {
        let end = (done + step).min(w.queries.len());
        let batch = &w.queries[done..end];
        match &mut idx {
            Idx::Dk(d) => d.promote_batch(g, batch, &mut engine),
            Idx::Mk(m) => m.refine_batch(g, batch, &mut engine),
            Idx::MStar(m) => m.refine_batch(g, batch, &mut engine),
        }
        done = end;
        let (n, e) = size(&idx);
        growth.push(GrowthPoint {
            queries: done,
            nodes: n,
            edges: e,
        });
    }
    // Rerun costs use the paper's claimed-k trust policy: the paper reruns
    // the refined indexes without validation, so these numbers reproduce
    // its protocol exactly (see `mrx_index::TrustPolicy`). The rerun goes
    // through the parallel session replay — the index is read-only here.
    let threads = default_threads();
    let report = match &idx {
        Idx::Dk(d) => replay(d.graph(), g, &w.queries, TrustPolicy::Claimed, threads),
        Idx::Mk(m) => replay(m.graph(), g, &w.queries, TrustPolicy::Claimed, threads),
        Idx::MStar(m) => replay_mstar(
            m,
            g,
            &w.queries,
            EvalStrategy::TopDown,
            TrustPolicy::Claimed,
            threads,
        ),
    };
    let costs = average_cost(&report);
    let (n, e) = size(&idx);
    AdaptiveRun {
        kind,
        growth,
        result: sized(n, e, costs),
    }
}

impl CostSizeExperiment {
    /// Runs the full §5 protocol for one dataset/workload: the A(k) sweep
    /// for `k = 0..=max_ak`, D(k)-construct, and the three incrementally
    /// refined indexes with growth sampling.
    pub fn run(g: &DataGraph, w: &Workload, max_ak: u32, growth_step: usize) -> Self {
        let ak = (0..=max_ak).map(|k| run_ak(g, w, k)).collect();
        let dk_construct = run_dk_construct(g, w);
        let adaptive = [IndexKind::DkPromote, IndexKind::Mk, IndexKind::MStar]
            .into_iter()
            .map(|kind| run_adaptive(g, w, kind, growth_step))
            .collect();
        CostSizeExperiment {
            ak,
            dk_construct,
            adaptive,
        }
    }

    /// The adaptive run for `kind`.
    pub fn adaptive(&self, kind: IndexKind) -> &AdaptiveRun {
        self.adaptive
            .iter()
            .find(|r| r.kind == kind)
            .expect("adaptive kind present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, Scale};
    use mrx_workload::WorkloadConfig;

    fn tiny_setup(ds: Dataset, max_len: usize) -> (DataGraph, Workload) {
        let g = ds.load(Scale::Tiny);
        let w = Workload::generate(
            &g,
            &WorkloadConfig {
                max_path_len: max_len,
                num_queries: 30,
                seed: 4,
                max_enumerated_paths: 50_000,
            },
        );
        (g, w)
    }

    #[test]
    fn ak_sweep_costs_fall_then_flatten() {
        let (g, w) = tiny_setup(Dataset::XMark, 4);
        let p0 = run_ak(&g, &w, 0);
        let p3 = run_ak(&g, &w, 3);
        assert!(p3.cost.avg_cost < p0.cost.avg_cost, "A(3) should beat A(0)");
        assert!(p3.cost.nodes >= p0.cost.nodes);
        // The two averages are computed by separate divisions, so the sum
        // can differ from avg_cost by rounding.
        let sum = p3.cost.avg_data_cost + p3.cost.avg_index_cost;
        assert!(
            (sum - p3.cost.avg_cost).abs() < 1e-9,
            "{sum} vs {}",
            p3.cost.avg_cost
        );
    }

    #[test]
    fn adaptive_indexes_answer_precisely_after_refinement() {
        let (g, w) = tiny_setup(Dataset::Nasa, 4);
        for kind in [IndexKind::DkPromote, IndexKind::Mk, IndexKind::MStar] {
            let run = run_adaptive(&g, &w, kind, 10);
            assert!(
                run.result.avg_data_cost == 0.0,
                "{kind:?}: refined index should not validate (got {})",
                run.result.avg_data_cost
            );
            assert!(run.growth.len() >= 2);
            assert!(run.growth.last().unwrap().nodes >= run.growth[0].nodes);
        }
    }

    #[test]
    fn mk_is_no_bigger_than_dk_promote() {
        let (g, w) = tiny_setup(Dataset::XMark, 4);
        let dk = run_adaptive(&g, &w, IndexKind::DkPromote, 50);
        let mk = run_adaptive(&g, &w, IndexKind::Mk, 50);
        assert!(
            mk.result.nodes <= dk.result.nodes,
            "M(k) {} vs D(k)-promote {}",
            mk.result.nodes,
            dk.result.nodes
        );
    }

    #[test]
    fn dk_construct_supports_workload() {
        let (g, w) = tiny_setup(Dataset::Nasa, 4);
        let r = run_dk_construct(&g, &w);
        assert_eq!(r.avg_data_cost, 0.0, "construct must support all FUPs");
        assert!(r.nodes > 0 && r.edges > 0);
    }

    #[test]
    fn full_experiment_runs_at_tiny_scale() {
        let (g, w) = tiny_setup(Dataset::XMark, 4);
        let e = CostSizeExperiment::run(&g, &w, 2, 10);
        assert_eq!(e.ak.len(), 3);
        assert_eq!(e.adaptive.len(), 3);
        let mstar = e.adaptive(IndexKind::MStar);
        // M*(k) must be the cheapest index to query (the headline result).
        for other in [IndexKind::DkPromote, IndexKind::Mk] {
            assert!(
                mstar.result.avg_cost <= e.adaptive(other).result.avg_cost * 1.05,
                "M* {} vs {:?} {}",
                mstar.result.avg_cost,
                other,
                e.adaptive(other).result.avg_cost
            );
        }
    }
}
