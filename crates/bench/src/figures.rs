//! Per-figure data generators for every evaluation figure in the paper.

use std::collections::HashMap;
use std::fmt::Write as _;

use mrx_workload::{Workload, WorkloadConfig};

use crate::datasets::{Dataset, Scale};
use crate::experiment::{CostSizeExperiment, IndexKind};

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend entry (matches the paper's legends).
    pub name: String,
    /// `(x, y)` points. For A(k) sweeps the points are ordered by `k`.
    pub points: Vec<(f64, f64)>,
}

/// The data behind one figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Paper figure number (8–26).
    pub id: u32,
    /// Paper caption.
    pub title: String,
    /// Horizontal-axis label.
    pub xlabel: String,
    /// Vertical-axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Renders the figure as an aligned text table (one block per series).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Figure {}: {}", self.id, self.title);
        let _ = writeln!(out, "# x = {}, y = {}", self.xlabel, self.ylabel);
        for s in &self.series {
            let _ = writeln!(out, "series {}", s.name);
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{x:>14.2} {y:>14.2}");
            }
        }
        out
    }

    /// Renders as CSV (`series,x,y`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{},{x},{y}", s.name);
            }
        }
        out
    }
}

/// The evaluation figures of the paper, in order.
pub fn figure_ids() -> Vec<u32> {
    (8..=26).collect()
}

/// Computes a single figure at the given scale (convenience wrapper around
/// [`Suite`]; use a [`Suite`] to share experiment runs across figures).
pub fn figure(id: u32, scale: Scale) -> FigureData {
    Suite::new(scale).figure(id)
}

/// Caches workloads and experiment runs so figures sharing an underlying
/// experiment (e.g. 10 and 11) cost only one run.
pub struct Suite {
    scale: Scale,
    seed: u64,
    workloads: HashMap<(Dataset, usize), (mrx_graph::DataGraph, Workload)>,
    experiments: HashMap<(Dataset, usize), CostSizeExperiment>,
}

impl Suite {
    /// Creates an empty suite at the given scale.
    pub fn new(scale: Scale) -> Self {
        Suite {
            scale,
            seed: 0xF1D0,
            workloads: HashMap::new(),
            experiments: HashMap::new(),
        }
    }

    /// Overrides the workload seed (figures are deterministic in it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn workload(&mut self, ds: Dataset, max_len: usize) -> &(mrx_graph::DataGraph, Workload) {
        let scale = self.scale;
        let seed = self.seed;
        self.workloads.entry((ds, max_len)).or_insert_with(|| {
            let g = ds.load(scale);
            let w = Workload::generate(
                &g,
                &WorkloadConfig {
                    max_path_len: max_len,
                    num_queries: scale.num_queries(),
                    seed,
                    max_enumerated_paths: 400_000,
                },
            );
            (g, w)
        })
    }

    fn experiment(&mut self, ds: Dataset, max_len: usize) -> &CostSizeExperiment {
        if !self.experiments.contains_key(&(ds, max_len)) {
            self.workload(ds, max_len); // ensure present
            let (g, w) = self.workloads.get(&(ds, max_len)).expect("just inserted");
            let max_ak = if max_len >= 9 { 7 } else { max_len as u32 };
            let step = (w.queries.len() / 10).clamp(1, 50);
            let e = CostSizeExperiment::run(g, w, max_ak, step);
            self.experiments.insert((ds, max_len), e);
        }
        self.experiments.get(&(ds, max_len)).expect("just inserted")
    }

    /// Computes the data for paper figure `id` (8–26).
    ///
    /// # Panics
    /// Panics on an id outside 8–26.
    pub fn figure(&mut self, id: u32) -> FigureData {
        match id {
            8 => self.fig_distribution(8, 9),
            9 => self.fig_distribution(9, 4),
            10 => self.fig_cost_size(10, Dataset::XMark, 9, Axis::Nodes, false),
            11 => self.fig_cost_size(11, Dataset::XMark, 9, Axis::Edges, false),
            12 => self.fig_cost_size(12, Dataset::Nasa, 9, Axis::Nodes, false),
            13 => self.fig_cost_size(13, Dataset::Nasa, 9, Axis::Edges, false),
            14 => self.fig_growth(14, Dataset::XMark, 9, Axis::Nodes),
            15 => self.fig_growth(15, Dataset::XMark, 9, Axis::Edges),
            16 => self.fig_growth(16, Dataset::Nasa, 9, Axis::Nodes),
            17 => self.fig_growth(17, Dataset::Nasa, 9, Axis::Edges),
            18 => self.fig_cost_size(18, Dataset::XMark, 4, Axis::Nodes, false),
            19 => self.fig_cost_size(19, Dataset::XMark, 4, Axis::Nodes, true),
            20 => self.fig_cost_size(20, Dataset::XMark, 4, Axis::Edges, true),
            21 => self.fig_cost_size(21, Dataset::Nasa, 4, Axis::Nodes, false),
            22 => self.fig_cost_size(22, Dataset::Nasa, 4, Axis::Edges, false),
            23 => self.fig_growth(23, Dataset::XMark, 4, Axis::Nodes),
            24 => self.fig_growth(24, Dataset::XMark, 4, Axis::Edges),
            25 => self.fig_growth(25, Dataset::Nasa, 4, Axis::Nodes),
            26 => self.fig_growth(26, Dataset::Nasa, 4, Axis::Edges),
            other => panic!("figure {other} is not an evaluation figure (valid: 8–26)"),
        }
    }

    /// Figures 8 and 9: query-length distribution on the NASA dataset.
    fn fig_distribution(&mut self, id: u32, max_len: usize) -> FigureData {
        let (_, w) = self.workload(Dataset::Nasa, max_len);
        let h = w.length_histogram();
        FigureData {
            id,
            title: format!("Query distribution on NASA dataset (max path length: {max_len})"),
            xlabel: "Query length".into(),
            ylabel: "Percentage".into(),
            series: vec![Series {
                name: "queries".into(),
                points: h.iter().enumerate().map(|(l, &f)| (l as f64, f)).collect(),
            }],
        }
    }

    fn fig_cost_size(
        &mut self,
        id: u32,
        ds: Dataset,
        max_len: usize,
        axis: Axis,
        zoomed: bool,
    ) -> FigureData {
        let e = self.experiment(ds, max_len).clone();
        let mut series = Vec::new();
        let ak_points: Vec<(f64, f64)> =
            e.ak.iter()
                .filter(|p| !zoomed || p.k >= 2)
                .map(|p| (axis.pick(p.cost.nodes, p.cost.edges), p.cost.avg_cost))
                .collect();
        series.push(Series {
            name: "A(k)-index".into(),
            points: ak_points,
        });
        series.push(Series {
            name: "D(k)-index construct".into(),
            points: vec![(
                axis.pick(e.dk_construct.nodes, e.dk_construct.edges),
                e.dk_construct.avg_cost,
            )],
        });
        let kinds: &[IndexKind] = if zoomed {
            // Figures 19/20 drop D(k)-promote and M(k) to zoom in.
            &[IndexKind::MStar]
        } else {
            &[IndexKind::DkPromote, IndexKind::Mk, IndexKind::MStar]
        };
        for &kind in kinds {
            let r = e.adaptive(kind);
            series.push(Series {
                name: kind.legend().to_string(),
                points: vec![(axis.pick(r.result.nodes, r.result.edges), r.result.avg_cost)],
            });
        }
        FigureData {
            id,
            title: format!(
                "Query cost vs number of index {} on {} dataset{} (max path length: {})",
                axis.noun(),
                ds.name(),
                if zoomed {
                    " without D(k)-promote and M(k)"
                } else {
                    ""
                },
                max_len
            ),
            xlabel: format!("Number of index {}", axis.noun()),
            ylabel: "Average cost per query".into(),
            series,
        }
    }

    fn fig_growth(&mut self, id: u32, ds: Dataset, max_len: usize, axis: Axis) -> FigureData {
        let e = self.experiment(ds, max_len).clone();
        let series = [IndexKind::DkPromote, IndexKind::Mk, IndexKind::MStar]
            .into_iter()
            .map(|kind| {
                let r = e.adaptive(kind);
                Series {
                    name: kind.legend().to_string(),
                    points: r
                        .growth
                        .iter()
                        .map(|p| (p.queries as f64, axis.pick(p.nodes, p.edges)))
                        .collect(),
                }
            })
            .collect();
        FigureData {
            id,
            title: format!(
                "Index {} size growth over queries on {} dataset (max path length: {})",
                axis.noun_singular(),
                ds.name(),
                max_len
            ),
            xlabel: "Number of queries".into(),
            ylabel: format!("Number of index {}", axis.noun()),
            series,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    Nodes,
    Edges,
}

impl Axis {
    fn pick(self, nodes: usize, edges: usize) -> f64 {
        match self {
            Axis::Nodes => nodes as f64,
            Axis::Edges => edges as f64,
        }
    }

    fn noun(self) -> &'static str {
        match self {
            Axis::Nodes => "nodes",
            Axis::Edges => "edges",
        }
    }

    fn noun_singular(self) -> &'static str {
        match self {
            Axis::Nodes => "node",
            Axis::Edges => "edge",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_ids_cover_the_paper() {
        let ids = figure_ids();
        assert_eq!(ids.first(), Some(&8));
        assert_eq!(ids.last(), Some(&26));
        assert_eq!(ids.len(), 19);
    }

    #[test]
    #[should_panic(expected = "not an evaluation figure")]
    fn out_of_range_panics() {
        let _ = Suite::new(Scale::Tiny).figure(7);
    }

    #[test]
    fn distribution_figure_shape() {
        let f = Suite::new(Scale::Tiny).figure(9);
        assert_eq!(f.id, 9);
        assert_eq!(f.series.len(), 1);
        assert_eq!(f.series[0].points.len(), 5); // lengths 0..=4
        let total: f64 = f.series[0].points.iter().map(|p| p.1).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(f.render().contains("Figure 9"));
        assert!(f.to_csv().starts_with("series,x,y"));
    }

    #[test]
    fn cost_size_figure_has_all_families() {
        let mut suite = Suite::new(Scale::Tiny);
        let f = suite.figure(18);
        let names: Vec<&str> = f.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "A(k)-index",
                "D(k)-index construct",
                "D(k)-index promote",
                "M(k)-index",
                "M*(k)-index"
            ]
        );
        assert_eq!(f.series[0].points.len(), 5); // A(0..4)
                                                 // Figure 19 reuses the same experiment (cheap) and drops series.
        let f19 = suite.figure(19);
        assert_eq!(f19.series.len(), 3);
        assert_eq!(f19.series[0].points.len(), 3); // A(2..4)
    }

    #[test]
    fn figures_are_deterministic() {
        let a = Suite::new(Scale::Tiny).figure(9);
        let b = Suite::new(Scale::Tiny).figure(9);
        assert_eq!(a, b);
        let c = Suite::new(Scale::Tiny).with_seed(123).figure(9);
        assert_ne!(
            a.series, c.series,
            "different seeds sample different workloads"
        );
    }

    #[test]
    fn shared_experiments_are_computed_once() {
        // Figures 10 and 11 must come from the same run: identical costs,
        // different x-axes.
        let mut suite = Suite::new(Scale::Tiny);
        let f10 = suite.figure(10);
        let f11 = suite.figure(11);
        let costs = |f: &FigureData| -> Vec<f64> {
            f.series
                .iter()
                .flat_map(|s| s.points.iter().map(|p| p.1))
                .collect()
        };
        assert_eq!(costs(&f10), costs(&f11));
        let xs10: Vec<f64> = f10
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        let xs11: Vec<f64> = f11
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        assert_ne!(xs10, xs11, "node counts differ from edge counts");
    }

    #[test]
    fn growth_figure_is_monotone() {
        let mut suite = Suite::new(Scale::Tiny);
        let f = suite.figure(25);
        assert_eq!(f.series.len(), 3);
        for s in &f.series {
            assert!(s.points.len() >= 2, "{}", s.name);
            assert!(
                s.points.windows(2).all(|w| w[0].1 <= w[1].1),
                "{} sizes must never shrink",
                s.name
            );
        }
    }
}
