//! Demand-paged serving (v6, tagged blocks) vs. the eager flat (v2) and
//! compressed (v5) snapshots, on the default XMark-like dataset. The
//! `v2`/`v3`/`v4` names in prints and JSON keys are kept for history
//! continuity — they mean "eager raw", "eager compressed", "paged":
//!
//! * **time-to-first-answer** — open a real on-disk snapshot and serve the
//!   first workload query, timed as one span. The eager layouts must
//!   deserialize the whole file first; the paged layout reads the 64-byte
//!   header, the graph section, a prefix of the small per-component meta
//!   sections, and then faults in only the pages the query touches.
//! * **capped-cache replay** — the whole workload replayed through the
//!   paged reader with the page-cache budget clamped to 25% of the v4
//!   file size, against fully-resident compressed serving (same evaluator,
//!   same posting encoding, everything in RAM). The paged path pays page
//!   faults, per-page checksum verification on fault, and clock eviction;
//!   the gate bounds that tax.
//!
//! Answers and costs are cross-checked paged-vs-eager under both trust
//! policies before any timing is trusted; outside `--smoke` the run asserts
//! the paged time-to-first-answer is at least `TTFA_GATE`x better than
//! both eager layouts and the capped replay stays within the bounded
//! factor below.
//! Results print as a table and append one JSON line to `BENCH_page.json`.
//!
//! ```text
//! page_bench [--smoke] [--reps N] [--out FILE]
//! ```

use std::io::Write as _;

use mrx_bench::timing::time;
use mrx_bench::{json, Dataset, Scale};
use mrx_graph::FrozenGraph;
use mrx_index::{replay_compressed_mstar, replay_paged_mstar, MStarIndex, TrustPolicy};
use mrx_store::{
    load_compressed, load_frozen, save_compressed, save_frozen, save_paged_with, PagedFile,
};
use mrx_workload::{Workload, WorkloadConfig};

const POLICY: TrustPolicy = TrustPolicy::Proven;

/// Outside smoke, paged TTFA must beat both eager layouts by this much.
/// Measured 10-19x at full scale; the shared 1-core box wanders the
/// minimums enough that one run in a handful lands just under 10x, so
/// the gate keeps spike headroom below the measured floor.
const TTFA_GATE: f64 = 8.0;

/// Outside smoke, workload replay with the cache capped at 25% of the
/// file must stay within this factor of fully-resident compressed
/// serving. The tax is page-table lookups, fault + per-page word-folded
/// FNV on every miss, and clock eviction churn; measured 1.8-2.7x at
/// full XMark scale on a warm file cache with the tagged-block decoders
/// and headroom-only readahead (the pre-readahead decoder measured
/// ~2.9x), gated with noise headroom above that.
const REPLAY_FACTOR_BOUND: f64 = 3.5;

struct Opts {
    smoke: bool,
    reps: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        reps: 5,
        out: "BENCH_page.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--out" => opts.out = args.next().expect("--out FILE"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: page_bench [--smoke] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    if opts.smoke {
        opts.reps = 1;
    }
    opts
}

fn main() {
    let opts = parse_args();
    let scale = if opts.smoke { Scale::Tiny } else { Scale::Full };
    // Small pages at smoke scale so the tiny snapshot still spans many
    // pages and the capped cache actually evicts.
    let page_size: u32 = if opts.smoke { 1024 } else { 64 * 1024 };
    let g = Dataset::XMark.load(scale);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: scale.num_queries(),
            seed: 7,
            max_enumerated_paths: 200_000,
        },
    );
    let mut idx = MStarIndex::new(&g);
    for q in &w.queries {
        idx.refine_for(&g, q);
    }
    let fg = FrozenGraph::freeze(&g);
    let fz = idx.freeze();
    let cz = idx.freeze_compressed();
    fg.validate().expect("frozen graph invalid");
    fz.validate().expect("frozen index invalid");

    let dir = std::env::temp_dir().join(format!("mrx-page-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let p2 = dir.join("bench-v2.mrx");
    let p3 = dir.join("bench-v3.mrx");
    let p4 = dir.join("bench-v4.mrx");
    save_frozen(&p2, &fg, &fz).expect("save v2");
    save_compressed(&p3, &fg, &cz).expect("save v3");
    save_paged_with(&p4, &fg, &cz, page_size).expect("save v4");
    let v2_bytes = std::fs::metadata(&p2).expect("stat v2").len();
    let v3_bytes = std::fs::metadata(&p3).expect("stat v3").len();
    let v4_bytes = std::fs::metadata(&p4).expect("stat v4").len();
    println!(
        "page_bench: XMark-like, {} nodes, {} queries, page {} B, \
         v2 {} / v3 {} / v4 {} bytes, reps={}",
        g.node_count(),
        w.queries.len(),
        page_size,
        v2_bytes,
        v3_bytes,
        v4_bytes,
        opts.reps,
    );

    // Parity gate under both policies: the paged reader must reproduce the
    // eager frozen answers and cost counts bit for bit — page seams,
    // evictions and all — before any timing is trusted.
    {
        let mut file = PagedFile::open_with(&p4, v4_bytes / 4).expect("open v4 for parity");
        for policy in [TrustPolicy::Proven, TrustPolicy::Claimed] {
            for q in &w.queries {
                let eager = fz.query_top_down(&fg, q, policy);
                let paged = file.query(q, policy).expect("paged parity query");
                assert_eq!(
                    paged.nodes, eager.nodes,
                    "{policy:?}: answer mismatch on {q}"
                );
                assert_eq!(paged.cost, eager.cost, "{policy:?}: cost mismatch on {q}");
            }
        }
        let s = file.page_stats();
        assert_eq!(s.checksum_failures, 0, "clean file must not fail checksums");
        println!(
            "parity: {} queries x 2 policies bit-identical \
             (faults={} hits={} evictions={})",
            w.queries.len(),
            s.faults,
            s.hits,
            s.evictions
        );
    }

    // --- Time-to-first-answer: eager full load vs. paged open ----------
    let q0 = &w.queries[0];
    let ttfa_v2 = time("ttfa/v2-eager", opts.reps, || {
        let (fg2, fz2) = load_frozen(&p2).expect("load v2");
        fz2.query_top_down(&fg2, q0, POLICY).nodes.len()
    });
    let ttfa_v3 = time("ttfa/v3-eager", opts.reps, || {
        let (fg3, cz3) = load_compressed(&p3).expect("load v3");
        cz3.query_top_down(&fg3, q0, POLICY).nodes.len()
    });
    let ttfa_v4 = time("ttfa/v4-paged", opts.reps, || {
        let mut f = PagedFile::open(&p4).expect("open v4");
        f.query_top_down(q0).expect("paged first query").nodes.len()
    });
    println!("{}", ttfa_v2.render());
    println!("{}", ttfa_v3.render());
    println!("{}", ttfa_v4.render());
    let ttfa_speedup_v2 = ttfa_v2.min_ms / ttfa_v4.min_ms;
    let ttfa_speedup_v3 = ttfa_v3.min_ms / ttfa_v4.min_ms;
    println!(
        "paged time-to-first-answer speedup: {ttfa_speedup_v2:.2}x vs v2, \
         {ttfa_speedup_v3:.2}x vs v3"
    );

    // --- Replay: capped cache vs. fully-resident compressed serving ----
    let cache_cap = v4_bytes / 4;
    let resident = time("replay/resident-v3", opts.reps, || {
        replay_compressed_mstar(&cz, &fg, &w.queries, POLICY, 1).total
    });
    let file = PagedFile::open_with(&p4, cache_cap).expect("open v4 for replay");
    let resident_total = replay_compressed_mstar(&cz, &fg, &w.queries, POLICY, 1).total;
    let (pg, star, cache) = file.into_parts().expect("activate v4");
    let paged_total = replay_paged_mstar(&star, &pg, &w.queries, POLICY).total;
    assert_eq!(
        paged_total, resident_total,
        "capped-cache replay must cost exactly what resident serving costs"
    );
    let capped = time("replay/paged-25pct", opts.reps, || {
        replay_paged_mstar(&star, &pg, &w.queries, POLICY).total
    });
    assert!(
        cache.take_poison().is_none(),
        "clean replay must not poison the cache"
    );
    let s = cache.stats();
    println!("{}", resident.render());
    println!("{}", capped.render());
    let replay_factor = capped.min_ms / resident.min_ms;
    println!(
        "capped-cache replay factor: {replay_factor:.2}x of resident \
         (cap {} bytes, faults={} hits={} evictions={} resident_bytes={})",
        cache_cap, s.faults, s.hits, s.evictions, s.resident_bytes
    );
    println!(
        "readahead: prefetched={} readahead_hits={} wasted_prefetches={}",
        s.prefetched, s.readahead_hits, s.wasted_prefetches
    );

    if !opts.smoke {
        assert!(
            ttfa_speedup_v2 >= TTFA_GATE && ttfa_speedup_v3 >= TTFA_GATE,
            "paged time-to-first-answer must beat eager serving {TTFA_GATE}x \
             (got {ttfa_speedup_v2:.2}x vs v2, {ttfa_speedup_v3:.2}x vs v3)"
        );
        assert!(
            replay_factor <= REPLAY_FACTOR_BOUND,
            "capped-cache replay must stay within {REPLAY_FACTOR_BOUND}x of \
             resident serving (got {replay_factor:.2}x)"
        );
    }

    let line = format!(
        concat!(
            "{{\"dataset\":\"xmark\",\"nodes\":{},\"queries\":{},\"reps\":{},",
            "\"policy\":\"proven\",\"page_size\":{},",
            "\"v2_bytes\":{},\"v3_bytes\":{},\"v4_bytes\":{},",
            "\"ttfa_v2_ms\":{:.3},\"ttfa_v3_ms\":{:.3},\"ttfa_v4_ms\":{:.3},",
            "\"ttfa_speedup_v2\":{:.2},\"ttfa_speedup_v3\":{:.2},",
            "\"cache_cap_bytes\":{},\"replay_resident_ms\":{:.3},",
            "\"replay_paged_ms\":{:.3},\"replay_factor\":{:.2},",
            "\"faults\":{},\"hits\":{},\"evictions\":{},\"resident_bytes\":{},",
            "\"prefetched\":{},\"readahead_hits\":{},\"wasted_prefetches\":{}}}"
        ),
        g.node_count(),
        w.queries.len(),
        opts.reps,
        page_size,
        v2_bytes,
        v3_bytes,
        v4_bytes,
        ttfa_v2.min_ms,
        ttfa_v3.min_ms,
        ttfa_v4.min_ms,
        ttfa_speedup_v2,
        ttfa_speedup_v3,
        cache_cap,
        resident.min_ms,
        capped.min_ms,
        replay_factor,
        s.faults,
        s.hits,
        s.evictions,
        s.resident_bytes,
        s.prefetched,
        s.readahead_hits,
        s.wasted_prefetches,
    );
    let _ = std::fs::remove_dir_all(&dir);
    // Validate even in smoke mode, so CI catches a malformed line before it
    // would ever reach the checked-in history.
    json::assert_valid(&line);
    if opts.smoke {
        println!("smoke mode: skipping JSON append");
        return;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&opts.out)
        .expect("open BENCH_page.json");
    writeln!(f, "{line}").expect("append result line");
    println!("appended to {}", opts.out);
}
