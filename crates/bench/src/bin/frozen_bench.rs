//! Wall-clock comparison of the frozen serving read path against the live
//! mutable index, on the default XMark-like dataset:
//!
//! * **replay** — the same workload replayed through cold [`QuerySession`]s
//!   over the live `MStarIndex` vs. the [`FrozenMStar`]/[`FrozenGraph`]
//!   snapshot (same evaluator, different memory layout);
//! * **cold start** — time-to-first-answer: deserializing the snapshot
//!   *and serving the first workload query* in one timed span, v1 (extents
//!   plus per-node edge recomputation) vs. the flat v2 snapshot (contiguous
//!   CSR arrays), with heap-allocation counts from a counting global
//!   allocator. Load time alone understates the gap a reader actually
//!   feels — what matters cold is how long until the first answer is out.
//!
//! Answers and costs are cross-checked live-vs-frozen under both trust
//! policies before any timing is trusted; outside `--smoke` the run asserts
//! the frozen replay is at least 1.3x faster and the v2 time-to-first-answer
//! at least 2x better. Replay runs under the sound default policy
//! ([`TrustPolicy::Proven`]), where cold misses validate extents against the
//! data graph: the live `MStarIndex` path allocates and zeroes a fresh
//! validator memo per miss, while the frozen path reuses the session's
//! epoch-stamped scratch — the gap this bench exists to measure. Results
//! print as a table and append as one JSON line to `BENCH_frozen.json`.
//!
//! ```text
//! frozen_bench [--smoke] [--reps N] [--out FILE]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use mrx_bench::timing::time;
use mrx_bench::{json, Dataset, Scale};
use mrx_graph::FrozenGraph;
use mrx_index::{replay_frozen_mstar, replay_mstar, EvalStrategy, MStarIndex, TrustPolicy};
use mrx_store::{
    load_frozen_from, load_mstar_from, save_compressed_to, save_frozen_to, save_mstar_to,
};
use mrx_workload::{Workload, WorkloadConfig};

const POLICY: TrustPolicy = TrustPolicy::Proven;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

struct Opts {
    smoke: bool,
    reps: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        reps: 5,
        out: "BENCH_frozen.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--out" => opts.out = args.next().expect("--out FILE"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: frozen_bench [--smoke] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    if opts.smoke {
        opts.reps = 1;
    }
    opts
}

fn main() {
    let opts = parse_args();
    let scale = if opts.smoke { Scale::Tiny } else { Scale::Full };
    let g = Dataset::XMark.load(scale);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: scale.num_queries(),
            seed: 7,
            max_enumerated_paths: 200_000,
        },
    );
    println!(
        "frozen_bench: XMark-like, {} nodes, {} edges, {} queries, reps={}",
        g.node_count(),
        g.edge_count(),
        w.queries.len(),
        opts.reps,
    );

    let mut idx = MStarIndex::new(&g);
    for q in &w.queries {
        idx.refine_for(&g, q);
    }
    let fg = FrozenGraph::freeze(&g);
    let fz = idx.freeze();
    fg.validate().expect("frozen graph invalid");
    fz.validate().expect("frozen index invalid");

    // Parity gate under both policies: the snapshot must reproduce the live
    // answers and cost counts bit for bit before any timing is trusted.
    for policy in [TrustPolicy::Proven, TrustPolicy::Claimed] {
        for q in &w.queries {
            let live = idx.query_with_policy(&g, q, EvalStrategy::TopDown, policy);
            let frozen = fz.query_top_down(&fg, q, policy);
            assert_eq!(
                frozen.nodes, live.nodes,
                "{policy:?}: answer mismatch on {q}"
            );
            assert_eq!(frozen.cost, live.cost, "{policy:?}: cost mismatch on {q}");
        }
    }

    // --- Replay: cold sessions over live vs. frozen ---------------------
    let live_replay = time("replay/live", opts.reps, || {
        replay_mstar(&idx, &g, &w.queries, EvalStrategy::TopDown, POLICY, 1).total
    });
    let frozen_replay = time("replay/frozen", opts.reps, || {
        replay_frozen_mstar(&fz, &fg, &w.queries, POLICY, 1).total
    });
    println!("{}", live_replay.render());
    println!("{}", frozen_replay.render());
    let replay_speedup = live_replay.min_ms / frozen_replay.min_ms;
    println!("frozen replay speedup: {replay_speedup:.2}x");

    // --- Cold start: v1 (extents + edge recomputation) vs. v2 (flat CSR),
    // measured as time-to-first-answer (open → first query served) -------
    let mut v1 = Vec::new();
    save_mstar_to(&mut v1, &g, &idx).expect("save v1");
    let mut v2 = Vec::new();
    save_frozen_to(&mut v2, &fg, &fz).expect("save v2");
    // Compressed (v3) footprint, reported alongside the v1/v2 sizes so the
    // history tracks compression ratio next to speed.
    let cz = idx.freeze_compressed();
    let mut v3 = Vec::new();
    save_compressed_to(&mut v3, &fg, &cz).expect("save v3");
    let extent_bytes: usize = (0..=cz.max_k())
        .map(|i| cz.component(i).extent_bytes())
        .sum();
    let bytes_per_node = extent_bytes as f64 / g.node_count().max(1) as f64;
    println!(
        "v3 snapshot: {} bytes ({} extent bytes, {bytes_per_node:.2} B/node)",
        v3.len(),
        extent_bytes
    );

    // The first workload query stands in for "the query the reader opened
    // the file to answer"; both spans cover deserialize + serve.
    let q0 = &w.queries[0];
    let ttfa_v1 = time("ttfa/v1", opts.reps, || {
        let (g1, idx1) = load_mstar_from(&v1[..]).expect("load v1");
        idx1.query_with_policy(&g1, q0, EvalStrategy::TopDown, POLICY)
            .nodes
            .len()
    });
    let ttfa_v2 = time("ttfa/v2", opts.reps, || {
        let (fg2, fz2) = load_frozen_from(&v2[..]).expect("load v2");
        fz2.query_top_down(&fg2, q0, POLICY).nodes.len()
    });
    let (v1_allocs, _) = allocs_during(|| load_mstar_from(&v1[..]).expect("load v1"));
    let (v2_allocs, _) = allocs_during(|| load_frozen_from(&v2[..]).expect("load v2"));
    println!("{}", ttfa_v1.render());
    println!("{}", ttfa_v2.render());
    let ttfa_speedup = ttfa_v1.min_ms / ttfa_v2.min_ms;
    println!(
        "v2 time-to-first-answer speedup: {ttfa_speedup:.2}x  \
         ({} vs {} bytes, {} vs {} load allocations)",
        v1.len(),
        v2.len(),
        v1_allocs,
        v2_allocs
    );

    if !opts.smoke {
        assert!(
            replay_speedup >= 1.3,
            "frozen replay must be at least 1.3x faster (got {replay_speedup:.2}x)"
        );
        assert!(
            ttfa_speedup >= 2.0,
            "flat v2 must reach its first answer at least 2x faster than v1 \
             (got {ttfa_speedup:.2}x)"
        );
    }

    let line = format!(
        concat!(
            "{{\"dataset\":\"xmark\",\"nodes\":{},\"edges\":{},\"queries\":{},",
            "\"reps\":{},\"policy\":\"proven\",",
            "\"replay_live_ms\":{:.3},\"replay_frozen_ms\":{:.3},\"replay_speedup\":{:.2},",
            "\"ttfa_v1_ms\":{:.3},\"ttfa_v2_ms\":{:.3},\"ttfa_speedup\":{:.2},",
            "\"v1_bytes\":{},\"v2_bytes\":{},\"v3_bytes\":{},",
            "\"extent_bytes\":{},\"bytes_per_node\":{:.3},",
            "\"load_v1_allocs\":{},\"load_v2_allocs\":{}}}"
        ),
        g.node_count(),
        g.edge_count(),
        w.queries.len(),
        opts.reps,
        live_replay.min_ms,
        frozen_replay.min_ms,
        replay_speedup,
        ttfa_v1.min_ms,
        ttfa_v2.min_ms,
        ttfa_speedup,
        v1.len(),
        v2.len(),
        v3.len(),
        extent_bytes,
        bytes_per_node,
        v1_allocs,
        v2_allocs,
    );
    // Validate even in smoke mode, so CI catches a malformed line before it
    // would ever reach the checked-in history.
    json::assert_valid(&line);
    if opts.smoke {
        println!("smoke mode: skipping JSON append");
        return;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&opts.out)
        .expect("open BENCH_frozen.json");
    writeln!(f, "{line}").expect("append result line");
    println!("appended to {}", opts.out);
}
