//! Wall-clock timing of batched workload adaptation against the legacy
//! per-FUP loop, on the default XMark-like dataset.
//!
//! For each incrementally refined family (D(k)-promote, M(k), M*(k)) the
//! same 50-FUP workload is timed three ways:
//!
//! * **legacy** — a fresh index driven by one `promote_for`/`refine_for`
//!   call per FUP, duplicates and all (the pre-engine path);
//! * **batched** — a fresh index adapted in one [`AdaptEngine`] batch
//!   (dedup, convergence probes, shared truth evaluation, pooled scratch);
//! * **steady** — the converged index re-adapted through a warm engine:
//!   every FUP is recognised as converged, the plan cache hits, and the
//!   pass must not allocate (checked against the engine's scratch
//!   counters).
//!
//! Batched results are cross-checked bit-for-bit against the legacy index
//! (extents and false-instance break counts) before any timing is trusted,
//! and outside smoke mode the aggregate speedup across the three families
//! must reach 2x. Results print as a table and append as one JSON line to
//! `BENCH_adapt.json` so runs accumulate a history.
//!
//! ```text
//! adapt_bench [--smoke] [--reps N] [--out FILE]
//! ```
//!
//! `--smoke` runs the tiny dataset with one repetition and skips the JSON
//! append — used by `scripts/check.sh` to keep the binary exercised in CI.

use std::collections::HashSet;
use std::io::Write as _;

use mrx_bench::timing::time;
use mrx_bench::{json, Dataset, Scale};
use mrx_graph::DataGraph;
use mrx_index::{default_threads, requested_threads, AdaptEngine, DkIndex, MStarIndex, MkIndex};
use mrx_path::PathExpr;
use mrx_workload::{Workload, WorkloadConfig};

struct Opts {
    smoke: bool,
    reps: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        reps: 3,
        out: "BENCH_adapt.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--out" => opts.out = args.next().expect("--out FILE"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: adapt_bench [--smoke] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    if opts.smoke {
        opts.reps = 1;
    }
    opts
}

struct FamilyResult {
    name: &'static str,
    legacy_ms: f64,
    batched_ms: f64,
    steady_ms: f64,
    extent_bytes: usize,
    bytes_per_node: f64,
}

impl FamilyResult {
    fn speedup(&self) -> f64 {
        self.legacy_ms / self.batched_ms
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"legacy_ms\":{:.3},\"batched_ms\":{:.3},",
                "\"steady_ms\":{:.4},\"speedup\":{:.2},",
                "\"extent_bytes\":{},\"bytes_per_node\":{:.3}}}"
            ),
            self.name,
            self.legacy_ms,
            self.batched_ms,
            self.steady_ms,
            self.speedup(),
            self.extent_bytes,
            self.bytes_per_node,
        )
    }
}

/// Asserts the warm re-adaptation pass hit the plan cache and the scratch
/// pools instead of allocating — the engine's steady-state contract.
fn assert_steady_state(name: &str, engine: &AdaptEngine, allocs_before: u64) {
    let allocs = engine.stats().scratch_allocs - allocs_before;
    assert_eq!(
        allocs, 0,
        "{name}: steady-state re-adaptation allocated {allocs} scratch buffers"
    );
}

fn bench_dk(g: &DataGraph, fups: &[PathExpr], reps: usize, threads: usize) -> FamilyResult {
    let mut oracle = DkIndex::a0(g);
    for f in fups {
        oracle.promote_for(g, f);
    }
    let mut engine = AdaptEngine::with_threads(threads);
    let mut idx = DkIndex::a0(g);
    idx.promote_batch(g, fups, &mut engine);
    assert_eq!(
        idx.graph().export_extents(),
        oracle.graph().export_extents(),
        "dk-promote: batched adaptation diverged from the sequential oracle"
    );

    // Fresh indexes are built outside the timed closures (one per
    // iteration, including the warm-up pass): the metric is adaptation
    // wall-clock, not A(0) construction.
    let mut pool: Vec<DkIndex> = (0..=reps).map(|_| DkIndex::a0(g)).collect();
    let legacy = time("dk-promote/legacy", reps, || {
        let mut i = pool.pop().expect("one index per iteration");
        for f in fups {
            i.promote_for(g, f);
        }
        i.node_count()
    });
    let mut pool: Vec<DkIndex> = (0..=reps).map(|_| DkIndex::a0(g)).collect();
    let batched = time("dk-promote/batched", reps, || {
        let mut e = AdaptEngine::with_threads(threads);
        let mut i = pool.pop().expect("one index per iteration");
        i.promote_batch(g, fups, &mut e);
        i.node_count()
    });
    let allocs0 = engine.stats().scratch_allocs;
    let steady = time("dk-promote/steady", reps, || {
        idx.promote_batch(g, fups, &mut engine);
        idx.node_count()
    });
    assert_steady_state("dk-promote", &engine, allocs0);
    for t in [&legacy, &batched, &steady] {
        println!("{}", t.render());
    }
    let stats = mrx_index::stats::index_stats(g, idx.graph());
    FamilyResult {
        name: "dk-promote",
        legacy_ms: legacy.min_ms,
        batched_ms: batched.min_ms,
        steady_ms: steady.min_ms,
        extent_bytes: stats.extent_bytes,
        bytes_per_node: stats.bytes_per_node,
    }
}

fn bench_mk(g: &DataGraph, fups: &[PathExpr], reps: usize, threads: usize) -> FamilyResult {
    let mut oracle = MkIndex::new(g);
    for f in fups {
        oracle.refine_for(g, f);
    }
    let mut engine = AdaptEngine::with_threads(threads);
    let mut idx = MkIndex::new(g);
    idx.refine_batch(g, fups, &mut engine);
    assert_eq!(
        idx.graph().export_extents(),
        oracle.graph().export_extents(),
        "mk: batched adaptation diverged from the sequential oracle"
    );
    assert_eq!(
        idx.false_instance_breaks(),
        oracle.false_instance_breaks(),
        "mk: batched adaptation broke a different set of false instances"
    );

    let mut pool: Vec<MkIndex> = (0..=reps).map(|_| MkIndex::new(g)).collect();
    let legacy = time("mk/legacy", reps, || {
        let mut i = pool.pop().expect("one index per iteration");
        for f in fups {
            i.refine_for(g, f);
        }
        i.node_count()
    });
    let mut pool: Vec<MkIndex> = (0..=reps).map(|_| MkIndex::new(g)).collect();
    let batched = time("mk/batched", reps, || {
        let mut e = AdaptEngine::with_threads(threads);
        let mut i = pool.pop().expect("one index per iteration");
        i.refine_batch(g, fups, &mut e);
        i.node_count()
    });
    let allocs0 = engine.stats().scratch_allocs;
    let steady = time("mk/steady", reps, || {
        idx.refine_batch(g, fups, &mut engine);
        idx.node_count()
    });
    assert_steady_state("mk", &engine, allocs0);
    for t in [&legacy, &batched, &steady] {
        println!("{}", t.render());
    }
    let stats = mrx_index::stats::index_stats(g, idx.graph());
    FamilyResult {
        name: "mk",
        legacy_ms: legacy.min_ms,
        batched_ms: batched.min_ms,
        steady_ms: steady.min_ms,
        extent_bytes: stats.extent_bytes,
        bytes_per_node: stats.bytes_per_node,
    }
}

fn bench_mstar(g: &DataGraph, fups: &[PathExpr], reps: usize, threads: usize) -> FamilyResult {
    let mut oracle = MStarIndex::new(g);
    for f in fups {
        oracle.refine_for(g, f);
    }
    let mut engine = AdaptEngine::with_threads(threads);
    let mut idx = MStarIndex::new(g);
    idx.refine_batch(g, fups, &mut engine);
    assert_eq!(
        idx.max_k(),
        oracle.max_k(),
        "mstar: hierarchy depth mismatch"
    );
    for i in 0..=idx.max_k() {
        assert_eq!(
            idx.component(i).export_extents(),
            oracle.component(i).export_extents(),
            "mstar: batched adaptation diverged from the oracle in component {i}"
        );
    }
    assert_eq!(
        idx.false_instance_breaks(),
        oracle.false_instance_breaks(),
        "mstar: batched adaptation broke a different set of false instances"
    );

    let mut pool: Vec<MStarIndex> = (0..=reps).map(|_| MStarIndex::new(g)).collect();
    let legacy = time("mstar/legacy", reps, || {
        let mut i = pool.pop().expect("one index per iteration");
        for f in fups {
            i.refine_for(g, f);
        }
        i.node_count()
    });
    let mut pool: Vec<MStarIndex> = (0..=reps).map(|_| MStarIndex::new(g)).collect();
    let batched = time("mstar/batched", reps, || {
        let mut e = AdaptEngine::with_threads(threads);
        let mut i = pool.pop().expect("one index per iteration");
        i.refine_batch(g, fups, &mut e);
        i.node_count()
    });
    let allocs0 = engine.stats().scratch_allocs;
    let steady = time("mstar/steady", reps, || {
        idx.refine_batch(g, fups, &mut engine);
        idx.node_count()
    });
    assert_steady_state("mstar", &engine, allocs0);
    for t in [&legacy, &batched, &steady] {
        println!("{}", t.render());
    }
    // The hierarchy's footprint is the sum over its components.
    let extent_bytes: usize = mrx_index::stats::mstar_stats(g, &idx)
        .iter()
        .map(|s| s.extent_bytes)
        .sum();
    FamilyResult {
        name: "mstar",
        legacy_ms: legacy.min_ms,
        batched_ms: batched.min_ms,
        steady_ms: steady.min_ms,
        extent_bytes,
        bytes_per_node: extent_bytes as f64 / g.node_count().max(1) as f64,
    }
}

fn main() {
    let opts = parse_args();
    let scale = if opts.smoke { Scale::Tiny } else { Scale::Full };
    let g = Dataset::XMark.load(scale);
    // The paper's adaptation scenario: a 50-query workload window whose
    // promoted FUPs are adapted for in one go. Duplicate expressions stay
    // in — the legacy loop pays for them, the engine dedups them.
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 50,
            seed: 7,
            max_enumerated_paths: 200_000,
        },
    );
    let distinct: HashSet<&PathExpr> = w.queries.iter().collect();
    let threads = default_threads();
    println!(
        "adapt_bench: XMark-like, {} nodes, {} edges, {} fups ({} distinct), reps={}, threads={}",
        g.node_count(),
        g.edge_count(),
        w.queries.len(),
        distinct.len(),
        opts.reps,
        threads
    );

    let results = [
        bench_dk(&g, &w.queries, opts.reps, threads),
        bench_mk(&g, &w.queries, opts.reps, threads),
        bench_mstar(&g, &w.queries, opts.reps, threads),
    ];

    // Gate on the aggregate: the engine must at least halve the total
    // adaptation wall-clock across the family sweep. (Per-family gains
    // differ — the M*(k) wrapper keeps the legacy executor for parity and
    // gains the least.)
    let legacy_total: f64 = results.iter().map(|r| r.legacy_ms).sum();
    let batched_total: f64 = results.iter().map(|r| r.batched_ms).sum();
    let aggregate = legacy_total / batched_total;
    println!("aggregate batched speedup over legacy: {aggregate:.2}x");
    if !opts.smoke {
        assert!(
            aggregate >= 2.0,
            "batched adaptation must beat the per-FUP path at least 2x in aggregate \
             (got {aggregate:.2}x)"
        );
    }

    let families: Vec<String> = results.iter().map(FamilyResult::json).collect();
    let requested = match requested_threads() {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    };
    let line = format!(
        concat!(
            "{{\"dataset\":\"xmark\",\"nodes\":{},\"edges\":{},\"fups\":{},",
            "\"distinct_fups\":{},\"reps\":{},\"threads\":{},\"threads_requested\":{},",
            "\"host_cores\":{},\"aggregate_speedup\":{:.2},\"families\":[{}]}}"
        ),
        g.node_count(),
        g.edge_count(),
        w.queries.len(),
        distinct.len(),
        opts.reps,
        threads,
        requested,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        aggregate,
        families.join(","),
    );
    // Validate even in smoke mode, so CI catches a malformed line before it
    // would ever reach the checked-in history.
    json::assert_valid(&line);
    if opts.smoke {
        println!("smoke mode: skipping JSON append");
        return;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&opts.out)
        .expect("open BENCH_adapt.json");
    writeln!(f, "{line}").expect("append result line");
    println!("appended to {}", opts.out);
}
