//! Size and speed of the compressed posting representation against the raw
//! CSR arrays it replaces, on the default XMark-like dataset.
//!
//! Three measurements over the workload-refined M*(k) hierarchy:
//!
//! * **size** — bytes/node of the raw extent arrays (one `u32` per member
//!   plus the offset table) vs. the delta-varint posting arenas; the packed
//!   form must be at least 3x smaller;
//! * **decode sweep** — every extent of every component materialized once,
//!   raw slice-copy vs. tagged-block bulk decode: the distilled decode tax,
//!   reported as Melem/s and as a packed/raw ratio;
//! * **replay** — the frequent-query workload replayed through cold
//!   [`QuerySession`]s over the raw [`FrozenMStar`] slices vs. the
//!   [`CompressedMStar`] cursors — same galloping set algebra, same answer
//!   cache, different posting representation — answers cross-checked bit
//!   for bit before timing. Answer materialization from a raw extent is a
//!   `memcpy`; from a packed extent it is a varint-decode pass, which no
//!   decoder can drive to parity, so the packed replay carries an inherent
//!   decode tax on cache misses. Both the cached and cache-less ratios are
//!   reported to the JSON history and held under fixed regression backstops
//!   that would catch a decode-path blowup (e.g. falling back to
//!   per-element cursor dispatch);
//! * **intersect micro** — the acceptance comparison: throughput of the
//!   galloping intersection over raw slices and posting cursors against
//!   the naive linear merge it replaced, on sparse-vs-dense pairs (where
//!   seeking skips runs — galloping must win) and dense-vs-dense pairs
//!   (where the fast path must keep up with the plain merge).
//!
//! Results print as a table and append one JSON line to
//! `BENCH_compress.json` so runs accumulate a history.
//!
//! ```text
//! compress_bench [--smoke] [--reps N] [--out FILE]
//! ```
//!
//! `--smoke` runs the tiny dataset with one repetition and skips the JSON
//! append — used by `scripts/check.sh` to keep the binary exercised in CI.

use std::io::Write as _;

use mrx_bench::timing::time;
use mrx_bench::{json, Dataset, Scale};
use mrx_datagen::Prng;
use mrx_graph::FrozenGraph;
use mrx_index::{
    replay_compressed_mstar, replay_frozen_mstar, CompressedMStar, IdxId, MStarIndex, QueryScratch,
    TrustPolicy,
};
use mrx_path::{CompiledPath, Cost};
use mrx_postings::{intersect_seeking, PostingArena, SliceSeeker};
use mrx_workload::{Workload, WorkloadConfig};

const POLICY: TrustPolicy = TrustPolicy::Claimed;

struct Opts {
    smoke: bool,
    reps: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        reps: 5,
        out: "BENCH_compress.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--out" => opts.out = args.next().expect("--out FILE"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: compress_bench [--smoke] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    if opts.smoke {
        opts.reps = 1;
    }
    opts
}

/// The baseline the galloping algorithm replaced: a plain two-pointer
/// linear merge over raw slices.
fn intersect_merge(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// A sorted list of `len` ids sampled from `0..universe`.
fn sample_list(rng: &mut Prng, universe: u64, len: usize) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len * 2)
        .map(|_| rng.gen_range(0..universe) as u32)
        .collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

struct MicroResult {
    name: &'static str,
    merge_meps: f64,
    gallop_meps: f64,
    cursor_meps: f64,
}

/// Times the three intersection paths over one (a, b) pair; throughput is
/// total input elements per second.
fn intersect_micro(name: &'static str, a: &[u32], b: &[u32], reps: usize) -> MicroResult {
    let mut arena = PostingArena::new();
    arena.push_list(a);
    arena.push_list(b);
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_merge(a, b, &mut out);
    let expect = out.clone();
    out.clear();
    intersect_seeking(SliceSeeker::new(a), SliceSeeker::new(b), |v| out.push(v));
    assert_eq!(out, expect, "{name}: gallop diverged from merge");
    out.clear();
    intersect_seeking(arena.cursor(0), arena.cursor(1), |v| out.push(v));
    assert_eq!(out, expect, "{name}: cursor diverged from merge");

    let elems = (a.len() + b.len()) as f64;
    let merge = time(&format!("intersect/{name}/merge"), reps, || {
        intersect_merge(a, b, &mut out);
        out.len()
    });
    let gallop = time(&format!("intersect/{name}/gallop"), reps, || {
        out.clear();
        intersect_seeking(SliceSeeker::new(a), SliceSeeker::new(b), |v| out.push(v));
        out.len()
    });
    let cursor = time(&format!("intersect/{name}/cursor"), reps, || {
        out.clear();
        intersect_seeking(arena.cursor(0), arena.cursor(1), |v| out.push(v));
        out.len()
    });
    for t in [&merge, &gallop, &cursor] {
        println!("{}", t.render());
    }
    MicroResult {
        name,
        merge_meps: elems / merge.min_ms / 1e3,
        gallop_meps: elems / gallop.min_ms / 1e3,
        cursor_meps: elems / cursor.min_ms / 1e3,
    }
}

fn main() {
    let opts = parse_args();
    let scale = if opts.smoke { Scale::Tiny } else { Scale::Full };
    let g = Dataset::XMark.load(scale);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: scale.num_queries(),
            seed: 7,
            max_enumerated_paths: 200_000,
        },
    );
    let mut idx = MStarIndex::new(&g);
    for q in &w.queries {
        idx.refine_for(&g, q);
    }
    let fg = FrozenGraph::freeze(&g);
    let fz = idx.freeze();
    let cz = CompressedMStar::from_frozen(&fz);
    cz.validate().expect("compressed hierarchy invalid");
    println!(
        "compress_bench: XMark-like, {} nodes, {} edges, {} queries, {} components, reps={}",
        g.node_count(),
        g.edge_count(),
        w.queries.len(),
        cz.max_k() + 1,
        opts.reps,
    );

    // --- Size: raw CSR extent arrays vs. delta-varint arenas -------------
    let mut raw_bytes = 0usize;
    let mut packed_bytes = 0usize;
    for i in 0..=cz.max_k() {
        let f = fz.component(i);
        let members: usize = (0..f.node_count())
            .map(|v| f.extent(mrx_index::IdxId(v as u32)).len())
            .sum();
        raw_bytes += 4 * (members + f.node_count() + 1);
        packed_bytes += cz.component(i).extent_bytes();
    }
    let nodes = g.node_count().max(1);
    let ratio = raw_bytes as f64 / packed_bytes.max(1) as f64;
    let bytes_per_node = packed_bytes as f64 / nodes as f64;
    println!(
        "extent bytes: raw {raw_bytes} ({:.2} B/node), packed {packed_bytes} \
         ({bytes_per_node:.2} B/node), {ratio:.2}x smaller",
        raw_bytes as f64 / nodes as f64,
    );
    let mut enc = [0usize; 3];
    for i in 0..=cz.max_k() {
        let c = cz.component(i).extents.encoding_counts();
        for (t, n) in enc.iter_mut().zip(c) {
            *t += n;
        }
    }
    println!(
        "extent blocks: varint {} bitpacked {} run {}",
        enc[0], enc[1], enc[2]
    );
    if !opts.smoke {
        assert!(
            ratio >= 3.4,
            "tagged extents must stay at least 3.4x smaller than raw (got {ratio:.2}x)"
        );
    }

    // --- Decode sweep: materialize every extent once, both forms ---------
    let mut sink: Vec<mrx_graph::NodeId> = Vec::new();
    let total_ids: usize = (0..=cz.max_k())
        .map(|i| {
            let f = fz.component(i);
            (0..f.node_count())
                .map(|v| f.extent(IdxId(v as u32)).len())
                .sum::<usize>()
        })
        .sum();
    let decode_raw = time("decode/raw sweep", opts.reps.max(3), || {
        let mut n = 0usize;
        for i in 0..=cz.max_k() {
            let f = fz.component(i);
            for v in 0..f.node_count() {
                sink.clear();
                sink.extend_from_slice(f.extent(IdxId(v as u32)));
                n += sink.len();
            }
        }
        n
    });
    let decode_packed = time("decode/packed sweep", opts.reps.max(3), || {
        let mut n = 0usize;
        for i in 0..=cz.max_k() {
            let c = cz.component(i);
            for v in 0..c.node_count() {
                sink.clear();
                c.extents.decode_into(v, &mut sink);
                n += sink.len();
            }
        }
        n
    });
    println!("{}", decode_raw.render());
    println!("{}", decode_packed.render());
    let decode_ratio = decode_packed.min_ms / decode_raw.min_ms;
    println!(
        "bulk decode: {total_ids} ids, raw {:.0} Melem/s, packed {:.0} Melem/s ({decode_ratio:.2}x)",
        total_ids as f64 / decode_raw.min_ms / 1e3,
        total_ids as f64 / decode_packed.min_ms / 1e3,
    );

    // --- Replay: top-down over raw slices vs. posting cursors ------------
    // Parity first: the representations must agree bit for bit.
    let cps: Vec<CompiledPath> = w.queries.iter().map(|q| q.compile(&fg)).collect();
    let mut scratch = QueryScratch::new();
    for (q, cp) in w.queries.iter().zip(&cps) {
        let raw = fz.query_top_down_with_scratch(&fg, cp, POLICY, &mut scratch);
        let packed = cz.query_top_down_with_scratch(&fg, cp, POLICY, &mut scratch);
        assert_eq!(packed.nodes, raw.nodes, "answer mismatch on {q}");
        assert_eq!(packed.cost, raw.cost, "cost mismatch on {q}");
    }
    // The frequent-query serving path: cold sessions, so every distinct
    // query misses once and its repeats hit the cache — the steady state
    // the compressed representation is built for.
    let replay_raw = time("replay/raw", opts.reps, || {
        replay_frozen_mstar(&fz, &fg, &w.queries, POLICY, 1).total
    });
    let replay_packed = time("replay/packed", opts.reps, || {
        replay_compressed_mstar(&cz, &fg, &w.queries, POLICY, 1).total
    });
    println!("{}", replay_raw.render());
    println!("{}", replay_packed.render());
    let replay_ratio = replay_packed.min_ms / replay_raw.min_ms;
    println!("packed replay vs raw: {replay_ratio:.2}x");
    // The cache-less miss path, every query re-evaluated: this is where the
    // varint-decode tax lives, reported so the history tracks it.
    let cold_raw = time("replay/raw cacheless", opts.reps, || {
        let mut total = Cost::ZERO;
        for cp in &cps {
            total += fz
                .query_top_down_with_scratch(&fg, cp, POLICY, &mut scratch)
                .cost;
        }
        total
    });
    let cold_packed = time("replay/packed cacheless", opts.reps, || {
        let mut total = Cost::ZERO;
        for cp in &cps {
            total += cz
                .query_top_down_with_scratch(&fg, cp, POLICY, &mut scratch)
                .cost;
        }
        total
    });
    println!("{}", cold_raw.render());
    println!("{}", cold_packed.render());
    let cold_ratio = cold_packed.min_ms / cold_raw.min_ms;
    println!("packed cache-less replay vs raw: {cold_ratio:.2}x");
    // Regression backstops, not parity gates: raw answers materialize by
    // memcpy while packed answers block-decode, so the packed replay
    // legitimately trails (measured ~1.3x cached / ~1.5x cache-less with
    // the tagged block encodings and the monomorphized bit-unpack). The
    // backstops trip on a decode-path blowup — the per-element cursor
    // dispatch this bench was written against measured ~1.8x cache-less,
    // and the pre-tagged delta-varint decoder ~1.4x/~1.6x. The cache-less
    // ceiling carries extra spike headroom: the cacheless loops run long
    // enough that a CPU-contention window on the shared 1-core box can
    // inflate one side's minimum ~1.5x (observed 2.19x against the
    // typical ~1.5x). Smoke mode (tiny dataset, one rep) is noisier
    // still, so it keeps a loose blowup detector instead.
    let (replay_ceiling, cold_ceiling) = if opts.smoke { (3.0, 3.0) } else { (1.6, 2.4) };
    assert!(
        replay_ratio <= replay_ceiling,
        "packed replay regressed past the decode-tax envelope \
         (got {replay_ratio:.2}x, ceiling {replay_ceiling}x, expected ~1.3x)"
    );
    assert!(
        cold_ratio <= cold_ceiling,
        "packed cache-less replay regressed past the decode-tax \
         envelope (got {cold_ratio:.2}x, ceiling {cold_ceiling}x, expected ~1.5x)"
    );

    // --- Intersect micro: merge vs. gallop vs. cursor --------------------
    let mut rng = Prng::seed_from_u64(0xC0DEC);
    let universe = 1_000_000u64;
    let dense_a = sample_list(&mut rng, universe, 400_000);
    let dense_b = sample_list(&mut rng, universe, 400_000);
    let sparse = sample_list(&mut rng, universe, 4_000);
    let micro_reps = opts.reps.max(3);
    let micros = [
        intersect_micro("sparse-dense", &sparse, &dense_a, micro_reps),
        intersect_micro("dense-dense", &dense_a, &dense_b, micro_reps),
    ];
    for m in &micros {
        println!(
            "intersect/{}: merge {:.0} Melem/s, gallop {:.0} Melem/s, cursor {:.0} Melem/s",
            m.name, m.merge_meps, m.gallop_meps, m.cursor_meps
        );
    }
    if !opts.smoke {
        // Galloping must win big where seeking skips runs, and at worst pay
        // a small constant factor where the input is fully interleaved.
        let sd = &micros[0];
        assert!(
            sd.gallop_meps >= sd.merge_meps,
            "galloping must beat the linear merge on sparse-dense input \
             ({:.0} vs {:.0} Melem/s)",
            sd.gallop_meps,
            sd.merge_meps,
        );
        // The size-ratio cutoff in `intersect_seeking` must keep the
        // adaptive path from losing to the merge on fully interleaved
        // inputs (the regression that motivated it measured gallop at 0.87x
        // merge; with the cutoff it wins outright — the 0.9 floor absorbs
        // shared-box timing noise).
        let dd = &micros[1];
        assert!(
            dd.gallop_meps >= 0.9 * dd.merge_meps,
            "the adaptive intersection lost to the linear merge on \
             dense-dense input ({:.0} vs {:.0} Melem/s) — size-ratio \
             cutoff regressed",
            dd.gallop_meps,
            dd.merge_meps,
        );
    }

    let micro_json: Vec<String> = micros
        .iter()
        .map(|m| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"merge_meps\":{:.1},",
                    "\"gallop_meps\":{:.1},\"cursor_meps\":{:.1}}}"
                ),
                m.name, m.merge_meps, m.gallop_meps, m.cursor_meps
            )
        })
        .collect();
    let line = format!(
        concat!(
            "{{\"dataset\":\"xmark\",\"nodes\":{},\"edges\":{},\"queries\":{},",
            "\"components\":{},\"reps\":{},\"policy\":\"{}\",",
            "\"raw_extent_bytes\":{},\"extent_bytes\":{},",
            "\"raw_bytes_per_node\":{:.3},\"bytes_per_node\":{:.3},",
            "\"compress_ratio\":{:.2},",
            "\"blocks_varint\":{},\"blocks_bitpacked\":{},\"blocks_run\":{},",
            "\"decode_raw_ms\":{:.3},\"decode_packed_ms\":{:.3},",
            "\"decode_ratio\":{:.2},",
            "\"replay_raw_ms\":{:.3},\"replay_packed_ms\":{:.3},",
            "\"replay_ratio\":{:.3},",
            "\"cold_raw_ms\":{:.3},\"cold_packed_ms\":{:.3},",
            "\"cold_ratio\":{:.3},\"intersect\":[{}]}}"
        ),
        g.node_count(),
        g.edge_count(),
        w.queries.len(),
        cz.max_k() + 1,
        opts.reps,
        match POLICY {
            TrustPolicy::Proven => "proven",
            TrustPolicy::Claimed => "claimed",
        },
        raw_bytes,
        packed_bytes,
        raw_bytes as f64 / nodes as f64,
        bytes_per_node,
        ratio,
        enc[0],
        enc[1],
        enc[2],
        decode_raw.min_ms,
        decode_packed.min_ms,
        decode_ratio,
        replay_raw.min_ms,
        replay_packed.min_ms,
        replay_ratio,
        cold_raw.min_ms,
        cold_packed.min_ms,
        cold_ratio,
        micro_json.join(","),
    );
    // Validate even in smoke mode, so CI catches a malformed line before it
    // would ever reach the checked-in history.
    json::assert_valid(&line);
    if opts.smoke {
        println!("smoke mode: skipping JSON append");
        return;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&opts.out)
        .expect("open BENCH_compress.json");
    writeln!(f, "{line}").expect("append result line");
    println!("appended to {}", opts.out);
}
