//! Wall-clock timing of the partition refinement engine against the naive
//! oracle it replaced, on the default XMark-like dataset.
//!
//! Measures `k_bisim(k = 5)` three ways: the naive HashMap-of-Vec engine
//! (`mrx_index::naive`), the interning engine pinned to one thread, and the
//! interning engine at the default thread count (`MRX_THREADS` or all
//! cores). Results print as a table and append as one JSON line to
//! `BENCH_refine.json` so runs accumulate a history.
//!
//! ```text
//! refine_bench [--smoke] [--k N] [--reps N] [--out FILE]
//! ```
//!
//! `--smoke` runs the tiny dataset with one repetition and skips the JSON
//! append — used by `scripts/check.sh` to keep the binary exercised in CI.

use std::io::Write as _;

use mrx_bench::timing::time;
use mrx_bench::{Dataset, Scale};
use mrx_index::{default_threads, naive, requested_threads, Direction, Partition, Refiner};

struct Opts {
    smoke: bool,
    k: u32,
    reps: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        k: 5,
        reps: 3,
        out: "BENCH_refine.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--k" => opts.k = args.next().and_then(|v| v.parse().ok()).expect("--k N"),
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--out" => opts.out = args.next().expect("--out FILE"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: refine_bench [--smoke] [--k N] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    if opts.smoke {
        opts.reps = 1;
    }
    opts
}

fn engine_k_bisim(g: &mrx_graph::DataGraph, k: u32, threads: usize) -> Partition {
    let mut r = Refiner::with_threads(g, Direction::Up, threads);
    r.run(k);
    r.finish().0
}

fn main() {
    let opts = parse_args();
    let scale = if opts.smoke { Scale::Tiny } else { Scale::Full };
    let g = Dataset::XMark.load(scale);
    let k = opts.k;
    let threads = default_threads();
    println!(
        "refine_bench: XMark-like, {} nodes, {} edges, k={k}, reps={}",
        g.node_count(),
        g.edge_count(),
        opts.reps
    );

    let naive_t = time("naive k_bisim", opts.reps, || naive::k_bisim(&g, k));
    println!("{}", naive_t.render());
    let seq_t = time("engine k_bisim (1 thread)", opts.reps, || {
        engine_k_bisim(&g, k, 1)
    });
    println!("{}", seq_t.render());
    let par_t = time(
        &format!("engine k_bisim ({threads} threads)"),
        opts.reps,
        || engine_k_bisim(&g, k, threads),
    );
    println!("{}", par_t.render());

    // The engine must agree with the oracle bit-for-bit; a timing binary
    // that silently benchmarks a wrong answer is worse than useless.
    let expect = naive::k_bisim(&g, k);
    assert_eq!(engine_k_bisim(&g, k, 1), expect, "engine(1) diverged");
    assert_eq!(
        engine_k_bisim(&g, k, threads),
        expect,
        "engine({threads}) diverged"
    );

    let speedup_1t = naive_t.min_ms / seq_t.min_ms;
    let speedup_nt = naive_t.min_ms / par_t.min_ms;
    println!(
        "speedup vs naive: {speedup_1t:.2}x at 1 thread, {speedup_nt:.2}x at {threads} threads"
    );

    // `threads` is the effective count (requested clamped to the host);
    // `threads_requested` records the raw MRX_THREADS ask, null if unset.
    let requested = match requested_threads() {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    };
    let line = format!(
        concat!(
            "{{\"dataset\":\"xmark\",\"nodes\":{},\"edges\":{},\"k\":{},\"reps\":{},",
            "\"naive_ms\":{:.3},\"engine_1t_ms\":{:.3},\"engine_nt_ms\":{:.3},",
            "\"threads\":{},\"threads_requested\":{},\"host_cores\":{},",
            "\"speedup_1t\":{:.3},\"speedup_nt\":{:.3}}}"
        ),
        g.node_count(),
        g.edge_count(),
        k,
        opts.reps,
        naive_t.min_ms,
        seq_t.min_ms,
        par_t.min_ms,
        threads,
        requested,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        speedup_1t,
        speedup_nt,
    );
    // Validate even in smoke mode, so CI catches a malformed line before it
    // would ever reach the checked-in history.
    mrx_bench::json::assert_valid(&line);
    if opts.smoke {
        println!("smoke mode: skipping JSON append");
        return;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&opts.out)
        .expect("open BENCH_refine.json");
    writeln!(f, "{line}").expect("append result line");
    println!("appended to {}", opts.out);
}
