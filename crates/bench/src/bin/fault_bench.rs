//! Fault-injection harness for the `.mrx` serving read path.
//!
//! Four experiments over a real frozen XMark-like snapshot (the v1 extent
//! layout, the v2 flat CSR layout, the compressed posting layout, and the
//! demand-paged layout). The `v3`/`v4` labels are kept for history
//! continuity; the writers behind them now emit the tagged-block v5/v6
//! forms, so every posting-section fault below lands inside or around a
//! tagged block (delta-varint, bit-packed, or run):
//!
//! * **seeded corruption sweep** — ≥10k deterministic [`FaultPlan`]s (bit
//!   flips, truncations, overwrites, section-length lies, mid-stream I/O
//!   errors, short reads) each applied to a fresh copy of the snapshot;
//!   every load attempt must end in `Ok` or a typed [`StoreError`] — never
//!   a panic, never an abort, and a *rejected* image must not allocate more
//!   than twice its own size on the way to the error. On v4 the "load" is
//!   open + a query sweep + a full page-checksum walk, since the paged
//!   region is never read eagerly;
//! * **paged-region bit flips** — every (sampled) bit inside the v4 paged
//!   region is flipped in turn; the open must still succeed (the region is
//!   lazy), the page walk must name exactly a corrupt page, and a fresh
//!   reader serving queries must either return the clean answer (page
//!   never touched) or fail with a typed checksum error at first touch —
//!   a flipped page is *never* decoded, so a wrong answer is impossible;
//! * **exhaustive single-bit flips** — on a small snapshot, every bit of
//!   every checksummed section payload is flipped in turn and the load must
//!   fail with [`StoreError::Checksum`] for exactly that section family; on
//!   the compressed layout this proves a flip inside a tagged block — tag
//!   byte included — is caught by the section checksum *before* any block
//!   decode runs;
//! * **wire-protocol fuzzing** — seeded malformed frames (lying length
//!   prefixes past the request cap, garbage verbs, in-body length lies,
//!   empty payloads, truncated frames followed by a hangup) thrown at a
//!   live `mrx serve` daemon; every response-bearing abuse must come back
//!   as a typed `Protocol` error, the daemon must stay healthy afterwards,
//!   and the whole sweep must allocate a bounded amount even though the
//!   frames *declare* gigabytes — the length cap runs before any buffer
//!   is sized;
//! * **budget overhead** — the same workload replayed through governed
//!   ([`replay_frozen_mstar_budgeted`] with a generous budget, so the meter
//!   runs but never trips) vs. ungoverned sessions; the warm-path tax of
//!   carrying a [`QueryBudget`] must stay under 2%.
//!
//! Results print as a table and append one JSON line to `BENCH_fault.json`.
//!
//! ```text
//! fault_bench [--smoke] [--seeds N] [--reps N] [--out FILE]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use mrx_bench::timing::time;
use mrx_bench::{json, Dataset, Scale};
use mrx_datagen::prng::Prng;
use mrx_graph::FrozenGraph;
use mrx_index::{replay_frozen_mstar, replay_frozen_mstar_budgeted, MStarIndex, TrustPolicy};
use mrx_path::PathExpr;
use mrx_path::QueryBudget;
use mrx_serve::{Client, Response, ServeConfig, ServeError, Server, MAX_REQUEST_FRAME};
use mrx_store::fault::{FaultKind, FaultPlan};
use mrx_store::{
    load_compressed_from, load_frozen_from, load_mstar_from, paged_image, save_compressed_to,
    save_frozen_to, save_mstar_to, PagedFile, StoreError,
};
use mrx_workload::{Workload, WorkloadConfig};

const POLICY: TrustPolicy = TrustPolicy::Proven;

/// Counts bytes requested from the allocator (cumulative, so `Vec` growth
/// and reallocation both count toward a load attempt's footprint).
struct CountingAlloc;

static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn bytes_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = BYTES.load(Ordering::Relaxed);
    let out = f();
    (BYTES.load(Ordering::Relaxed) - before, out)
}

struct Opts {
    smoke: bool,
    seeds: u64,
    reps: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        seeds: 10_000,
        reps: 7,
        out: "BENCH_fault.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--seeds" => opts.seeds = args.next().and_then(|v| v.parse().ok()).expect("--seeds N"),
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--out" => opts.out = args.next().expect("--out FILE"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: fault_bench [--smoke] [--seeds N] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    if opts.smoke {
        opts.seeds = opts.seeds.min(500);
        opts.reps = 3;
    }
    opts
}

/// How one faulted load attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok,
    Io,
    Format,
    Checksum,
}

impl Outcome {
    fn of<T>(r: &Result<T, StoreError>) -> Outcome {
        match r {
            Ok(_) => Outcome::Ok,
            Err(StoreError::Io(_)) => Outcome::Io,
            Err(StoreError::Format(_)) => Outcome::Format,
            Err(StoreError::Checksum { .. }) => Outcome::Checksum,
        }
    }
}

#[derive(Default, Clone, Copy)]
struct Tally {
    ok: u64,
    io: u64,
    format: u64,
    checksum: u64,
}

impl Tally {
    fn record(&mut self, o: Outcome) {
        match o {
            Outcome::Ok => self.ok += 1,
            Outcome::Io => self.io += 1,
            Outcome::Format => self.format += 1,
            Outcome::Checksum => self.checksum += 1,
        }
    }

    fn rejected(&self) -> u64 {
        self.io + self.format + self.checksum
    }
}

fn kind_name(k: FaultKind) -> &'static str {
    match k {
        FaultKind::BitFlip => "bit-flip",
        FaultKind::Truncate => "truncate",
        FaultKind::Overwrite => "overwrite",
        FaultKind::LengthLie => "length-lie",
        FaultKind::IoError => "io-error",
        FaultKind::ShortRead => "short-read",
    }
}

/// Runs `seeds` deterministic corruptions of `image` through `load`,
/// tallying outcomes per fault kind. Asserts the loader never panics and
/// that rejecting a corrupt image never allocates more than loading the
/// intact one (plus `2 * image.len()` and a fixed slack for the staging
/// copy and error strings) — i.e. a lying length prefix cannot make the
/// loader balloon past the work an honest input would cost.
fn corruption_sweep(
    label: &str,
    image: &[u8],
    seeds: u64,
    load: impl Fn(&FaultPlan, &[u8]) -> Result<(), StoreError>,
) -> (BTreeMap<&'static str, Tally>, u64) {
    // An image-level plan's reader is transparent, so feeding it the
    // unfaulted image measures a clean load.
    let intact = (0u64..)
        .map(FaultPlan::from_seed)
        .find(|p| !matches!(p.kind(), FaultKind::IoError | FaultKind::ShortRead))
        .expect("image-level kinds are 4 of 6");
    let (clean_bytes, clean) = bytes_during(|| load(&intact, image));
    assert!(clean.is_ok(), "{label}: intact image must load");
    let alloc_cap = clean_bytes + 2 * image.len() as u64 + (1 << 21);
    let mut per_kind: BTreeMap<&'static str, Tally> = BTreeMap::new();
    let mut panics = 0u64;
    for seed in 0..seeds {
        let plan = FaultPlan::from_seed(seed);
        let mut img = image.to_vec();
        plan.corrupt(&mut img);
        let (bytes, result) =
            bytes_during(|| catch_unwind(AssertUnwindSafe(|| load(&plan, &img))).map_err(|_| seed));
        match result {
            Ok(r) => {
                let o = Outcome::of(&r);
                if o != Outcome::Ok {
                    assert!(
                        bytes <= alloc_cap,
                        "{label}: seed {seed} ({:?}) allocated {bytes} bytes \
                         rejecting a {}-byte image (cap {alloc_cap})",
                        plan.kind(),
                        img.len(),
                    );
                }
                per_kind
                    .entry(kind_name(plan.kind()))
                    .or_default()
                    .record(o);
            }
            Err(seed) => {
                eprintln!("{label}: PANIC at seed {seed} ({:?})", plan.kind());
                panics += 1;
            }
        }
    }
    (per_kind, panics)
}

/// Byte ranges of every checksummed section payload in a `.mrx` image.
/// Layout (v1 and v2 both): 16-byte header (`magic | u32 version |
/// u32 ncomp`), a graph section, a raw (unchecksummed) `8 * ncomp`-byte
/// offset directory, then `ncomp` component sections; every section is
/// `[u64 len][payload][u64 fnv64]`.
fn payload_ranges(image: &[u8]) -> Vec<(usize, usize)> {
    let ncomp = u32::from_le_bytes(image[12..16].try_into().unwrap()) as usize;
    let mut ranges = Vec::with_capacity(1 + ncomp);
    let mut off = 16usize;
    for i in 0..=ncomp {
        if i == 1 {
            off += 8 * ncomp; // skip the offset directory
        }
        let len = u64::from_le_bytes(image[off..off + 8].try_into().unwrap()) as usize;
        ranges.push((off + 8, off + 8 + len));
        off += 8 + len + 8;
    }
    assert_eq!(off, image.len(), "section walk must cover the whole image");
    ranges
}

/// Flips checksummed payload bits (every `stride`-th bit; `stride == 1`
/// is exhaustive) and asserts each flipped image fails to load with
/// `StoreError::Checksum`. Returns the number of bits tested.
fn bit_flips(
    label: &str,
    image: &[u8],
    stride: u64,
    load: impl Fn(&[u8]) -> Result<(), StoreError>,
) -> u64 {
    let mut tested = 0u64;
    for (start, end) in payload_ranges(image) {
        let mut bitpos = (start as u64) * 8;
        while bitpos < (end as u64) * 8 {
            let mut img = image.to_vec();
            img[(bitpos / 8) as usize] ^= 1 << (bitpos % 8);
            match load(&img) {
                Err(StoreError::Checksum { .. }) => {}
                other => panic!(
                    "{label}: flip of payload bit {bitpos} escaped the \
                     checksum (got {other:?})"
                ),
            }
            tested += 1;
            bitpos += stride;
        }
    }
    tested
}

fn main() {
    let opts = parse_args();
    let scale = if opts.smoke {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let g = Dataset::XMark.load(scale);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: scale.num_queries(),
            seed: 7,
            max_enumerated_paths: 200_000,
        },
    );
    let mut idx = MStarIndex::new(&g);
    for q in &w.queries {
        idx.refine_for(&g, q);
    }
    let fg = FrozenGraph::freeze(&g);
    let fz = idx.freeze();
    let mut v1 = Vec::new();
    save_mstar_to(&mut v1, &g, &idx).expect("save v1");
    let mut v2 = Vec::new();
    save_frozen_to(&mut v2, &fg, &fz).expect("save v2");
    let cz = idx.freeze_compressed();
    let mut v3 = Vec::new();
    save_compressed_to(&mut v3, &fg, &cz).expect("save v3");
    // Demand-paged v4 with small pages, so seeded faults land across many
    // independently checksummed pages instead of one giant page.
    let v4 = paged_image(&fg, &cz, 4096).expect("pack v4");
    let extent_bytes: usize = (0..=cz.max_k())
        .map(|i| cz.component(i).extent_bytes())
        .sum();
    println!(
        "fault_bench: XMark-like, {} nodes, v1 {} bytes, v2 {} bytes, v3 {} bytes, \
         v4 {} bytes, {} seeds per format",
        g.node_count(),
        v1.len(),
        v2.len(),
        v3.len(),
        v4.len(),
        opts.seeds,
    );

    // --- Seeded corruption sweep over both layouts ----------------------
    let (v1_tally, v1_panics) = corruption_sweep("v1", &v1, opts.seeds, |plan, img| {
        load_mstar_from(plan.reader(img, img.len() as u64)).map(|_| ())
    });
    let (v2_tally, v2_panics) = corruption_sweep("v2", &v2, opts.seeds, |plan, img| {
        load_frozen_from(plan.reader(img, img.len() as u64)).map(|_| ())
    });
    let (v3_tally, v3_panics) = corruption_sweep("v3", &v3, opts.seeds, |plan, img| {
        load_compressed_from(plan.reader(img, img.len() as u64)).map(|_| ())
    });
    // v4 opens lazily, so "load" alone would never touch the paged region
    // or the deeper meta sections: the attempt is open + full component
    // activation + a query sweep + the full page-checksum walk, covering
    // every byte the way the eager loaders do. Reader-level kinds
    // (io-error, short-read) don't apply to the in-memory open and land in
    // the `ok` column by construction.
    let v4_queries: Vec<PathExpr> = w.queries.iter().take(4).cloned().collect();
    let (v4_tally, v4_panics) = corruption_sweep("v4", &v4, opts.seeds, |_plan, img| {
        let mut f = PagedFile::open_bytes(img.to_vec(), 1 << 22)?;
        f.ensure_loaded(usize::MAX)?;
        for q in &v4_queries {
            f.query_top_down(q)?;
        }
        f.verify()
    });
    let panics = v1_panics + v2_panics + v3_panics + v4_panics;
    println!(
        "\n{:<12} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "fault", "ok", "io", "format", "checksum", "total"
    );
    for (label, tally) in [
        ("v1", &v1_tally),
        ("v2", &v2_tally),
        ("v3", &v3_tally),
        ("v4", &v4_tally),
    ] {
        for (kind, t) in tally {
            println!(
                "{label}/{kind:<10} {:>8} {:>8} {:>8} {:>10} {:>8}",
                t.ok,
                t.io,
                t.format,
                t.checksum,
                t.ok + t.rejected(),
            );
        }
    }
    assert_eq!(panics, 0, "corrupted snapshots must never panic the loader");
    // Reader-level short reads are *legal* `Read` behaviour — both loaders
    // must shrug them off; everything they reject must be typed.
    for (label, tally) in [("v1", &v1_tally), ("v2", &v2_tally), ("v3", &v3_tally)] {
        if let Some(t) = tally.get("short-read") {
            assert_eq!(
                t.rejected(),
                0,
                "{label}: short reads are legal Read outcomes and must load cleanly"
            );
        }
        if let Some(t) = tally.get("io-error") {
            assert_eq!(t.ok, 0, "{label}: injected I/O errors must surface");
        }
    }
    let rejected: u64 = [&v1_tally, &v2_tally, &v3_tally, &v4_tally]
        .iter()
        .flat_map(|t| t.values())
        .map(Tally::rejected)
        .sum();
    println!(
        "\n{} corruptions rejected with typed errors, 0 panics",
        rejected
    );

    // --- Exhaustive single-bit flips on a small snapshot -----------------
    let sg = Dataset::XMark.load(Scale::Tiny);
    let mut sidx = MStarIndex::new(&sg);
    for q in &w.queries[..w.queries.len().min(8)] {
        sidx.refine_for(&sg, q);
    }
    let sfg = FrozenGraph::freeze(&sg);
    let sfz = sidx.freeze();
    let mut s1 = Vec::new();
    save_mstar_to(&mut s1, &sg, &sidx).expect("save small v1");
    let mut s2 = Vec::new();
    save_frozen_to(&mut s2, &sfg, &sfz).expect("save small v2");
    let scz = sidx.freeze_compressed();
    let mut s3 = Vec::new();
    save_compressed_to(&mut s3, &sfg, &scz).expect("save small v3");
    // Exhaustive outside smoke; in smoke mode sample every 97th payload
    // bit (coprime to 8, so every bit position within a byte is hit) to
    // stay inside the CI time box while still proving the property.
    let stride = if opts.smoke { 97 } else { 1 };
    let b1 = bit_flips("v1", &s1, stride, |img| load_mstar_from(img).map(|_| ()));
    let b2 = bit_flips("v2", &s2, stride, |img| load_frozen_from(img).map(|_| ()));
    // Every flipped bit here lands in or around a tagged posting block —
    // including flips of the tag byte itself, which could otherwise turn a
    // run block into a bit-packed one; the section checksum must reject
    // the image before any tagged-block decode sees it.
    let b3 = bit_flips("v3", &s3, stride, |img| {
        load_compressed_from(img).map(|_| ())
    });
    println!(
        "payload bit flips all caught by checksum: v1 {b1}, v2 {b2}, v3 {b3}{}",
        if opts.smoke { " (sampled 1/97)" } else { "" }
    );

    // --- Paged-region bit flips on a small v4 snapshot -------------------
    // Tiny 256-byte pages spread the region over many independently
    // checksummed pages; the clean answers are the wrong-answer oracle.
    let s4 = paged_image(&sfg, &scz, 256).expect("pack small v4");
    let sq: Vec<PathExpr> = w.queries.iter().take(4).cloned().collect();
    let clean: Vec<_> = {
        let mut f = PagedFile::open_bytes(s4.clone(), 1 << 22).expect("open clean small v4");
        sq.iter()
            .map(|q| {
                f.query_top_down(q)
                    .expect("clean small v4 must serve")
                    .nodes
            })
            .collect()
    };
    let (b4, b4_query_catches) = paged_region_flips("v4", &s4, stride, &sq, &clean);
    println!(
        "paged-region bit flips all caught before decode: v4 {b4} \
         ({b4_query_catches} surfaced mid-query, rest in untouched pages){}",
        if opts.smoke { " (sampled 1/97)" } else { "" }
    );

    // --- Wire-protocol fuzzing against a live daemon ----------------------
    let wire_seeds = opts.seeds.min(if opts.smoke { 150 } else { 1_000 });
    let wire_q = w.queries[0].to_string();
    let wire_clean: Vec<u32> = sfz
        .query_top_down(&sfg, &w.queries[0], POLICY)
        .nodes
        .iter()
        .map(|n| n.0)
        .collect();
    let wire = wire_fuzz(&s2, wire_seeds, &wire_q, &wire_clean);
    println!(
        "wire fuzzing: {} frames ({} typed protocol errors, {} hangups), \
         {} declared bytes rejected with {} bytes allocated, daemon healthy",
        wire.frames, wire.typed, wire.hangups, wire.declared_bytes, wire.alloc_bytes
    );

    // --- Budget overhead on the warm frozen replay path ------------------
    // The whole replay is ~0.2 ms, so the min wanders a few percent run to
    // run; floor the rep count high enough that the minimums converge.
    let budget_reps = opts.reps.max(25);
    let ungoverned = time("replay/ungoverned", budget_reps, || {
        replay_frozen_mstar(&fz, &fg, &w.queries, POLICY, 1).total
    });
    let generous = QueryBudget {
        max_steps: Some(u64::MAX / 2),
        max_result_nodes: Some(u64::MAX / 2),
        ..QueryBudget::unlimited()
    };
    let governed = time("replay/governed", budget_reps, || {
        replay_frozen_mstar_budgeted(&fz, &fg, &w.queries, POLICY, 1, &generous).total
    });
    println!("{}", ungoverned.render());
    println!("{}", governed.render());
    let overhead_pct = (governed.min_ms / ungoverned.min_ms - 1.0) * 100.0;
    println!("budget metering overhead: {overhead_pct:.2}%");
    if !opts.smoke {
        // The governed descent keeps the per-visit cursor loop so a limit
        // trips at the exact visit, while the ungoverned descent takes the
        // bulk extent walk (Governor::GOVERNED); the gap is that foregone
        // bulk decode plus the meter arithmetic, measured 2-4% warm with
        // ~±2% run-to-run noise. Gate as a regression backstop above that
        // envelope.
        assert!(
            overhead_pct < 6.0,
            "budget metering must stay within the measured 2-4% envelope \
             on the warm path (got {overhead_pct:.2}%)"
        );
    }

    let line = format!(
        concat!(
            "{{\"dataset\":\"xmark\",\"nodes\":{},\"v1_bytes\":{},\"v2_bytes\":{},",
            "\"v3_bytes\":{},\"v4_bytes\":{},\"extent_bytes\":{},\"bytes_per_node\":{:.3},",
            "\"seeds_per_format\":{},\"rejected\":{},\"panics\":{},",
            "\"v1_ok\":{},\"v1_io\":{},\"v1_format\":{},\"v1_checksum\":{},",
            "\"v2_ok\":{},\"v2_io\":{},\"v2_format\":{},\"v2_checksum\":{},",
            "\"v3_ok\":{},\"v3_io\":{},\"v3_format\":{},\"v3_checksum\":{},",
            "\"v4_ok\":{},\"v4_io\":{},\"v4_format\":{},\"v4_checksum\":{},",
            "\"bitflips_v1\":{},\"bitflips_v2\":{},\"bitflips_v3\":{},",
            "\"region_flips_v4\":{},\"region_flips_v4_mid_query\":{},",
            "\"bitflip_escapes\":0,",
            "\"wire_frames\":{},\"wire_typed\":{},\"wire_hangups\":{},",
            "\"wire_declared_bytes\":{},\"wire_alloc_bytes\":{},\"wire_panics\":0,",
            "\"replay_ungoverned_ms\":{:.3},\"replay_governed_ms\":{:.3},",
            "\"budget_overhead_pct\":{:.2}}}"
        ),
        g.node_count(),
        v1.len(),
        v2.len(),
        v3.len(),
        v4.len(),
        extent_bytes,
        extent_bytes as f64 / g.node_count().max(1) as f64,
        opts.seeds,
        rejected,
        panics,
        sum(&v1_tally, |t| t.ok),
        sum(&v1_tally, |t| t.io),
        sum(&v1_tally, |t| t.format),
        sum(&v1_tally, |t| t.checksum),
        sum(&v2_tally, |t| t.ok),
        sum(&v2_tally, |t| t.io),
        sum(&v2_tally, |t| t.format),
        sum(&v2_tally, |t| t.checksum),
        sum(&v3_tally, |t| t.ok),
        sum(&v3_tally, |t| t.io),
        sum(&v3_tally, |t| t.format),
        sum(&v3_tally, |t| t.checksum),
        sum(&v4_tally, |t| t.ok),
        sum(&v4_tally, |t| t.io),
        sum(&v4_tally, |t| t.format),
        sum(&v4_tally, |t| t.checksum),
        b1,
        b2,
        b3,
        b4,
        b4_query_catches,
        wire.frames,
        wire.typed,
        wire.hangups,
        wire.declared_bytes,
        wire.alloc_bytes,
        ungoverned.min_ms,
        governed.min_ms,
        overhead_pct,
    );
    json::assert_valid(&line);
    if opts.smoke {
        println!("smoke mode: skipping JSON append");
        return;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&opts.out)
        .expect("open BENCH_fault.json");
    writeln!(f, "{line}").expect("append result line");
    println!("appended to {}", opts.out);
}

fn sum(t: &BTreeMap<&'static str, Tally>, f: impl Fn(&Tally) -> u64) -> u64 {
    t.values().map(f).sum()
}

struct WireResult {
    frames: u64,
    typed: u64,
    hangups: u64,
    declared_bytes: u64,
    alloc_bytes: u64,
}

/// One seeded malformed frame: (bytes, expect_response, declared_bytes).
/// `expect_response == false` means the abuse is a truncated frame the
/// client hangs up on; the daemon reaps it without answering.
fn wire_frame(rng: &mut Prng) -> (Vec<u8>, bool, u64) {
    match rng.gen_range(0..5usize) {
        // Length prefix far past the request cap: rejected pre-allocation.
        0 => {
            let len = rng.gen_range(MAX_REQUEST_FRAME as u64 + 1..u32::MAX as u64);
            ((len as u32).to_le_bytes().to_vec(), true, len)
        }
        // Garbage verb byte in an otherwise well-framed payload.
        1 => {
            let verb = 32 + rng.gen_range(0..200u64) as u8;
            let mut payload = 7u32.to_le_bytes().to_vec();
            payload.push(verb);
            payload.extend_from_slice(&[0u8; 4]);
            let mut f = (payload.len() as u32).to_le_bytes().to_vec();
            f.extend_from_slice(&payload);
            let n = payload.len() as u64;
            (f, true, n)
        }
        // QUERY whose in-body tenant length lies past the frame end.
        2 => {
            let mut payload = 9u32.to_le_bytes().to_vec();
            payload.push(1); // VERB_QUERY
            payload.extend_from_slice(&(rng.gen_range(100..u16::MAX as u64) as u16).to_le_bytes());
            payload.extend_from_slice(b"x");
            let mut f = (payload.len() as u32).to_le_bytes().to_vec();
            f.extend_from_slice(&payload);
            let n = payload.len() as u64;
            (f, true, n)
        }
        // Empty payload: too short to even carry a request id.
        3 => (0u32.to_le_bytes().to_vec(), true, 0),
        // Truncated frame: declare more than is sent, then hang up.
        _ => {
            let declared = rng.gen_range(16..512u64) as u32;
            let sent = rng.gen_range(0..declared as u64 / 2) as usize;
            let mut f = declared.to_le_bytes().to_vec();
            f.extend(vec![0xAAu8; sent]);
            (f, false, declared as u64)
        }
    }
}

/// Throws `seeds` malformed frames at a live daemon serving `image`.
/// Every response-bearing abuse must come back as a typed `Protocol`
/// error, the daemon must still serve `probe_expr` with the clean answer
/// afterwards, and the sweep's total allocation must stay bounded no
/// matter how many bytes the frames *declared* — the frame cap runs
/// before any buffer is sized.
fn wire_fuzz(image: &[u8], seeds: u64, probe_expr: &str, probe_want: &[u32]) -> WireResult {
    let dir = std::env::temp_dir().join(format!("mrx-fault-wire-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create wire temp dir");
    let snap = dir.join("wire.mrx");
    std::fs::write(&snap, image).expect("write wire snapshot");
    let mut cfg = ServeConfig::new("127.0.0.1:0", &snap);
    cfg.workers = 2;
    cfg.tick = std::time::Duration::from_millis(10);
    cfg.frame_timeout = std::time::Duration::from_millis(200);
    cfg.drain_timeout = std::time::Duration::from_secs(2);
    let server = Server::start(cfg).expect("start wire daemon");
    let addr = server.addr();
    let mut typed = 0u64;
    let mut hangups = 0u64;
    let mut declared = 0u64;
    let (alloc_bytes, ()) = bytes_during(|| {
        for seed in 0..seeds {
            let mut rng = Prng::seed_from_u64(seed);
            let (frame, expect_response, declared_len) = wire_frame(&mut rng);
            declared += declared_len;
            let Ok(mut c) = Client::connect(addr) else {
                panic!("wire daemon stopped accepting at seed {seed}")
            };
            if c.send_raw(&frame).is_err() {
                hangups += 1;
                continue;
            }
            if expect_response {
                match c.read_response_raw() {
                    Ok((_, Response::Error(ServeError::Protocol(_)))) => typed += 1,
                    Ok((_, other)) => {
                        panic!("seed {seed}: malformed frame answered with {other:?}")
                    }
                    // The daemon may slam the connection instead of (or
                    // after) the typed reply; both are legal refusals.
                    Err(_) => hangups += 1,
                }
            } else {
                hangups += 1;
            }
        }
    });
    // The daemon must shrug the abuse off: alive, healthy, and still
    // serving the clean answer.
    let mut c = Client::connect(addr).expect("reconnect after fuzzing");
    c.ping().expect("daemon must answer ping after fuzzing");
    let r = c
        .query("probe", probe_expr)
        .expect("daemon must serve after fuzzing");
    assert_eq!(r.nodes, probe_want, "fuzzing changed a served answer");
    let stats = c.stats().expect("stats after fuzzing");
    assert!(
        stats.contains("\"healthy\":true"),
        "daemon degraded: {stats}"
    );
    drop(c);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(typed > 0, "fuzzing never produced a typed protocol error");
    assert!(
        alloc_bytes < (1 << 28),
        "wire sweep allocated {alloc_bytes} bytes against {declared} declared \
         — the frame cap must run before buffers are sized"
    );
    WireResult {
        frames: seeds,
        typed,
        hangups,
        declared_bytes: declared,
        alloc_bytes,
    }
}

/// Flips every `stride`-th bit inside the v4 paged region. Opening must
/// still succeed (the region is lazy), [`PagedFile::verify`] must name a
/// corrupt page, and serving must never yield a wrong answer: each query
/// either matches the clean answer (the flipped page was never touched)
/// or fails with the typed per-page checksum error at first touch — the
/// checksum runs on page fault, *before* any tagged-block decode sees the
/// corrupt bytes (readahead keeps that property: a speculative page that
/// fails its checksum is simply not admitted, and the demand fault for it
/// re-verifies). Returns (bits tested, flips surfaced mid-query).
fn paged_region_flips(
    label: &str,
    image: &[u8],
    stride: u64,
    queries: &[PathExpr],
    clean: &[Vec<mrx_graph::NodeId>],
) -> (u64, u64) {
    let paged_off = u64::from_le_bytes(image[16..24].try_into().unwrap());
    let paged_len = u64::from_le_bytes(image[24..32].try_into().unwrap());
    let mut tested = 0u64;
    let mut caught_in_query = 0u64;
    let mut bitpos = paged_off * 8;
    while bitpos < (paged_off + paged_len) * 8 {
        let mut img = image.to_vec();
        img[(bitpos / 8) as usize] ^= 1 << (bitpos % 8);
        let mut f = PagedFile::open_bytes(img, 1 << 22).unwrap_or_else(|e| {
            panic!("{label}: open must not touch the lazy region (bit {bitpos}): {e}")
        });
        match f.verify() {
            Err(StoreError::Checksum { ref section }) if section.starts_with("page ") => {}
            other => {
                panic!("{label}: flip of region bit {bitpos} escaped the page walk (got {other:?})")
            }
        }
        for (q, want) in queries.iter().zip(clean) {
            match f.query_top_down(q) {
                Ok(ans) => assert_eq!(
                    &ans.nodes, want,
                    "{label}: wrong answer served despite flipped bit {bitpos} on {q}"
                ),
                Err(StoreError::Checksum { .. }) => {
                    caught_in_query += 1;
                    break;
                }
                Err(e) => panic!(
                    "{label}: flip of region bit {bitpos} surfaced as a \
                     non-checksum error on {q}: {e}"
                ),
            }
        }
        tested += 1;
        bitpos += stride;
    }
    (tested, caught_in_query)
}
