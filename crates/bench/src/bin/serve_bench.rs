//! Throughput and chaos harness for the `mrx serve` daemon.
//!
//! Two phases over in-process servers on a loopback socket:
//!
//! * **sustained throughput** — an XMark-like compressed snapshot served to
//!   N concurrent tenant connections, each replaying the workload's
//!   query strings in a tight loop. Every answer is first cross-checked
//!   against a single-threaded oracle, then the timed run records
//!   sustained QPS and the p50/p99/p999 client-observed latency along
//!   with the daemon's shed/cache counters.
//! * **deterministic chaos** (`--chaos` runs it alone) — a SplitMix64-
//!   seeded scenario mixes RELOAD storms flipping between two datasets
//!   and two layouts (compressed and demand-paged), reload attempts
//!   against torn/truncated/bit-flipped/stale-version images, malformed
//!   wire frames, abrupt disconnects, and flood tenants driving the
//!   bounded queue into typed shed — while one *healthy* tenant keeps
//!   querying and asserts, for every answer, bit-identical equality with
//!   the single-threaded oracle *for the epoch the server stamped on it*.
//!
//! Chaos gates: zero panics, zero wrong or partial answers, the healthy
//! tenant serves in **every** epoch (queries flow through every RELOAD),
//! every corrupt reload is rejected with the old epoch still serving, and
//! the healthy tenant's p999 stays bounded.
//!
//! Results print as a table and append one JSON line to `BENCH_serve.json`.
//!
//! ```text
//! serve_bench [--smoke] [--chaos] [--seed N] [--clients N] [--queries N] [--out FILE]
//! ```

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mrx_bench::{json, Dataset, Scale};
use mrx_datagen::prng::Prng;
use mrx_graph::{DataGraph, FrozenGraph};
use mrx_index::{MStarIndex, QueryScratch, TrustPolicy};
use mrx_path::{PathExpr, QueryBudget};
use mrx_serve::{
    Client, ClientError, Response, ServeConfig, ServeError, Server, MAX_REQUEST_FRAME,
};
use mrx_store::{save_compressed, save_paged_with};
use mrx_workload::{Workload, WorkloadConfig};

struct Opts {
    smoke: bool,
    chaos_only: bool,
    seed: u64,
    clients: usize,
    queries: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        chaos_only: false,
        seed: 42,
        clients: 8,
        queries: 1_500,
        out: "BENCH_serve.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--chaos" => opts.chaos_only = true,
            "--seed" => opts.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--clients" => {
                opts.clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N")
            }
            "--queries" => {
                opts.queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries N")
            }
            "--out" => opts.out = args.next().expect("--out FILE"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: serve_bench [--smoke] [--chaos] [--seed N] [--clients N] \
                     [--queries N] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.smoke {
        opts.clients = opts.clients.min(4);
        opts.queries = opts.queries.min(150);
    }
    opts
}

/// Pulls the integer after `"key":` out of the daemon's stats JSON (the
/// counters are flat and non-negative, so a digit scan suffices).
fn stat_u64(stats: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let Some(i) = stats.find(&pat) else { return 0 };
    stats[i + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Number of entries in the stats `degraded_components` array.
fn degraded_count(stats: &str) -> usize {
    let Some(i) = stats.find("\"degraded_components\":[") else {
        return 0;
    };
    let rest = &stats[i + "\"degraded_components\":[".len()..];
    let Some(end) = rest.find(']') else { return 0 };
    let body = &rest[..end];
    if body.trim().is_empty() {
        0
    } else {
        body.split(',').count()
    }
}

fn pctl(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Single-threaded oracle: exact (Proven) answers for `exprs` on `g`.
fn oracle(g: &DataGraph, exprs: &[String]) -> HashMap<String, Vec<u32>> {
    let fg = FrozenGraph::freeze(g);
    let star = MStarIndex::new(g).freeze();
    let mut scratch = QueryScratch::new();
    exprs
        .iter()
        .map(|e| {
            let pe = PathExpr::parse(e).expect("oracle expr must parse");
            let cp = pe.compile(&fg);
            let mut meter = QueryBudget::default().meter();
            let a = star
                .query_top_down_budgeted(&fg, &cp, TrustPolicy::Proven, &mut scratch, &mut meter)
                .expect("oracle query must not trip an unlimited budget");
            (e.clone(), a.nodes.iter().map(|n| n.0).collect())
        })
        .collect()
}

struct ThroughputResult {
    nodes: usize,
    exprs: usize,
    answers: u64,
    elapsed_ms: f64,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    cache_hits: u64,
    cache_misses: u64,
    shed_overload: u64,
    shed_rate: u64,
}

/// Phase 1: parity-checked sustained throughput on one compressed snapshot.
fn throughput(opts: &Opts, dir: &Path) -> ThroughputResult {
    let scale = if opts.smoke {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let g = Dataset::XMark.load(scale);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: scale.num_queries(),
            seed: 7,
            max_enumerated_paths: 200_000,
        },
    );
    let mut idx = MStarIndex::new(&g);
    for q in &w.queries {
        idx.refine_for(&g, q);
    }
    // A bounded expression set keeps the oracle cheap while the clients
    // still rotate through a realistic mixed working set.
    let exprs: Vec<String> = w.queries.iter().take(32).map(|q| q.to_string()).collect();
    let want = Arc::new(oracle(&g, &exprs));
    let snap = dir.join("tput.mrx");
    save_compressed(&snap, &FrozenGraph::freeze(&g), &idx.freeze_compressed())
        .expect("save throughput snapshot");

    let mut cfg = ServeConfig::new("127.0.0.1:0", &snap);
    cfg.workers = 4;
    cfg.drain_timeout = Duration::from_secs(2);
    let server = Server::start(cfg).expect("start throughput server");
    let addr = server.addr();

    // Parity gate before any timing is trusted.
    {
        let mut c = Client::connect(addr).expect("parity connect");
        for e in &exprs {
            let r = c.query("parity", e).expect("parity query");
            assert_eq!(&r.nodes, &want[e], "parity mismatch on {e}");
        }
    }

    let exprs = Arc::new(exprs);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..opts.clients {
        let exprs = Arc::clone(&exprs);
        let want = Arc::clone(&want);
        let per_client = opts.queries;
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("client connect");
            let tenant = format!("tenant{t}");
            let mut lat = Vec::with_capacity(per_client);
            for i in 0..per_client {
                let e = &exprs[(i + t) % exprs.len()];
                let q0 = Instant::now();
                let r = c.query(&tenant, e).expect("throughput query");
                lat.push(q0.elapsed().as_micros() as u64);
                assert_eq!(&r.nodes, &want[e], "wrong answer for {e}");
            }
            lat
        }));
    }
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        lat.extend(h.join().expect("throughput client must not panic"));
    }
    let elapsed = t0.elapsed();
    lat.sort_unstable();
    let stats = server.stats_json();
    server.stop();

    let answers = lat.len() as u64;
    ThroughputResult {
        nodes: g.node_count(),
        exprs: exprs.len(),
        answers,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: answers as f64 / elapsed.as_secs_f64(),
        p50_us: pctl(&lat, 0.50),
        p99_us: pctl(&lat, 0.99),
        p999_us: pctl(&lat, 0.999),
        cache_hits: stat_u64(&stats, "hits"),
        cache_misses: stat_u64(&stats, "misses"),
        shed_overload: stat_u64(&stats, "shed_overload"),
        shed_rate: stat_u64(&stats, "shed_rate"),
    }
}

/// Corrupt variants of a good snapshot image, written next to it. RELOAD
/// must reject every one and keep the old epoch serving.
fn write_corrupt_variants(good: &Path, dir: &Path) -> Vec<PathBuf> {
    let bytes = std::fs::read(good).expect("read good snapshot");
    let mut out = Vec::new();
    let torn = dir.join("chaos-torn.mrx");
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).expect("write torn");
    out.push(torn);
    let trunc = dir.join("chaos-trunc.mrx");
    std::fs::write(&trunc, &bytes[..bytes.len() - 3]).expect("write trunc");
    out.push(trunc);
    let mut flipped = bytes.clone();
    let pos = flipped.len() - 9;
    flipped[pos] ^= 0x20;
    let flip = dir.join("chaos-flip.mrx");
    std::fs::write(&flip, &flipped).expect("write flip");
    out.push(flip);
    let mut stale = bytes;
    stale[8..12].copy_from_slice(&99u32.to_le_bytes());
    let stale_p = dir.join("chaos-stale.mrx");
    std::fs::write(&stale_p, &stale).expect("write stale");
    out.push(stale_p);
    out
}

/// One seeded malformed frame; returns (bytes, expect_response).
/// `expect_response == false` means the abuser drops the connection after
/// a partial frame and the server must simply reap it.
fn malformed_frame(rng: &mut Prng) -> (Vec<u8>, bool) {
    match rng.gen_range(0..5usize) {
        // Declared length beyond the request cap: rejected pre-allocation.
        0 => {
            let len = rng.gen_range(MAX_REQUEST_FRAME as u64 + 1..u32::MAX as u64);
            ((len as u32).to_le_bytes().to_vec(), true)
        }
        // Garbage verb byte in an otherwise well-framed payload.
        1 => {
            let verb = 32 + rng.gen_range(0..200u64) as u8;
            let mut payload = 7u32.to_le_bytes().to_vec();
            payload.push(verb);
            payload.extend_from_slice(&[0u8; 4]);
            let mut f = (payload.len() as u32).to_le_bytes().to_vec();
            f.extend_from_slice(&payload);
            (f, true)
        }
        // QUERY whose tenant length lies far past the frame end.
        2 => {
            let mut payload = 9u32.to_le_bytes().to_vec();
            payload.push(1); // VERB_QUERY
            payload.extend_from_slice(&(rng.gen_range(100..u16::MAX as u64) as u16).to_le_bytes());
            payload.extend_from_slice(b"x");
            let mut f = (payload.len() as u32).to_le_bytes().to_vec();
            f.extend_from_slice(&payload);
            (f, true)
        }
        // Empty payload: too short to even carry a request id.
        3 => (0u32.to_le_bytes().to_vec(), true),
        // Truncated frame: declare more than is sent, then hang up.
        _ => {
            let declared = rng.gen_range(16..512u64) as u32;
            let sent = rng.gen_range(0..declared as u64 / 2) as usize;
            let mut f = declared.to_le_bytes().to_vec();
            f.extend(vec![0xAAu8; sent]);
            (f, false)
        }
    }
}

struct ChaosResult {
    steps: u64,
    reloads_ok: u64,
    reloads_rejected: u64,
    protocol_errors: u64,
    healthy_answers: u64,
    epochs_served: u64,
    shed_overload: u64,
    flood_answers: u64,
    p999_us: u64,
    degraded: usize,
}

/// Phase 2: the deterministic chaos scenario (see module docs).
fn chaos(opts: &Opts, dir: &Path) -> ChaosResult {
    let good_reloads: u64 = if opts.smoke { 6 } else { 24 };
    let ga = Dataset::XMark.load(Scale::Tiny);
    let gb = Dataset::Nasa.load(Scale::Tiny);
    let wa = Workload::generate(
        &ga,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 40,
            seed: opts.seed,
            max_enumerated_paths: 200_000,
        },
    );
    let exprs: Vec<String> = wa
        .queries
        .iter()
        .take(10)
        .map(|q| q.to_string())
        .chain(["//*".to_string(), "//*/*".to_string()])
        .collect();
    let want_a = Arc::new(oracle(&ga, &exprs));
    let want_b = Arc::new(oracle(&gb, &exprs));

    // Two layouts on purpose: every odd→even swap also crosses the
    // compressed/paged boundary, exercising the per-worker paged views.
    let pa = dir.join("chaos-a.mrx");
    let pb = dir.join("chaos-b.mrx");
    let ia = MStarIndex::new(&ga);
    save_compressed(&pa, &FrozenGraph::freeze(&ga), &ia.freeze_compressed()).expect("save A");
    let ib = MStarIndex::new(&gb);
    save_paged_with(
        &pb,
        &FrozenGraph::freeze(&gb),
        &ib.freeze_compressed(),
        4096,
    )
    .expect("save B");
    let corrupt = write_corrupt_variants(&pb, dir);

    let mut cfg = ServeConfig::new("127.0.0.1:0", &pa);
    cfg.workers = 4;
    cfg.queue_cap = 64;
    cfg.tenant_backlog = 8;
    cfg.drain_timeout = Duration::from_secs(2);
    cfg.frame_timeout = Duration::from_millis(200);
    cfg.tick = Duration::from_millis(10);
    let server = Server::start(cfg).expect("start chaos server");
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Healthy tenant: every answer oracle-checked for its stamped epoch;
    // records which epochs it served under and its latency distribution.
    let healthy = {
        let stop = Arc::clone(&stop);
        let exprs = exprs.clone();
        let (wa, wb) = (Arc::clone(&want_a), Arc::clone(&want_b));
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("healthy connect");
            let mut lat = Vec::new();
            let mut epochs = std::collections::BTreeSet::new();
            let mut served = 0u64;
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let e = &exprs[i % exprs.len()];
                i += 1;
                let q0 = Instant::now();
                let r = c.query("healthy", e).expect("healthy tenant must serve");
                lat.push(q0.elapsed().as_micros() as u64);
                let want = if r.epoch % 2 == 1 { &wa } else { &wb };
                assert_eq!(
                    &r.nodes, &want[e],
                    "wrong answer for {e} at epoch {}",
                    r.epoch
                );
                epochs.insert(r.epoch);
                served += 1;
            }
            (lat, epochs, served)
        })
    };

    // Flood tenants: drive the bounded queue; Ok answers are still
    // oracle-checked, Overloaded is the expected typed shed.
    let mut floods = Vec::new();
    for f in 0..3u64 {
        let stop = Arc::clone(&stop);
        let exprs = exprs.clone();
        let (wa, wb) = (Arc::clone(&want_a), Arc::clone(&want_b));
        let seed = opts.seed ^ (0xF100D + f);
        floods.push(std::thread::spawn(move || {
            let mut rng = Prng::seed_from_u64(seed);
            let mut c = Client::connect(addr).expect("flood connect");
            let tenant = format!("flood{f}");
            let mut ok = 0u64;
            let mut shed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let e = &exprs[rng.gen_range(0..exprs.len())];
                match c.query(&tenant, e) {
                    Ok(r) => {
                        let want = if r.epoch % 2 == 1 { &wa } else { &wb };
                        assert_eq!(&r.nodes, &want[e], "flood wrong answer for {e}");
                        ok += 1;
                    }
                    Err(ClientError::Server(ServeError::Overloaded { .. })) => shed += 1,
                    Err(e) => panic!("flood tenant got a non-shed failure: {e}"),
                }
            }
            (ok, shed)
        }));
    }

    // Abusers: malformed frames, abrupt disconnects, reconnect loops.
    let mut abusers = Vec::new();
    for a in 0..2u64 {
        let stop = Arc::clone(&stop);
        let seed = opts.seed ^ (0xAB05E + a);
        abusers.push(std::thread::spawn(move || {
            let mut rng = Prng::seed_from_u64(seed);
            let mut typed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let Ok(mut c) = Client::connect_with(addr, Duration::from_secs(5)) else {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                };
                if rng.gen_bool(0.2) {
                    // Plain abrupt disconnect; sometimes after a valid ping.
                    if rng.gen_bool(0.5) {
                        let _ = c.ping();
                    }
                    drop(c);
                    continue;
                }
                let (frame, expect_response) = malformed_frame(&mut rng);
                if c.send_raw(&frame).is_err() {
                    continue;
                }
                if expect_response {
                    match c.read_response_raw() {
                        Ok((_, Response::Error(ServeError::Protocol(_)))) => typed += 1,
                        Ok((_, other)) => panic!("malformed frame got {other:?}"),
                        // The server may slam the connection after (or
                        // instead of) the typed reply under load.
                        Err(_) => {}
                    }
                }
                // else: hang up mid-frame; the server reaps it.
                drop(c);
            }
            typed
        }));
    }

    // The driver: good reloads alternating B, A, B, ... with corrupt
    // attempts mixed in. Epoch parity (odd = A, even = B) is the contract
    // the query threads verify against.
    let mut rng = Prng::seed_from_u64(opts.seed);
    let mut driver = Client::connect(addr).expect("driver connect");
    let mut reloads_ok = 0u64;
    let mut reloads_rejected = 0u64;
    let mut steps = 0u64;
    while reloads_ok < good_reloads {
        steps += 1;
        if rng.gen_bool(0.35) {
            // Corrupt attempt: must be rejected, epoch must not move.
            let before = stat_u64(&server.stats_json(), "epoch");
            let bad = &corrupt[rng.gen_range(0..corrupt.len())];
            match driver.reload(&bad.display().to_string()) {
                Err(ClientError::Server(ServeError::ReloadRejected(_))) => {}
                other => panic!("corrupt reload must be rejected, got {other:?}"),
            }
            let after = stat_u64(&server.stats_json(), "epoch");
            assert_eq!(before, after, "corrupt reload moved the epoch");
            reloads_rejected += 1;
        } else {
            let next = if reloads_ok.is_multiple_of(2) {
                &pb
            } else {
                &pa
            };
            driver
                .reload(&next.display().to_string())
                .expect("good reload must swap");
            reloads_ok += 1;
        }
        std::thread::sleep(Duration::from_millis(if opts.smoke { 10 } else { 20 }));
    }

    stop.store(true, Ordering::Relaxed);
    let (mut lat, epochs, healthy_answers) = healthy.join().expect("healthy thread must not panic");
    let mut flood_answers = 0u64;
    let mut _flood_shed = 0u64;
    for f in floods {
        let (ok, shed) = f.join().expect("flood thread must not panic");
        flood_answers += ok;
        _flood_shed += shed;
    }
    let mut typed_protocol = 0u64;
    for a in abusers {
        typed_protocol += a.join().expect("abuser thread must not panic");
    }
    let stats = server.stats_json();
    server.stop();

    // --- Gates ----------------------------------------------------------
    let final_epoch = 1 + reloads_ok;
    let want_epochs: Vec<u64> = (1..=final_epoch).collect();
    let got_epochs: Vec<u64> = epochs.into_iter().collect();
    assert_eq!(
        got_epochs, want_epochs,
        "healthy tenant must serve through every RELOAD"
    );
    assert_eq!(
        stat_u64(&stats, "reloads_ok"),
        good_reloads,
        "daemon reload counter disagrees"
    );
    assert!(
        stat_u64(&stats, "reloads_rejected") >= reloads_rejected,
        "rejected reloads must be counted"
    );
    assert!(
        typed_protocol > 0,
        "abusers never saw a typed protocol error"
    );
    assert_eq!(degraded_count(&stats), 0, "chaos run must stay healthy");
    lat.sort_unstable();
    let p999_us = pctl(&lat, 0.999);
    assert!(
        p999_us < 2_000_000,
        "healthy-tenant p999 must stay bounded under chaos (got {p999_us} us)"
    );

    ChaosResult {
        steps,
        reloads_ok,
        reloads_rejected,
        protocol_errors: stat_u64(&stats, "protocol_errors"),
        healthy_answers,
        epochs_served: final_epoch,
        shed_overload: stat_u64(&stats, "shed_overload"),
        flood_answers,
        p999_us,
        degraded: degraded_count(&stats),
    }
}

fn main() {
    let opts = parse_args();
    let dir = std::env::temp_dir().join(format!("mrx-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let tput = if opts.chaos_only {
        None
    } else {
        let t = throughput(&opts, &dir);
        println!(
            "throughput: {} nodes, {} exprs, {} clients x {} queries",
            t.nodes, t.exprs, opts.clients, opts.queries
        );
        println!(
            "  {:.0} qps sustained over {:.1} ms ({} answers)",
            t.qps, t.elapsed_ms, t.answers
        );
        println!(
            "  latency p50 {} us, p99 {} us, p999 {} us",
            t.p50_us, t.p99_us, t.p999_us
        );
        println!(
            "  cache hits {} misses {}, shed overload {} rate {}",
            t.cache_hits, t.cache_misses, t.shed_overload, t.shed_rate
        );
        Some(t)
    };

    let ch = chaos(&opts, &dir);
    println!(
        "chaos: {} steps, {} reloads ok, {} corrupt reloads rejected, seed {}",
        ch.steps, ch.reloads_ok, ch.reloads_rejected, opts.seed
    );
    println!(
        "  healthy tenant: {} answers across all {} epochs, p999 {} us",
        ch.healthy_answers, ch.epochs_served, ch.p999_us
    );
    println!(
        "  floods: {} answers, {} queries shed typed; {} protocol errors typed",
        ch.flood_answers, ch.shed_overload, ch.protocol_errors
    );
    println!("  gates: 0 panics, 0 wrong answers, 0 degraded components");

    let _ = std::fs::remove_dir_all(&dir);
    let Some(t) = tput else {
        println!("chaos mode: skipping JSON append");
        return;
    };
    let line = format!(
        concat!(
            "{{\"dataset\":\"xmark\",\"nodes\":{},\"exprs\":{},\"clients\":{},",
            "\"queries_per_client\":{},\"answers\":{},\"elapsed_ms\":{:.1},",
            "\"qps\":{:.0},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},",
            "\"cache_hits\":{},\"cache_misses\":{},\"shed_overload\":{},\"shed_rate\":{},",
            "\"chaos_seed\":{},\"chaos_steps\":{},\"chaos_reloads_ok\":{},",
            "\"chaos_reloads_rejected\":{},\"chaos_protocol_errors\":{},",
            "\"chaos_healthy_answers\":{},\"chaos_epochs_served\":{},",
            "\"chaos_shed_overload\":{},\"chaos_flood_answers\":{},",
            "\"chaos_p999_us\":{},\"degraded_components\":{},",
            "\"panics\":0,\"wrong_answers\":0}}"
        ),
        t.nodes,
        t.exprs,
        opts.clients,
        opts.queries,
        t.answers,
        t.elapsed_ms,
        t.qps,
        t.p50_us,
        t.p99_us,
        t.p999_us,
        t.cache_hits,
        t.cache_misses,
        t.shed_overload,
        t.shed_rate,
        opts.seed,
        ch.steps,
        ch.reloads_ok,
        ch.reloads_rejected,
        ch.protocol_errors,
        ch.healthy_answers,
        ch.epochs_served,
        ch.shed_overload,
        ch.flood_answers,
        ch.p999_us,
        ch.degraded,
    );
    json::assert_valid(&line);
    if opts.smoke {
        println!("smoke mode: skipping JSON append");
        return;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&opts.out)
        .expect("open BENCH_serve.json");
    writeln!(f, "{line}").expect("append result line");
    println!("appended to {}", opts.out);
}
