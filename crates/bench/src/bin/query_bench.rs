//! Wall-clock timing of the query-serving layer against the legacy
//! per-query path, on the default XMark-like dataset.
//!
//! For each index family the same workload is timed four ways:
//!
//! * **legacy** — the pre-session path: compile + `answer_compiled` per
//!   query, every query paying its own allocations;
//! * **cold** — a fresh [`QuerySession`] per run (scratch reuse plus cache
//!   hits on the workload's repeated queries);
//! * **warm** — a session already primed with the whole workload (every
//!   query a cache hit — the frequent-query steady state);
//! * **parallel** — cold per-thread sessions via [`mrx_index::replay`] at
//!   the default thread count (`MRX_THREADS` or all cores).
//!
//! Answers and costs are cross-checked against the legacy path before any
//! timing is trusted. Results print as a table and append as one JSON line
//! to `BENCH_query.json` so runs accumulate a history.
//!
//! ```text
//! query_bench [--smoke] [--reps N] [--out FILE]
//! ```
//!
//! `--smoke` runs the tiny dataset with one repetition and skips the JSON
//! append — used by `scripts/check.sh` to keep the binary exercised in CI.

use std::io::Write as _;

use mrx_bench::timing::time;
use mrx_bench::{json, Dataset, Scale};
use mrx_graph::DataGraph;
use mrx_index::query::answer_compiled;
use mrx_index::{
    default_threads, replay, replay_mstar, requested_threads, AkIndex, EvalStrategy, IndexGraph,
    MStarIndex, MkIndex, QuerySession, TrustPolicy,
};
use mrx_path::Cost;
use mrx_workload::{Workload, WorkloadConfig};

const POLICY: TrustPolicy = TrustPolicy::Claimed;

struct Opts {
    smoke: bool,
    reps: usize,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        reps: 3,
        out: "BENCH_query.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--out" => opts.out = args.next().expect("--out FILE"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: query_bench [--smoke] [--reps N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }
    if opts.smoke {
        opts.reps = 1;
    }
    opts
}

struct FamilyResult {
    name: &'static str,
    legacy_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
    par_ms: f64,
    extent_bytes: usize,
    bytes_per_node: f64,
}

impl FamilyResult {
    fn warm_speedup(&self) -> f64 {
        self.legacy_ms / self.warm_ms
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"legacy_ms\":{:.3},\"cold_ms\":{:.3},",
                "\"warm_ms\":{:.4},\"par_ms\":{:.3},\"warm_speedup\":{:.1},",
                "\"par_speedup\":{:.2},\"extent_bytes\":{},\"bytes_per_node\":{:.3}}}"
            ),
            self.name,
            self.legacy_ms,
            self.cold_ms,
            self.warm_ms,
            self.par_ms,
            self.warm_speedup(),
            self.legacy_ms / self.par_ms,
            self.extent_bytes,
            self.bytes_per_node,
        )
    }
}

/// Parity gate + four timed passes for one `IndexGraph`-backed family.
fn bench_family(
    name: &'static str,
    ig: &IndexGraph,
    g: &DataGraph,
    w: &Workload,
    reps: usize,
    threads: usize,
) -> FamilyResult {
    // Answers and costs must match the legacy path exactly — cold misses,
    // warm hits, and everything the workload's duplicates exercise.
    let mut session = QuerySession::new(POLICY);
    for q in &w.queries {
        let served = session.serve(ig, g, q);
        let fresh = answer_compiled(ig, g, &q.compile(g), POLICY);
        assert_eq!(served.nodes, fresh.nodes, "{name}: answer mismatch on {q}");
        assert_eq!(served.cost, fresh.cost, "{name}: cost mismatch on {q}");
    }

    let legacy = time(&format!("{name}/legacy"), reps, || {
        let mut total = Cost::ZERO;
        for q in &w.queries {
            total += answer_compiled(ig, g, &q.compile(g), POLICY).cost;
        }
        total
    });
    let cold = time(&format!("{name}/cold session"), reps, || {
        replay(ig, g, &w.queries, POLICY, 1).total
    });
    let mut primed = QuerySession::new(POLICY);
    for q in &w.queries {
        primed.serve(ig, g, q);
    }
    let warm = time(&format!("{name}/warm session"), reps, || {
        let mut total = Cost::ZERO;
        for q in &w.queries {
            total += primed.serve(ig, g, q).cost;
        }
        total
    });
    let par = time(&format!("{name}/parallel x{threads}"), reps, || {
        replay(ig, g, &w.queries, POLICY, threads).total
    });
    for t in [&legacy, &cold, &warm, &par] {
        println!("{}", t.render());
    }
    let stats = mrx_index::stats::index_stats(g, ig);
    FamilyResult {
        name,
        legacy_ms: legacy.min_ms,
        cold_ms: cold.min_ms,
        warm_ms: warm.min_ms,
        par_ms: par.min_ms,
        extent_bytes: stats.extent_bytes,
        bytes_per_node: stats.bytes_per_node,
    }
}

/// The M*(k) hierarchy goes through its own strategy-aware entry points.
fn bench_mstar(
    idx: &MStarIndex,
    g: &DataGraph,
    w: &Workload,
    reps: usize,
    threads: usize,
) -> FamilyResult {
    let strategy = EvalStrategy::TopDown;
    let mut session = QuerySession::new(POLICY);
    for q in &w.queries {
        let served = session.serve_mstar(idx, g, q, strategy);
        let fresh = idx.query_with_policy(g, q, strategy, POLICY);
        assert_eq!(served.nodes, fresh.nodes, "mstar: answer mismatch on {q}");
        assert_eq!(served.cost, fresh.cost, "mstar: cost mismatch on {q}");
    }

    let legacy = time("mstar/legacy", reps, || {
        let mut total = Cost::ZERO;
        for q in &w.queries {
            total += idx.query_with_policy(g, q, strategy, POLICY).cost;
        }
        total
    });
    let cold = time("mstar/cold session", reps, || {
        replay_mstar(idx, g, &w.queries, strategy, POLICY, 1).total
    });
    let mut primed = QuerySession::new(POLICY);
    for q in &w.queries {
        primed.serve_mstar(idx, g, q, strategy);
    }
    let warm = time("mstar/warm session", reps, || {
        let mut total = Cost::ZERO;
        for q in &w.queries {
            total += primed.serve_mstar(idx, g, q, strategy).cost;
        }
        total
    });
    let par = time(&format!("mstar/parallel x{threads}"), reps, || {
        replay_mstar(idx, g, &w.queries, strategy, POLICY, threads).total
    });
    for t in [&legacy, &cold, &warm, &par] {
        println!("{}", t.render());
    }
    // The hierarchy's footprint is the sum over its components.
    let per = mrx_index::stats::mstar_stats(g, idx);
    let extent_bytes: usize = per.iter().map(|s| s.extent_bytes).sum();
    FamilyResult {
        name: "mstar",
        legacy_ms: legacy.min_ms,
        cold_ms: cold.min_ms,
        warm_ms: warm.min_ms,
        par_ms: par.min_ms,
        extent_bytes,
        bytes_per_node: extent_bytes as f64 / g.node_count().max(1) as f64,
    }
}

fn main() {
    let opts = parse_args();
    let scale = if opts.smoke { Scale::Tiny } else { Scale::Full };
    let g = Dataset::XMark.load(scale);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: scale.num_queries(),
            seed: 7,
            max_enumerated_paths: 200_000,
        },
    );
    let threads = default_threads();
    println!(
        "query_bench: XMark-like, {} nodes, {} edges, {} queries, reps={}, threads={}",
        g.node_count(),
        g.edge_count(),
        w.queries.len(),
        opts.reps,
        threads
    );

    let a0 = AkIndex::build(&g, 0);
    let a4 = AkIndex::build(&g, 4);
    let mut mk = MkIndex::new(&g);
    for q in &w.queries {
        mk.refine_for(&g, q);
    }
    let mut mstar = MStarIndex::new(&g);
    for q in &w.queries {
        mstar.refine_for(&g, q);
    }

    let mut results = [
        bench_family("a0", a0.graph(), &g, &w, opts.reps, threads),
        bench_family("a4", a4.graph(), &g, &w, opts.reps, threads),
        bench_family("mk", mk.graph(), &g, &w, opts.reps, threads),
        bench_mstar(&mstar, &g, &w, opts.reps, threads),
    ];
    results.sort_by(|a, b| a.name.cmp(b.name));

    let worst_warm = results
        .iter()
        .map(FamilyResult::warm_speedup)
        .fold(f64::INFINITY, f64::min);
    println!("worst-case warm speedup over legacy: {worst_warm:.1}x");
    if !opts.smoke {
        assert!(
            worst_warm >= 2.0,
            "warm serving must beat the per-query path at least 2x (got {worst_warm:.2}x)"
        );
    }

    let families: Vec<String> = results.iter().map(FamilyResult::json).collect();
    // `threads` is the effective count (requested clamped to the host);
    // `threads_requested` records the raw MRX_THREADS ask, null if unset.
    let requested = match requested_threads() {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    };
    let line = format!(
        concat!(
            "{{\"dataset\":\"xmark\",\"nodes\":{},\"edges\":{},\"queries\":{},",
            "\"reps\":{},\"threads\":{},\"threads_requested\":{},\"host_cores\":{},",
            "\"policy\":\"claimed\",\"warm_speedup_min\":{:.1},\"families\":[{}]}}"
        ),
        g.node_count(),
        g.edge_count(),
        w.queries.len(),
        opts.reps,
        threads,
        requested,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        worst_warm,
        families.join(","),
    );
    // Validate even in smoke mode, so CI catches a malformed line before it
    // would ever reach the checked-in history.
    json::assert_valid(&line);
    if opts.smoke {
        println!("smoke mode: skipping JSON append");
        return;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&opts.out)
        .expect("open BENCH_query.json");
    writeln!(f, "{line}").expect("append result line");
    println!("appended to {}", opts.out);
}
