//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! figures [--fig N[,M,...]] [--all] [--scale tiny|small|medium|full]
//!         [--queries N] [--seed S] [--out DIR]
//! ```
//!
//! With `--out`, each figure is also written as `figN.csv` into `DIR`.
//! Without arguments, `--all` at the `MRX_SCALE` (default `small`) scale.

use std::process::ExitCode;

use mrx_bench::figures::Suite;
use mrx_bench::{figure_ids, Scale};

struct Args {
    figs: Vec<u32>,
    scale: Scale,
    seed: Option<u64>,
    queries: Option<usize>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figs: Vec::new(),
        scale: Scale::from_env(),
        seed: None,
        queries: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--all" => args.figs = figure_ids(),
            "--fig" | "-f" => {
                for part in val("--fig")?.split(',') {
                    let id: u32 = part
                        .trim()
                        .parse()
                        .map_err(|_| format!("invalid figure id `{part}`"))?;
                    if !(8..=26).contains(&id) {
                        return Err(format!(
                            "figure {id} is not an evaluation figure (1-7 are worked examples covered by unit tests; valid: 8-26)"
                        ));
                    }
                    args.figs.push(id);
                }
            }
            "--scale" | "-s" => {
                let v = val("--scale")?;
                args.scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale `{v}`"))?;
            }
            "--seed" => args.seed = Some(val("--seed")?.parse().map_err(|e| format!("{e}"))?),
            "--queries" | "-q" => {
                args.queries = Some(val("--queries")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--out" | "-o" => args.out = Some(val("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig N[,M,..]] [--all] [--scale tiny|small|medium|full] \
                     [--queries N] [--seed S] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.figs.is_empty() {
        args.figs = figure_ids();
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(q) = args.queries {
        // The Suite reads the workload size through Scale::num_queries.
        std::env::set_var("MRX_QUERIES", q.to_string());
    }
    let mut suite = Suite::new(args.scale);
    if let Some(seed) = args.seed {
        suite = suite.with_seed(seed);
    }
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "# scale: {:?} ({} queries per workload)",
        args.scale,
        args.scale.num_queries()
    );
    for &id in &args.figs {
        let start = std::time::Instant::now();
        let fig = suite.figure(id);
        print!("{}", fig.render());
        eprintln!("# figure {id} took {:.1}s", start.elapsed().as_secs_f64());
        if let Some(dir) = &args.out {
            for (ext, content) in [("csv", fig.to_csv()), ("svg", mrx_bench::render_svg(&fig))] {
                let path = format!("{dir}/fig{id}.{ext}");
                if let Err(e) = std::fs::write(&path, content) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}
