//! The two evaluation datasets at configurable scale.

use mrx_datagen::{nasa_like, xmark_like, XmarkConfig};
use mrx_graph::DataGraph;

/// Which dataset (§5 "Datasets").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// XMark-like auction site (paper: 11 MB, ~120k nodes).
    XMark,
    /// NASA-like astronomy archive (paper: 11 MB, ~90k nodes).
    Nasa,
}

impl Dataset {
    /// Display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::XMark => "XMark",
            Dataset::Nasa => "NASA",
        }
    }

    /// Generates the dataset at the given scale (deterministic).
    pub fn load(self, scale: Scale) -> DataGraph {
        let nodes = scale.target_nodes(self);
        match self {
            Dataset::XMark => xmark_like(&XmarkConfig::with_target_nodes(nodes), 0xA0C71),
            Dataset::Nasa => nasa_like(nodes, 0x9A5A),
        }
    }
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny graphs for CI and unit tests (~3k nodes, 60 queries).
    Tiny,
    /// Quick laptop runs (~12k nodes, 150 queries) — the default.
    Small,
    /// Closer to the paper (~40k nodes, 300 queries).
    Medium,
    /// The paper's scale (~120k / ~90k nodes, 500 queries).
    Full,
}

impl Scale {
    /// Reads `MRX_SCALE` (`tiny` | `small` | `medium` | `full`), defaulting
    /// to [`Scale::Small`].
    pub fn from_env() -> Scale {
        match std::env::var("MRX_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("medium") => Scale::Medium,
            Ok("full") => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Target node count for a dataset at this scale.
    pub fn target_nodes(self, ds: Dataset) -> usize {
        match (self, ds) {
            (Scale::Tiny, _) => 3_000,
            (Scale::Small, Dataset::XMark) => 12_000,
            (Scale::Small, Dataset::Nasa) => 10_000,
            (Scale::Medium, Dataset::XMark) => 40_000,
            (Scale::Medium, Dataset::Nasa) => 32_000,
            (Scale::Full, Dataset::XMark) => 120_000,
            (Scale::Full, Dataset::Nasa) => 90_000,
        }
    }

    /// Workload size at this scale, overridable via `MRX_QUERIES`.
    pub fn num_queries(self) -> usize {
        if let Ok(v) = std::env::var("MRX_QUERIES") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        match self {
            Scale::Tiny => 60,
            Scale::Small => 150,
            Scale::Medium => 300,
            Scale::Full => 500,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_datasets_load() {
        for ds in [Dataset::XMark, Dataset::Nasa] {
            let g = ds.load(Scale::Tiny);
            let n = g.node_count();
            assert!((2_000..5_000).contains(&n), "{ds:?}: {n}");
            assert!(mrx_graph::stats::all_reachable(&g));
        }
    }

    #[test]
    fn scales_are_ordered() {
        for ds in [Dataset::XMark, Dataset::Nasa] {
            let sizes: Vec<usize> = [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Full]
                .iter()
                .map(|s| s.target_nodes(ds))
                .collect();
            assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn parse_and_names() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("nope"), None);
        assert_eq!(Dataset::XMark.name(), "XMark");
        assert_eq!(Dataset::Nasa.name(), "NASA");
    }
}
