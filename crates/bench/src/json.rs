//! Minimal JSON syntax checker for the bench binaries.
//!
//! The bench binaries emit machine-read JSON lines (`BENCH_refine.json`,
//! `BENCH_query.json`) built by hand with `format!`. A malformed line —
//! a missing brace after an edit, a NaN formatted as `NaN` — would corrupt
//! the accumulated history silently. Each binary validates its line with
//! [`assert_valid`] *before* appending, so `scripts/check.sh` fails loudly
//! instead. (No external JSON crate: the repo is dependency-free by
//! policy; a strict recursive-descent recognizer is ~100 lines.)

/// Checks that `s` is exactly one valid JSON value (leading/trailing
/// whitespace allowed).
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

/// Panics (with the offending text) unless `s` is valid JSON.
pub fn assert_valid(s: &str) {
    if let Err(e) = validate(s) {
        panic!("malformed JSON line ({e}): {s}");
    }
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, String> {
    match b.get(pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        Some(&c) => Err(format!("unexpected byte {:?} at {pos}", c as char)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: usize, lit: &str) -> Result<usize, String> {
    if b[pos..].starts_with(lit.as_bytes()) {
        Ok(pos + lit.len())
    } else {
        Err(format!("bad literal at byte {pos} (expected {lit})"))
    }
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // past '{'
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        pos = string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // past '['
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: usize) -> Result<usize, String> {
    if b.get(pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    let mut i = pos + 1;
    while let Some(&c) = b.get(i) {
        match c {
            b'"' => return Ok(i + 1),
            b'\\' => match b.get(i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                Some(b'u') => {
                    let hex = b
                        .get(i + 2..i + 6)
                        .ok_or_else(|| format!("truncated \\u escape at byte {i}"))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {i}"));
                    }
                    i += 6;
                }
                _ => return Err(format!("bad escape at byte {i}")),
            },
            0x00..=0x1f => return Err(format!("raw control character at byte {i}")),
            _ => i += 1,
        }
    }
    Err(format!("unterminated string starting at byte {pos}"))
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    match b.get(pos) {
        Some(b'0') => pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(pos), Some(b'0'..=b'9')) {
                pos += 1;
            }
        }
        _ => return Err(format!("bad number at byte {start}")),
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        if !matches!(b.get(pos), Some(b'0'..=b'9')) {
            return Err(format!("bad fraction at byte {pos}"));
        }
        while matches!(b.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        if !matches!(b.get(pos), Some(b'0'..=b'9')) {
            return Err(format!("bad exponent at byte {pos}"));
        }
        while matches!(b.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_bench_style_lines() {
        validate(r#"{"dataset":"xmark","nodes":120000,"speedup":2.5}"#).unwrap();
        validate(r#"{"a":[1,2.5e-3,-0.75],"b":{"c":true,"d":null},"e":""}"#).unwrap();
        validate("  42 ").unwrap();
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(validate(r#"{"a":1"#).is_err(), "unterminated object");
        assert!(validate(r#"{"a":NaN}"#).is_err(), "NaN is not JSON");
        assert!(validate(r#"{"a":inf}"#).is_err(), "inf is not JSON");
        assert!(validate(r#"{"a":1,}"#).is_err(), "trailing comma");
        assert!(validate(r#"{"a":01}"#).is_err(), "leading zero");
        assert!(validate(r#"{"a":1} extra"#).is_err(), "trailing garbage");
        assert!(validate(r#"{'a':1}"#).is_err(), "single quotes");
        assert!(validate("").is_err(), "empty input");
    }

    #[test]
    #[should_panic(expected = "malformed JSON line")]
    fn assert_valid_panics_on_garbage() {
        assert_valid("{broken");
    }
}
