//! `cargo bench --bench ablations` — design-choice ablations beyond the
//! paper's figures (DESIGN.md §4 calls these out):
//!
//! 1. **M*(k) evaluation strategies** (§4.1): naive vs top-down vs subpath
//!    pre-filtering vs bottom-up vs hybrid, per query length. The paper
//!    predicts top-down wins and bottom-up pays for its downward re-checks.
//! 2. **The price of soundness**: average rerun cost under the paper's
//!    claimed-k trust policy vs this library's sound proven-k policy.
//! 3. **FUP threshold**: refining for every query vs only for expressions
//!    seen ≥ t times (index size and average streaming cost).
//! 4. **Reference density**: how ID/IDREF entanglement inflates each index
//!    family (the effect behind the XMark-vs-NASA differences in §5).
//!
//! Scale via `MRX_SCALE` / `MRX_QUERIES` (default: small).

use mrx_bench::{Dataset, Scale};
use mrx_datagen::nasa_like_with_density;
use mrx_graph::DataGraph;
use mrx_index::{
    default_threads, replay, replay_mstar, AkIndex, DkIndex, EvalStrategy, MStarIndex, MkIndex,
    TrustPolicy,
};
use mrx_path::PathExpr;
use mrx_workload::{FupExtractor, Workload, WorkloadConfig};

fn workload(g: &DataGraph, max_len: usize, n: usize) -> Workload {
    Workload::generate(
        g,
        &WorkloadConfig {
            max_path_len: max_len,
            num_queries: n,
            seed: 0xF1D0,
            max_enumerated_paths: 400_000,
        },
    )
}

fn refined_mstar(g: &DataGraph, w: &Workload) -> MStarIndex {
    let mut idx = MStarIndex::new(g);
    for q in &w.queries {
        idx.refine_for(g, q);
    }
    idx
}

/// Ablation 1: evaluation strategies by query length.
fn strategy_ablation(scale: Scale) {
    println!("# Ablation 1: M*(k) evaluation strategies (avg index-node visits per query)");
    for ds in [Dataset::XMark, Dataset::Nasa] {
        let g = ds.load(scale);
        let w = workload(&g, 9, scale.num_queries());
        let idx = refined_mstar(&g, &w);
        println!(
            "## {} ({} queries, max length 9)",
            ds.name(),
            w.queries.len()
        );
        println!(
            "{:>6} {:>8} {:>9} {:>9} {:>10} {:>9} {:>8}",
            "length", "queries", "naive", "top-down", "bottom-up", "hybrid", "subpath"
        );
        for len in 0..=9usize {
            let qs: Vec<&PathExpr> = w.queries.iter().filter(|q| q.length() == len).collect();
            if qs.is_empty() {
                continue;
            }
            let avg = |strat: EvalStrategy| -> f64 {
                let total: u64 = qs
                    .iter()
                    .map(|q| idx.query_paper(&g, q, strat).cost.index_nodes)
                    .sum();
                total as f64 / qs.len() as f64
            };
            let hybrid_split = (len / 2).max(1);
            let subpath = EvalStrategy::Subpath {
                start: len / 2,
                end: len / 2 + 1,
            };
            println!(
                "{:>6} {:>8} {:>9.1} {:>9.1} {:>10.1} {:>9.1} {:>8.1}",
                len,
                qs.len(),
                avg(EvalStrategy::Naive),
                avg(EvalStrategy::TopDown),
                avg(EvalStrategy::BottomUp),
                if len >= 1 {
                    avg(EvalStrategy::Hybrid {
                        split: hybrid_split,
                    })
                } else {
                    f64::NAN
                },
                avg(subpath),
            );
        }
        println!();
    }
}

/// Ablation 2: the price of soundness.
fn soundness_ablation(scale: Scale) {
    println!("# Ablation 2: claimed-k (paper) vs proven-k (sound) rerun cost");
    println!(
        "{:<8} {:<8} {:>14} {:>14} {:>10}",
        "dataset", "index", "paper avg", "sound avg", "overhead"
    );
    for ds in [Dataset::XMark, Dataset::Nasa] {
        let g = ds.load(scale);
        let w = workload(&g, 9, scale.num_queries());
        let mut mk = MkIndex::new(&g);
        let mut mstar = MStarIndex::new(&g);
        for q in &w.queries {
            mk.refine_for(&g, q);
            mstar.refine_for(&g, q);
        }
        // Reruns go through the parallel session replay (the indexes are
        // read-only here); totals are thread-count-independent.
        let n = w.queries.len() as f64;
        let threads = default_threads();
        let strat = EvalStrategy::TopDown;
        let mk_paper = replay(mk.graph(), &g, &w.queries, TrustPolicy::Claimed, threads)
            .total
            .total();
        let mk_sound = replay(mk.graph(), &g, &w.queries, TrustPolicy::Proven, threads)
            .total
            .total();
        let ms_paper = replay_mstar(&mstar, &g, &w.queries, strat, TrustPolicy::Claimed, threads)
            .total
            .total();
        let ms_sound = replay_mstar(&mstar, &g, &w.queries, strat, TrustPolicy::Proven, threads)
            .total
            .total();
        for (name, paper, sound) in [("M(k)", mk_paper, mk_sound), ("M*(k)", ms_paper, ms_sound)] {
            println!(
                "{:<8} {:<8} {:>14.1} {:>14.1} {:>9.1}%",
                ds.name(),
                name,
                paper as f64 / n,
                sound as f64 / n,
                (sound as f64 / paper as f64 - 1.0) * 100.0
            );
        }
    }
    println!();
}

/// Ablation 3: FUP extraction threshold.
fn threshold_ablation(scale: Scale) {
    println!("# Ablation 3: FUP threshold (refine only after t observations)");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>16}",
        "dataset", "threshold", "refined", "index nodes", "avg stream cost"
    );
    for ds in [Dataset::XMark, Dataset::Nasa] {
        let g = ds.load(scale);
        // Duplicate-heavy stream: half the budget, played twice.
        let w = workload(&g, 4, scale.num_queries() / 2);
        let stream: Vec<&PathExpr> = w.queries.iter().chain(w.queries.iter()).collect();
        for threshold in [1usize, 2, 4] {
            let mut extractor = FupExtractor::new(threshold);
            let mut idx = MStarIndex::new(&g);
            let mut total = 0u64;
            let mut refined = 0usize;
            for q in &stream {
                let ans = idx.query(&g, q, EvalStrategy::TopDown);
                total += ans.cost.total();
                if let Some(fup) = extractor.observe(q) {
                    idx.refine(&g, &fup, &ans.nodes);
                    refined += 1;
                }
            }
            println!(
                "{:<8} {:>10} {:>12} {:>12} {:>16.1}",
                ds.name(),
                threshold,
                refined,
                idx.node_count(),
                total as f64 / stream.len() as f64
            );
        }
    }
    println!();
}

/// Ablation 4: reference density vs index size.
fn density_ablation(scale: Scale) {
    println!("# Ablation 4: reference density vs index size (NASA-like, 60 FUPs, max length 4)");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>12} {:>8} {:>8}",
        "density", "ref edges", "A(2)", "A(4)", "D(k)-promote", "M(k)", "M*(k)"
    );
    let nodes = scale.target_nodes(Dataset::Nasa) / 2;
    for density in [0.0, 0.5, 1.0, 2.0] {
        let g = nasa_like_with_density(nodes, 0x9A5A, density);
        let w = workload(&g, 4, 60);
        let a2 = AkIndex::build(&g, 2);
        let a4 = AkIndex::build(&g, 4);
        let mut dkp = DkIndex::a0(&g);
        let mut mk = MkIndex::new(&g);
        let mut mstar = MStarIndex::new(&g);
        for q in &w.queries {
            dkp.promote_for(&g, q);
            mk.refine_for(&g, q);
            mstar.refine_for(&g, q);
        }
        println!(
            "{:>8.1} {:>10} {:>8} {:>8} {:>12} {:>8} {:>8}",
            density,
            g.ref_edge_count(),
            a2.node_count(),
            a4.node_count(),
            dkp.node_count(),
            mk.node_count(),
            mstar.node_count()
        );
    }
    println!();
}

/// Ablation 5: APEX vs the structural indexes, on cache hits and misses.
fn apex_ablation(scale: Scale) {
    use mrx_index::ApexIndex;
    println!("# Ablation 5: APEX cache behaviour vs structural M*(k) (avg cost per query)");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "apex nodes", "m* nodes", "apex hit", "m* hit", "apex miss", "m* miss"
    );
    for ds in [Dataset::XMark, Dataset::Nasa] {
        let g = ds.load(scale);
        let w = workload(&g, 4, scale.num_queries());
        // First half registered/refined; second half never seen before.
        let mid = w.queries.len() / 2;
        let (hits, misses) = w.queries.split_at(mid);
        let apex = ApexIndex::build(&g, hits);
        let mut mstar = MStarIndex::new(&g);
        for q in hits {
            mstar.refine_for(&g, q);
        }
        let avg = |qs: &[PathExpr], f: &dyn Fn(&PathExpr) -> u64| -> f64 {
            qs.iter().map(f).sum::<u64>() as f64 / qs.len().max(1) as f64
        };
        println!(
            "{:<8} {:>12} {:>12} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            ds.name(),
            apex.node_count(),
            mstar.node_count(),
            avg(hits, &|q| apex.query(&g, q).cost.total()),
            avg(hits, &|q| mstar
                .query_paper(&g, q, EvalStrategy::TopDown)
                .cost
                .total()),
            avg(misses, &|q| apex.query(&g, q).cost.total()),
            avg(misses, &|q| mstar
                .query_paper(&g, q, EvalStrategy::TopDown)
                .cost
                .total()),
        );
    }
    println!();
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("# ablations at {scale:?} scale");
    strategy_ablation(scale);
    soundness_ablation(scale);
    threshold_ablation(scale);
    density_ablation(scale);
    apex_ablation(scale);
}
