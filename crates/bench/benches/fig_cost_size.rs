//! `cargo bench --bench fig_cost_size` — regenerates the cost-vs-size
//! figures: 10–13 (max path length 9) and 18–22 (max path length 4), on the
//! XMark-like and NASA-like datasets.
//!
//! Scale via `MRX_SCALE` / `MRX_QUERIES` (default: small).

use mrx_bench::figures::Suite;
use mrx_bench::Scale;

fn main() {
    let mut suite = Suite::new(Scale::from_env());
    for id in [10u32, 11, 12, 13, 18, 19, 20, 21, 22] {
        let start = std::time::Instant::now();
        let fig = suite.figure(id);
        print!("{}", fig.render());
        eprintln!("# figure {id} took {:.1}s", start.elapsed().as_secs_f64());
        println!();
    }
}
