//! Criterion micro-benchmarks for the wall-clock performance of the core
//! operations (the paper's metric is node visits; these benchmarks keep the
//! Rust implementation itself honest).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mrx_bench::{Dataset, Scale};
use mrx_datagen::{nasa_like, xmark_like, XmarkConfig};
use mrx_index::{AkIndex, EvalStrategy, MStarIndex, MkIndex, OneIndex};
use mrx_path::PathExpr;
use mrx_workload::{Workload, WorkloadConfig};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    group.bench_function("xmark_10k", |b| {
        b.iter(|| xmark_like(&XmarkConfig::with_target_nodes(10_000), 1))
    });
    group.bench_function("nasa_10k", |b| b.iter(|| nasa_like(10_000, 1)));
    group.finish();
}

fn bench_index_construction(c: &mut Criterion) {
    let g = Dataset::XMark.load(Scale::Tiny);
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for k in [0u32, 2, 4] {
        group.bench_function(format!("ak_k{k}"), |b| b.iter(|| AkIndex::build(&g, k)));
    }
    group.bench_function("one_index", |b| b.iter(|| OneIndex::build(&g)));
    group.finish();
}

fn bench_partition_engines(c: &mut Criterion) {
    use mrx_index::{bisim, bisim_worklist};
    let mut group = c.benchmark_group("bisim_fixpoint");
    group.sample_size(10);
    for (name, g) in [
        ("xmark", Dataset::XMark.load(Scale::Tiny)),
        ("nasa", Dataset::Nasa.load(Scale::Tiny)),
    ] {
        group.bench_function(format!("rounds_{name}"), |b| b.iter(|| bisim(&g)));
        group.bench_function(format!("worklist_{name}"), |b| b.iter(|| bisim_worklist(&g)));
    }
    group.finish();
}

fn bench_refinement(c: &mut Criterion) {
    let g = Dataset::Nasa.load(Scale::Tiny);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 20,
            seed: 7,
            max_enumerated_paths: 100_000,
        },
    );
    let mut group = c.benchmark_group("refine_20_fups");
    group.sample_size(10);
    group.bench_function("mk", |b| {
        b.iter_batched(
            || MkIndex::new(&g),
            |mut idx| {
                for q in &w.queries {
                    idx.refine_for(&g, q);
                }
                idx
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("mstar", |b| {
        b.iter_batched(
            || MStarIndex::new(&g),
            |mut idx| {
                for q in &w.queries {
                    idx.refine_for(&g, q);
                }
                idx
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let g = Dataset::XMark.load(Scale::Tiny);
    let fup = PathExpr::parse("//open_auction/bidder/personref").unwrap();
    let mut mk = MkIndex::new(&g);
    mk.refine_for(&g, &fup);
    let mut mstar = MStarIndex::new(&g);
    mstar.refine_for(&g, &fup);
    let ak = AkIndex::build(&g, 2);
    let mut group = c.benchmark_group("query_fup");
    group.bench_function("ak2_with_validation", |b| b.iter(|| ak.query(&g, &fup)));
    group.bench_function("mk", |b| b.iter(|| mk.query(&g, &fup)));
    group.bench_function("mstar_topdown", |b| {
        b.iter(|| mstar.query(&g, &fup, EvalStrategy::TopDown))
    });
    group.bench_function("mstar_naive", |b| {
        b.iter(|| mstar.query(&g, &fup, EvalStrategy::Naive))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_index_construction,
    bench_partition_engines,
    bench_refinement,
    bench_queries
);
criterion_main!(benches);
