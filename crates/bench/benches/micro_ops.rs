//! Std-only micro-benchmarks for the wall-clock performance of the core
//! operations (the paper's metric is node visits; these benchmarks keep the
//! Rust implementation itself honest).
//!
//! Run with `cargo bench -p mrx-bench --bench micro_ops`. No external
//! benchmark framework: see `mrx_bench::timing`.

use mrx_bench::timing::time;
use mrx_bench::{Dataset, Scale};
use mrx_datagen::{nasa_like, xmark_like, XmarkConfig};
use mrx_index::{bisim, bisim_worklist, AkIndex, EvalStrategy, MStarIndex, MkIndex, OneIndex};
use mrx_path::PathExpr;
use mrx_workload::{Workload, WorkloadConfig};

fn bench_generators() {
    println!("# datagen");
    println!(
        "{}",
        time("xmark_10k", 5, || xmark_like(
            &XmarkConfig::with_target_nodes(10_000),
            1
        ))
        .render()
    );
    println!("{}", time("nasa_10k", 5, || nasa_like(10_000, 1)).render());
}

fn bench_index_construction() {
    let g = Dataset::XMark.load(Scale::Tiny);
    println!("# build");
    for k in [0u32, 2, 4] {
        println!(
            "{}",
            time(&format!("ak_k{k}"), 10, || AkIndex::build(&g, k)).render()
        );
    }
    println!("{}", time("one_index", 10, || OneIndex::build(&g)).render());
}

fn bench_partition_engines() {
    println!("# bisim_fixpoint");
    for (name, g) in [
        ("xmark", Dataset::XMark.load(Scale::Tiny)),
        ("nasa", Dataset::Nasa.load(Scale::Tiny)),
    ] {
        println!(
            "{}",
            time(&format!("rounds_{name}"), 10, || bisim(&g)).render()
        );
        println!(
            "{}",
            time(&format!("worklist_{name}"), 10, || bisim_worklist(&g)).render()
        );
    }
}

fn bench_refinement() {
    let g = Dataset::Nasa.load(Scale::Tiny);
    let w = Workload::generate(
        &g,
        &WorkloadConfig {
            max_path_len: 4,
            num_queries: 20,
            seed: 7,
            max_enumerated_paths: 100_000,
        },
    );
    println!("# refine_20_fups");
    println!(
        "{}",
        time("mk", 5, || {
            let mut idx = MkIndex::new(&g);
            for q in &w.queries {
                idx.refine_for(&g, q);
            }
            idx
        })
        .render()
    );
    println!(
        "{}",
        time("mstar", 5, || {
            let mut idx = MStarIndex::new(&g);
            for q in &w.queries {
                idx.refine_for(&g, q);
            }
            idx
        })
        .render()
    );
}

fn bench_queries() {
    let g = Dataset::XMark.load(Scale::Tiny);
    let fup = PathExpr::parse("//open_auction/bidder/personref").unwrap();
    let mut mk = MkIndex::new(&g);
    mk.refine_for(&g, &fup);
    let mut mstar = MStarIndex::new(&g);
    mstar.refine_for(&g, &fup);
    let ak = AkIndex::build(&g, 2);
    println!("# query_fup");
    println!(
        "{}",
        time("ak2_with_validation", 50, || ak.query(&g, &fup)).render()
    );
    println!("{}", time("mk", 50, || mk.query(&g, &fup)).render());
    println!(
        "{}",
        time("mstar_topdown", 50, || mstar.query(
            &g,
            &fup,
            EvalStrategy::TopDown
        ))
        .render()
    );
    println!(
        "{}",
        time("mstar_naive", 50, || mstar.query(
            &g,
            &fup,
            EvalStrategy::Naive
        ))
        .render()
    );
}

fn main() {
    bench_generators();
    bench_index_construction();
    bench_partition_engines();
    bench_refinement();
    bench_queries();
}
