//! `cargo bench --bench fig_workload` — regenerates Figures 8 and 9
//! (query-length distributions on the NASA dataset).
//!
//! Scale via `MRX_SCALE` / `MRX_QUERIES` (default: small).

use mrx_bench::figures::Suite;
use mrx_bench::Scale;

fn main() {
    // Under `cargo bench`, libtest-style flags like `--bench` are passed
    // through; ignore everything.
    let mut suite = Suite::new(Scale::from_env());
    for id in [8u32, 9] {
        let fig = suite.figure(id);
        print!("{}", fig.render());
        println!();
    }
}
