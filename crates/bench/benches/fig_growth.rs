//! `cargo bench --bench fig_growth` — regenerates the index-growth figures:
//! 14–17 (max path length 9) and 23–26 (max path length 4).
//!
//! Scale via `MRX_SCALE` / `MRX_QUERIES` (default: small).

use mrx_bench::figures::Suite;
use mrx_bench::Scale;

fn main() {
    let mut suite = Suite::new(Scale::from_env());
    for id in [14u32, 15, 16, 17, 23, 24, 25, 26] {
        let start = std::time::Instant::now();
        let fig = suite.figure(id);
        print!("{}", fig.render());
        eprintln!("# figure {id} took {:.1}s", start.elapsed().as_secs_f64());
        println!();
    }
}
