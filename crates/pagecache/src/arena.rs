//! Demand-paged posting arenas: the same wire form as
//! [`mrx_postings::PostingArena`], decoded one block at a time through a
//! [`PageCache`].
//!
//! The eager arena holds its four arrays on the heap and validates every
//! byte up front. Here the heavy arrays (tagged block payload, skip
//! directory, block offsets) stay on disk inside the paged region; only the
//! tiny per-list tables (`list_len`, derived `list_block`) are resident.
//! Activation pins the two directory arrays — a seek probes them on every
//! jump, so they must never fault — and validates their *shape* (monotone
//! offsets, bounded block spans, ascending block heads). Payload bytes are
//! validated lazily, block by block, as queries decode them: any violation
//! poisons the cache instead of panicking, and the serving layer converts
//! the poison into a typed error before an answer escapes.

use std::rc::Rc;

use mrx_error::StoreError;
use mrx_postings::{
    decode_legacy_block, decode_tagged_block, SeekingIterator, BLOCK_LEN, MAX_BLOCK_PAYLOAD,
};

use crate::cache::PageCache;

const BLOCK_LEN32: u32 = BLOCK_LEN as u32;

/// Where an arena's three on-disk arrays live, as **region-relative** byte
/// offsets into the paged region. `list_len` is not part of the layout —
/// it is small, stored in the checksummed meta section, and resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaLayout {
    /// Block payload bytes.
    pub data_off: u64,
    /// Payload length in bytes.
    pub data_len: u64,
    /// `[u32; nblocks]` skip directory (first id of each block).
    pub block_first_off: u64,
    /// `[u32; nblocks + 1]` payload byte offsets (leading 0 included).
    pub block_off_off: u64,
    /// Total blocks across all lists.
    pub nblocks: u32,
}

fn blocks_of(len: u32) -> u32 {
    len.div_ceil(BLOCK_LEN32)
}

fn range_in(region_len: u64, off: u64, len: u64, what: &str) -> Result<(), StoreError> {
    match off.checked_add(len) {
        Some(end) if end <= region_len => Ok(()),
        _ => Err(StoreError::Format(format!(
            "paged arena {what} [{off}, +{len}) outside the region ({region_len} bytes)"
        ))),
    }
}

/// A read-only posting arena whose payload and directories live in a
/// [`PageCache`] region. Iteration and seek semantics are bit-identical to
/// [`mrx_postings::PostingArena`]: same block geometry, same skip-directory
/// jump, same visit order — so serving through it yields the same answers
/// and the same cost accounting.
pub struct PagedArena {
    cache: Rc<PageCache>,
    data_off: u64,
    data_len: u64,
    bf_off: u64,
    bo_off: u64,
    nblocks: u32,
    /// Derived from `list_len` exactly as the eager arena derives it.
    list_block: Vec<u32>,
    list_len: Vec<u32>,
    /// Ids must be `< universe`; decode poisons on violation so downstream
    /// random-access structures never index out of range.
    universe: u32,
    /// Payload format: `true` for tagged blocks (store v5/v6), `false` for
    /// the pre-tag varint-only form (v3/v4).
    tagged: bool,
}

impl PagedArena {
    /// Activates an arena over `layout`, pinning both directory arrays and
    /// validating everything that can be checked without touching the
    /// payload: directory shapes, monotone offsets with bounded per-block
    /// spans, ascending block heads within each list, and heads inside the
    /// id universe. Payload bytes are validated lazily at decode time, in
    /// whichever wire form `tagged` names.
    pub fn new(
        cache: Rc<PageCache>,
        layout: ArenaLayout,
        list_len: Vec<u32>,
        universe: u32,
        tagged: bool,
    ) -> Result<Self, StoreError> {
        let mut list_block = Vec::with_capacity(list_len.len() + 1);
        list_block.push(0u32);
        let mut total: u64 = 0;
        for &len in &list_len {
            total += u64::from(blocks_of(len));
            if total > u64::from(u32::MAX) {
                return Err(StoreError::Format(
                    "paged arena block count overflow".into(),
                ));
            }
            list_block.push(total as u32);
        }
        if total != u64::from(layout.nblocks) {
            return Err(StoreError::Format(format!(
                "paged arena lists need {total} blocks, layout declares {}",
                layout.nblocks
            )));
        }
        if layout.data_len > u64::from(u32::MAX) {
            return Err(StoreError::Format(
                "paged arena payload exceeds u32 offsets".into(),
            ));
        }
        let region_len = cache.region_len();
        let nb = u64::from(layout.nblocks);
        range_in(region_len, layout.data_off, layout.data_len, "payload")?;
        range_in(region_len, layout.block_first_off, 4 * nb, "skip directory")?;
        range_in(
            region_len,
            layout.block_off_off,
            4 * (nb + 1),
            "offset table",
        )?;

        // Directories are probed on every seek: fault them in now and pin
        // them so the clock can never push a seek into a page fault.
        if !cache.pin(layout.block_first_off, 4 * nb)
            || !cache.pin(layout.block_off_off, 4 * (nb + 1))
        {
            return Err(cache
                .take_poison()
                .unwrap_or_else(|| StoreError::Format("paged arena directory pin failed".into())));
        }

        let arena = PagedArena {
            cache,
            data_off: layout.data_off,
            data_len: layout.data_len,
            bf_off: layout.block_first_off,
            bo_off: layout.block_off_off,
            nblocks: layout.nblocks,
            list_block,
            list_len,
            universe,
            tagged,
        };
        arena.validate_directories()?;
        Ok(arena)
    }

    /// Shape checks over the pinned directories: `block_off` starts at 0,
    /// ascends monotonically with per-block spans a valid block can
    /// actually occupy, and ends exactly at the payload length; block heads
    /// ascend strictly within each list and sit inside the universe.
    fn validate_directories(&self) -> Result<(), StoreError> {
        let fail = |msg: String| Err(StoreError::Format(msg));
        if self.bo(0) != 0 {
            return fail("paged arena offset table does not start at 0".into());
        }
        for b in 0..self.nblocks {
            let (lo, hi) = (self.bo(b), self.bo(b + 1));
            if hi < lo {
                return fail(format!("paged arena block {b} offsets not monotone"));
            }
            if (hi - lo) as usize > MAX_BLOCK_PAYLOAD {
                return fail(format!("paged arena block {b} payload impossibly large"));
            }
        }
        if u64::from(self.bo(self.nblocks)) != self.data_len {
            return fail("paged arena offset table does not cover the payload".into());
        }
        for l in 0..self.num_lists() {
            let (lo, hi) = (self.list_block[l], self.list_block[l + 1]);
            for b in lo..hi {
                let first = self.bf(b);
                if first >= self.universe {
                    return fail(format!("paged arena block {b} head outside the universe"));
                }
                if b > lo && first <= self.bf(b - 1) {
                    return fail(format!("paged arena list {l} block heads not ascending"));
                }
            }
        }
        if let Some(e) = self.cache.take_poison() {
            return Err(e);
        }
        Ok(())
    }

    /// The cache this arena reads through (shared with sibling structures
    /// of the same component).
    pub fn cache(&self) -> &Rc<PageCache> {
        &self.cache
    }

    /// Number of lists.
    pub fn num_lists(&self) -> usize {
        self.list_len.len()
    }

    /// The exclusive id upper bound enforced at decode time.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Number of blocks across all lists.
    pub fn num_blocks(&self) -> u32 {
        self.nblocks
    }

    /// Length of list `i`.
    #[inline]
    pub fn len_of(&self, i: usize) -> usize {
        self.list_len[i] as usize
    }

    /// First id of list `i` — one pinned-directory read, no payload touch.
    #[inline]
    pub fn first_of(&self, i: usize) -> Option<u32> {
        if self.list_len[i] == 0 {
            return None;
        }
        Some(self.bf(self.list_block[i]))
    }

    /// A seeking cursor over list `i`.
    #[inline]
    pub fn cursor(&self, i: usize) -> PagedCursor<'_> {
        PagedCursor {
            arena: self,
            blk_lo: self.list_block[i],
            blk_hi: self.list_block[i + 1],
            len: self.list_len[i],
            idx: 0,
            buf_blk: u32::MAX,
            buf: [0; BLOCK_LEN],
        }
    }

    /// Calls `f` with every id of list `i` in ascending order — same visit
    /// order as the eager arena's `for_each`. Stops early (poison already
    /// set) if a block fails to decode; the owning query observes the
    /// poison before any answer is served.
    pub fn for_each(&self, i: usize, mut f: impl FnMut(u32)) {
        let (blo, bhi) = (self.list_block[i], self.list_block[i + 1]);
        if blo == bhi {
            return;
        }
        // A bulk walk reads the list's payload span front to back: hint
        // the cache so the span's first pages arrive in one positioned
        // read, and the sequential-fault detector batches the rest.
        let (lo, hi) = (self.bo(blo), self.bo(bhi));
        if hi > lo {
            self.cache
                .readahead(self.data_off + u64::from(lo), u64::from(hi - lo));
        }
        let mut remaining = self.list_len[i];
        let mut buf = [0u32; BLOCK_LEN];
        for b in blo..bhi {
            let in_block = remaining.min(BLOCK_LEN32);
            if !self.decode_block(b, in_block, &mut buf) {
                return;
            }
            for &v in &buf[..in_block as usize] {
                f(v);
            }
            remaining -= in_block;
        }
    }

    /// First id of block `b`, from the pinned skip directory.
    #[inline]
    fn bf(&self, b: u32) -> u32 {
        self.cache.read_u32(self.bf_off + 4 * u64::from(b))
    }

    /// Payload byte offset `b` of the pinned offset table.
    #[inline]
    fn bo(&self, b: u32) -> u32 {
        self.cache.read_u32(self.bo_off + 4 * u64::from(b))
    }

    /// Decodes block `b` (holding `in_block` ids) into `out[..in_block]`,
    /// reading the payload through the cache — a block may straddle any
    /// number of page seams. Decoding goes through the same checked
    /// decoders as the eager arena's `from_parts` (per the wire form in
    /// `self.tagged`); every structural violation (bad tag, truncation,
    /// non-ascending ids, overflow, trailing or nonzero-padding bytes,
    /// out-of-universe ids) poisons the cache and returns `false`, and
    /// callers then stop iterating.
    fn decode_block(&self, b: u32, in_block: u32, out: &mut [u32; BLOCK_LEN]) -> bool {
        if self.cache.poisoned() {
            return false;
        }
        let first = self.bf(b);
        let (start, end) = (self.bo(b), self.bo(b + 1));
        let plen = end.saturating_sub(start) as usize;
        let mut payload = [0u8; MAX_BLOCK_PAYLOAD];
        if plen > MAX_BLOCK_PAYLOAD
            || (plen > 0
                && !self
                    .cache
                    .read(self.data_off + u64::from(start), &mut payload[..plen]))
        {
            return false;
        }
        let decoded = if self.tagged {
            decode_tagged_block(&payload[..plen], first, in_block, out)
        } else {
            decode_legacy_block(&payload[..plen], first, in_block, out)
        };
        if let Err(e) = decoded {
            self.cache.poison(StoreError::Format(format!(
                "paged arena block {b}: {}",
                e.0
            )));
            return false;
        }
        // Ids ascend, so checking the block's last covers them all.
        if out[in_block.saturating_sub(1) as usize] >= self.universe {
            self.cache.poison(StoreError::Format(format!(
                "paged arena block {b} id outside the universe"
            )));
            return false;
        }
        true
    }
}

/// [`SeekingIterator`] over one list of a [`PagedArena`] — the paged twin
/// of [`mrx_postings::PostingCursor`].
///
/// Instead of the eager cursor's per-element varint position, this cursor
/// decodes whole blocks into a stack buffer (`buf`, tagged by `buf_blk`)
/// and serves from it; crossing into a new block re-decodes. `next_seek`
/// performs the *same* skip-directory jump as the eager cursor — find the
/// last block strictly after the current one whose head is `<= target` —
/// so the two visit identical elements in identical order, which keeps
/// cost accounting bit-identical across representations.
pub struct PagedCursor<'a> {
    arena: &'a PagedArena,
    blk_lo: u32,
    blk_hi: u32,
    len: u32,
    idx: u32,
    /// Absolute block index currently in `buf`, or `u32::MAX` for none.
    buf_blk: u32,
    buf: [u32; BLOCK_LEN],
}

impl SeekingIterator for PagedCursor<'_> {
    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.idx >= self.len {
            return None;
        }
        let rel = self.idx / BLOCK_LEN32;
        let blk = self.blk_lo + rel;
        if blk != self.buf_blk {
            let in_block = (self.len - rel * BLOCK_LEN32).min(BLOCK_LEN32);
            if !self.arena.decode_block(blk, in_block, &mut self.buf) {
                self.idx = self.len; // poisoned: exhaust, never panic
                return None;
            }
            self.buf_blk = blk;
        }
        let v = self.buf[(self.idx % BLOCK_LEN32) as usize];
        self.idx += 1;
        Some(v)
    }

    fn next_seek(&mut self, target: u32) -> Option<u32> {
        if self.idx >= self.len {
            return None;
        }
        // Skip-directory jump, identical to the eager cursor: among blocks
        // strictly after the current one, the last whose head is <= target
        // is the only block that can hold the first remaining id >= target.
        let cur = self.blk_lo + self.idx / BLOCK_LEN32;
        let (mut lo, mut hi) = (cur + 1, self.blk_hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.arena.bf(mid) <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let skip = lo - (cur + 1);
        if skip > 0 {
            self.idx = (cur + skip - self.blk_lo) * BLOCK_LEN32;
        }
        // Linear tail: at most one block, then the next block's head.
        // (No run-tag shortcut here: peeking the tag byte would fault the
        // same payload page the decode needs anyway, so the eager cursor's
        // O(1) run landing buys nothing on the paged side.)
        while let Some(v) = self.next() {
            if v >= target {
                return Some(v);
            }
        }
        None
    }

    #[inline]
    fn remaining(&self) -> usize {
        (self.len - self.idx) as usize
    }
}

/// A demand-paged `[u32]`: random access by index, bounds-checked, with
/// out-of-range access poisoning the cache rather than panicking. Backs the
/// `node_of` inverse extent maps, whose access pattern is exactly the
/// frequent-query skew the cache exploits.
pub struct PagedU32 {
    cache: Rc<PageCache>,
    off: u64,
    len: u32,
}

impl PagedU32 {
    /// Wraps `len` little-endian `u32`s at region-relative `off`.
    pub fn new(cache: Rc<PageCache>, off: u64, len: u32) -> Result<Self, StoreError> {
        range_in(cache.region_len(), off, 4 * u64::from(len), "u32 array")?;
        Ok(PagedU32 { cache, off, len })
    }

    /// Element count.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element `i`; 0 (with poison set) when `i` is out of range or the
    /// backing page fails.
    #[inline]
    pub fn get(&self, i: u32) -> u32 {
        if i >= self.len {
            self.cache.poison(StoreError::Format(format!(
                "paged u32 array index {i} out of range ({})",
                self.len
            )));
            return 0;
        }
        self.cache.read_u32(self.off + 4 * u64::from(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_checksums;
    use crate::source::BytesSource;
    use mrx_postings::PostingArena;

    /// Local PRNG so tests stay dependency-free and reproducible.
    struct SplitMix64(u64);
    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Serializes an eager arena's parts into a byte region: payload,
    /// then the two directories. Returns the region and the layout.
    fn region_of(pa: &PostingArena) -> (Vec<u8>, ArenaLayout) {
        let (data, bf, bo, _ll) = pa.parts();
        let mut region = data.to_vec();
        let bf_off = region.len() as u64;
        for &v in bf {
            region.extend_from_slice(&v.to_le_bytes());
        }
        let bo_off = region.len() as u64;
        for &v in bo {
            region.extend_from_slice(&v.to_le_bytes());
        }
        let layout = ArenaLayout {
            data_off: 0,
            data_len: data.len() as u64,
            block_first_off: bf_off,
            block_off_off: bo_off,
            nblocks: bf.len() as u32,
        };
        (region, layout)
    }

    fn paged_of(
        pa: &PostingArena,
        page_size: u32,
        budget: u64,
        universe: u32,
    ) -> (Rc<PageCache>, PagedArena) {
        let (region, layout) = region_of(pa);
        let (_, _, _, ll) = pa.parts();
        let cache = PageCache::over_bytes(region, page_size, budget).unwrap();
        let arena = PagedArena::new(cache.clone(), layout, ll.to_vec(), universe, true).unwrap();
        (cache, arena)
    }

    /// A strictly ascending list with mixed-density runs, the shape the
    /// parity suites use: dense runs exercise 1-byte deltas, jumps
    /// exercise multi-byte varints and skip jumps.
    fn random_list(rng: &mut SplitMix64, max_len: u64, universe: u32) -> Vec<u32> {
        let len = rng.below(max_len + 1);
        let mut out = Vec::with_capacity(len as usize);
        let mut cur = 0u64;
        for _ in 0..len {
            let span = if rng.below(4) == 0 { 5000 } else { 3 };
            cur += 1 + rng.below(span);
            if cur >= u64::from(universe) {
                break;
            }
            out.push(cur as u32);
        }
        out
    }

    #[test]
    fn paged_matches_eager_bulk_and_cursor() {
        let big: Vec<u32> = (0..1500).map(|i| i * 3 + 7).collect();
        let lists: Vec<Vec<u32>> = vec![vec![], vec![42], big, vec![1, 2, 3]];
        let mut pa = PostingArena::new();
        for l in &lists {
            pa.push_list(l);
        }
        for page_size in [64u32, 256, 4096] {
            let (cache, paged) = paged_of(&pa, page_size, u64::MAX, u32::MAX);
            assert_eq!(paged.num_lists(), lists.len());
            for (i, l) in lists.iter().enumerate() {
                assert_eq!(paged.len_of(i), l.len());
                assert_eq!(paged.first_of(i), l.first().copied());
                let mut bulk = Vec::new();
                paged.for_each(i, |v| bulk.push(v));
                assert_eq!(&bulk, l, "for_each list {i} page {page_size}");
                let mut drained = Vec::new();
                let mut c = paged.cursor(i);
                while let Some(v) = c.next() {
                    drained.push(v);
                }
                assert_eq!(&drained, l, "cursor list {i} page {page_size}");
            }
            assert!(!cache.poisoned());
        }
    }

    #[test]
    fn interleaved_seeks_match_eager_cursor_under_tiny_pages() {
        let mut rng = SplitMix64(0x5eed_cafe);
        for round in 0..30 {
            let nlists = 1 + rng.below(5) as usize;
            let mut pa = PostingArena::new();
            let mut lists = Vec::new();
            for _ in 0..nlists {
                let l = random_list(&mut rng, 900, 4_000_000);
                pa.push_list(&l);
                lists.push(l);
            }
            let page_size = [64u32, 128, 256][rng.below(3) as usize];
            // A budget of a few pages forces constant eviction and
            // re-faulting mid-iteration.
            let budget = u64::from(page_size) * (2 + rng.below(4));
            let (cache, paged) = paged_of(&pa, page_size, budget, 4_000_000);
            for (i, _) in lists.iter().enumerate() {
                let mut ours = paged.cursor(i);
                let mut theirs = pa.cursor(i);
                for _ in 0..200 {
                    if rng.below(2) == 0 {
                        assert_eq!(ours.next(), theirs.next(), "round {round} list {i}");
                    } else {
                        let t = rng.below(4_100_000) as u32;
                        assert_eq!(
                            ours.next_seek(t),
                            theirs.next_seek(t),
                            "round {round} list {i} target {t}"
                        );
                    }
                }
            }
            assert!(!cache.poisoned(), "round {round}");
        }
    }

    /// Satellite regression, fixed seed: heavy eviction traffic must never
    /// reclaim the pinned directory pages — a seek after the sweep still
    /// jumps straight off the resident directory and re-faults only
    /// payload pages.
    #[test]
    fn eviction_then_reread_keeps_directories_pinned() {
        let mut rng = SplitMix64(0xD1CE_0007);
        let mut pa = PostingArena::new();
        let mut lists = Vec::new();
        for _ in 0..4 {
            let l = random_list(&mut rng, 2000, 1_000_000);
            pa.push_list(&l);
            lists.push(l);
        }
        let (cache, paged) = paged_of(&pa, 64, 3 * 64, 1_000_000);
        let pinned = cache.stats().pinned_pages;
        assert!(pinned > 0, "directories must span at least one pinned page");
        // Churn: full scans of every list, forcing payload pages through
        // the tiny budget over and over.
        for (i, l) in lists.iter().enumerate() {
            for _ in 0..3 {
                let mut got = Vec::new();
                paged.for_each(i, |v| got.push(v));
                assert_eq!(&got, l);
            }
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "budget must have forced evictions");
        assert_eq!(stats.pinned_pages, pinned, "pins must survive the churn");
        // Directory-only probes after the churn are pure hits.
        let before = cache.stats().faults;
        for (i, l) in lists.iter().enumerate() {
            assert_eq!(paged.first_of(i), l.first().copied());
        }
        assert_eq!(cache.stats().faults, before, "first_of must not fault");
        // And a seek still lands exactly where the eager cursor does.
        for (i, _) in lists.iter().enumerate() {
            let mut ours = paged.cursor(i);
            let mut theirs = pa.cursor(i);
            for t in [0u32, 17, 40_000, 999_999] {
                assert_eq!(ours.next_seek(t), theirs.next_seek(t));
            }
        }
        assert!(!cache.poisoned());
    }

    #[test]
    fn payload_bit_flip_is_caught_by_the_page_checksum() {
        let big: Vec<u32> = (0..600).map(|i| i * 7 + 1).collect();
        let mut pa = PostingArena::new();
        pa.push_list(&big);
        let (region, layout) = region_of(&pa);
        let sums = page_checksums(&region, 64);
        let mut corrupt = region.clone();
        corrupt[10] ^= 0x40; // inside the varint payload
        let cache = PageCache::new(
            Box::new(BytesSource(corrupt)),
            0,
            region.len() as u64,
            64,
            sums,
            u64::MAX,
        )
        .unwrap();
        let (_, _, _, ll) = pa.parts();
        // Directories live past byte 10, so activation may succeed; the
        // flip must then surface on first payload decode, never as a wrong
        // answer.
        match PagedArena::new(cache.clone(), layout, ll.to_vec(), u32::MAX, true) {
            Err(StoreError::Checksum { .. }) => {}
            Err(other) => panic!("expected checksum failure, got {other:?}"),
            Ok(arena) => {
                let mut got = Vec::new();
                arena.for_each(0, |v| got.push(v));
                assert!(got.len() < big.len(), "decode must stop at the poison");
                match cache.take_poison() {
                    Some(StoreError::Checksum { section }) => {
                        assert!(section.starts_with("page "), "{section}")
                    }
                    other => panic!("expected page checksum poison, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn semantically_invalid_payload_with_valid_checksums_poisons() {
        let big: Vec<u32> = (0..300).map(|i| i * 2 + 5).collect();
        let mut pa = PostingArena::new();
        pa.push_list(&big);
        let (mut region, layout) = region_of(&pa);
        // Byte 0 is the first block's encoding tag: make it a tag no
        // writer emits. The checksum table is computed over the corrupted
        // bytes, so only semantic validation can catch this.
        region[0] = 0xEE;
        let cache = PageCache::over_bytes(region, 64, u64::MAX).unwrap();
        let (_, _, _, ll) = pa.parts();
        let arena = PagedArena::new(cache.clone(), layout, ll.to_vec(), u32::MAX, true).unwrap();
        let mut got = Vec::new();
        arena.for_each(0, |v| got.push(v));
        assert!(got.is_empty(), "poisoned block must emit nothing");
        assert!(matches!(
            cache.take_poison(),
            Some(StoreError::Format(m)) if m.contains("unknown block tag")
        ));
        // A cursor over the same list exhausts instead of panicking.
        let mut c = arena.cursor(0);
        assert_eq!(c.next(), None);

        // And a *semantic* corruption deeper in: re-tag the first block as
        // a varint block. The body no longer parses to 127 deltas, so the
        // typed error fires before any id escapes.
        let (mut region, layout) = region_of(&pa);
        region[0] = mrx_postings::TAG_VARINT;
        let cache = PageCache::over_bytes(region, 64, u64::MAX).unwrap();
        let arena = PagedArena::new(cache.clone(), layout, ll.to_vec(), u32::MAX, true).unwrap();
        let mut got = Vec::new();
        arena.for_each(0, |v| got.push(v));
        assert!(got.is_empty());
        assert!(matches!(
            cache.take_poison(),
            Some(StoreError::Format(m)) if m.contains("block 0")
        ));
    }

    #[test]
    fn activation_rejects_bad_geometry() {
        let mut pa = PostingArena::new();
        pa.push_list(&[1u32, 5, 9]);
        let (region, layout) = region_of(&pa);
        let (_, _, _, ll) = pa.parts();

        // Wrong block count for the list lengths.
        let cache = PageCache::over_bytes(region.clone(), 64, u64::MAX).unwrap();
        let mut bad = layout;
        bad.nblocks += 1;
        assert!(PagedArena::new(cache, bad, ll.to_vec(), u32::MAX, true).is_err());

        // Directory ranges outside the region.
        let cache = PageCache::over_bytes(region.clone(), 64, u64::MAX).unwrap();
        let mut bad = layout;
        bad.block_off_off = region.len() as u64;
        assert!(PagedArena::new(cache, bad, ll.to_vec(), u32::MAX, true).is_err());

        // Block head at or past the universe.
        let cache = PageCache::over_bytes(region, 64, u64::MAX).unwrap();
        assert!(PagedArena::new(cache, layout, ll.to_vec(), 1, true).is_err());
    }

    #[test]
    fn paged_u32_matches_slice_and_bounds_checks() {
        let vals: Vec<u32> = (0..500u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut region = Vec::new();
        for &v in &vals {
            region.extend_from_slice(&v.to_le_bytes());
        }
        let cache = PageCache::over_bytes(region, 64, 4 * 64).unwrap();
        let arr = PagedU32::new(cache.clone(), 0, vals.len() as u32).unwrap();
        assert_eq!(arr.len(), 500);
        let mut rng = SplitMix64(42);
        for _ in 0..2000 {
            let i = rng.below(500) as u32;
            assert_eq!(arr.get(i), vals[i as usize]);
        }
        assert!(!cache.poisoned());
        assert_eq!(arr.get(500), 0);
        assert!(cache.poisoned());
        let _ = cache.take_poison();

        // Construction rejects arrays that overhang the region.
        assert!(PagedU32::new(cache, 4, 500).is_err());
    }
}
