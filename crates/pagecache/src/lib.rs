//! Demand-paged reads for `.mrx` snapshots: a fixed-page in-process cache
//! with per-page checksums, plus paged posting arenas served through it.
//!
//! The paper's premise is frequent-query skew; this crate exploits the same
//! skew at the storage layer. Instead of slurping and checksumming whole
//! sections at load (the v2/v3 read path), the v4 layout designates a
//! *paged region* of the file whose bytes are fetched on demand in
//! fixed-size pages via positioned I/O ([`PageSource::read_at`] —
//! `std::os::unix::fs::FileExt`, no mmap, no libc), verified lazily one
//! page at a time against a per-page FNV-64 table, and cached under a
//! configurable byte budget with clock eviction. Hot pages stay resident;
//! cold pages cost one `read_at` when (and only when) a query touches them.
//!
//! Three layers live here:
//!
//! * [`PageCache`] — the cache itself: fault/hit/eviction accounting,
//!   pinning for directory pages, checksum-verify-on-fault, and a *poison*
//!   flag that records the first integrity failure so infallible read
//!   surfaces (the `IndexView` contract) can return sentinel values while
//!   the owning query is guaranteed to observe the typed error before any
//!   answer is served.
//! * [`PagedArena`] / [`PagedCursor`] — the demand-paged twin of
//!   [`mrx_postings::PostingArena`]: identical wire form (delta-varint
//!   blocks of [`BLOCK_LEN`] ids + skip directory), identical iteration
//!   and seek semantics, but payload bytes live on disk and decode one
//!   block at a time through the cache — lists freely straddle page seams.
//! * [`PagedU32`] — a demand-paged `&[u32]`, used for the `node_of` inverse
//!   extent maps (the random-access-hot structure that benefits most from
//!   residency skew).
//!
//! # Integrity contract
//!
//! A page is never consumed before its checksum verifies: faults verify the
//! page against the table built at write time ([`page_checksums`]) before
//! the bytes enter the cache, and every structural violation found while
//! decoding (truncated block, non-ascending ids, out-of-range members)
//! poisons the cache instead of panicking. The serving layer checks
//! [`PageCache::take_poison`] after evaluating and returns the error in
//! place of the answer — corruption is always caught before any answer is
//! served, which the fault-injection harness proves seed by seed.

mod arena;
mod cache;
mod source;

pub use arena::{ArenaLayout, PagedArena, PagedCursor, PagedU32};
pub use cache::{
    PageCache, PageStats, DEFAULT_CACHE_BYTES, DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, MIN_PAGE_SIZE,
};
pub use source::{BytesSource, FileSource, PageSource};

pub use mrx_error::StoreError;

/// FNV-1a 64-bit over `bytes` — the same digest the section framing uses,
/// re-implemented here because this crate sits below the store.
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Word-folded FNV-1a 64-bit: the FNV round applied to 8-byte
/// little-endian lanes instead of single bytes, with the sub-word tail
/// folded byte-wise. Byte-serial FNV is latency-bound on the multiply
/// (~0.7 GB/s); folding eight bytes per round runs ~8x faster, which is
/// what keeps lazy per-page and per-section verification off the
/// time-to-first-answer critical path. Not interchangeable with
/// [`fnv64`] — the v4 writer and reader both use this for bulk data
/// (page table, graph units) and the byte form only for tiny headers.
pub fn fnv64_words(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes([w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]]);
        h = h.wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The per-page checksum table for a paged region: one word-folded FNV-64
/// per `page_size` chunk (the last page may be partial and is hashed over
/// its actual bytes). The writer stores this table in its own checksummed
/// section; the cache verifies against it lazily, page by page, on fault.
pub fn page_checksums(region: &[u8], page_size: u32) -> Vec<u64> {
    region
        .chunks(page_size.max(1) as usize)
        .map(fnv64_words)
        .collect()
}
