//! The fixed-page cache: fault, verify, pin, evict.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use mrx_error::StoreError;

use crate::source::PageSource;
use crate::{fnv64_words, page_checksums};

/// Default page size: 64 KiB amortizes the per-fault `read_at` while
/// keeping residency granular enough for frequent-query skew.
pub const DEFAULT_PAGE_SIZE: u32 = 64 * 1024;

/// Default cache byte budget (generous; the CLI overrides per run).
pub const DEFAULT_CACHE_BYTES: u64 = 256 * 1024 * 1024;

/// Smallest / largest accepted page size. The floor exists only so tests
/// can force many-page layouts with tiny pages; real files use the default.
pub const MIN_PAGE_SIZE: u32 = 16;
pub const MAX_PAGE_SIZE: u32 = 1 << 26;

/// Sentinel page id marking an unoccupied frame.
const EMPTY: u32 = u32::MAX;

/// Readahead window: when a fault lands on the page right after the
/// previous fault (a sequential walk), the next up-to-this-many pages are
/// fetched with one positioned read instead of one fault each.
const READAHEAD_PAGES: u32 = 8;

/// Cache traffic counters, surfaced through `query --stats` and the page
/// bench.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PageStats {
    /// Pages read (and verified) from the source.
    pub faults: u64,
    /// Page lookups served from a resident frame.
    pub hits: u64,
    /// Frames reclaimed by the clock sweep.
    pub evictions: u64,
    /// Pages whose content did not match the checksum table.
    pub checksum_failures: u64,
    /// Pages currently resident.
    pub resident_pages: u64,
    /// Bytes currently resident (pinned pages included).
    pub resident_bytes: u64,
    /// Pages pinned (directory/skip-directory pages; never evicted).
    pub pinned_pages: u64,
    /// Pages brought in speculatively by the readahead window (not counted
    /// in `faults`).
    pub prefetched: u64,
    /// Page lookups whose frame was resident because readahead fetched it.
    pub readahead_hits: u64,
    /// Prefetched pages evicted before any lookup touched them.
    pub wasted_prefetches: u64,
    /// Cumulative integrity failures recorded via [`PageCache::poison`].
    /// Unlike the poison slot itself — which `take_poison` consumes after
    /// every query — this counter survives, so long-running servers can
    /// report how often a snapshot's pages failed verification.
    pub poison_events: u64,
}

struct Frame {
    /// Page held by this frame, or [`EMPTY`].
    page: u32,
    /// Clock reference bit: set on every hit, cleared by a sweep pass.
    referenced: bool,
    pinned: bool,
    /// Brought in by readahead and not yet touched by a lookup.
    prefetched: bool,
    data: Box<[u8]>,
}

struct Inner {
    /// page id → frame slot.
    map: HashMap<u32, u32>,
    slots: Vec<Frame>,
    /// Unoccupied frame slots, reused before growing `slots`.
    free: Vec<u32>,
    /// Clock hand over `slots`.
    hand: usize,
    budget: u64,
    resident_bytes: u64,
    pinned_pages: u64,
    faults: u64,
    hits: u64,
    evictions: u64,
    checksum_failures: u64,
    prefetched: u64,
    readahead_hits: u64,
    wasted_prefetches: u64,
    /// Cumulative count of recorded integrity failures (see
    /// [`PageStats::poison_events`]).
    poison_events: u64,
    /// Most recently faulted-or-prefetched page; a demand fault on
    /// `last_fault + 1` marks the walk as sequential and opens the
    /// readahead window.
    last_fault: u32,
    /// First integrity failure observed; read surfaces return sentinels
    /// once set, and the query entry point converts it into a typed error
    /// before any answer escapes.
    poison: Option<StoreError>,
}

/// A fixed-page cache over one region `[base, base + region_len)` of a
/// [`PageSource`], with lazy per-page FNV-64 verification against a
/// checksum table captured at write time.
///
/// Offsets in the read API are **region-relative**. Reads copy out (no
/// borrows escape), so callers can hold many logical cursors over one
/// cache; interior mutability is a `RefCell`, making the cache
/// single-threaded by design (`!Sync`) — one cache per serving thread.
pub struct PageCache {
    source: Box<dyn PageSource>,
    base: u64,
    region_len: u64,
    page_size: u32,
    checksums: Vec<u64>,
    inner: RefCell<Inner>,
}

impl PageCache {
    /// Opens a cache over `[base, base + region_len)` of `source`, with one
    /// checksum per page and an eviction byte budget. Validates the
    /// geometry (page size bounds, table length, region within the source)
    /// up front.
    pub fn new(
        source: Box<dyn PageSource>,
        base: u64,
        region_len: u64,
        page_size: u32,
        checksums: Vec<u64>,
        budget: u64,
    ) -> Result<Rc<PageCache>, StoreError> {
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            return Err(StoreError::Format(format!(
                "page size {page_size} outside [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]"
            )));
        }
        let npages = region_len.div_ceil(u64::from(page_size));
        if checksums.len() as u64 != npages {
            return Err(StoreError::Format(format!(
                "page table has {} entries for {npages} pages",
                checksums.len()
            )));
        }
        if npages > u64::from(u32::MAX) {
            return Err(StoreError::Format("paged region has too many pages".into()));
        }
        let end = base
            .checked_add(region_len)
            .ok_or_else(|| StoreError::Format("paged region overflows".into()))?;
        if end > source.len() {
            return Err(StoreError::Format(format!(
                "paged region [{base}, {end}) extends past the source ({} bytes)",
                source.len()
            )));
        }
        Ok(Rc::new(PageCache {
            source,
            base,
            region_len,
            page_size,
            checksums,
            inner: RefCell::new(Inner {
                map: HashMap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                hand: 0,
                budget: budget.max(1),
                resident_bytes: 0,
                pinned_pages: 0,
                faults: 0,
                hits: 0,
                evictions: 0,
                checksum_failures: 0,
                prefetched: 0,
                readahead_hits: 0,
                wasted_prefetches: 0,
                poison_events: 0,
                last_fault: EMPTY,
                poison: None,
            }),
        }))
    }

    /// An in-memory cache over `region` with a freshly computed checksum
    /// table — the test/bench constructor.
    pub fn over_bytes(
        region: Vec<u8>,
        page_size: u32,
        budget: u64,
    ) -> Result<Rc<PageCache>, StoreError> {
        let sums = page_checksums(&region, page_size);
        let len = region.len() as u64;
        PageCache::new(
            Box::new(crate::BytesSource(region)),
            0,
            len,
            page_size,
            sums,
            budget,
        )
    }

    /// Bytes in the paged region.
    pub fn region_len(&self) -> u64 {
        self.region_len
    }

    /// The fixed page size.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Number of pages in the region.
    pub fn num_pages(&self) -> u32 {
        self.checksums.len() as u32
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> PageStats {
        let inner = self.inner.borrow();
        PageStats {
            faults: inner.faults,
            hits: inner.hits,
            evictions: inner.evictions,
            checksum_failures: inner.checksum_failures,
            resident_pages: inner.map.len() as u64,
            resident_bytes: inner.resident_bytes,
            pinned_pages: inner.pinned_pages,
            prefetched: inner.prefetched,
            readahead_hits: inner.readahead_hits,
            wasted_prefetches: inner.wasted_prefetches,
            poison_events: inner.poison_events,
        }
    }

    /// Replaces the eviction byte budget, reclaiming immediately if the
    /// cache is now over it.
    pub fn set_budget(&self, budget: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.budget = budget.max(1);
        Self::evict_for(&mut inner, 0);
    }

    /// Records an integrity failure. The first poison wins; later ones are
    /// dropped (the first is the root cause).
    pub fn poison(&self, e: StoreError) {
        let mut inner = self.inner.borrow_mut();
        inner.poison_events += 1;
        if inner.poison.is_none() {
            inner.poison = Some(e);
        }
    }

    /// Whether an integrity failure has been recorded.
    pub fn poisoned(&self) -> bool {
        self.inner.borrow().poison.is_some()
    }

    /// Takes the recorded failure, clearing the flag. The serving layer
    /// calls this after every query; a corrupt page re-poisons on its next
    /// fault, so clearing never masks persistent corruption.
    pub fn take_poison(&self) -> Option<StoreError> {
        self.inner.borrow_mut().poison.take()
    }

    /// Positioned read at an **absolute source offset**, outside the paged
    /// region's checksum regime — the escape hatch for lazily-loaded eager
    /// sections (the v4 graph units) that carry their own digests. The
    /// caller owns integrity checking of these bytes; region reads must go
    /// through [`PageCache::read`] instead.
    pub fn read_unpaged(&self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or_else(|| StoreError::Format("unpaged read overflows".into()))?;
        if end > self.source.len() {
            return Err(StoreError::Format(format!(
                "unpaged read [{offset}, {end}) past the source ({} bytes)",
                self.source.len()
            )));
        }
        self.source.read_at(offset, buf).map_err(StoreError::Io)
    }

    /// Copies `dst.len()` bytes at region-relative `off` into `dst`,
    /// faulting (and verifying) pages as needed. On any failure —
    /// out-of-range read, I/O error, checksum mismatch, or an
    /// already-poisoned cache — `dst` is zeroed, the poison records the
    /// cause, and `false` is returned.
    pub fn read(&self, off: u64, dst: &mut [u8]) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.poison.is_some() {
            dst.fill(0);
            return false;
        }
        let end = off.checked_add(dst.len() as u64);
        if end.is_none_or(|e| e > self.region_len) {
            inner.poison = Some(StoreError::Format(format!(
                "paged read [{off}, +{}) outside the region ({} bytes)",
                dst.len(),
                self.region_len
            )));
            dst.fill(0);
            return false;
        }
        let psz = u64::from(self.page_size);
        let mut done = 0usize;
        while done < dst.len() {
            let cur = off + done as u64;
            let page = (cur / psz) as u32;
            let in_page = (cur % psz) as usize;
            let page_len = self.page_len(page);
            let n = (page_len - in_page).min(dst.len() - done);
            match self.frame(&mut inner, page, false) {
                Some(slot) => {
                    let data = &inner.slots[slot as usize].data;
                    dst[done..done + n].copy_from_slice(&data[in_page..in_page + n]);
                }
                None => {
                    dst.fill(0);
                    return false;
                }
            }
            done += n;
        }
        true
    }

    /// Little-endian `u32` at region-relative `off`; 0 (with poison set)
    /// on failure.
    #[inline]
    pub fn read_u32(&self, off: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(off, &mut b);
        u32::from_le_bytes(b)
    }

    /// Faults in and pins every page covering `[off, off + len)` so the
    /// clock never evicts them — used for skip directories, whose probes
    /// must stay cheap. Returns `false` (poison set) if any page fails.
    pub fn pin(&self, off: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = off.checked_add(len);
        let mut inner = self.inner.borrow_mut();
        if inner.poison.is_some() {
            return false;
        }
        let Some(end) = end.filter(|&e| e <= self.region_len) else {
            inner.poison = Some(StoreError::Format(format!(
                "pin [{off}, +{len}) outside the region ({} bytes)",
                self.region_len
            )));
            return false;
        };
        let psz = u64::from(self.page_size);
        for page in (off / psz)..=((end - 1) / psz) {
            if self.frame(&mut inner, page as u32, true).is_none() {
                return false;
            }
        }
        true
    }

    /// Reads and verifies every page of the region straight from the
    /// source (bypassing the cache, so residency is unchanged). The
    /// fault-injection harness uses this to prove a corrupt region cannot
    /// hide from the per-page table.
    pub fn verify_all(&self) -> Result<(), StoreError> {
        let mut buf = vec![0u8; self.page_size as usize];
        for page in 0..self.num_pages() {
            let len = self.page_len(page);
            let off = self.base + u64::from(page) * u64::from(self.page_size);
            self.source.read_at(off, &mut buf[..len])?;
            if fnv64_words(&buf[..len]) != self.checksums[page as usize] {
                return Err(StoreError::Checksum {
                    section: format!("page {page}"),
                });
            }
        }
        Ok(())
    }

    /// Bytes held by page `page` (the last page may be partial).
    fn page_len(&self, page: u32) -> usize {
        let start = u64::from(page) * u64::from(self.page_size);
        (self.region_len - start).min(u64::from(self.page_size)) as usize
    }

    /// Resolves `page` to a resident frame slot, faulting it in (verified)
    /// on miss. `None` means the fault failed and the poison records why.
    fn frame(&self, inner: &mut Inner, page: u32, pin: bool) -> Option<u32> {
        if let Some(&slot) = inner.map.get(&page) {
            let f = &mut inner.slots[slot as usize];
            f.referenced = true;
            if f.prefetched {
                f.prefetched = false;
                inner.readahead_hits += 1;
            }
            if pin && !f.pinned {
                f.pinned = true;
                inner.pinned_pages += 1;
            }
            inner.hits += 1;
            return Some(slot);
        }

        // A fault on the page right after the previous one means the
        // caller is walking forward — worth opening the readahead window
        // once this fault lands.
        let sequential = inner.last_fault != EMPTY && inner.last_fault.wrapping_add(1) == page;

        let len = self.page_len(page);
        // Reclaim before inserting so the new page can never evict itself.
        Self::evict_for(inner, len as u64);

        inner.faults += 1;
        let mut data = vec![0u8; len].into_boxed_slice();
        let off = self.base + u64::from(page) * u64::from(self.page_size);
        if let Err(e) = self.source.read_at(off, &mut data) {
            inner.poison = Some(StoreError::Io(e));
            return None;
        }
        if fnv64_words(&data) != self.checksums[page as usize] {
            inner.checksum_failures += 1;
            inner.poison = Some(StoreError::Checksum {
                section: format!("page {page}"),
            });
            return None;
        }

        let slot = Self::install(
            inner,
            Frame {
                page,
                referenced: true,
                pinned: pin,
                prefetched: false,
                data,
            },
        );
        inner.last_fault = page;
        if sequential {
            // Shield the page just faulted: the prefetch's own eviction
            // sweep must not reclaim the frame this caller is about to
            // read from (slot indices are stable; eviction blanks in
            // place).
            let was_pinned = inner.slots[slot as usize].pinned;
            inner.slots[slot as usize].pinned = true;
            self.prefetch(inner, page + 1, READAHEAD_PAGES);
            inner.slots[slot as usize].pinned = was_pinned;
        }
        Some(slot)
    }

    /// Inserts a verified frame, reusing a free slot when one exists.
    fn install(inner: &mut Inner, frame: Frame) -> u32 {
        let page = frame.page;
        let len = frame.data.len() as u64;
        let pin = frame.pinned;
        let slot = match inner.free.pop() {
            Some(s) => {
                inner.slots[s as usize] = frame;
                s
            }
            None => {
                inner.slots.push(frame);
                (inner.slots.len() - 1) as u32
            }
        };
        inner.map.insert(page, slot);
        inner.resident_bytes += len;
        if pin {
            inner.pinned_pages += 1;
        }
        slot
    }

    /// Speculatively fetches up to `want` contiguous non-resident pages
    /// starting at `start` with **one** positioned read. Speculative work
    /// never degrades the demand path: the window shrinks to the budget
    /// headroom (a prefetch cannot evict its way over budget the way a
    /// demand fault may), an I/O error aborts silently, and a page failing
    /// its checksum is skipped (batch stops) without poisoning — if the
    /// walk really reaches that page, the demand fault re-reads it and
    /// poisons exactly as an unprefetched fault would.
    fn prefetch(&self, inner: &mut Inner, start: u32, want: u32) {
        let mut count = 0u32;
        while count < want {
            let p = start + count;
            if p >= self.num_pages() || inner.map.contains_key(&p) {
                break;
            }
            count += 1;
        }
        if count == 0 {
            return;
        }
        // No eviction here, by design: speculative pages fill whatever
        // headroom the budget has left and never reclaim a demand frame.
        // Under cache pressure (budget ≈ working set) the window collapses
        // to nothing and readahead turns itself off instead of thrashing
        // the clock with pages the walk may never reach.
        let headroom = inner.budget.saturating_sub(inner.resident_bytes);
        let mut take = 0u32;
        let mut take_bytes = 0usize;
        while take < count {
            let len = self.page_len(start + take);
            if (take_bytes + len) as u64 > headroom {
                break;
            }
            take_bytes += len;
            take += 1;
        }
        if take == 0 {
            return;
        }
        let mut buf = vec![0u8; take_bytes];
        let off = self.base + u64::from(start) * u64::from(self.page_size);
        if self.source.read_at(off, &mut buf).is_err() {
            return;
        }
        let mut pos = 0usize;
        for page in start..start + take {
            let len = self.page_len(page);
            let data = &buf[pos..pos + len];
            pos += len;
            if fnv64_words(data) != self.checksums[page as usize] {
                break;
            }
            Self::install(
                inner,
                Frame {
                    page,
                    referenced: true,
                    pinned: false,
                    prefetched: true,
                    data: data.to_vec().into_boxed_slice(),
                },
            );
            inner.prefetched += 1;
            // Chain the window: prefetched pages satisfy lookups without
            // faulting, so the *next* demand fault lands right past the
            // window and must still read as sequential.
            inner.last_fault = page;
        }
    }

    /// Readahead hint for a caller about to walk `[off, off + len)`
    /// sequentially: batch-fetches the window's first non-resident pages
    /// (bounded by the readahead window size) before the per-page lookups
    /// begin. Out-of-range hints are clamped; a poisoned cache ignores
    /// hints. Purely an optimization — identical results with or without.
    pub fn readahead(&self, off: u64, len: u64) {
        let mut inner = self.inner.borrow_mut();
        if inner.poison.is_some() || len == 0 || off >= self.region_len {
            return;
        }
        let end = off.saturating_add(len).min(self.region_len);
        let psz = u64::from(self.page_size);
        let first = (off / psz) as u32;
        let last = ((end - 1) / psz) as u32;
        let mut p = first;
        while p <= last && inner.map.contains_key(&p) {
            p += 1;
        }
        if p > last {
            return;
        }
        self.prefetch(&mut inner, p, (last - p + 1).min(READAHEAD_PAGES));
    }

    /// Clock sweep: reclaim frames until `need` more bytes fit in the
    /// budget. Referenced frames get one more revolution; pinned frames
    /// are skipped. Bounded at two revolutions — if everything left is
    /// pinned or the budget is smaller than the working set, the cache
    /// runs over budget rather than thrashing or failing.
    fn evict_for(inner: &mut Inner, need: u64) {
        if inner.slots.is_empty() {
            return;
        }
        let mut steps = 2 * inner.slots.len();
        while inner.resident_bytes + need > inner.budget && steps > 0 {
            steps -= 1;
            let slot = inner.hand;
            inner.hand = (inner.hand + 1) % inner.slots.len();
            let f = &mut inner.slots[slot];
            if f.page == EMPTY || f.pinned {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            let page = f.page;
            f.page = EMPTY;
            if f.prefetched {
                inner.wasted_prefetches += 1;
            }
            inner.resident_bytes -= f.data.len() as u64;
            f.data = Box::new([]);
            inner.map.remove(&page);
            inner.free.push(slot as u32);
            inner.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn reads_match_source_across_page_seams() {
        let bytes = region(1000);
        let cache = PageCache::over_bytes(bytes.clone(), 64, u64::MAX).unwrap();
        // Unaligned read spanning three pages.
        let mut buf = vec![0u8; 150];
        assert!(cache.read(37, &mut buf));
        assert_eq!(buf, &bytes[37..187]);
        // Tail read covering the partial last page.
        let mut tail = vec![0u8; 100];
        assert!(cache.read(900, &mut tail));
        assert_eq!(tail, &bytes[900..1000]);
        let stats = cache.stats();
        assert!(stats.faults >= 4);
        assert_eq!(stats.checksum_failures, 0);
    }

    #[test]
    fn out_of_range_read_poisons_and_zeroes() {
        let cache = PageCache::over_bytes(region(100), 64, u64::MAX).unwrap();
        let mut buf = [7u8; 8];
        assert!(!cache.read(96, &mut buf));
        assert_eq!(buf, [0u8; 8]);
        assert!(cache.poisoned());
        assert!(matches!(
            cache.take_poison(),
            Some(StoreError::Format(m)) if m.contains("outside the region")
        ));
        assert!(!cache.poisoned());
    }

    #[test]
    fn budget_caps_residency_and_counts_evictions() {
        let bytes = region(64 * 16);
        let cache = PageCache::over_bytes(bytes.clone(), 64, 4 * 64).unwrap();
        let mut buf = [0u8; 64];
        for p in 0..16u64 {
            assert!(cache.read(p * 64, &mut buf));
            assert_eq!(&buf[..], &bytes[(p * 64) as usize..(p * 64 + 64) as usize]);
        }
        let stats = cache.stats();
        assert!(stats.resident_bytes <= 4 * 64, "{stats:?}");
        assert!(stats.evictions >= 12, "{stats:?}");
        // Evicted pages re-fault correctly.
        assert!(cache.read(0, &mut buf));
        assert_eq!(&buf[..], &bytes[..64]);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let bytes = region(64 * 16);
        let cache = PageCache::over_bytes(bytes.clone(), 64, 3 * 64).unwrap();
        assert!(cache.pin(0, 64));
        let mut buf = [0u8; 64];
        for p in 0..16u64 {
            assert!(cache.read(p * 64, &mut buf));
        }
        let before = cache.stats();
        assert_eq!(before.pinned_pages, 1);
        // The pinned page must still be a hit (no new fault).
        assert!(cache.read(0, &mut buf));
        assert_eq!(&buf[..], &bytes[..64]);
        assert_eq!(cache.stats().faults, before.faults);
    }

    #[test]
    fn checksum_mismatch_is_caught_on_fault() {
        let bytes = region(256);
        let mut sums = page_checksums(&bytes, 64);
        sums[2] ^= 1; // lie about page 2
        let cache = PageCache::new(
            Box::new(crate::BytesSource(bytes)),
            0,
            256,
            64,
            sums,
            u64::MAX,
        )
        .unwrap();
        let mut buf = [0u8; 16];
        assert!(cache.read(0, &mut buf)); // page 0 fine
        assert!(!cache.read(130, &mut buf)); // page 2 corrupt
        assert_eq!(buf, [0u8; 16]);
        match cache.take_poison() {
            Some(StoreError::Checksum { section }) => assert_eq!(section, "page 2"),
            other => panic!("expected page checksum failure, got {other:?}"),
        }
        assert_eq!(cache.stats().checksum_failures, 1);
        // The corrupt page was not cached; touching it again re-poisons.
        assert!(!cache.read(130, &mut buf));
        assert!(cache.poisoned());
    }

    #[test]
    fn verify_all_scans_without_touching_residency() {
        let bytes = region(300);
        let cache = PageCache::over_bytes(bytes, 64, u64::MAX).unwrap();
        cache.verify_all().unwrap();
        assert_eq!(cache.stats().resident_pages, 0);

        let bytes = region(300);
        let mut sums = page_checksums(&bytes, 64);
        sums[4] ^= 0xFF;
        let bad = PageCache::new(
            Box::new(crate::BytesSource(bytes)),
            0,
            300,
            64,
            sums,
            u64::MAX,
        )
        .unwrap();
        match bad.verify_all() {
            Err(StoreError::Checksum { section }) => assert_eq!(section, "page 4"),
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn geometry_is_validated_up_front() {
        assert!(PageCache::over_bytes(region(100), 1, u64::MAX).is_err());
        let bytes = region(100);
        let sums = page_checksums(&bytes, 64);
        assert!(PageCache::new(
            Box::new(crate::BytesSource(bytes.clone())),
            0,
            100,
            64,
            sums[..1].to_vec(),
            u64::MAX
        )
        .is_err());
        assert!(PageCache::new(
            Box::new(crate::BytesSource(bytes)),
            64,
            100,
            64,
            page_checksums(&region(100), 64),
            u64::MAX
        )
        .is_err());
    }

    #[test]
    fn sequential_walk_triggers_readahead() {
        let bytes = region(64 * 32);
        let cache = PageCache::over_bytes(bytes.clone(), 64, u64::MAX).unwrap();
        let mut buf = [0u8; 64];
        for p in 0..32u64 {
            assert!(cache.read(p * 64, &mut buf));
            assert_eq!(&buf[..], &bytes[(p * 64) as usize..][..64]);
        }
        let stats = cache.stats();
        // Every page entered memory exactly once, most of them batched.
        assert_eq!(stats.faults + stats.prefetched, 32, "{stats:?}");
        assert!(stats.prefetched > stats.faults, "{stats:?}");
        assert!(stats.readahead_hits > 0, "{stats:?}");
        assert_eq!(stats.checksum_failures, 0);
    }

    #[test]
    fn readahead_hint_prefetches_window() {
        let bytes = region(64 * 16);
        let cache = PageCache::over_bytes(bytes.clone(), 64, u64::MAX).unwrap();
        cache.readahead(0, 5 * 64);
        let stats = cache.stats();
        assert_eq!(stats.prefetched, 5, "{stats:?}");
        assert_eq!(stats.faults, 0);
        let mut buf = [0u8; 64];
        for p in 0..5u64 {
            assert!(cache.read(p * 64, &mut buf));
            assert_eq!(&buf[..], &bytes[(p * 64) as usize..][..64]);
        }
        let stats = cache.stats();
        assert_eq!(stats.faults, 0, "{stats:?}");
        assert_eq!(stats.readahead_hits, 5, "{stats:?}");
        // Out-of-range and empty hints are harmless no-ops.
        cache.readahead(64 * 160, 64);
        cache.readahead(0, 0);
    }

    #[test]
    fn unused_prefetches_count_as_wasted_on_eviction() {
        let cache = PageCache::over_bytes(region(64 * 16), 64, u64::MAX).unwrap();
        cache.readahead(0, 8 * 64);
        assert_eq!(cache.stats().prefetched, 8);
        cache.set_budget(2 * 64);
        let stats = cache.stats();
        assert!(stats.wasted_prefetches >= 6, "{stats:?}");
    }

    #[test]
    fn prefetch_respects_budget_headroom() {
        // Budget of three pages: a hint may only fill what fits.
        let cache = PageCache::over_bytes(region(64 * 16), 64, 3 * 64).unwrap();
        cache.readahead(0, 16 * 64);
        let stats = cache.stats();
        assert!(stats.resident_bytes <= 3 * 64, "{stats:?}");
        assert!(stats.prefetched <= 3, "{stats:?}");
    }

    #[test]
    fn speculative_checksum_failure_never_poisons() {
        let bytes = region(64 * 8);
        let mut sums = page_checksums(&bytes, 64);
        sums[3] ^= 1; // lie about page 3
        let cache = PageCache::new(
            Box::new(crate::BytesSource(bytes)),
            0,
            64 * 8,
            64,
            sums,
            u64::MAX,
        )
        .unwrap();
        let mut buf = [0u8; 64];
        assert!(cache.read(0, &mut buf));
        // Sequential second fault opens the window over pages 2..; the
        // corrupt page 3 stops the batch silently.
        assert!(cache.read(64, &mut buf));
        assert!(!cache.poisoned());
        assert_eq!(cache.stats().checksum_failures, 0);
        assert!(cache.read(2 * 64, &mut buf)); // prefetched fine
        assert!(!cache.read(3 * 64, &mut buf)); // demand fault catches it
        match cache.take_poison() {
            Some(StoreError::Checksum { section }) => assert_eq!(section, "page 3"),
            other => panic!("expected page checksum failure, got {other:?}"),
        }
        assert_eq!(cache.stats().checksum_failures, 1);
    }

    #[test]
    fn shrinking_budget_reclaims_immediately() {
        let cache = PageCache::over_bytes(region(64 * 8), 64, u64::MAX).unwrap();
        let mut buf = [0u8; 64];
        for p in 0..8u64 {
            cache.read(p * 64, &mut buf);
        }
        assert_eq!(cache.stats().resident_pages, 8);
        cache.set_budget(2 * 64);
        assert!(cache.stats().resident_bytes <= 2 * 64);
    }
}
