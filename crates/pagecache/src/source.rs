//! Positioned-read byte sources the page cache faults from.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;

/// A random-access byte store the cache reads pages from. Implementations
/// must be cheap to read at arbitrary offsets and need no interior
/// mutability (positioned reads don't move a file cursor).
///
/// The trait is public so the fault-injection harness can wrap a source
/// and inject I/O errors, short reads, or stale bytes underneath a live
/// cache.
pub trait PageSource {
    /// Total readable length in bytes.
    fn len(&self) -> u64;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills `buf` from `offset`, failing (never short-reading) if the
    /// range is unavailable.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
}

/// A [`PageSource`] over an open file, using positioned I/O
/// (`FileExt::read_exact_at`) so concurrent logical readers never contend
/// on a seek cursor.
pub struct FileSource {
    file: File,
    len: u64,
}

impl FileSource {
    /// Wraps an open file, capturing its current length.
    pub fn new(file: File) -> io::Result<Self> {
        let len = file.metadata()?.len();
        Ok(FileSource { file, len })
    }

    /// Opens `path` read-only.
    pub fn open(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Self::new(File::open(path)?)
    }
}

impl PageSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.read_exact_at(buf, offset)
    }
}

/// An in-memory [`PageSource`] — the test and fault-injection double, and
/// the way a whole `.mrx` image can be served paged without touching disk.
pub struct BytesSource(pub Vec<u8>);

impl PageSource for BytesSource {
    fn len(&self) -> u64 {
        self.0.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let start = usize::try_from(offset)
            .ok()
            .filter(|&s| s <= self.0.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "read past end"))?;
        let end = start
            .checked_add(buf.len())
            .filter(|&e| e <= self.0.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "read past end"))?;
        buf.copy_from_slice(&self.0[start..end]);
        Ok(())
    }
}
