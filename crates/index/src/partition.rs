//! Ground-truth k-bisimulation partitions.
//!
//! [`k_bisim`] computes the `≈k` equivalence classes of a data graph by
//! iterative signature refinement (Definition 2 of the paper): two nodes are
//! in the same block at round `i` iff they were in the same block at round
//! `i−1` *and* their parents cover the same set of round-`i−1` blocks.
//! Round 0 partitions by label.
//!
//! The A(k)-index is exactly the index graph induced by `≈k`; the 1-index is
//! the fixpoint ([`bisim`]). The M(k)/M*(k) test-suites also use these
//! partitions as an independent oracle for Property 1 ("all data nodes in an
//! extent are `v.k`-bisimilar").

use std::collections::HashMap;

use mrx_graph::{DataGraph, NodeId};

use crate::refine::{self, Direction, RefineStats, Refiner};

/// A partition of a graph's nodes into numbered blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block_of[v]` is the block id of node `v`; block ids are dense `0..num_blocks`.
    pub block_of: Vec<u32>,
    /// Number of blocks.
    pub num_blocks: usize,
}

impl Partition {
    /// Whether nodes `u` and `v` share a block.
    #[inline]
    pub fn same_block(&self, u: NodeId, v: NodeId) -> bool {
        self.block_of[u.index()] == self.block_of[v.index()]
    }

    /// Materializes the blocks as sorted extents.
    pub fn blocks(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.num_blocks];
        for (i, &b) in self.block_of.iter().enumerate() {
            out[b as usize].push(NodeId(i as u32));
        }
        out
    }

    /// Whether `self` refines `coarser`: every block of `self` lies inside
    /// one block of `coarser`.
    pub fn refines(&self, coarser: &Partition) -> bool {
        let mut rep: Vec<Option<u32>> = vec![None; self.num_blocks];
        for (i, &b) in self.block_of.iter().enumerate() {
            let c = coarser.block_of[i];
            match rep[b as usize] {
                None => rep[b as usize] = Some(c),
                Some(r) if r == c => {}
                Some(_) => return false,
            }
        }
        true
    }
}

/// The `≈0` partition: blocks are labels.
pub fn label_partition(g: &DataGraph) -> Partition {
    // Labels are dense but some may be unused; renumber to dense block ids.
    let mut remap: Vec<u32> = vec![u32::MAX; g.labels().len()];
    let mut block_of = Vec::with_capacity(g.node_count());
    let mut next = 0u32;
    for v in g.nodes() {
        let l = g.label(v).index();
        if remap[l] == u32::MAX {
            remap[l] = next;
            next += 1;
        }
        block_of.push(remap[l]);
    }
    Partition {
        block_of,
        num_blocks: next as usize,
    }
}

/// One refinement round: `≈i` from `≈{i−1}`.
///
/// Returns the refined partition; block count is non-decreasing. Backed by
/// the interning engine in [`crate::refine`] (see [`naive::refine_once`] for
/// the reference implementation it is tested against).
pub fn refine_once(g: &DataGraph, prev: &Partition) -> Partition {
    refine::refine_once_with(g, prev, Direction::Up, refine::default_threads())
}

/// One *downward* refinement round: like [`refine_once`] but over children,
/// computing down-bisimilarity (same outgoing label paths; the
/// UD(k,l)-index's second dimension).
pub fn refine_once_down(g: &DataGraph, prev: &Partition) -> Partition {
    refine::refine_once_with(g, prev, Direction::Down, refine::default_threads())
}

/// The `≈l`-down partition: same outgoing label paths of length up to `l`.
pub fn l_bisim_down(g: &DataGraph, l: u32) -> Partition {
    l_bisim_down_stats(g, l).0
}

/// [`l_bisim_down`] with the engine's per-round statistics.
pub fn l_bisim_down_stats(g: &DataGraph, l: u32) -> (Partition, RefineStats) {
    let mut r = Refiner::new(g, Direction::Down);
    r.run(l);
    r.finish()
}

/// The intersection (common refinement) of two partitions.
pub fn intersect_partitions(a: &Partition, b: &Partition) -> Partition {
    let mut table: HashMap<(u32, u32), u32> = HashMap::new();
    let mut block_of = Vec::with_capacity(a.block_of.len());
    for (&x, &y) in a.block_of.iter().zip(&b.block_of) {
        let next = table.len() as u32;
        let id = *table.entry((x, y)).or_insert(next);
        block_of.push(id);
    }
    Partition {
        num_blocks: table.len(),
        block_of,
    }
}

/// The `≈k` partition.
pub fn k_bisim(g: &DataGraph, k: u32) -> Partition {
    k_bisim_stats(g, k).0
}

/// [`k_bisim`] with the engine's per-round statistics.
pub fn k_bisim_stats(g: &DataGraph, k: u32) -> (Partition, RefineStats) {
    let mut r = Refiner::new(g, Direction::Up);
    r.run(k);
    r.finish()
}

/// All partitions `≈0 ..= ≈kmax` (index `i` holds `≈i`).
pub fn k_bisim_all(g: &DataGraph, kmax: u32) -> Vec<Partition> {
    let mut r = Refiner::new(g, Direction::Up);
    let mut out = Vec::with_capacity(kmax as usize + 1);
    out.push(r.partition().clone());
    for _ in 0..kmax {
        r.step();
        out.push(r.partition().clone());
    }
    out
}

/// Full bisimulation (the 1-index partition): refine until the block count
/// stabilizes. Returns the fixpoint and the number of rounds it took (the
/// graph's *stabilization k*).
pub fn bisim(g: &DataGraph) -> (Partition, u32) {
    let (p, rounds, _) = bisim_stats(g);
    (p, rounds)
}

/// [`bisim`] with the engine's per-round statistics.
pub fn bisim_stats(g: &DataGraph) -> (Partition, u32, RefineStats) {
    let mut r = Refiner::new(g, Direction::Up);
    let rounds = r.run_to_fixpoint();
    let (p, stats) = r.finish();
    (p, rounds, stats)
}

/// The original round implementations, kept verbatim as the oracle the
/// engine in [`crate::refine`] is verified against: one heap-allocated
/// `Vec<u32>` signature per node per round, interned through a
/// `HashMap<Vec<u32>, u32>`. Slow but transparently correct — property
/// tests assert the optimized partitions match these block-for-block.
pub mod naive {
    use super::{label_partition, HashMap, Partition};
    use mrx_graph::DataGraph;

    /// One refinement round over parents (reference implementation).
    pub fn refine_once(g: &DataGraph, prev: &Partition) -> Partition {
        // Signature: [own previous block, sorted deduped previous parent blocks].
        let mut parent_blocks: Vec<u32> = Vec::new();
        let mut table: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut block_of = Vec::with_capacity(g.node_count());
        for v in g.nodes() {
            parent_blocks.clear();
            parent_blocks.extend(g.parents(v).iter().map(|p| prev.block_of[p.index()]));
            parent_blocks.sort_unstable();
            parent_blocks.dedup();
            let mut sig = Vec::with_capacity(parent_blocks.len() + 1);
            sig.push(prev.block_of[v.index()]);
            sig.extend_from_slice(&parent_blocks);
            let next = table.len() as u32;
            let id = *table.entry(sig).or_insert(next);
            block_of.push(id);
        }
        Partition {
            num_blocks: table.len(),
            block_of,
        }
    }

    /// One refinement round over children (reference implementation).
    pub fn refine_once_down(g: &DataGraph, prev: &Partition) -> Partition {
        let mut child_blocks: Vec<u32> = Vec::new();
        let mut table: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut block_of = Vec::with_capacity(g.node_count());
        for v in g.nodes() {
            child_blocks.clear();
            child_blocks.extend(g.children(v).iter().map(|c| prev.block_of[c.index()]));
            child_blocks.sort_unstable();
            child_blocks.dedup();
            let mut sig = Vec::with_capacity(child_blocks.len() + 1);
            sig.push(prev.block_of[v.index()]);
            sig.extend_from_slice(&child_blocks);
            let next = table.len() as u32;
            let id = *table.entry(sig).or_insert(next);
            block_of.push(id);
        }
        Partition {
            num_blocks: table.len(),
            block_of,
        }
    }

    /// The `≈k` partition by naive rounds (reference implementation).
    pub fn k_bisim(g: &DataGraph, k: u32) -> Partition {
        let mut p = label_partition(g);
        for _ in 0..k {
            p = refine_once(g, &p);
        }
        p
    }

    /// The `≈l`-down partition by naive rounds (reference implementation).
    pub fn l_bisim_down(g: &DataGraph, l: u32) -> Partition {
        let mut p = label_partition(g);
        for _ in 0..l {
            p = refine_once_down(g, &p);
        }
        p
    }

    /// The full-bisimulation fixpoint by naive rounds (reference
    /// implementation). Returns the partition and its stabilization `k`.
    pub fn bisim(g: &DataGraph) -> (Partition, u32) {
        let mut p = label_partition(g);
        let mut rounds = 0u32;
        loop {
            let next = refine_once(g, &p);
            if next.num_blocks == p.num_blocks {
                // Equal block count for a refinement implies equal partition.
                return (p, rounds);
            }
            p = next;
            rounds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_graph::GraphBuilder;

    /// Figure 2 of the paper: two `d` nodes with identical incoming label
    /// paths that are nonetheless not bisimilar.
    fn figure2() -> (DataGraph, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        // left tree: r -> a -> c1 -> d1, r -> b -> c2 -> d1 (two c's, shared d)
        let r = b.add_node("r");
        let a = b.add_child(r, "a");
        let bb = b.add_child(r, "b");
        let c1 = b.add_child(a, "c");
        let c2 = b.add_child(bb, "c");
        let d1 = b.add_child(c1, "d");
        b.add_ref(c2, d1);
        // right tree grafted under the same root via a fresh subtree:
        // r2 -> a2 -> c3 <- b2 ; c3 -> d2 (one shared c)
        let r2 = b.add_child(r, "r2");
        let a2 = b.add_child(r2, "a");
        let b2 = b.add_child(r2, "b");
        let c3 = b.add_child(a2, "c");
        b.add_ref(b2, c3);
        let d2 = b.add_child(c3, "d");
        (b.freeze(), d1, d2)
    }

    #[test]
    fn zero_bisim_is_label_partition() {
        let (g, d1, d2) = figure2();
        let p = label_partition(&g);
        assert!(p.same_block(d1, d2));
        // 6 labels: r a b c d r2
        assert_eq!(p.num_blocks, 6);
    }

    #[test]
    fn figure2_d_nodes_separate_at_k2() {
        let (g, d1, d2) = figure2();
        // k=1: both ds have only c parents -> same block
        assert!(k_bisim(&g, 1).same_block(d1, d2));
        // k=2: d1's parents are two c's with different parents (a vs b);
        // d2's parent is a single c with both a and b parents. The c-blocks
        // differ at k=1, so the d's separate at k=2.
        assert!(!k_bisim(&g, 2).same_block(d1, d2));
    }

    #[test]
    fn refinement_chain() {
        let (g, _, _) = figure2();
        let ps = k_bisim_all(&g, 4);
        for w in ps.windows(2) {
            assert!(w[1].refines(&w[0]), "≈(k+1) must refine ≈k");
            assert!(w[1].num_blocks >= w[0].num_blocks);
        }
    }

    #[test]
    fn fixpoint_separates_non_bisimilar() {
        let (g, d1, d2) = figure2();
        let (p, rounds) = bisim(&g);
        assert!(!p.same_block(d1, d2));
        assert!(rounds >= 2);
        // fixpoint really is a fixpoint
        let again = refine_once(&g, &p);
        assert_eq!(again.num_blocks, p.num_blocks);
    }

    #[test]
    fn pure_tree_blocks_by_root_path() {
        // In a tree, bisimilarity groups nodes by their root-to-node label path.
        let mut b = GraphBuilder::new();
        let r = b.add_node("r");
        let a1 = b.add_child(r, "a");
        let a2 = b.add_child(r, "a");
        let x1 = b.add_child(a1, "x");
        let x2 = b.add_child(a2, "x");
        let y = b.add_child(r, "x"); // x directly under r: different path
        let g = b.freeze();
        let (p, _) = bisim(&g);
        assert!(p.same_block(x1, x2));
        assert!(!p.same_block(x1, y));
        assert!(p.same_block(a1, a2));
    }

    #[test]
    fn blocks_materialization_partitions_nodes() {
        let (g, _, _) = figure2();
        let p = k_bisim(&g, 2);
        let blocks = p.blocks();
        assert_eq!(blocks.len(), p.num_blocks);
        let total: usize = blocks.iter().map(Vec::len).sum();
        assert_eq!(total, g.node_count());
        assert!(blocks.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn single_node_graph() {
        let mut b = GraphBuilder::new();
        b.add_node("only");
        let g = b.freeze();
        let (p, rounds) = bisim(&g);
        assert_eq!(p.num_blocks, 1);
        assert_eq!(rounds, 0);
    }

    #[test]
    fn down_bisim_groups_by_outgoing_structure() {
        // r -> a1 -> x; r -> a2 -> x; r -> a3 (leaf a)
        let mut b = GraphBuilder::new();
        let r = b.add_node("r");
        let a1 = b.add_child(r, "a");
        let a2 = b.add_child(r, "a");
        let a3 = b.add_child(r, "a");
        b.add_child(a1, "x");
        b.add_child(a2, "x");
        let g = b.freeze();
        let down = l_bisim_down(&g, 1);
        assert!(down.same_block(a1, a2), "same outgoing structure");
        assert!(!down.same_block(a1, a3), "a3 has no x child");
        // upward bisimilarity cannot tell the a's apart
        assert!(k_bisim(&g, 4).same_block(a1, a3));
    }

    #[test]
    fn partition_intersection_refines_both() {
        let (g, _, _) = figure2();
        let up = k_bisim(&g, 2);
        let down = l_bisim_down(&g, 2);
        let both = intersect_partitions(&up, &down);
        assert!(both.refines(&up));
        assert!(both.refines(&down));
        assert!(both.num_blocks >= up.num_blocks.max(down.num_blocks));
    }

    #[test]
    fn cycle_terminates() {
        let mut b = GraphBuilder::new();
        let r = b.add_node("r");
        let a = b.add_child(r, "a");
        let c = b.add_child(a, "a");
        b.add_ref(c, a);
        let g = b.freeze();
        let (p, _) = bisim(&g);
        assert!(p.num_blocks <= g.node_count());
        assert!(!p.same_block(a, c)); // a has parent r, c does not
    }
}
