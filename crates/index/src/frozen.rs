//! Frozen CSR snapshots of index graphs: the immutable serving form.
//!
//! [`FrozenIndex`] compiles a live [`IndexGraph`] — slot arena with dead
//! entries, per-node `Vec`s, label lists polluted by refinement churn —
//! into flat arenas: dense ids `0..n`, one contiguous extent arena, CSR
//! parent/child adjacency, and a label→nodes CSR. [`FrozenMStar`] freezes a
//! whole [`MStarIndex`] hierarchy. Both serve queries through the same
//! generic evaluators as the live structures (see [`crate::view`]), so
//! answers and [`mrx_path::Cost`] accounting are bit-identical; the frozen
//! form is just faster to walk (no alive-filtering, no pointer chasing
//! across per-slot allocations) and maps directly onto the `.mrx` v2
//! on-disk layout.
//!
//! Freezing renumbers live slots in ascending order. This monotone map is
//! what makes live/frozen correspondence exact — see the module docs of
//! [`crate::view`].

use mrx_graph::{GraphView, LabelId, NodeId};
use mrx_path::{BudgetError, BudgetMeter, CompiledPath, PathExpr};
use mrx_postings::SliceSeeker;

use crate::query::QueryScratch;
use crate::view::{self, ExtentCursor, IndexView};
use crate::{query, Answer, IdxId, IndexGraph, MStarIndex, TrustPolicy};

/// An immutable, flat-arena snapshot of one [`IndexGraph`].
///
/// Node ids are dense: every id in `0..labels.len()` is a live node. The
/// fields are public so the store layer can write them to disk verbatim
/// and reconstruct the snapshot by reading them back; use [`validate`] on
/// any instance built from untrusted bytes.
///
/// [`validate`]: FrozenIndex::validate
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenIndex {
    /// Label of each node.
    pub labels: Vec<LabelId>,
    /// Claimed local similarity of each node.
    pub k: Vec<u32>,
    /// Proven local similarity of each node.
    pub genuine: Vec<u32>,
    /// `extent_off[v]..extent_off[v+1]` indexes node `v`'s extent in
    /// [`extent_arena`](Self::extent_arena). Length `n + 1`.
    pub extent_off: Vec<u32>,
    /// All extents, concatenated in node order; each slice sorted.
    pub extent_arena: Vec<NodeId>,
    /// CSR offsets into [`child_tgt`](Self::child_tgt). Length `n + 1`.
    pub child_off: Vec<u32>,
    /// Child adjacency; each row sorted and deduped.
    pub child_tgt: Vec<IdxId>,
    /// CSR offsets into [`parent_tgt`](Self::parent_tgt). Length `n + 1`.
    pub parent_off: Vec<u32>,
    /// Parent adjacency; each row sorted and deduped.
    pub parent_tgt: Vec<IdxId>,
    /// Inverse extent map: `node_of_data[o]` is the node whose extent
    /// contains data node `o`. Length = data-graph node count.
    pub node_of_data: Vec<IdxId>,
    /// CSR offsets into [`by_label_ids`](Self::by_label_ids), one row per
    /// label in the data graph's alphabet. Length `num_labels + 1`.
    pub by_label_off: Vec<u32>,
    /// Nodes grouped by label, ascending ids within each row.
    pub by_label_ids: Vec<IdxId>,
    /// The live graph's [`IndexGraph::lemma2_safe`] at freeze time.
    pub lemma2: bool,
    /// The live graph's [`IndexGraph::mutation_epoch`] at freeze time.
    pub epoch: u64,
}

impl FrozenIndex {
    /// Compiles a live index graph into its frozen form.
    ///
    /// Live slot ids are renumbered in ascending order (dead slots drop
    /// out); extents, similarities and adjacency are copied, and the
    /// label→nodes map is rebuilt dense — refinement churn in the live
    /// `by_label` lists does not survive freezing.
    pub fn freeze(ig: &IndexGraph) -> FrozenIndex {
        // Monotone renumbering: alive slots in ascending id order.
        let mut map = vec![u32::MAX; ig.slot_bound()];
        let mut n = 0u32;
        for v in ig.iter() {
            map[v.index()] = n;
            n += 1;
        }
        let n = n as usize;

        let mut fz = FrozenIndex {
            labels: Vec::with_capacity(n),
            k: Vec::with_capacity(n),
            genuine: Vec::with_capacity(n),
            extent_off: Vec::with_capacity(n + 1),
            extent_arena: Vec::with_capacity(ig.data_node_count()),
            child_off: Vec::with_capacity(n + 1),
            child_tgt: Vec::new(),
            parent_off: Vec::with_capacity(n + 1),
            parent_tgt: Vec::new(),
            node_of_data: Vec::with_capacity(ig.data_node_count()),
            by_label_off: Vec::new(),
            by_label_ids: Vec::with_capacity(n),
            lemma2: ig.lemma2_safe(),
            epoch: ig.mutation_epoch(),
        };

        fz.extent_off.push(0);
        fz.child_off.push(0);
        fz.parent_off.push(0);
        for v in ig.iter() {
            fz.labels.push(ig.label(v));
            fz.k.push(ig.k(v));
            fz.genuine.push(ig.genuine(v));
            fz.extent_arena.extend_from_slice(ig.extent(v));
            fz.extent_off.push(fz.extent_arena.len() as u32);
            // The monotone map keeps mapped adjacency rows sorted.
            fz.child_tgt
                .extend(ig.children(v).iter().map(|c| IdxId(map[c.index()])));
            fz.child_off.push(fz.child_tgt.len() as u32);
            fz.parent_tgt
                .extend(ig.parents(v).iter().map(|p| IdxId(map[p.index()])));
            fz.parent_off.push(fz.parent_tgt.len() as u32);
        }

        fz.node_of_data.extend((0..ig.data_node_count()).map(|i| {
            let live = ig.node_of(NodeId(i as u32));
            IdxId(map[live.index()])
        }));

        // The shared counting-sort CSR builder reproduces the live
        // enumeration order: nodes_with_label yields ascending live ids, and
        // the monotone map turns those into ascending frozen ids.
        let (off, ids) = mrx_postings::group_by_key(n, ig.num_labels(), |i| fz.labels[i].0);
        fz.by_label_off = off;
        fz.by_label_ids = ids.into_iter().map(IdxId).collect();

        fz
    }

    /// Number of index nodes (all ids dense and live).
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// The size of the label alphabet this snapshot was frozen over.
    pub fn num_labels(&self) -> usize {
        self.by_label_off.len() - 1
    }

    /// The sorted extent of `v`.
    pub fn extent(&self, v: IdxId) -> &[NodeId] {
        &self.extent_arena
            [self.extent_off[v.index()] as usize..self.extent_off[v.index() + 1] as usize]
    }

    /// Sorted child nodes of `v`.
    pub fn children(&self, v: IdxId) -> &[IdxId] {
        &self.child_tgt[self.child_off[v.index()] as usize..self.child_off[v.index() + 1] as usize]
    }

    /// Sorted parent nodes of `v`.
    pub fn parents(&self, v: IdxId) -> &[IdxId] {
        &self.parent_tgt
            [self.parent_off[v.index()] as usize..self.parent_off[v.index() + 1] as usize]
    }

    /// Nodes labeled `l`, ascending.
    pub fn label_nodes(&self, l: LabelId) -> &[IdxId] {
        &self.by_label_ids
            [self.by_label_off[l.index()] as usize..self.by_label_off[l.index() + 1] as usize]
    }

    /// Checks every structural invariant of the snapshot, returning a
    /// description of the first violation. Run this on snapshots built
    /// from untrusted bytes before serving queries through them.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.node_count();
        if self.k.len() != n || self.genuine.len() != n {
            return Err("similarity arrays disagree with node count".into());
        }
        check_csr("extent", &self.extent_off, self.extent_arena.len(), n)?;
        check_csr("child", &self.child_off, self.child_tgt.len(), n)?;
        check_csr("parent", &self.parent_off, self.parent_tgt.len(), n)?;
        check_csr(
            "by_label",
            &self.by_label_off,
            self.by_label_ids.len(),
            self.by_label_off.len() - 1,
        )?;
        if self.by_label_off.is_empty() {
            return Err("by_label offsets empty".into());
        }
        if self.by_label_ids.len() != n {
            return Err("by_label does not cover every node exactly once".into());
        }
        for (what, tgt) in [("child", &self.child_tgt), ("parent", &self.parent_tgt)] {
            if tgt.iter().any(|t| t.index() >= n) {
                return Err(format!("{what} target out of range"));
            }
        }
        let off_pairs = |off: &[u32]| -> Vec<(usize, usize)> {
            off.windows(2)
                .map(|w| (w[0] as usize, w[1] as usize))
                .collect()
        };
        for (a, b) in off_pairs(&self.child_off) {
            if !self.child_tgt[a..b].windows(2).all(|w| w[0] < w[1]) {
                return Err("child row not strictly ascending".into());
            }
        }
        for (a, b) in off_pairs(&self.parent_off) {
            if !self.parent_tgt[a..b].windows(2).all(|w| w[0] < w[1]) {
                return Err("parent row not strictly ascending".into());
            }
        }
        let d = self.node_of_data.len();
        for (v, (a, b)) in off_pairs(&self.extent_off).into_iter().enumerate() {
            if a == b {
                return Err(format!("empty extent on node {v}"));
            }
            let ext = &self.extent_arena[a..b];
            if !ext.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("extent of node {v} not strictly ascending"));
            }
            for &o in ext {
                if o.index() >= d {
                    return Err(format!(
                        "extent of node {v} references data node out of range"
                    ));
                }
                if self.node_of_data[o.index()].index() != v {
                    return Err(format!("node_of_data disagrees with extent of node {v}"));
                }
            }
        }
        if self.extent_arena.len() != d {
            return Err("extents do not partition the data nodes".into());
        }
        for (l, (a, b)) in off_pairs(&self.by_label_off).into_iter().enumerate() {
            let row = &self.by_label_ids[a..b];
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("by_label row {l} not strictly ascending"));
            }
            for &v in row {
                if v.index() >= n {
                    return Err(format!("by_label row {l} references node out of range"));
                }
                if self.labels[v.index()].index() != l {
                    return Err(format!("by_label row {l} contains node with wrong label"));
                }
            }
        }
        Ok(())
    }
}

fn check_csr(what: &str, off: &[u32], arena_len: usize, rows: usize) -> Result<(), String> {
    if off.len() != rows + 1 {
        return Err(format!("{what} offsets have wrong length"));
    }
    if off[0] != 0 || off[rows] as usize != arena_len {
        return Err(format!("{what} offsets do not span the arena"));
    }
    if !off.windows(2).all(|w| w[0] <= w[1]) {
        return Err(format!("{what} offsets not monotone"));
    }
    Ok(())
}

impl IndexView for FrozenIndex {
    fn slot_bound(&self) -> usize {
        self.labels.len()
    }

    fn label(&self, v: IdxId) -> LabelId {
        self.labels[v.index()]
    }

    fn k(&self, v: IdxId) -> u32 {
        self.k[v.index()]
    }

    fn genuine(&self, v: IdxId) -> u32 {
        self.genuine[v.index()]
    }

    fn extent_len(&self, v: IdxId) -> usize {
        FrozenIndex::extent(self, v).len()
    }

    fn extent_first(&self, v: IdxId) -> NodeId {
        FrozenIndex::extent(self, v)[0]
    }

    fn extent_cursor(&self, v: IdxId) -> ExtentCursor<'_> {
        ExtentCursor::Slice(SliceSeeker::new(FrozenIndex::extent(self, v)))
    }

    fn for_each_extent(&self, v: IdxId, mut f: impl FnMut(NodeId)) {
        for &o in FrozenIndex::extent(self, v) {
            f(o);
        }
    }

    fn push_extent(&self, v: IdxId, out: &mut Vec<NodeId>) {
        out.extend_from_slice(FrozenIndex::extent(self, v));
    }

    fn parents(&self, v: IdxId) -> &[IdxId] {
        FrozenIndex::parents(self, v)
    }

    fn children(&self, v: IdxId) -> &[IdxId] {
        FrozenIndex::children(self, v)
    }

    fn node_of(&self, o: NodeId) -> IdxId {
        self.node_of_data[o.index()]
    }

    fn lemma2_safe(&self) -> bool {
        self.lemma2
    }

    fn mutation_epoch(&self) -> u64 {
        self.epoch
    }

    fn push_label_nodes(&self, l: LabelId, out: &mut Vec<IdxId>) {
        if l.index() < self.num_labels() {
            out.extend_from_slice(self.label_nodes(l));
        }
    }

    fn push_all_nodes(&self, out: &mut Vec<IdxId>) {
        out.extend((0..self.labels.len()).map(|i| IdxId(i as u32)));
    }
}

/// A frozen [`MStarIndex`]: every component snapshot plus the combined
/// mutation epoch captured at freeze time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenMStar {
    /// `components[i]` is the frozen `Ii`.
    pub components: Vec<FrozenIndex>,
    /// [`MStarIndex::mutation_epoch`] at freeze time.
    pub epoch: u64,
}

impl MStarIndex {
    /// Freezes every component into the immutable serving form.
    pub fn freeze(&self) -> FrozenMStar {
        FrozenMStar {
            components: self.components.iter().map(FrozenIndex::freeze).collect(),
            epoch: self.mutation_epoch(),
        }
    }
}

impl FrozenMStar {
    /// The finest component's resolution.
    pub fn max_k(&self) -> usize {
        self.components.len() - 1
    }

    /// Read access to frozen component `Ii`.
    pub fn component(&self, i: usize) -> &FrozenIndex {
        &self.components[i]
    }

    /// The source index's combined mutation epoch at freeze time (answer
    /// caches keyed on the live epoch stay valid against the snapshot).
    pub fn mutation_epoch(&self) -> u64 {
        self.epoch
    }

    /// Validates every component snapshot.
    pub fn validate(&self) -> Result<(), String> {
        if self.components.is_empty() {
            return Err("frozen M* has no components".into());
        }
        for (i, c) in self.components.iter().enumerate() {
            c.validate().map_err(|e| format!("component {i}: {e}"))?;
        }
        Ok(())
    }

    /// Answers `path` top-down over the frozen hierarchy — the same §4.1
    /// algorithm as [`MStarIndex::query_with_policy`] with
    /// [`crate::EvalStrategy::TopDown`], through the shared generic
    /// evaluators, so answers and costs match the live index bit for bit.
    pub fn query_top_down<G: GraphView>(
        &self,
        g: &G,
        path: &PathExpr,
        policy: TrustPolicy,
    ) -> Answer {
        self.query_top_down_compiled(g, &path.compile(g), policy)
    }

    /// [`query_top_down`](Self::query_top_down) for a pre-compiled path.
    pub fn query_top_down_compiled<G: GraphView>(
        &self,
        g: &G,
        cp: &CompiledPath,
        policy: TrustPolicy,
    ) -> Answer {
        self.query_top_down_with_scratch(g, cp, policy, &mut QueryScratch::new())
    }

    /// [`query_top_down_compiled`](Self::query_top_down_compiled) over
    /// caller-owned scratch — the steady-state serving path. The snapshot is
    /// immutable, so a session can size its seen-sets, frontiers, and
    /// validator memo once and reuse them for every query it serves; answers
    /// and costs stay bit-identical to the allocating entry points.
    pub fn query_top_down_with_scratch<G: GraphView>(
        &self,
        g: &G,
        cp: &CompiledPath,
        policy: TrustPolicy,
        scratch: &mut QueryScratch,
    ) -> Answer {
        if cp.anchored {
            // Root-anchored expressions always validate; the naive strategy
            // handles them via the shared query algorithm.
            let level = cp.length().min(self.max_k());
            return query::answer_with_scratch(&self.components[level], g, cp, policy, scratch);
        }
        let (targets, level, cost) =
            view::top_down_targets_in(&self.components, cp, &mut scratch.eval);
        view::finish_answer_view_in(
            &self.components[level],
            g,
            cp,
            targets,
            cost,
            policy,
            &mut scratch.memo,
        )
    }

    /// [`query_top_down_with_scratch`](Self::query_top_down_with_scratch)
    /// under a [`BudgetMeter`]: descent, traversal, and validation all
    /// charge the budget; trips return a typed [`BudgetError`] with the
    /// partial cost attached.
    pub fn query_top_down_budgeted<G: GraphView>(
        &self,
        g: &G,
        cp: &CompiledPath,
        policy: TrustPolicy,
        scratch: &mut QueryScratch,
        meter: &mut BudgetMeter,
    ) -> Result<Answer, BudgetError> {
        if cp.anchored {
            let level = cp.length().min(self.max_k());
            return query::answer_budgeted(&self.components[level], g, cp, policy, scratch, meter);
        }
        let (targets, level, cost) =
            view::top_down_targets_budgeted(&self.components, cp, &mut scratch.eval, meter)?;
        view::finish_answer_view_budgeted(
            &self.components[level],
            g,
            cp,
            targets,
            cost,
            policy,
            &mut scratch.memo,
            meter,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrx_graph::xml::parse;
    use mrx_graph::DataGraph;
    use mrx_path::Cost;

    fn doc() -> DataGraph {
        parse(
            "<site>
               <people><person><name><last/></name></person>
                        <person><name/></person></people>
               <forum><poster><name><last/></name></poster></forum>
             </site>",
        )
        .unwrap()
    }

    #[test]
    fn freeze_mirrors_live_index() {
        let g = doc();
        let ig = IndexGraph::from_partition(&g, &crate::k_bisim(&g, 2), |_| 2);
        let fz = FrozenIndex::freeze(&ig);
        fz.validate().expect("valid snapshot");
        assert_eq!(fz.node_count(), ig.node_count());
        // Elementwise correspondence under the monotone renumbering.
        for (fid, live) in ig.iter().enumerate() {
            let fid = IdxId(fid as u32);
            assert_eq!(fz.label(fid), ig.label(live));
            assert_eq!(IndexView::k(&fz, fid), ig.k(live));
            assert_eq!(IndexView::genuine(&fz, fid), ig.genuine(live));
            assert_eq!(fz.extent(fid), ig.extent(live));
        }
        for o in 0..g.node_count() {
            let o = NodeId(o as u32);
            assert!(fz.extent(IndexView::node_of(&fz, o)).contains(&o));
        }
        assert_eq!(fz.lemma2, ig.lemma2_safe());
        assert_eq!(fz.epoch, ig.mutation_epoch());
    }

    #[test]
    fn frozen_answers_match_live_answers_and_costs() {
        let g = doc();
        let ig = IndexGraph::a0(&g);
        let fz = FrozenIndex::freeze(&ig);
        for expr in ["//person/name/last", "//name", "//name/last", "/people"] {
            let p = PathExpr::parse(expr).unwrap();
            for policy in [TrustPolicy::Proven, TrustPolicy::Claimed] {
                let live = query::answer_compiled(&ig, &g, &p.compile(&g), policy);
                let froz = query::answer_compiled(&fz, &g, &p.compile(&g), policy);
                assert_eq!(live.nodes, froz.nodes, "{expr}");
                assert_eq!(live.cost, froz.cost, "{expr}");
                assert_eq!(live.validated, froz.validated, "{expr}");
            }
        }
    }

    #[test]
    fn frozen_mstar_top_down_matches_live() {
        let g = doc();
        let mut idx = MStarIndex::new(&g);
        idx.refine_for(&g, &PathExpr::parse("//person/name/last").unwrap());
        let fz = idx.freeze();
        fz.validate().expect("valid snapshot");
        assert_eq!(fz.mutation_epoch(), idx.mutation_epoch());
        for expr in [
            "//person/name/last",
            "//name/last",
            "//poster/name",
            "//name",
        ] {
            let p = PathExpr::parse(expr).unwrap();
            let live =
                idx.query_with_policy(&g, &p, crate::EvalStrategy::TopDown, TrustPolicy::Proven);
            let froz = fz.query_top_down(&g, &p, TrustPolicy::Proven);
            assert_eq!(live.nodes, froz.nodes, "{expr}");
            assert_eq!(live.cost, froz.cost, "{expr}");
        }
    }

    #[test]
    fn validate_rejects_corruption() {
        let g = doc();
        let ig = IndexGraph::a0(&g);
        let good = FrozenIndex::freeze(&ig);
        good.validate().unwrap();

        let mut bad = good.clone();
        bad.k.pop();
        assert!(bad.validate().is_err(), "short similarity array");

        let mut bad = good.clone();
        bad.child_off[1] = u32::MAX;
        assert!(bad.validate().is_err(), "non-monotone child offsets");

        let mut bad = good.clone();
        if let Some(t) = bad.parent_tgt.first_mut() {
            *t = IdxId(u32::MAX);
            assert!(bad.validate().is_err(), "parent target out of range");
        }

        let mut bad = good.clone();
        bad.node_of_data[0] = IdxId((good.node_count() - 1) as u32);
        assert!(
            bad.validate().is_err(),
            "node_of_data / extent disagreement"
        );

        let mut bad = good.clone();
        let (a, b) = (bad.by_label_ids[0], bad.by_label_ids[1]);
        bad.by_label_ids[0] = b;
        bad.by_label_ids[1] = a;
        assert!(bad.validate().is_err(), "unsorted or mislabeled by_label");
    }

    #[test]
    fn eval_parity_against_eval_in_place() {
        let g = doc();
        let ig = IndexGraph::from_partition(&g, &crate::k_bisim(&g, 1), |_| 1);
        let fz = FrozenIndex::freeze(&ig);
        let mut s1 = crate::IndexEvalScratch::new();
        let mut s2 = crate::IndexEvalScratch::new();
        for expr in ["//name/last", "//person/*", "//site/*/person", "/people"] {
            let cp = PathExpr::parse(expr).unwrap().compile(&g);
            let mut c1 = Cost::ZERO;
            let mut c2 = Cost::ZERO;
            let live: Vec<IdxId> = ig.eval_in_place(&g, &cp, &mut c1, &mut s1).to_vec();
            let froz: Vec<IdxId> = view::eval_view(&fz, &g, &cp, &mut c2, &mut s2).to_vec();
            assert_eq!(live.len(), froz.len(), "{expr}");
            assert_eq!(c1, c2, "{expr}");
            // Targets correspond under the monotone renumbering.
            let map: Vec<IdxId> = {
                let mut m = vec![IdxId(u32::MAX); ig.slot_bound()];
                for (i, v) in ig.iter().enumerate() {
                    m[v.index()] = IdxId(i as u32);
                }
                m
            };
            let mapped: Vec<IdxId> = live.iter().map(|v| map[v.index()]).collect();
            assert_eq!(mapped, froz, "{expr}");
        }
    }
}
